//! # cq-admission — facade crate
//!
//! A production-quality Rust reproduction of *"Admission Control Mechanisms
//! for Continuous Queries in the Cloud"* (ICDE 2010). This crate re-exports
//! the workspace members so applications can depend on a single crate:
//!
//! * [`core`] (`cqac-core`) — the auction mechanisms (CAR, CAF, CAF+, CAT,
//!   CAT+, GV, Two-price, OPT_C) and game-theoretic analysis harness.
//! * [`dsms`] (`cqac-dsms`) — the Aurora-like stream-processing substrate
//!   with shared operator processing, connection points, and the
//!   subscription-day transition phase.
//! * [`workload`] (`cqac-workload`) — the Table III workload generator.
//! * [`sim`] (`cqac-sim`) — experiment runners reproducing every table and
//!   figure of the paper's evaluation.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use cqac_core as core;
pub use cqac_dsms as dsms;
pub use cqac_sim as sim;
pub use cqac_workload as workload;

/// One-stop imports for applications.
pub mod prelude {
    pub use cqac_core::prelude::*;
}
