//! Integration: greedy efficiency against the exact welfare optimum.
//!
//! §III argues the winner-determination problem (maximize admitted value
//! under shared-operator capacity) is hard to approximate, and the paper's
//! greedy mechanisms trade welfare for strategyproofness and speed. On
//! small Table III-shaped instances we can afford the exact branch-and-bound
//! optimum and measure the gap.

use cq_admission::core::analysis::welfare::{optimal_welfare, welfare_of};
use cq_admission::core::mechanisms::MechanismKind;
use cq_admission::core::units::Load;
use cq_admission::workload::{WorkloadGenerator, WorkloadParams};

fn small_instances() -> Vec<cq_admission::core::model::AuctionInstance> {
    let generator = WorkloadGenerator::new(
        WorkloadParams {
            num_queries: 18,
            mean_ops_per_query: 2.5,
            base_max_degree: 6,
            ..WorkloadParams::scaled(18)
        },
        77,
    );
    (0..8)
        .map(|i| {
            generator
                .base_workload(i)
                .to_instance(Load::from_units(40.0))
        })
        .collect()
}

#[test]
fn greedy_mechanisms_are_near_optimal_on_small_instances() {
    let mut ratios: Vec<(MechanismKind, f64)> = Vec::new();
    for kind in [
        MechanismKind::Caf,
        MechanismKind::CafPlus,
        MechanismKind::Cat,
        MechanismKind::CatPlus,
        MechanismKind::Gv,
    ] {
        let mech = kind.build();
        let mut total_greedy = 0.0;
        let mut total_opt = 0.0;
        for inst in small_instances() {
            let opt = optimal_welfare(&inst, 20).expect("instance small enough");
            let out = mech.run_seeded(&inst, 1);
            total_greedy += welfare_of(&inst, &out.winners).as_f64();
            total_opt += opt.welfare.as_f64();
        }
        let ratio = total_greedy / total_opt;
        assert!(
            ratio <= 1.0 + 1e-12,
            "{}: greedy cannot exceed the optimum",
            kind.label()
        );
        ratios.push((kind, ratio));
    }
    // The density mechanisms should capture most of the optimum on these
    // instances; a collapse would signal an accounting bug.
    for (kind, ratio) in &ratios {
        assert!(
            *ratio > 0.5,
            "{}: welfare ratio {ratio:.3} suspiciously low",
            kind.label()
        );
    }
    // The skip-fill variants (CAF+/CAT+) weakly dominate their stop-fill
    // bases in welfare: they admit supersets.
    let get = |k: MechanismKind| ratios.iter().find(|(kk, _)| *kk == k).unwrap().1;
    assert!(get(MechanismKind::CafPlus) >= get(MechanismKind::Caf) - 1e-12);
    assert!(get(MechanismKind::CatPlus) >= get(MechanismKind::Cat) - 1e-12);
}

#[test]
fn optimum_exploits_sharing_when_profitable() {
    // Regression of the hardness intuition: the branch-and-bound optimum
    // picks the shared bundle over the single big bid when sharing pays.
    use cq_admission::prelude::*;
    let mut b = InstanceBuilder::new(Load::from_units(10.0));
    let shared = b.operator(Load::from_units(9.0));
    for _ in 0..4 {
        b.query(Money::from_dollars(30.0), &[shared]);
    }
    let solo = b.operator(Load::from_units(10.0));
    b.query(Money::from_dollars(100.0), &[solo]);
    let inst = b.build().unwrap();
    let opt = optimal_welfare(&inst, 16).unwrap();
    assert_eq!(opt.welfare, Money::from_dollars(120.0));
    assert_eq!(opt.winners.len(), 4);
}
