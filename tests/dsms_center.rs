//! Integration: the DSMS center's full business loop over several
//! subscription days — shadow calibration, auction, network transition,
//! serving, and billing — across mechanisms.

use cq_admission::core::mechanisms::{Caf, Cat, Gv};
use cq_admission::core::model::UserId;
use cq_admission::core::units::{Load, Money};
use cq_admission::dsms::center::{DsmsCenter, Submission};
use cq_admission::dsms::expr::Expr;
use cq_admission::dsms::plan::{AggFunc, LogicalPlan};
use cq_admission::dsms::streams::{news_schema, quote_schema, NewsStream, StockStream};
use cq_admission::dsms::types::{Tuple, Value};

const SYMBOLS: [&str; 4] = ["IBM", "AAPL", "MSFT", "ORCL"];

fn calibration(n: usize, seed: u64) -> Vec<(String, Tuple)> {
    let mut sample: Vec<(String, Tuple)> = StockStream::new(&SYMBOLS, 1, seed)
        .next_batch(n)
        .into_iter()
        .map(|t| ("quotes".to_string(), t))
        .collect();
    sample.extend(
        NewsStream::new(&SYMBOLS, 10, seed + 1)
            .next_batch(n / 10)
            .into_iter()
            .map(|t| ("news".to_string(), t)),
    );
    sample.sort_by_key(|(_, t)| t.ts);
    sample
}

fn high_value(threshold: f64) -> LogicalPlan {
    LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(threshold))))
}

fn submissions() -> Vec<Submission> {
    vec![
        Submission {
            user: UserId(0),
            bid: Money::from_dollars(90.0),
            plan: high_value(100.0).aggregate(Some(0), AggFunc::Avg, 1, 1_000),
        },
        Submission {
            user: UserId(1),
            bid: Money::from_dollars(70.0),
            plan: high_value(100.0),
        },
        Submission {
            user: UserId(2),
            bid: Money::from_dollars(50.0),
            plan: high_value(100.0).join(
                LogicalPlan::source("news")
                    .filter(Expr::col(1).eq(Expr::lit(Value::str("earnings")))),
                0,
                0,
                1_000,
            ),
        },
        Submission {
            user: UserId(3),
            bid: Money::from_dollars(15.0),
            plan: high_value(60.0),
        },
        Submission {
            user: UserId(4),
            bid: Money::from_dollars(5.0),
            plan: LogicalPlan::source("quotes").aggregate(None, AggFunc::Count, 0, 500),
        },
    ]
}

fn center_with(
    mech: Box<dyn cq_admission::core::mechanisms::Mechanism>,
    capacity: f64,
) -> DsmsCenter {
    let mut c = DsmsCenter::new(Load::from_units(capacity), mech);
    c.register_stream("quotes", quote_schema());
    c.register_stream("news", news_schema());
    c
}

#[test]
fn contended_center_selects_and_bills_consistently() {
    for (mech, name) in [
        (
            Box::new(Cat) as Box<dyn cq_admission::core::mechanisms::Mechanism>,
            "CAT",
        ),
        (Box::new(Caf), "CAF"),
        (Box::new(Gv), "GV"),
    ] {
        let mut center = center_with(mech, 4.0);
        let record = center
            .run_auction(&submissions(), &calibration(2_000, 3))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let admitted = record.decisions.iter().filter(|d| d.admitted).count();
        assert!(admitted >= 1, "{name} admitted nobody");
        assert!(admitted < submissions().len(), "{name}: no contention");
        // Billing coherence: losers pay zero, winners at most their bid.
        for d in &record.decisions {
            if d.admitted {
                assert!(d.payment <= submissions()[d.submission].bid, "{name}");
            } else {
                assert_eq!(d.payment, Money::ZERO, "{name}");
                assert!(d.cq.is_none());
            }
        }
        assert_eq!(
            record.profit,
            record.decisions.iter().map(|d| d.payment).sum::<Money>(),
        );
    }
}

#[test]
fn multi_day_continuity_and_state() {
    let mut center = center_with(Box::new(Cat), 50.0); // plenty of room
    let subs = submissions();

    let day0 = center.run_auction(&subs, &calibration(1_500, 7)).unwrap();
    assert!(day0.decisions.iter().all(|d| d.admitted));
    let cq_user0_day0 = day0.decisions[0].cq.unwrap();

    // Serve some data, then re-auction with the same plans.
    let mut quotes = StockStream::new(&SYMBOLS, 1, 11);
    center.process("quotes", quotes.next_batch(500));

    let day1 = center.run_auction(&subs, &calibration(1_500, 8)).unwrap();
    let cq_user0_day1 = day1.decisions[0].cq.unwrap();
    assert_eq!(
        cq_user0_day0, cq_user0_day1,
        "continuing winner keeps its live query id (state preserved)"
    );

    // Drop user 0's renewal: her query is retired, others continue.
    let reduced: Vec<Submission> = subs[1..].to_vec();
    let day2 = center
        .run_auction(&reduced, &calibration(1_500, 9))
        .unwrap();
    assert_eq!(day2.decisions.len(), 4);
    assert_eq!(center.engine().network().num_queries(), 4);
    assert_eq!(center.ledger().len(), 3);
}

#[test]
fn shared_network_smaller_than_sum_of_plans() {
    let mut center = center_with(Box::new(Cat), 100.0);
    center
        .run_auction(&submissions(), &calibration(1_000, 5))
        .unwrap();
    let network = center.engine().network();
    // 5 queries share the hot "high value" selection; well fewer physical
    // nodes than the sum of per-plan operator counts (1+2+3+1+1 = 8).
    assert!(network.num_nodes() < 8);
    assert!(network.max_degree_of_sharing() >= 3);
}

#[test]
fn admitted_queries_produce_results_rejected_do_not() {
    let mut center = center_with(Box::new(Cat), 4.0);
    let record = center
        .run_auction(&submissions(), &calibration(2_000, 3))
        .unwrap();
    let mut quotes = StockStream::new(&SYMBOLS, 1, 13);
    let mut news = NewsStream::new(&SYMBOLS, 10, 14);
    center.process("quotes", quotes.next_batch(3_000));
    center.process("news", news.next_batch(300));

    let mut any_output = false;
    for d in &record.decisions {
        if let Some(cq) = d.cq {
            any_output |= !center.take_outputs(cq).is_empty();
        }
    }
    assert!(
        any_output,
        "at least one admitted query must produce output"
    );
}
