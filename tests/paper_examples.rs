//! Cross-crate golden tests: every worked number in the paper, checked
//! through the facade crate's public API.

use cq_admission::core::analysis::examples::example1;
use cq_admission::prelude::*;

#[test]
fn example1_car_payments() {
    let inst = example1();
    let out = Car::default().run_seeded(&inst, 0);
    assert_eq!(out.winners, vec![QueryId(0), QueryId(1)]);
    assert_eq!(out.payment(QueryId(0)), Money::from_dollars(10.0));
    assert_eq!(out.payment(QueryId(1)), Money::from_dollars(60.0));
}

#[test]
fn example1_caf_payments() {
    let inst = example1();
    let out = Caf.run_seeded(&inst, 0);
    assert_eq!(out.winners, vec![QueryId(0), QueryId(1)]);
    assert_eq!(out.payment(QueryId(0)), Money::from_dollars(30.0));
    assert_eq!(out.payment(QueryId(1)), Money::from_dollars(40.0));
}

#[test]
fn example1_cat_payments() {
    let inst = example1();
    let out = Cat.run_seeded(&inst, 0);
    assert_eq!(out.winners, vec![QueryId(0), QueryId(1)]);
    assert_eq!(out.payment(QueryId(0)), Money::from_dollars(50.0));
    assert_eq!(out.payment(QueryId(1)), Money::from_dollars(60.0));
}

#[test]
fn example1_priorities_match_section4() {
    // CAR/CAT initial priorities 11, 12, 10; CAF priorities 18.34, 18, 10.
    let inst = example1();
    let b = |i: u32| inst.bid(QueryId(i)).as_f64();
    let ct = |i: u32| inst.total_load(QueryId(i)).as_f64();
    let csf = |i: u32| inst.fair_share_load(QueryId(i)).as_f64();
    assert!((b(0) / ct(0) - 11.0).abs() < 1e-9);
    assert!((b(1) / ct(1) - 12.0).abs() < 1e-9);
    assert!((b(2) / ct(2) - 10.0).abs() < 1e-9);
    assert!((b(0) / csf(0) - 55.0 / 3.0).abs() < 1e-9);
    assert!((b(1) / csf(1) - 18.0).abs() < 1e-9);
}

#[test]
fn table2_attack_numbers() {
    use cq_admission::core::analysis::sybil::{attacker_payoff, table2_attack};
    let (original, attack) = table2_attack();
    let out = attacker_payoff(&CatPlus::default(), &original, &attack, 0);
    // Without the attack user 2 loses; with it she nets $89 − $1 = $88.
    assert_eq!(out.baseline_payoff, Money::ZERO);
    assert_eq!(out.fake_charges, Money::from_dollars(1.0));
    assert_eq!(out.attack_payoff, Money::from_dollars(88.0));
    assert!(out.succeeded());
}

#[test]
fn table1_claims_hold_on_example1() {
    use cq_admission::core::analysis::strategyproof::{best_bid_deviation, default_candidates};
    let inst = example1();
    let strategyproof: Vec<Box<dyn Mechanism>> = vec![
        Box::new(Caf),
        Box::new(CafPlus::default()),
        Box::new(Cat),
        Box::new(CatPlus::default()),
        Box::new(Gv),
    ];
    for mech in &strategyproof {
        for q in inst.query_ids() {
            let truthful = mech.run_seeded(&inst, 0);
            let candidates = default_candidates(&inst, q, truthful.payment(q));
            let report = best_bid_deviation(mech.as_ref(), &inst, q, &candidates, 0);
            assert!(!report.profitable(), "{} manipulable by {q}", mech.name());
        }
    }
    // CAR is manipulable (the §IV-A counterexample).
    let candidates = default_candidates(&inst, QueryId(1), Money::from_dollars(60.0));
    let report = best_bid_deviation(&Car::default(), &inst, QueryId(1), &candidates, 0);
    assert!(report.profitable());
}
