//! Integration: the full experiment pipeline — Table III workloads through
//! every mechanism into metrics — with the §VI qualitative claims asserted
//! at reduced scale.

use cq_admission::core::mechanisms::{all_mechanisms, MechanismKind};
use cq_admission::core::metrics::Metrics;
use cq_admission::core::units::Load;
use cq_admission::sim::sweep::{run_sharing_sweep, SweepConfig};
use cq_admission::workload::{WorkloadGenerator, WorkloadParams};

fn scaled_params() -> WorkloadParams {
    WorkloadParams {
        num_queries: 250,
        base_max_degree: 12,
        ..WorkloadParams::scaled(250)
    }
}

#[test]
fn every_mechanism_survives_a_paper_workload() {
    let generator = WorkloadGenerator::new(scaled_params(), 5);
    // Capacity ~ a third of demand: heavy contention.
    let inst = generator
        .base_workload(0)
        .to_instance(Load::from_units(800.0));
    for mech in all_mechanisms() {
        let out = mech.run_seeded(&inst, 3);
        out.validate(&inst)
            .unwrap_or_else(|e| panic!("{}: {e}", mech.name()));
        let m = Metrics::truthful(&inst, &out);
        assert!(m.admission_rate > 0.0, "{} admitted nobody", mech.name());
        assert!(m.utilization <= 1.0);
    }
}

#[test]
fn contended_density_mechanisms_fill_the_server() {
    // §VI-B: under contention the density mechanisms run the server near
    // full; Two-price (bid-only selection) leaves a gap.
    let generator = WorkloadGenerator::new(scaled_params(), 6);
    let inst = generator
        .base_workload(1)
        .to_instance(Load::from_units(800.0));
    for kind in MechanismKind::density_mechanisms() {
        let out = kind.build().run_seeded(&inst, 0);
        let util = out.utilization(&inst);
        assert!(
            util > 0.9,
            "{} utilization {util:.3} too low under contention",
            kind.label()
        );
    }
    let two_price = MechanismKind::TwoPrice.build().run_seeded(&inst, 0);
    let caf = MechanismKind::Caf.build().run_seeded(&inst, 0);
    assert!(
        two_price.admission_rate() < caf.admission_rate(),
        "Two-price must admit fewer queries than the density mechanisms"
    );
}

#[test]
fn sweep_reproduces_figure4_shapes() {
    // Scaled Figure 4: admission rises with sharing; Two-price admission is
    // flat/low; at high sharing Two-price's profit overtakes the density
    // mechanisms'.
    let cfg = SweepConfig {
        sets: 2,
        seed: 9,
        degrees: vec![1, 3, 6, 12],
        capacity: 1_200.0,
        mechanisms: vec![
            MechanismKind::Caf,
            MechanismKind::CafPlus,
            MechanismKind::Cat,
            MechanismKind::CatPlus,
            MechanismKind::TwoPrice,
        ],
        params: scaled_params(),
    };
    let cells = run_sharing_sweep(&cfg);
    let get = |degree: u32, mech: &str| {
        cells
            .iter()
            .find(|c| c.degree == degree && c.mechanism == mech)
            .unwrap()
    };

    // Admission monotonicity for the density mechanisms (end points).
    for mech in ["CAF", "CAT"] {
        assert!(
            get(12, mech).admission_rate > get(1, mech).admission_rate,
            "{mech} admission must rise with sharing"
        );
    }
    // Two-price admits less than CAF everywhere.
    for degree in [1, 3, 6, 12] {
        assert!(get(degree, "Two-price").admission_rate < get(degree, "CAF").admission_rate);
    }
    // Profit crossover: CAF/CAT win at degree 1, Two-price wins at degree 12.
    assert!(get(1, "CAT").profit > get(1, "Two-price").profit * 0.5);
    assert!(get(12, "Two-price").profit > get(12, "CAT").profit);
    // CAF+ ends below CAF in profit (it gives the surplus to users).
    assert!(get(12, "CAF+").profit <= get(12, "CAF").profit + 1e-9);
    // ... and above it in user payoff.
    assert!(get(6, "CAF+").total_payoff >= get(6, "CAF").total_payoff * 0.9);
}

#[test]
fn serde_round_trips() {
    // Instances and outcomes are serde-serializable for artifact storage.
    let generator = WorkloadGenerator::new(scaled_params(), 7);
    let inst = generator
        .base_workload(0)
        .to_instance(Load::from_units(500.0));
    let json = serde_json::to_string(&inst).expect("instance serializes");
    let back: cq_admission::core::model::AuctionInstance =
        serde_json::from_str(&json).expect("instance deserializes");
    assert_eq!(back.num_queries(), inst.num_queries());
    assert_eq!(back.num_operators(), inst.num_operators());

    let out = MechanismKind::Cat.build().run_seeded(&inst, 0);
    let json = serde_json::to_string(&out).expect("outcome serializes");
    let back: cq_admission::core::outcome::Outcome =
        serde_json::from_str(&json).expect("outcome deserializes");
    assert_eq!(back.winners, out.winners);
    assert_eq!(back.profit(), out.profit());
}
