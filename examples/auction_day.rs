//! A full paper-scale auction day: the Table III workload (2000 queries,
//! Zipf bids/loads/sharing) run through every mechanism side by side.
//!
//! ```text
//! cargo run --release --example auction_day
//! cargo run --release --example auction_day -- 30 15000   # degree, capacity
//! ```

use cq_admission::core::mechanisms::{all_mechanisms, optimal_constant_price};
use cq_admission::core::metrics::Metrics;
use cq_admission::core::units::Load;
use cq_admission::workload::{WorkloadGenerator, WorkloadParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let degree: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let capacity: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(15_000.0);

    let generator = WorkloadGenerator::new(WorkloadParams::paper(), 2024);
    let inst = generator
        .sharing_sweep_at(0, Load::from_units(capacity), &[degree])
        .into_iter()
        .next()
        .expect("degree available")
        .1;

    println!(
        "Table III workload: {} queries, {} operators, max sharing degree {}, capacity {}",
        inst.num_queries(),
        inst.num_operators(),
        inst.max_degree_of_sharing(),
        capacity,
    );
    println!(
        "total demand (distinct operator load): {}\n",
        inst.total_demand()
    );

    println!(
        "{:<10} {:>9} {:>11} {:>11} {:>12} {:>9}",
        "mechanism", "profit", "admission%", "payoff", "utilization", "winners"
    );
    for mech in all_mechanisms() {
        let start = std::time::Instant::now();
        let out = mech.run_seeded(&inst, 11);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        out.validate(&inst).expect("feasible outcome");
        let m = Metrics::truthful(&inst, &out);
        println!(
            "{:<10} {:>9.0} {:>11.1} {:>11.0} {:>12.3} {:>9}  ({ms:.1} ms)",
            m.mechanism, m.profit, m.admission_rate, m.total_payoff, m.utilization, m.winners
        );
    }

    let optc = optimal_constant_price(&inst);
    println!(
        "\nOPT_C benchmark: price ${} sells {} queries for ${}",
        optc.price,
        optc.winners.len(),
        optc.profit
    );
}
