//! §VII extension: subscription categories with partitioned capacity.
//!
//! Daily, weekly, and monthly subscribers buy from separate capacity pools;
//! each pool re-auctions on its own cadence, so the composite scheme stays
//! bid-strategyproof (each per-category auction is independent).
//!
//! ```text
//! cargo run --release --example multi_period
//! ```

use cq_admission::sim::multi_period::{run_multi_period, MultiPeriodConfig};

fn main() {
    let cfg = MultiPeriodConfig::quick();
    println!(
        "simulating {} days | capacity {} | mechanism {}",
        cfg.days,
        cfg.capacity,
        cfg.mechanism.label()
    );
    for cat in &cfg.categories {
        println!(
            "  category {:<8} every {:>2} day(s), {:>2.0}% of capacity",
            cat.name,
            cat.length_days,
            cat.capacity_share * 100.0
        );
    }
    println!();

    let lines = run_multi_period(&cfg);
    println!(
        "{:>4} {:<22} {:>9} {:>11} {:>13}",
        "day", "auctions", "admitted", "revenue", "cumulative"
    );
    for l in &lines {
        println!(
            "{:>4} {:<22} {:>9} {:>11.0} {:>13.0}",
            l.day,
            l.auctions.join("+"),
            l.admitted,
            l.revenue,
            l.cumulative
        );
    }
    let weekly_boost = lines[7].revenue / lines[6].revenue.max(1.0);
    println!(
        "\nday 7 (daily+weekly re-auction) books {weekly_boost:.1}x day 6's revenue;\n\
         capacity is reclaimed and resold exactly when subscriptions expire."
    );
}
