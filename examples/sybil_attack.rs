//! Sybil attacks live (§V): fake identities against each mechanism.
//!
//! * The **fair-share attack** (Theorem 15): fakes with negligible bids
//!   sharing the attacker's operators deflate her CAF fair-share load.
//! * The **Table II attack** (Theorem 17): a crafted ε-query crowds a rival
//!   out of CAT+'s skip-fill.
//! * **CAT** (Theorem 19) survives both.
//!
//! ```text
//! cargo run --example sybil_attack
//! ```

use cq_admission::core::analysis::examples::example1;
use cq_admission::core::analysis::sybil::{attacker_payoff, fair_share_attack, table2_attack};
use cq_admission::core::mechanisms::{Caf, Cat, CatPlus, Mechanism};
use cq_admission::core::model::QueryId;

fn main() {
    // --- fair-share attack on Example 1 --------------------------------
    let inst = example1();
    let attacker = QueryId(1); // q2, the $72 bidder sharing operator A
    println!("=== Theorem 15: fair-share attack on CAF (Example 1, attacker q2) ===");
    println!("fakes  baseline-payoff  attack-payoff  fake-charges  success");
    for fakes in [1usize, 2, 4, 8] {
        let attack = fair_share_attack(&inst, attacker, fakes);
        let out = attacker_payoff(&Caf, &inst, &attack, 0);
        println!(
            "{fakes:>5}  {:>15} {:>14} {:>13} {:>8}",
            format!("${}", out.baseline_payoff),
            format!("${}", out.attack_payoff),
            format!("${}", out.fake_charges),
            if out.succeeded() { "YES" } else { "no" }
        );
    }

    println!("\n=== the same attack against CAT (Theorem 19: immune) ===");
    println!("fakes  baseline-payoff  attack-payoff  success");
    for fakes in [1usize, 4, 8] {
        let attack = fair_share_attack(&inst, attacker, fakes);
        let out = attacker_payoff(&Cat, &inst, &attack, 0);
        println!(
            "{fakes:>5}  {:>15} {:>14} {:>8}",
            format!("${}", out.baseline_payoff),
            format!("${}", out.attack_payoff),
            if out.succeeded() { "YES" } else { "no" }
        );
    }

    // --- Table II attack on CAT+ ----------------------------------------
    println!("\n=== Theorem 17 / Table II: ε-fake beats CAT+ ===");
    let (original, attack) = table2_attack();
    let catplus = CatPlus::default();
    let baseline = catplus.run_seeded(&original, 0);
    println!(
        "without the fake: winners {:?} (user 2's q1 loses, payoff $0)",
        baseline.winners
    );
    let out = attacker_payoff(&catplus, &original, &attack, 0);
    println!(
        "with fake 'user 3' (v=100ε+ε, load ε): attacker admitted = {}, \
         fake charges ${}, aggregate payoff ${}",
        out.attacker_won, out.fake_charges, out.attack_payoff,
    );
    println!(
        "attack succeeded: {} (gain ${})",
        out.succeeded(),
        out.attack_payoff.saturating_sub(out.baseline_payoff)
    );
}
