//! Quickstart: the paper's Example 1, run through every mechanism.
//!
//! Three users submit continuous queries to a DSMS with capacity 10:
//!
//! * `q1 = {A, B}` bidding $55 (loads 4 + 1),
//! * `q2 = {A, C}` bidding $72 (loads 4 + 2) — operator `A` is shared,
//! * `q3 = {D, E}` bidding $100 (loads 7 + 3).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cq_admission::prelude::*;

fn main() {
    // Build the instance exactly as in Figures 1–2.
    let mut b = InstanceBuilder::new(Load::from_units(10.0));
    let a = b.operator(Load::from_units(4.0));
    let op_b = b.operator(Load::from_units(1.0));
    let c = b.operator(Load::from_units(2.0));
    let d = b.operator(Load::from_units(7.0));
    let e = b.operator(Load::from_units(3.0));
    let q1 = b.query(Money::from_dollars(55.0), &[a, op_b]);
    let q2 = b.query(Money::from_dollars(72.0), &[a, c]);
    let q3 = b.query(Money::from_dollars(100.0), &[d, e]);
    let inst = b.build().expect("well-formed instance");

    println!("Example 1: capacity 10, operator A shared by q1 and q2\n");
    println!(
        "{:>4} {:>6} {:>12} {:>12}",
        "CQ", "bid", "total load", "fair share"
    );
    for q in [q1, q2, q3] {
        println!(
            "{:>4} {:>6} {:>12} {:>12}",
            format!("q{}", q.0 + 1),
            format!("${}", inst.bid(q)),
            format!("{}", inst.total_load(q)),
            format!("{}", inst.fair_share_load(q)),
        );
    }

    println!(
        "\n{:<10} {:>14} {:>10} {:>10} {:>10} {:>9}",
        "mechanism", "winners", "p(q1)", "p(q2)", "p(q3)", "profit"
    );
    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(Car::default()),
        Box::new(Caf),
        Box::new(CafPlus::default()),
        Box::new(Cat),
        Box::new(CatPlus::default()),
        Box::new(Gv),
        Box::new(TwoPrice::default()),
        Box::new(OptConstantPricing),
    ];
    for mech in &mechanisms {
        let out = mech.run_seeded(&inst, 1);
        out.validate(&inst).expect("every outcome is feasible");
        let winners: Vec<String> = out
            .winners
            .iter()
            .map(|w| format!("q{}", w.0 + 1))
            .collect();
        println!(
            "{:<10} {:>14} {:>10} {:>10} {:>10} {:>9}",
            mech.name(),
            winners.join(","),
            format!("${}", out.payment(q1)),
            format!("${}", out.payment(q2)),
            format!("${}", out.payment(q3)),
            format!("${}", out.profit()),
        );
    }

    println!(
        "\nThe worked payments from the paper: CAR $10/$60, CAF $30/$40,\n\
         CAT $50/$60 — note how CAR's dependence on admission-time remaining\n\
         loads lets q2 shrink her own payment by underbidding (it is the one\n\
         mechanism that is not strategyproof)."
    );
}
