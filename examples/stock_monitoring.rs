//! Stock monitoring end-to-end: the paper's §I–II scenario on the real
//! substrate.
//!
//! A for-profit DSMS center sells continuous-query processing over two hot
//! streams (stock quotes and news stories). Users submit similar-but-not-
//! identical queries — heavy operator sharing — with daily bids; the center
//! runs a CAT auction (strategyproof *and* sybil-immune), transitions the
//! shared query network to the winner set, serves a day of data, and bills.
//!
//! ```text
//! cargo run --example stock_monitoring
//! ```

use cq_admission::core::mechanisms::Cat;
use cq_admission::core::model::UserId;
use cq_admission::core::units::{Load, Money};
use cq_admission::dsms::center::{DsmsCenter, Submission};
use cq_admission::dsms::expr::Expr;
use cq_admission::dsms::plan::{AggFunc, LogicalPlan};
use cq_admission::dsms::streams::{news_schema, quote_schema, NewsStream, StockStream};
use cq_admission::dsms::types::{Tuple, Value};

const SYMBOLS: [&str; 6] = ["IBM", "AAPL", "MSFT", "ORCL", "SAP", "NVDA"];

/// "Select high-value transactions" — the shared hot operator.
fn high_value() -> LogicalPlan {
    LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))))
}

/// A user watching one symbol's high-value trades.
fn watch_symbol(symbol: &str) -> LogicalPlan {
    high_value().filter(Expr::col(0).eq(Expr::lit(Value::str(symbol))))
}

/// Join high-value trades with earnings news on the company name (§II's
/// three-operator example query).
fn trades_with_news() -> LogicalPlan {
    let earnings =
        LogicalPlan::source("news").filter(Expr::col(1).eq(Expr::lit(Value::str("earnings"))));
    high_value().join(earnings, 0, 0, 5_000)
}

/// Per-symbol average price over tumbling minutes, on the shared selection.
fn minute_averages() -> LogicalPlan {
    high_value().aggregate(Some(0), AggFunc::Avg, 1, 60_000)
}

fn calibration_sample() -> Vec<(String, Tuple)> {
    let mut sample: Vec<(String, Tuple)> = StockStream::new(&SYMBOLS, 2, 99)
        .next_batch(2_000)
        .into_iter()
        .map(|t| ("quotes".to_string(), t))
        .collect();
    sample.extend(
        NewsStream::new(&SYMBOLS, 20, 98)
            .next_batch(200)
            .into_iter()
            .map(|t| ("news".to_string(), t)),
    );
    sample.sort_by_key(|(_, t)| t.ts);
    sample
}

fn main() {
    // A deliberately tight capacity so the auction has teeth.
    let mut center = DsmsCenter::new(Load::from_units(3.0), Box::new(Cat));
    center.register_stream("quotes", quote_schema());
    center.register_stream("news", news_schema());

    // Eight users, heavily shared plans, bids by how much they value them.
    let submissions = vec![
        Submission {
            user: UserId(0),
            bid: Money::from_dollars(80.0),
            plan: trades_with_news(),
        },
        Submission {
            user: UserId(1),
            bid: Money::from_dollars(65.0),
            plan: minute_averages(),
        },
        Submission {
            user: UserId(2),
            bid: Money::from_dollars(50.0),
            plan: watch_symbol("IBM"),
        },
        Submission {
            user: UserId(3),
            bid: Money::from_dollars(45.0),
            plan: watch_symbol("AAPL"),
        },
        Submission {
            user: UserId(4),
            bid: Money::from_dollars(40.0),
            plan: high_value(),
        },
        Submission {
            user: UserId(5),
            bid: Money::from_dollars(35.0),
            plan: trades_with_news(),
        },
        Submission {
            user: UserId(6),
            bid: Money::from_dollars(20.0),
            plan: minute_averages(),
        },
        Submission {
            user: UserId(7),
            bid: Money::from_dollars(10.0),
            plan: watch_symbol("NVDA"),
        },
    ];

    let record = center
        .run_auction(&submissions, &calibration_sample())
        .expect("plans are valid");

    println!(
        "=== auction day {} under {} ===",
        record.day, record.mechanism
    );
    println!(
        "admitted load {} of capacity {} ({:.1}% utilization)\n",
        record.admitted_load,
        Load::from_units(3.0),
        record.utilization * 100.0
    );
    println!(
        "{:<6} {:>7} {:>9} {:>9}  query",
        "user", "bid", "admitted", "payment"
    );
    for d in &record.decisions {
        let kind = match d.submission {
            0 | 5 => "trades ⋈ earnings-news",
            1 | 6 => "per-symbol minute averages",
            4 => "all high-value trades",
            _ => "single-symbol watcher",
        };
        println!(
            "{:<6} {:>7} {:>9} {:>9}  {kind}",
            format!("u{}", d.user.0),
            format!("${}", submissions[d.submission].bid),
            if d.admitted { "yes" } else { "no" },
            format!("${:.2}", d.payment),
        );
    }
    println!("\nday profit: ${:.2}", record.profit);

    // Serve a day of market data through the admitted network.
    let mut quotes = StockStream::new(&SYMBOLS, 2, 7);
    let mut news = NewsStream::new(&SYMBOLS, 20, 8);
    center.process("quotes", quotes.next_batch(5_000));
    center.process("news", news.next_batch(500));

    println!("\n=== serving day: outputs per admitted query ===");
    let cqs: Vec<_> = record
        .decisions
        .iter()
        .filter_map(|d| d.cq.map(|cq| (d.user, cq)))
        .collect();
    for (user, cq) in cqs {
        let outputs = center.take_outputs(cq);
        println!("u{}: {} result tuples", user.0, outputs.len());
    }

    let shared = center.engine().network();
    println!(
        "\nnetwork: {} physical operators serve {} queries (max sharing degree {})",
        shared.num_nodes(),
        shared.num_queries(),
        shared.max_degree_of_sharing()
    );
    println!("total revenue to date: ${:.2}", center.total_revenue());
}
