//! Stress and lifecycle tests of the shard-per-stream parallel executor:
//! a repeated-seed concurrency soak (no lost or duplicated tuples under
//! shards = 4), engine lifecycle edges that previously only ran
//! single-threaded (`remove_query` mid-stream *and mid-window with keyed
//! per-shard state*, transition held-tuple replay through the keyed plan,
//! `finish` flushing per-shard window state), the columnar kill switch
//! reaching pooled workers, and the persistent pool's reuse guarantee
//! (zero spawns after warmup — flushes wake parked workers).

use cqac_dsms::engine::DsmsEngine;
use cqac_dsms::expr::Expr;
use cqac_dsms::plan::{AggFunc, LogicalPlan};
use cqac_dsms::types::{work, DataType, Field, Schema, Tuple, Value};

const SYMS: [&str; 4] = ["IBM", "AAPL", "MSFT", "ORCL"];

fn quote_schema() -> Schema {
    Schema::new(vec![
        Field::new("symbol", DataType::Str),
        Field::new("price", DataType::Float),
    ])
}

fn news_schema() -> Schema {
    Schema::new(vec![
        Field::new("symbol", DataType::Str),
        Field::new("headline", DataType::Str),
    ])
}

fn engine() -> DsmsEngine {
    let mut e = DsmsEngine::new();
    e.register_stream("quotes", quote_schema());
    e.register_stream("news", news_schema());
    e
}

/// A tiny deterministic LCG (numerical recipes constants) so the soak is
/// reproducible without the proptest harness.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A randomized interleaved two-stream feed, sorted by event time.
fn random_feed(rng: &mut Lcg, len: usize) -> Vec<(String, Tuple)> {
    let mut feed: Vec<(String, Tuple)> = (0..len)
        .map(|_| {
            let ts = rng.below(400);
            let sym = SYMS[rng.below(4) as usize];
            if rng.below(4) == 0 {
                (
                    "news".to_string(),
                    Tuple::new(ts, vec![Value::str(sym), Value::str("h")]),
                )
            } else {
                (
                    "quotes".to_string(),
                    Tuple::new(
                        ts,
                        vec![Value::str(sym), Value::Float(rng.below(200) as f64)],
                    ),
                )
            }
        })
        .collect();
    feed.sort_by_key(|(_, t)| t.ts);
    feed
}

/// A small shared network covering every merge-relevant shape: a filter
/// prefix with two sinks, a fused chain, an aggregate behind the shared
/// filter, and a quotes⋈news join.
fn plans() -> Vec<LogicalPlan> {
    let high =
        LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))));
    vec![
        high.clone(),
        high.clone(),
        high.clone()
            .filter(Expr::col(0).eq(Expr::lit(Value::str("IBM"))))
            .project(vec![("price".to_string(), Expr::col(1))]),
        high.clone().aggregate(Some(0), AggFunc::Count, 0, 50),
        high.join(LogicalPlan::source("news"), 0, 0, 40),
    ]
}

struct RunResult {
    outputs: Vec<Vec<Tuple>>,
    tuples_processed: u64,
    output_rows: usize,
    watermark: u64,
}

fn run(feed: &[(String, Tuple)], shards: usize, hash_key: bool, chunk: usize) -> RunResult {
    let mut e = engine().with_max_batch_size(16).with_shards(shards);
    if hash_key {
        e.set_shard_key("quotes", 0).unwrap();
        e.set_shard_key("news", 0).unwrap();
    }
    let cqs: Vec<_> = plans()
        .into_iter()
        .map(|p| e.add_query(p).unwrap())
        .collect();
    let mut watermark = 0;
    for slice in feed.chunks(chunk.max(1)) {
        e.push_batch(slice.iter().cloned());
        // The watermark is monotone across every partial run (inside the
        // engine, debug_asserts additionally pin that no node and no shard
        // ever runs ahead of the merged watermark).
        assert!(e.watermark() >= watermark, "watermark regressed");
        watermark = e.watermark();
    }
    e.finish();
    let output_rows = cqs.iter().map(|&cq| e.output_len(cq)).sum();
    RunResult {
        outputs: cqs.iter().map(|&cq| e.take_outputs(cq)).collect(),
        tuples_processed: e.tuples_processed(),
        output_rows,
        watermark: e.watermark(),
    }
}

/// ≥100 randomized runs at shards = 4 against the single-threaded engine:
/// identical output sequences for every query, identical
/// `tuples_processed` (no lost or duplicated per-row work), identical
/// buffered `output_len`, identical watermarks. Debug assertions (active
/// here) additionally check watermark monotonicity and merge-tag
/// consistency inside the engine on every run.
#[test]
fn soak_shards4_no_lost_or_duplicated_tuples() {
    for seed in 0..100u64 {
        let mut rng = Lcg(seed.wrapping_mul(0x9e37_79b9).wrapping_add(seed + 1));
        let len = 40 + rng.below(160) as usize;
        let chunk = 1 + rng.below(64) as usize;
        let hash_key = rng.below(2) == 1;
        let feed = random_feed(&mut rng, len);

        let reference = run(&feed, 1, false, chunk);
        let sharded = run(&feed, 4, hash_key, chunk);
        assert_eq!(
            sharded.output_rows, reference.output_rows,
            "seed {seed}: buffered output rows diverged"
        );
        assert_eq!(
            sharded.tuples_processed, reference.tuples_processed,
            "seed {seed}: per-row work diverged"
        );
        assert_eq!(
            sharded.watermark, reference.watermark,
            "seed {seed}: watermark diverged"
        );
        for (q, (got, want)) in sharded.outputs.iter().zip(&reference.outputs).enumerate() {
            assert_eq!(got, want, "seed {seed}: query {q} outputs diverged");
        }
    }
}

/// `remove_query` mid-stream under sharding: the removal's automatic
/// transition must drain the shard workers, and the surviving query's
/// outputs must match a single-threaded engine doing the same dance.
#[test]
fn remove_query_mid_stream_under_sharding() {
    let run = |shards: usize| {
        let mut e = engine().with_max_batch_size(8).with_shards(shards);
        e.set_shard_key("quotes", 0).unwrap();
        let high =
            LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))));
        let keep = e.add_query(high.clone()).unwrap();
        let victim = e
            .add_query(high.filter(Expr::col(0).eq(Expr::lit(Value::str("IBM")))))
            .unwrap();
        let mut rng = Lcg(7);
        let feed = random_feed(&mut rng, 120);
        for (i, slice) in feed.chunks(10).enumerate() {
            if i == 6 {
                e.remove_query(victim);
            }
            e.push_batch(slice.iter().cloned());
        }
        e.finish();
        e.take_outputs(keep)
    };
    assert_eq!(run(1), run(4), "shared prefix must survive the removal");
}

/// Transition held-tuple replay under sharding: batches held at the
/// connection points while the network is modified must replay through
/// the shard workers in arrival order, ahead of newly arriving data.
#[test]
fn transition_held_replay_under_sharding() {
    let run = |shards: usize| {
        let mut e = engine().with_max_batch_size(8).with_shards(shards);
        e.set_shard_key("quotes", 0).unwrap();
        let high =
            LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))));
        let cq = e.add_query(high).unwrap();
        let mut rng = Lcg(11);
        let feed = random_feed(&mut rng, 150);
        let (before, rest) = feed.split_at(50);
        let (held, after) = rest.split_at(50);
        e.push_batch(before.iter().cloned());
        e.begin_transition();
        for (s, t) in held {
            e.push(s, t.clone());
        }
        let other = e
            .add_query(
                LogicalPlan::source("quotes")
                    .filter(Expr::col(0).eq(Expr::lit(Value::str("MSFT")))),
            )
            .unwrap();
        e.remove_query(other);
        assert!(e.held_tuples() > 0, "tuples are held mid-transition");
        e.end_transition();
        e.push_batch(after.iter().cloned());
        e.finish();
        e.take_outputs(cq)
    };
    assert_eq!(run(1), run(4), "held replay must be shard-count invariant");
}

/// `finish()` under sharding: windowed state fed by every shard must
/// flush, including stacked stateful operators behind a sharded prefix.
#[test]
fn finish_flushes_all_shards() {
    let run = |shards: usize| {
        let mut e = engine().with_max_batch_size(8).with_shards(shards);
        e.set_shard_key("quotes", 0).unwrap();
        let cq = e
            .add_query(
                LogicalPlan::source("quotes")
                    .filter(Expr::col(1).gt(Expr::lit(Value::Float(20.0))))
                    .aggregate(Some(0), AggFunc::Count, 0, 100)
                    .aggregate(None, AggFunc::Max, 2, 1000),
            )
            .unwrap();
        let mut rng = Lcg(13);
        e.push_batch(random_feed(&mut rng, 200));
        e.finish();
        e.take_outputs(cq)
    };
    let reference = run(1);
    assert!(!reference.is_empty(), "the nested day result must exist");
    assert_eq!(run(1), run(4));
}

/// The columnar kill switch must reach worker shards: the switch is
/// thread-local, so the shard spawn path hands the spawning thread's
/// setting to every worker (and folds the workers' row-eval counters
/// back). Before that routing existed, sharded runs silently kept the
/// columnar kernels on.
#[test]
fn columnar_kill_switch_reaches_worker_shards() {
    let feed = {
        let mut rng = Lcg(17);
        random_feed(&mut rng, 150)
    };
    let run = |columnar: bool| {
        cqac_dsms::ops::with_columnar_kernels(columnar, || {
            let mut e = engine().with_max_batch_size(8).with_shards(4);
            e.set_shard_key("quotes", 0).unwrap();
            let cq = e
                .add_query(
                    LogicalPlan::source("quotes")
                        .filter(Expr::col(1).gt(Expr::lit(Value::Float(50.0))))
                        .project(vec![("price".to_string(), Expr::col(1))]),
                )
                .unwrap();
            work::reset();
            e.push_batch(feed.iter().cloned());
            let snap = work::snapshot();
            (e.take_outputs(cq), snap)
        })
    };
    let (columnar_out, columnar_work) = run(true);
    let (row_out, row_work) = run(false);
    assert_eq!(columnar_out, row_out, "kernel mode must not change results");
    assert!(
        columnar_work.shard_batches > 0 && row_work.shard_batches > 0,
        "both runs went through the shard workers"
    );
    assert_eq!(
        columnar_work.row_evals, 0,
        "columnar sharded runs never evaluate per row"
    );
    assert!(
        row_work.row_evals > 0,
        "with_columnar_kernels(false, …) must reach the workers"
    );
}

/// Disabled columnar kernels count identical row-eval totals at shards 1
/// and 4: worker-thread counters fold back into the control thread.
#[test]
fn worker_row_work_counters_fold_back_deterministically() {
    let feed = {
        let mut rng = Lcg(19);
        random_feed(&mut rng, 120)
    };
    let evals_at = |shards: usize| {
        cqac_dsms::ops::with_columnar_kernels(false, || {
            let mut e = engine().with_max_batch_size(8).with_shards(shards);
            e.set_shard_key("quotes", 0).unwrap();
            e.add_query(
                LogicalPlan::source("quotes")
                    .filter(Expr::col(1).gt(Expr::lit(Value::Float(50.0)))),
            )
            .unwrap();
            work::reset();
            e.push_batch(feed.iter().cloned());
            work::snapshot().row_evals
        })
    };
    let single = evals_at(1);
    assert!(single > 0);
    assert_eq!(
        single,
        evals_at(4),
        "absorbed counters match single-threaded"
    );
}

/// A keyed-stateful shared network: a symbol-grouped aggregate and a
/// symbol-keyed join behind the shared high filter — with the symbol shard
/// key set, both stateful operators execute *inside* the shards.
fn keyed_stateful_plans() -> Vec<LogicalPlan> {
    let high = LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(20.0))));
    vec![
        high.clone().aggregate(Some(0), AggFunc::Count, 0, 50),
        high.join(LogicalPlan::source("news"), 0, 0, 40),
    ]
}

/// Stateful rows really run on the shard workers (merge barrier past the
/// join/aggregate), selection vectors push down into them instead of
/// densifying, and the worker pool spawns exactly once per shard.
#[test]
fn keyed_stateful_rows_run_on_shards_with_pushdown() {
    let mut e = engine().with_max_batch_size(8).with_shards(4);
    e.set_shard_key("quotes", 0).unwrap();
    e.set_shard_key("news", 0).unwrap();
    let cqs: Vec<_> = keyed_stateful_plans()
        .into_iter()
        .map(|p| e.add_query(p).unwrap())
        .collect();
    let mut rng = Lcg(23);
    work::reset();
    e.push_batch(random_feed(&mut rng, 300));
    let snap = work::snapshot();
    assert!(
        snap.keyed_shard_rows > 0,
        "stateful rows must run on shards: {snap:?}"
    );
    assert!(
        snap.selection_pushdown_rows > 0,
        "the filter's selection must push into the stateful ops: {snap:?}"
    );
    assert_eq!(snap.pool_spawns, 4, "one worker per shard: {snap:?}");
    assert_eq!(
        snap.pool_wakeups, 4,
        "one job per shard per flush: {snap:?}"
    );
    assert_eq!(snap.batch_deep_clones, 0, "COW columns: nobody copies");
    e.finish();
    assert!(cqs.iter().map(|&cq| e.output_len(cq)).sum::<usize>() > 0);
}

/// The pool-reuse guarantee: after the warmup flush spawns one worker per
/// shard, further flushes only *wake* parked workers — zero new spawns.
#[test]
fn pool_reuse_zero_spawns_after_warmup() {
    let mut e = engine().with_max_batch_size(8).with_shards(4);
    e.set_shard_key("quotes", 0).unwrap();
    e.set_shard_key("news", 0).unwrap();
    for p in keyed_stateful_plans() {
        e.add_query(p).unwrap();
    }
    let mut rng = Lcg(29);
    let feed = random_feed(&mut rng, 400);
    let (warmup, rest) = feed.split_at(40);
    work::reset();
    e.push_batch(warmup.iter().cloned());
    let after_warmup = work::snapshot();
    assert_eq!(after_warmup.pool_spawns, 4, "warmup spawns one per shard");
    let mut flushes = 0u64;
    for slice in rest.chunks(40) {
        e.push_batch(slice.iter().cloned());
        flushes += 1;
    }
    let snap = work::snapshot();
    assert_eq!(
        snap.pool_spawns, 4,
        "zero spawns after warmup: every flush reuses parked workers"
    );
    assert_eq!(
        snap.pool_wakeups,
        after_warmup.pool_wakeups + flushes * 4,
        "each flush wakes each shard's worker exactly once"
    );
    // The morsel scheduler runs on the same parked workers: morsels were
    // executed, every executed morsel is either popped from the owner's
    // deque or stolen from a victim's tail, and steal sweeps are bounded
    // (at most shards-1 misses per grab plus one parking sweep per
    // wakeup) — morsel-driven flushes never spawn or spin.
    assert!(
        snap.morsels_executed > 0,
        "sharded flushes execute as morsels: {snap:?}"
    );
    assert!(
        snap.morsels_stolen <= snap.morsels_executed,
        "steals are a subset of executed morsels: {snap:?}"
    );
    assert!(
        snap.steal_misses <= (snap.morsels_executed + snap.pool_wakeups) * 3,
        "steal sweeps are bounded — no spinning on empty deques: {snap:?}"
    );
}

/// A zipf-flavored hot-key soak at shards = 4: ~90% of rows carry one
/// symbol, so hash partitioning floods one home shard. Work stealing must
/// rebalance execution (stolen morsels observed at fine granularity)
/// while outputs stay byte-identical to single-threaded — and identical
/// with stealing disabled.
#[test]
fn skewed_key_soak_shards4_stays_deterministic() {
    let feed = |rng: &mut Lcg, len: usize| -> Vec<(String, Tuple)> {
        let mut feed: Vec<(String, Tuple)> = (0..len)
            .map(|_| {
                // 90% hot symbol, the rest spread over the other three.
                let sym = if rng.below(10) < 9 {
                    SYMS[0]
                } else {
                    SYMS[1 + rng.below(3) as usize]
                };
                let ts = rng.below(400);
                (
                    "quotes".to_string(),
                    Tuple::new(
                        ts,
                        vec![Value::str(sym), Value::Float(rng.below(200) as f64)],
                    ),
                )
            })
            .collect();
        feed.sort_by_key(|(_, t)| t.ts);
        feed
    };
    let run = |feed: &[(String, Tuple)], shards: usize, stealing: bool| {
        let mut e = engine()
            .with_max_batch_size(8)
            .with_shards(shards)
            .with_morsel_batches(1)
            .with_stealing(stealing);
        e.set_shard_key("quotes", 0).unwrap();
        e.set_shard_key("news", 0).unwrap();
        let cqs: Vec<_> = keyed_stateful_plans()
            .into_iter()
            .map(|p| e.add_query(p).unwrap())
            .collect();
        work::reset();
        for slice in feed.chunks(40) {
            e.push_batch(slice.iter().cloned());
        }
        let snap = work::snapshot();
        e.finish();
        let outputs: Vec<_> = cqs.into_iter().map(|cq| e.take_outputs(cq)).collect();
        (outputs, snap)
    };
    for seed in 0..8u64 {
        let mut rng = Lcg(seed.wrapping_mul(0x5851_f42d).wrapping_add(43));
        let feed = feed(&mut rng, 320);
        let (reference, _) = run(&feed, 1, true);
        assert!(
            reference.iter().any(|out| !out.is_empty()),
            "seed {seed}: the soak must produce output"
        );
        let (stolen_out, snap) = run(&feed, 4, true);
        let (fair_out, _) = run(&feed, 4, false);
        assert_eq!(
            stolen_out, reference,
            "seed {seed}: stealing must not change outputs"
        );
        assert_eq!(
            fair_out, reference,
            "seed {seed}: no-steal sharding must not change outputs"
        );
        assert!(
            snap.morsels_stolen > 0,
            "seed {seed}: idle workers must steal the hot shard's backlog: {snap:?}"
        );
    }
}

/// `remove_query` mid-window under keyed stateful sharding: per-shard
/// aggregate state of the removed query is discarded with its node, and
/// the surviving keyed-stateful query's windows are unaffected.
#[test]
fn remove_query_mid_window_under_keyed_sharding() {
    let run = |shards: usize| {
        let mut e = engine().with_max_batch_size(8).with_shards(shards);
        e.set_shard_key("quotes", 0).unwrap();
        e.set_shard_key("news", 0).unwrap();
        let keep = e
            .add_query(
                LogicalPlan::source("quotes")
                    .filter(Expr::col(1).gt(Expr::lit(Value::Float(20.0))))
                    .aggregate(Some(0), AggFunc::Count, 0, 50),
            )
            .unwrap();
        let victim = e
            .add_query(LogicalPlan::source("quotes").aggregate(Some(0), AggFunc::Avg, 1, 70))
            .unwrap();
        let mut rng = Lcg(31);
        let feed = random_feed(&mut rng, 200);
        for (i, slice) in feed.chunks(20).enumerate() {
            if i == 4 {
                // Mid-stream, with windows open on every shard.
                e.remove_query(victim);
            }
            e.push_batch(slice.iter().cloned());
        }
        e.finish();
        e.take_outputs(keep)
    };
    let reference = run(1);
    assert!(!reference.is_empty());
    assert_eq!(run(1), run(4), "removal must not disturb surviving windows");
}

/// Transition held-tuple replay under keyed stateful sharding: batches
/// held while the network is modified replay through the keyed plan (and
/// its per-shard state) in arrival order, ahead of new data.
#[test]
fn transition_held_replay_under_keyed_sharding() {
    let run = |shards: usize| {
        let mut e = engine().with_max_batch_size(8).with_shards(shards);
        e.set_shard_key("quotes", 0).unwrap();
        e.set_shard_key("news", 0).unwrap();
        let cqs: Vec<_> = keyed_stateful_plans()
            .into_iter()
            .map(|p| e.add_query(p).unwrap())
            .collect();
        let mut rng = Lcg(37);
        let feed = random_feed(&mut rng, 240);
        let (before, rest) = feed.split_at(80);
        let (held, after) = rest.split_at(80);
        e.push_batch(before.iter().cloned());
        e.begin_transition();
        for (s, t) in held {
            e.push(s, t.clone());
        }
        let other = e
            .add_query(
                LogicalPlan::source("quotes")
                    .filter(Expr::col(0).eq(Expr::lit(Value::str("MSFT")))),
            )
            .unwrap();
        e.remove_query(other);
        assert!(e.held_tuples() > 0, "tuples are held mid-transition");
        e.end_transition();
        e.push_batch(after.iter().cloned());
        e.finish();
        cqs.into_iter()
            .map(|cq| e.take_outputs(cq))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(4), "held replay must be shard-count invariant");
}

/// `finish()` under keyed stateful sharding: per-shard window state on
/// every shard — including shards that received few rows — flushes through
/// the control thread's force-close, identically to single-threaded.
#[test]
fn finish_flushes_per_shard_window_state() {
    let run = |shards: usize| {
        let mut e = engine().with_max_batch_size(8).with_shards(shards);
        e.set_shard_key("quotes", 0).unwrap();
        e.set_shard_key("news", 0).unwrap();
        let cq = e
            .add_query(
                LogicalPlan::source("quotes")
                    .filter(Expr::col(1).gt(Expr::lit(Value::Float(10.0))))
                    .aggregate(Some(0), AggFunc::Count, 0, 1000),
            )
            .unwrap();
        let mut rng = Lcg(41);
        e.push_batch(random_feed(&mut rng, 150));
        assert_eq!(e.output_len(cq), 0, "the wide window is still open");
        e.finish();
        e.take_outputs(cq)
    };
    let reference = run(1);
    assert!(!reference.is_empty(), "finish must flush open windows");
    assert_eq!(run(1), run(4));
}
