//! Property-based tests of the stream engine against reference
//! implementations, plus the sharing- and transition-correctness
//! guarantees the paper's system model assumes (§II).

use cqac_dsms::engine::DsmsEngine;
use cqac_dsms::expr::Expr;
use cqac_dsms::plan::{AggFunc, LogicalPlan};
use cqac_dsms::types::{DataType, Field, Schema, Tuple, Value};
use proptest::prelude::*;

fn quote_schema() -> Schema {
    Schema::new(vec![
        Field::new("symbol", DataType::Str),
        Field::new("price", DataType::Float),
    ])
}

fn news_schema() -> Schema {
    Schema::new(vec![
        Field::new("symbol", DataType::Str),
        Field::new("headline", DataType::Str),
    ])
}

const SYMS: [&str; 3] = ["IBM", "AAPL", "MSFT"];

fn quote(ts: u64, sym_idx: usize, price_cents: u32) -> Tuple {
    Tuple::new(
        ts,
        vec![
            Value::str(SYMS[sym_idx % SYMS.len()]),
            Value::Float(f64::from(price_cents) / 100.0),
        ],
    )
}

fn news(ts: u64, sym_idx: usize, tag: u8) -> Tuple {
    Tuple::new(
        ts,
        vec![
            Value::str(SYMS[sym_idx % SYMS.len()]),
            Value::str(format!("h{tag}")),
        ],
    )
}

/// Strategy: a sorted event-time quote stream.
fn quote_stream(max_len: usize) -> impl Strategy<Value = Vec<Tuple>> {
    proptest::collection::vec((0u64..500, 0usize..3, 1u32..30_000), 1..max_len).prop_map(
        |mut raw| {
            raw.sort_by_key(|(ts, _, _)| *ts);
            raw.into_iter().map(|(ts, s, p)| quote(ts, s, p)).collect()
        },
    )
}

fn engine() -> DsmsEngine {
    let mut e = DsmsEngine::new();
    e.register_stream("quotes", quote_schema());
    e.register_stream("news", news_schema());
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Filter ≡ the obvious reference: tuples whose price exceeds the
    /// threshold, in order.
    #[test]
    fn filter_matches_reference(stream in quote_stream(80), threshold in 1u32..30_000) {
        let t = f64::from(threshold) / 100.0;
        let mut e = engine();
        let cq = e
            .add_query(
                LogicalPlan::source("quotes")
                    .filter(Expr::col(1).gt(Expr::lit(Value::Float(t)))),
            )
            .unwrap();
        e.push_batch(stream.iter().cloned().map(|tp| ("quotes".to_string(), tp)));
        let got = e.take_outputs(cq);
        let expected: Vec<Tuple> = stream
            .iter()
            .filter(|tp| tp.values[1].as_f64().unwrap() > t)
            .cloned()
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Windowed join ≡ nested-loop reference over (quote, news) pairs with
    /// equal symbols and |Δts| ≤ window.
    #[test]
    fn join_matches_nested_loop(
        quotes in quote_stream(40),
        raw_news in proptest::collection::vec((0u64..500, 0usize..3, 0u8..4), 1..40),
        window in 1u64..100,
    ) {
        let mut news_tuples: Vec<Tuple> =
            raw_news.into_iter().map(|(ts, s, t)| news(ts, s, t)).collect();
        news_tuples.sort_by_key(|t| t.ts);

        let mut e = engine();
        let cq = e
            .add_query(
                LogicalPlan::source("quotes").join(LogicalPlan::source("news"), 0, 0, window),
            )
            .unwrap();
        // Interleave by timestamp, as a real feed would.
        let mut feed: Vec<(String, Tuple)> = quotes
            .iter()
            .cloned()
            .map(|t| ("quotes".to_string(), t))
            .chain(news_tuples.iter().cloned().map(|t| ("news".to_string(), t)))
            .collect();
        feed.sort_by_key(|(_, t)| t.ts);
        e.push_batch(feed);

        let mut got = e.take_outputs(cq);
        let mut expected = Vec::new();
        for q in &quotes {
            for n in &news_tuples {
                if q.values[0] == n.values[0] && q.ts.abs_diff(n.ts) <= window {
                    let mut vals = q.values.clone();
                    vals.extend(n.values.iter().cloned());
                    expected.push(Tuple::new(q.ts.max(n.ts), vals));
                }
            }
        }
        let key = |t: &Tuple| (t.ts, format!("{:?}", t.values));
        got.sort_by_key(key);
        expected.sort_by_key(key);
        prop_assert_eq!(got, expected);
    }

    /// Tumbling count ≡ bucket counting, after finish().
    #[test]
    fn aggregate_count_matches_reference(stream in quote_stream(80), window in 1u64..200) {
        let mut e = engine();
        let cq = e
            .add_query(LogicalPlan::source("quotes").aggregate(None, AggFunc::Count, 0, window))
            .unwrap();
        e.push_batch(stream.iter().cloned().map(|t| ("quotes".to_string(), t)));
        e.finish();
        let got: Vec<(u64, i64)> = e
            .take_outputs(cq)
            .into_iter()
            .map(|t| (t.ts, t.values[1].as_int().unwrap()))
            .collect();

        let mut buckets = std::collections::BTreeMap::new();
        for t in &stream {
            *buckets.entry(t.ts - t.ts % window).or_insert(0i64) += 1;
        }
        let expected: Vec<(u64, i64)> =
            buckets.into_iter().map(|(start, n)| (start + window, n)).collect();
        prop_assert_eq!(got, expected);
    }

    /// Shared execution is observationally equivalent to isolated
    /// execution: a query's outputs don't change because someone else
    /// registered the same (or an overlapping) plan.
    #[test]
    fn sharing_is_observationally_transparent(
        stream in quote_stream(60),
        threshold in 1u32..30_000,
    ) {
        let t = f64::from(threshold) / 100.0;
        let plan = LogicalPlan::source("quotes")
            .filter(Expr::col(1).gt(Expr::lit(Value::Float(t))));
        let agg = plan.clone().aggregate(Some(0), AggFunc::Count, 0, 50);

        // Isolated: the aggregate alone.
        let mut isolated = engine();
        let iso_cq = isolated.add_query(agg.clone()).unwrap();
        isolated.push_batch(stream.iter().cloned().map(|t| ("quotes".to_string(), t)));
        isolated.finish();

        // Shared: the same aggregate next to two copies of the base filter.
        let mut shared = engine();
        shared.add_query(plan.clone()).unwrap();
        let shared_cq = shared.add_query(agg).unwrap();
        shared.add_query(plan).unwrap();
        shared.push_batch(stream.iter().cloned().map(|t| ("quotes".to_string(), t)));
        shared.finish();

        prop_assert_eq!(isolated.take_outputs(iso_cq), shared.take_outputs(shared_cq));
    }

    /// Transition correctness (§II): holding tuples at connection points
    /// while the network is modified neither loses nor duplicates results
    /// for a continuing query.
    #[test]
    fn transition_preserves_continuing_queries(
        stream in quote_stream(60),
        cut in 0usize..60,
        threshold in 1u32..30_000,
    ) {
        let t = f64::from(threshold) / 100.0;
        let watched = LogicalPlan::source("quotes")
            .filter(Expr::col(1).gt(Expr::lit(Value::Float(t))));

        // Reference run: no transition at all.
        let mut reference = engine();
        let ref_cq = reference.add_query(watched.clone()).unwrap();
        reference.push_batch(stream.iter().cloned().map(|t| ("quotes".to_string(), t)));

        // Transitioned run: at `cut`, hold, add and remove an unrelated
        // query, release.
        let mut subject = engine();
        let sub_cq = subject.add_query(watched).unwrap();
        let cut = cut.min(stream.len());
        for (i, tuple) in stream.iter().enumerate() {
            if i == cut {
                subject.begin_transition();
                let other = subject
                    .add_query(
                        LogicalPlan::source("quotes")
                            .filter(Expr::col(0).eq(Expr::lit(Value::str("MSFT")))),
                    )
                    .unwrap();
                subject.remove_query(other);
                subject.end_transition();
            }
            subject.push("quotes", tuple.clone());
        }
        subject.run_until_quiescent();

        prop_assert_eq!(reference.take_outputs(ref_cq), subject.take_outputs(sub_cq));
    }

    /// Tuples held during a transition are all delivered on release, in
    /// arrival order.
    #[test]
    fn held_tuples_replay_in_order(stream in quote_stream(40)) {
        let mut e = engine();
        let cq = e.add_query(LogicalPlan::source("quotes")).unwrap();
        e.begin_transition();
        for t in &stream {
            e.push("quotes", t.clone());
        }
        prop_assert_eq!(e.held_tuples(), stream.len());
        prop_assert_eq!(e.output_len(cq), 0);
        e.end_transition();
        prop_assert_eq!(e.take_outputs(cq), stream);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sliding-window count ≡ the per-window reference: every aligned window
    /// start gets the count of tuples it covers.
    #[test]
    fn sliding_count_matches_reference(
        stream in quote_stream(60),
        window_mult in 2u64..6,
        slide in 1u64..50,
    ) {
        let window = slide * window_mult;
        let mut e = engine();
        let cq = e
            .add_query(LogicalPlan::source("quotes").sliding_aggregate(
                None,
                AggFunc::Count,
                0,
                window,
                slide,
            ))
            .unwrap();
        e.push_batch(stream.iter().cloned().map(|t| ("quotes".to_string(), t)));
        e.finish();
        let got: std::collections::BTreeMap<u64, i64> = e
            .take_outputs(cq)
            .into_iter()
            .map(|t| (t.ts, t.values[1].as_int().unwrap()))
            .collect();

        let mut expected = std::collections::BTreeMap::new();
        for t in &stream {
            let last_start = t.ts - t.ts % slide;
            let mut start = last_start;
            loop {
                *expected.entry(start + window).or_insert(0i64) += 1;
                match start.checked_sub(slide) {
                    Some(prev) if prev + window > t.ts => start = prev,
                    _ => break,
                }
            }
        }
        prop_assert_eq!(got, expected);
    }

    /// A tumbling window is the slide == window special case: both plan
    /// spellings produce identical outputs (and share one operator).
    #[test]
    fn tumbling_equals_sliding_with_full_slide(stream in quote_stream(60), window in 1u64..100) {
        let mut e = engine();
        let tumbling = e
            .add_query(LogicalPlan::source("quotes").aggregate(None, AggFunc::Count, 0, window))
            .unwrap();
        let sliding = e
            .add_query(LogicalPlan::source("quotes").sliding_aggregate(
                None,
                AggFunc::Count,
                0,
                window,
                window,
            ))
            .unwrap();
        prop_assert_eq!(e.network().num_nodes(), 1, "identical signatures must share");
        e.push_batch(stream.iter().cloned().map(|t| ("quotes".to_string(), t)));
        e.finish();
        prop_assert_eq!(e.take_outputs(tumbling), e.take_outputs(sliding));
    }
}

/// Number of plan shapes [`equivalence_plan`] covers.
const EQUIVALENCE_KINDS: usize = 8;

/// Builds the plan under test for the scalar-vs-batched property: `kind`
/// selects the operator shape, the remaining parameters its knobs. Every
/// operator of the engine is covered (filter, project, windowed join,
/// tumbling aggregate, sliding aggregate, union), plus stateless chains
/// that exercise the fusion pass (filter→filter→project, project→project
/// feeding an aggregate).
fn equivalence_plan(kind: usize, thresh: u32, window: u64, slide: u64) -> LogicalPlan {
    let t = f64::from(thresh) / 100.0;
    let high = LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(t))));
    match kind % EQUIVALENCE_KINDS {
        0 => high,
        1 => LogicalPlan::source("quotes").project(vec![
            ("symbol".to_string(), Expr::col(0)),
            (
                "doubled".to_string(),
                Expr::Arith(
                    cqac_dsms::expr::ArithOp::Add,
                    Box::new(Expr::col(1)),
                    Box::new(Expr::col(1)),
                ),
            ),
        ]),
        2 => high.join(LogicalPlan::source("news"), 0, 0, window),
        3 => LogicalPlan::source("quotes").aggregate(Some(0), AggFunc::Count, 0, window),
        4 => {
            let slide = slide.min(window);
            LogicalPlan::source("quotes").sliding_aggregate(None, AggFunc::Avg, 1, window, slide)
        }
        5 => LogicalPlan::source("quotes").union(high),
        6 => high
            .filter(Expr::col(0).eq(Expr::lit(Value::str("IBM"))))
            .project(vec![("price".to_string(), Expr::col(1))]),
        _ => LogicalPlan::source("quotes")
            .project(vec![
                ("price".to_string(), Expr::col(1)),
                ("symbol".to_string(), Expr::col(0)),
            ])
            .project(vec![
                ("symbol".to_string(), Expr::col(1)),
                ("price".to_string(), Expr::col(0)),
            ])
            .aggregate(Some(0), AggFunc::Count, 0, window),
    }
}

/// Runs `plan` (registered twice, so sharing is exercised) over `feed`
/// delivered in `chunk`-sized `push_batch` calls on an engine capped at
/// `max_batch` rows per batch. Returns both queries' outputs after
/// `finish()`.
fn run_chunked(
    plan: &LogicalPlan,
    feed: &[(String, Tuple)],
    chunk: usize,
    max_batch: usize,
) -> (Vec<Tuple>, Vec<Tuple>) {
    let mut e = engine();
    e.set_max_batch_size(max_batch);
    let q1 = e.add_query(plan.clone()).unwrap();
    let q2 = e.add_query(plan.clone()).unwrap();
    for slice in feed.chunks(chunk.max(1)) {
        e.push_batch(slice.iter().cloned());
    }
    e.finish();
    (e.take_outputs(q1), e.take_outputs(q2))
}

/// Canonicalizes outputs for cross-chunking comparison. Single-input
/// pipelines (filter, project, aggregates) guarantee *sequence* equality
/// across chunkings, so they pass through untouched. Multi-port operators
/// (join, union) receive one port straight from a stream's connection point
/// and the other from an upstream operator: how those two arrival orders
/// interleave at the node depends on where ingestion-call boundaries fall
/// (exactly as it did under per-tuple execution, where it depended on the
/// push/run interleaving), so their guarantee is *multiset* equality and we
/// compare order-canonicalized sequences.
fn canonical(kind: usize, mut outputs: Vec<Tuple>) -> Vec<Tuple> {
    if matches!(kind % EQUIVALENCE_KINDS, 2 | 5) {
        outputs.sort_by_key(|t| (t.ts, format!("{:?}", t.values)));
    }
    outputs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// **Scalar vs. batched equivalence** — the tentpole property of the
    /// batched execution refactor: for random plans over every operator and
    /// a random (event-time-sorted) feed, per-query outputs are identical
    /// regardless of how the input is chunked (1, 7, 64, 1024 tuples per
    /// ingestion call) and of the engine's batch-size cap (including cap 1,
    /// which degrades to per-tuple execution). See [`canonical`] for the
    /// exact order guarantee per plan shape.
    #[test]
    fn scalar_vs_batched_equivalence(
        quotes in quote_stream(60),
        raw_news in proptest::collection::vec((0u64..500, 0usize..3, 0u8..4), 1..30),
        kind in 0usize..EQUIVALENCE_KINDS,
        thresh in 1u32..30_000,
        window in 1u64..100,
        slide in 1u64..50,
    ) {
        let plan = equivalence_plan(kind, thresh, window, slide);
        let mut news_tuples: Vec<Tuple> =
            raw_news.into_iter().map(|(ts, s, t)| news(ts, s, t)).collect();
        news_tuples.sort_by_key(|t| t.ts);
        // Interleave both streams by event time, as a real feed would.
        let mut feed: Vec<(String, Tuple)> = quotes
            .iter()
            .cloned()
            .map(|t| ("quotes".to_string(), t))
            .chain(news_tuples.into_iter().map(|t| ("news".to_string(), t)))
            .collect();
        feed.sort_by_key(|(_, t)| t.ts);

        // Reference: strict per-tuple execution (batch cap 1, one call).
        let (ref_q1, ref_q2) = run_chunked(&plan, &feed, feed.len(), 1);
        prop_assert_eq!(&ref_q1, &ref_q2, "shared queries must agree");
        let reference = canonical(kind, ref_q1);

        for &(chunk, cap) in &[
            (1usize, 1024usize), // tuple-at-a-time ingestion, large cap
            (7, 7),
            (64, 16),            // chunk larger than the engine cap
            (1024, 1024),        // whole feed in one call
        ] {
            let (got_q1, got_q2) = run_chunked(&plan, &feed, chunk, cap);
            prop_assert_eq!(&got_q1, &got_q2, "shared queries must agree");
            prop_assert_eq!(
                &canonical(kind, got_q1), &reference,
                "chunk {} / cap {} diverged from scalar execution", chunk, cap
            );
        }
    }
}

/// A random stateless chain over the quote schema, optionally topped by an
/// aggregate so the fused node also feeds stateful state. Every stage
/// preserves the `(symbol: Str, price: Float)` shape, so stages compose in
/// any order; the generator covers filter→filter (predicate conjunction),
/// project→project (leaf substitution and staged non-leaf loops), and
/// mixed filter/project chains.
fn stateless_chain_plan(stages: &[(usize, u32)], top: usize, window: u64) -> LogicalPlan {
    let mut plan = LogicalPlan::source("quotes");
    for &(kind, param) in stages {
        let t = f64::from(param % 30_000) / 100.0;
        plan = match kind % 4 {
            0 => plan.filter(Expr::col(1).gt(Expr::lit(Value::Float(t)))),
            1 => plan
                .filter(Expr::col(0).eq(Expr::lit(Value::str(SYMS[param as usize % SYMS.len()])))),
            // Non-leaf projection: stays a staged kernel inside the fused
            // node.
            2 => plan.project(vec![
                ("symbol".to_string(), Expr::col(0)),
                (
                    "price".to_string(),
                    Expr::Arith(
                        cqac_dsms::expr::ArithOp::Add,
                        Box::new(Expr::col(1)),
                        Box::new(Expr::lit(Value::Float(t))),
                    ),
                ),
            ]),
            // Leaf projection: eligible for substitution composition.
            _ => plan.project(vec![
                ("symbol".to_string(), Expr::col(0)),
                ("price".to_string(), Expr::col(1)),
            ]),
        };
    }
    match top % 3 {
        0 => plan,
        1 => plan.aggregate(Some(0), AggFunc::Count, 0, window),
        _ => plan.aggregate(None, AggFunc::Avg, 1, window),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// **Fused vs unfused equivalence** — the tentpole property of the
    /// fusion pass: for random stateless chains (optionally feeding an
    /// aggregate), a network instantiated with fusion on is row-for-row
    /// identical to its unfused counterpart across batch-size caps
    /// 1/7/64/1024, and all caps agree with each other. Stateless chains
    /// are single-input pipelines, so the guarantee is strict sequence
    /// equality — no canonicalization.
    #[test]
    fn fused_network_equals_unfused(
        quotes in quote_stream(60),
        stages in proptest::collection::vec((0usize..4, 0u32..30_000), 1..5),
        top in 0usize..3,
        window in 1u64..100,
    ) {
        let plan = stateless_chain_plan(&stages, top, window);
        let feed: Vec<(String, Tuple)> = quotes
            .iter()
            .cloned()
            .map(|t| ("quotes".to_string(), t))
            .collect();
        let mut reference: Option<Vec<Tuple>> = None;
        for &cap in &[1usize, 7, 64, 1024] {
            let mut unfused = engine();
            unfused.set_fusion(false);
            unfused.set_max_batch_size(cap);
            let u1 = unfused.add_query(plan.clone()).unwrap();
            let u2 = unfused.add_query(plan.clone()).unwrap();
            unfused.push_batch(feed.iter().cloned());
            unfused.finish();
            let unfused_out = unfused.take_outputs(u1);
            prop_assert_eq!(&unfused_out, &unfused.take_outputs(u2), "unfused sharing");

            let mut fused = engine();
            fused.set_max_batch_size(cap);
            let f1 = fused.add_query(plan.clone()).unwrap();
            let f2 = fused.add_query(plan.clone()).unwrap();
            fused.push_batch(feed.iter().cloned());
            fused.finish();
            let fused_out = fused.take_outputs(f1);
            prop_assert_eq!(&fused_out, &fused.take_outputs(f2), "fused sharing");

            prop_assert!(
                fused.network().num_nodes() <= unfused.network().num_nodes(),
                "fusion never adds nodes"
            );
            prop_assert_eq!(&fused_out, &unfused_out, "fused ≠ unfused at cap {}", cap);
            match &reference {
                Some(r) => prop_assert_eq!(&fused_out, r, "cap {} diverged", cap),
                None => reference = Some(fused_out),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// **Columnar vs. row-kernel equivalence** — the tentpole property of
    /// the columnar batch layout: for random plans over every operator
    /// (filter, project, join, tumbling/sliding aggregates, union, fused
    /// stateless chains), an engine running the columnar filter/project
    /// kernels produces outputs **sequence-identical** to the same engine
    /// running the per-row fallback kernels, across batch-size caps
    /// 1/7/64/1024 — and, per [`simd_modes`], with the unrolled SIMD lane
    /// loops both on and off. Both runs chunk the feed identically, so
    /// even the multi-port operators (join, union) must agree row for
    /// row — no canonicalization.
    #[test]
    fn columnar_kernels_equal_row_kernels(
        quotes in quote_stream(60),
        raw_news in proptest::collection::vec((0u64..500, 0usize..3, 0u8..4), 1..30),
        kind in 0usize..EQUIVALENCE_KINDS,
        thresh in 1u32..30_000,
        window in 1u64..100,
        slide in 1u64..50,
    ) {
        let plan = equivalence_plan(kind, thresh, window, slide);
        let mut news_tuples: Vec<Tuple> =
            raw_news.into_iter().map(|(ts, s, t)| news(ts, s, t)).collect();
        news_tuples.sort_by_key(|t| t.ts);
        let mut feed: Vec<(String, Tuple)> = quotes
            .iter()
            .cloned()
            .map(|t| ("quotes".to_string(), t))
            .chain(news_tuples.into_iter().map(|t| ("news".to_string(), t)))
            .collect();
        feed.sort_by_key(|(_, t)| t.ts);

        for &cap in &[1usize, 7, 64, 1024] {
            let (row_q1, row_q2) = cqac_dsms::ops::with_columnar_kernels(false, || {
                run_chunked(&plan, &feed, feed.len(), cap)
            });
            prop_assert_eq!(&row_q1, &row_q2, "row sharing at cap {}", cap);
            for simd in simd_modes() {
                let (col_q1, col_q2) = cqac_dsms::ops::with_columnar_kernels(true, || {
                    cqac_dsms::ops::with_simd_kernels(simd, || {
                        run_chunked(&plan, &feed, feed.len(), cap)
                    })
                });
                prop_assert_eq!(&col_q1, &col_q2, "columnar sharing at cap {}", cap);
                prop_assert_eq!(
                    &col_q1, &row_q1,
                    "columnar (simd {}) ≠ row kernels at cap {}", simd, cap
                );
            }
        }
    }

    /// Fused chains under both kernel modes: random stateless chains
    /// (optionally topped by an aggregate) run through the fusion pass and
    /// must be sequence-identical between the columnar staged kernels and
    /// the per-row staged loop, across batch caps.
    #[test]
    fn columnar_fused_chains_equal_row_fused_chains(
        quotes in quote_stream(60),
        stages in proptest::collection::vec((0usize..4, 0u32..30_000), 1..5),
        top in 0usize..3,
        window in 1u64..100,
    ) {
        let plan = stateless_chain_plan(&stages, top, window);
        let feed: Vec<(String, Tuple)> = quotes
            .iter()
            .cloned()
            .map(|t| ("quotes".to_string(), t))
            .collect();
        for &cap in &[1usize, 7, 64, 1024] {
            let (col, _) = cqac_dsms::ops::with_columnar_kernels(true, || {
                run_chunked(&plan, &feed, feed.len(), cap)
            });
            let (row, _) = cqac_dsms::ops::with_columnar_kernels(false, || {
                run_chunked(&plan, &feed, feed.len(), cap)
            });
            prop_assert_eq!(&col, &row, "fused columnar ≠ row at cap {}", cap);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// **NaN-ordering equivalence** — mixed Int×Float compares over a feed
    /// whose float column carries NaN rows: every comparison path (the
    /// per-row interpreter, the columnar kernels with the SIMD lane loops,
    /// and the columnar kernels with SIMD off) drops NaN rows identically,
    /// across batch caps 1/7/64/1024 and shards × morsel grains ×
    /// stealing. Both mixed operand orders (Int op Float, Float op Int)
    /// and all six comparison operators are covered.
    #[test]
    fn nan_rows_drop_identically_everywhere(
        raw in proptest::collection::vec((0u64..500, 0usize..3, 1u32..30_000, 0u8..5), 1..60),
        op in 0usize..6,
        flip in 0usize..2,
    ) {
        use cqac_dsms::expr::CmpOp;
        let flip = flip == 1;
        let ops = [CmpOp::Gt, CmpOp::Ge, CmpOp::Lt, CmpOp::Le, CmpOp::Eq, CmpOp::Ne];
        let mut feed: Vec<Tuple> = raw
            .into_iter()
            .map(|(ts, s, p, nan)| {
                Tuple::new(
                    ts,
                    vec![
                        Value::str(SYMS[s % SYMS.len()]),
                        Value::Int(i64::from(p) - 15_000),
                        // Roughly one row in five carries NaN; the rest
                        // straddle the Int payload's range so every
                        // operator selects a nontrivial subset.
                        if nan == 0 {
                            Value::Float(f64::NAN)
                        } else {
                            Value::Float(f64::from(p) - 15_000.5)
                        },
                    ],
                )
            })
            .collect();
        feed.sort_by_key(|t| t.ts);
        // Int op Float one way, Float op Int the other: both mixed
        // operand orders widen, and both must invalidate the NaN rows.
        let (l, r) = if flip { (2, 1) } else { (1, 2) };
        let plan = LogicalPlan::source("ticks").filter(Expr::col(l).cmp(ops[op], Expr::col(r)));

        for &cap in &[1usize, 7, 64, 1024] {
            let reference = cqac_dsms::ops::with_columnar_kernels(false, || {
                run_ticks_sharded(&plan, &feed, cap, 1, 1, true)
            });
            for simd in simd_modes() {
                let col = cqac_dsms::ops::with_columnar_kernels(true, || {
                    cqac_dsms::ops::with_simd_kernels(simd, || {
                        run_ticks_sharded(&plan, &feed, cap, 1, 1, true)
                    })
                });
                prop_assert_eq!(
                    &col, &reference,
                    "NaN rows: columnar (simd {}) ≠ row at cap {}", simd, cap
                );
            }
            for &shards in &shard_counts() {
                if shards == 1 {
                    continue;
                }
                for (morsel, stealing) in morsel_axes() {
                    let got = run_ticks_sharded(&plan, &feed, cap, shards, morsel, stealing);
                    prop_assert_eq!(
                        &got, &reference,
                        "NaN rows diverged at shards {} (morsel {}, stealing {}) cap {}",
                        shards, morsel, stealing, cap
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// **Dict-vs-Str equivalence** — string equality filters, symbol
    /// joins, and symbol group-bys over a narrow symbol universe
    /// (dictionary-encoded at ingestion: predicates compare u32 codes,
    /// keys hash through the per-code memo) and a wide universe past
    /// `DICT_MAX_CARDINALITY` (decayed back to plain `Str` columns): the
    /// columnar and row kernels agree across batch caps and SIMD modes,
    /// and the sharded engine replays the single-threaded run across
    /// shards × partition modes × morsel grains × stealing with identical
    /// `tuples_processed` — the encoding is a representation choice, never
    /// an observable one.
    #[test]
    fn dict_and_plain_string_columns_are_equivalent(
        raw_quotes in proptest::collection::vec((0u64..500, 0usize..1000, 1u32..30_000), 1..60),
        raw_news in proptest::collection::vec((0u64..500, 0usize..1000, 0u8..4), 1..30),
        wide in 0usize..2,
        kind in 0usize..3,
        window in 1u64..100,
    ) {
        let wide = wide == 1;
        let universe = if wide { 300 } else { 8 };
        let sym = |i: usize| format!("s{:03}", i % universe);
        let mut feed: Vec<(String, Tuple)> = raw_quotes
            .iter()
            .map(|&(ts, s, p)| {
                (
                    "quotes".to_string(),
                    Tuple::new(
                        ts,
                        vec![Value::str(sym(s)), Value::Float(f64::from(p) / 100.0)],
                    ),
                )
            })
            .chain(raw_news.iter().map(|&(ts, s, t)| {
                (
                    "news".to_string(),
                    Tuple::new(ts, vec![Value::str(sym(s)), Value::str(format!("h{t}"))]),
                )
            }))
            .collect();
        feed.sort_by_key(|(_, t)| t.ts);
        let quotes = LogicalPlan::source("quotes");
        let plan = match kind {
            0 => quotes.filter(Expr::col(0).eq(Expr::lit(Value::str(sym(3))))),
            1 => quotes.join(LogicalPlan::source("news"), 0, 0, window),
            _ => quotes.aggregate(Some(0), AggFunc::Count, 0, window),
        };

        for &cap in &[1usize, 7, 64, 1024] {
            let (row, _) = cqac_dsms::ops::with_columnar_kernels(false, || {
                run_chunked(&plan, &feed, feed.len(), cap)
            });
            for simd in simd_modes() {
                let (col, _) = cqac_dsms::ops::with_columnar_kernels(true, || {
                    cqac_dsms::ops::with_simd_kernels(simd, || {
                        run_chunked(&plan, &feed, feed.len(), cap)
                    })
                });
                prop_assert_eq!(
                    &col, &row,
                    "dict/str columnar (simd {}) ≠ row at cap {} (wide {})", simd, cap, wide
                );
            }
        }
        // Shard invariance at a mid-size cap: hash partitioning hashes
        // the decoded bytes whatever the representation, so placement
        // (and therefore outputs) cannot depend on the encoding.
        let (reference, ref_work) = run_sharded(&plan, &feed, 7, 1, false);
        for &shards in &shard_counts() {
            if shards == 1 {
                continue;
            }
            for hash_key in partition_modes() {
                for (morsel, stealing) in morsel_axes() {
                    let (got, work) =
                        run_sharded_morsel(&plan, &feed, 7, shards, hash_key, morsel, stealing);
                    prop_assert_eq!(
                        &got, &reference,
                        "dict/str plan kind {} diverged at shards {} \
                         (hash_key {}, morsel {}, stealing {}, wide {})",
                        kind, shards, hash_key, morsel, stealing, wide
                    );
                    prop_assert_eq!(work, ref_work);
                }
            }
        }
    }
}

/// Shard counts exercised by the shard-invariance suites. `CQAC_SHARDS`
/// (a comma-separated list, e.g. `1,4`) overrides the default `1,2,4,8`
/// so CI can matrix over shard sets without recompiling.
fn shard_counts() -> Vec<usize> {
    match std::env::var("CQAC_SHARDS") {
        Ok(s) => {
            let counts: Vec<usize> = s
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect();
            assert!(!counts.is_empty(), "CQAC_SHARDS must list shard counts");
            counts
        }
        Err(_) => vec![1, 2, 4, 8],
    }
}

/// Partition modes exercised by the shard-invariance suites (the
/// `hash_key` flag of [`run_sharded`]). `CQAC_PARTITION` — `keyed`,
/// `round_robin`, or `both` (default) — selects the axis so CI can matrix
/// stateful keyed runs separately from round-robin runs without
/// recompiling.
fn partition_modes() -> Vec<bool> {
    match std::env::var("CQAC_PARTITION").as_deref() {
        Ok("keyed") => vec![true],
        Ok("round_robin") => vec![false],
        Ok("both") | Err(_) => vec![false, true],
        Ok(other) => panic!("CQAC_PARTITION must be keyed|round_robin|both, got '{other}'"),
    }
}

/// Morsel granularities exercised by the shard-invariance suites
/// (`DsmsEngine::set_morsel_batches`). `CQAC_MORSEL` (a comma-separated
/// list) overrides the default `1,4,16` so CI can matrix morsel sizes
/// without recompiling — `1` cuts every work unit into its own stealable
/// morsel, `16` approaches whole-shard chains.
fn morsel_grains() -> Vec<usize> {
    match std::env::var("CQAC_MORSEL") {
        Ok(s) => {
            let grains: Vec<usize> = s
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect();
            assert!(!grains.is_empty(), "CQAC_MORSEL must list morsel sizes");
            grains
        }
        Err(_) => vec![1, 4, 16],
    }
}

/// The work-stealing axis crossed with [`morsel_grains`] by the
/// shard-invariance suites: each grain runs with idle-worker stealing
/// both off (workers execute exactly their home deques) and on (morsels
/// migrate to whichever worker grabs them — outputs must not notice).
fn morsel_axes() -> Vec<(usize, bool)> {
    morsel_grains()
        .into_iter()
        .flat_map(|grain| [(grain, false), (grain, true)])
        .collect()
}

/// SIMD kernel modes exercised by the kernel-equivalence and
/// shard-invariance suites (the `ops::set_simd_kernels` kill switch).
/// `CQAC_SIMD` — `on`, `off`, or `both` (default) — selects the axis so
/// CI can matrix the unrolled lane loops against the scalar reference
/// loops without recompiling. Outputs must be bit-identical either way;
/// `off` additionally pins `work::simd_lanes` to zero.
fn simd_modes() -> Vec<bool> {
    match std::env::var("CQAC_SIMD").as_deref() {
        Ok("on") => vec![true],
        Ok("off") => vec![false],
        Ok("both") | Err(_) => vec![true, false],
        Ok(other) => panic!("CQAC_SIMD must be on|off|both, got '{other}'"),
    }
}

/// Adaptive-morsel-controller modes exercised by the shard-invariance
/// suites (`DsmsEngine::set_adaptive_morsels`). `CQAC_ADAPTIVE` — `on`,
/// `off`, or `both` (default) — selects the axis so CI can matrix the
/// adaptive controller against the static grain without recompiling.
/// Outputs must be bit-identical either way; `off` additionally pins
/// `work::adaptive_resizes` to zero.
fn adaptive_modes() -> Vec<bool> {
    match std::env::var("CQAC_ADAPTIVE").as_deref() {
        Ok("on") => vec![true],
        Ok("off") => vec![false],
        Ok("both") | Err(_) => vec![false, true],
        Ok(other) => panic!("CQAC_ADAPTIVE must be on|off|both, got '{other}'"),
    }
}

/// Runs `plan` (registered twice, so sharing is exercised) over `feed` on
/// an engine with the given shard count, optionally hash-partitioning both
/// streams on the symbol column, at the given morsel granularity with
/// stealing on or off. Returns the outputs and the machine-independent
/// work measure.
fn run_sharded_morsel(
    plan: &LogicalPlan,
    feed: &[(String, Tuple)],
    max_batch: usize,
    shards: usize,
    hash_key: bool,
    morsel: usize,
    stealing: bool,
) -> (Vec<Tuple>, u64) {
    let mut e = engine();
    e.set_max_batch_size(max_batch);
    e.set_shards(shards);
    e.set_morsel_batches(morsel);
    e.set_stealing(stealing);
    if hash_key {
        e.set_shard_key("quotes", 0).unwrap();
        e.set_shard_key("news", 0).unwrap();
    }
    let q1 = e.add_query(plan.clone()).unwrap();
    let q2 = e.add_query(plan.clone()).unwrap();
    e.push_batch(feed.iter().cloned());
    e.finish();
    let out = e.take_outputs(q1);
    assert_eq!(out, e.take_outputs(q2), "shared queries must agree");
    (out, e.tuples_processed())
}

/// [`run_sharded_morsel`] at the engine's default morsel granularity and
/// stealing setting.
fn run_sharded(
    plan: &LogicalPlan,
    feed: &[(String, Tuple)],
    max_batch: usize,
    shards: usize,
    hash_key: bool,
) -> (Vec<Tuple>, u64) {
    run_sharded_morsel(plan, feed, max_batch, shards, hash_key, 1, true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// **Shard-count invariance** — the tentpole property of the
    /// shard-per-stream executor: for random plans over every operator
    /// (filter, project, join, tumbling/sliding aggregates, union, fused
    /// stateless chains), the parallel engine produces output sequences
    /// **strictly equal** to the single-threaded engine (shards = 1)
    /// across shard counts (default 1/2/4/8, see [`shard_counts`]) crossed
    /// with batch caps 1/7/64/1024, under both round-robin batch
    /// distribution and hash partitioning on the symbol column — and with
    /// identical `tuples_processed`, so parallelism never duplicates or
    /// loses per-row work. Both runs chunk the feed identically, so even
    /// multi-port operators (join, union) must agree row for row.
    #[test]
    fn shard_count_invariance(
        quotes in quote_stream(60),
        raw_news in proptest::collection::vec((0u64..500, 0usize..3, 0u8..4), 1..30),
        kind in 0usize..EQUIVALENCE_KINDS,
        thresh in 1u32..30_000,
        window in 1u64..100,
        slide in 1u64..50,
    ) {
        let plan = equivalence_plan(kind, thresh, window, slide);
        let mut news_tuples: Vec<Tuple> =
            raw_news.into_iter().map(|(ts, s, t)| news(ts, s, t)).collect();
        news_tuples.sort_by_key(|t| t.ts);
        let mut feed: Vec<(String, Tuple)> = quotes
            .iter()
            .cloned()
            .map(|t| ("quotes".to_string(), t))
            .chain(news_tuples.into_iter().map(|t| ("news".to_string(), t)))
            .collect();
        feed.sort_by_key(|(_, t)| t.ts);

        for &cap in &[1usize, 7, 64, 1024] {
            let (reference, ref_work) = run_sharded(&plan, &feed, cap, 1, false);
            for &shards in &shard_counts() {
                if shards == 1 {
                    continue;
                }
                for hash_key in partition_modes() {
                    for (morsel, stealing) in morsel_axes() {
                        for simd in simd_modes() {
                            let (got, work) = cqac_dsms::ops::with_simd_kernels(simd, || {
                                run_sharded_morsel(
                                    &plan, &feed, cap, shards, hash_key, morsel, stealing,
                                )
                            });
                            prop_assert_eq!(
                                &got, &reference,
                                "shards {} (hash_key {}, morsel {}, stealing {}, simd {}) \
                                 diverged at cap {}",
                                shards, hash_key, morsel, stealing, simd, cap
                            );
                            prop_assert_eq!(
                                work, ref_work,
                                "per-row work must be shard-count invariant (shards {})", shards
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Plan shapes whose stateful operators are **keyed compatibly** with the
/// symbol shard key, so under hash partitioning the merge barrier moves
/// *past* them and they execute inside the shards with per-shard state:
/// a symbol-keyed join, a symbol-grouped aggregate (tumbling and sliding),
/// a filtered post-aggregate chain, stacked keyed aggregates, a keyed join
/// feeding a keyed aggregate, and a projection that relocates the key
/// before grouping.
const KEYED_STATEFUL_KINDS: usize = 7;

fn keyed_stateful_plan(kind: usize, thresh: u32, window: u64, slide: u64) -> LogicalPlan {
    let t = f64::from(thresh) / 100.0;
    let high = LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(t))));
    match kind % KEYED_STATEFUL_KINDS {
        0 => high.join(LogicalPlan::source("news"), 0, 0, window),
        1 => high.aggregate(Some(0), AggFunc::Count, 0, window),
        2 => {
            let slide = slide.min(window);
            LogicalPlan::source("quotes").sliding_aggregate(Some(0), AggFunc::Avg, 1, window, slide)
        }
        3 => high
            .aggregate(Some(0), AggFunc::Count, 0, window)
            .filter(Expr::col(2).gt(Expr::lit(Value::Int(1)))),
        4 => LogicalPlan::source("quotes")
            .aggregate(Some(0), AggFunc::Max, 1, window)
            .aggregate(Some(1), AggFunc::Count, 0, window.max(2) * 2),
        5 => high
            .join(LogicalPlan::source("news"), 0, 0, window)
            .aggregate(Some(0), AggFunc::Count, 0, window),
        _ => LogicalPlan::source("quotes")
            .project(vec![
                ("price".to_string(), Expr::col(1)),
                ("symbol".to_string(), Expr::col(0)),
            ])
            .aggregate(Some(1), AggFunc::Count, 0, window),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// **Keyed stateful shard invariance** — the tentpole property of the
    /// keyed-sharding refactor: for plans whose joins and aggregates are
    /// keyed compatibly with the shard key, the merge barrier moves past
    /// the stateful operators (they run inside the shards with per-shard
    /// state and per-shard window closes), and the outputs remain
    /// **strictly sequence-equal** to the single-threaded engine across
    /// shard counts × batch caps × both partition modes, with identical
    /// `tuples_processed`.
    #[test]
    fn keyed_stateful_shard_invariance(
        quotes in quote_stream(60),
        raw_news in proptest::collection::vec((0u64..500, 0usize..3, 0u8..4), 1..30),
        kind in 0usize..KEYED_STATEFUL_KINDS,
        thresh in 1u32..30_000,
        window in 1u64..100,
        slide in 1u64..50,
    ) {
        let plan = keyed_stateful_plan(kind, thresh, window, slide);
        let mut news_tuples: Vec<Tuple> =
            raw_news.into_iter().map(|(ts, s, t)| news(ts, s, t)).collect();
        news_tuples.sort_by_key(|t| t.ts);
        let mut feed: Vec<(String, Tuple)> = quotes
            .iter()
            .cloned()
            .map(|t| ("quotes".to_string(), t))
            .chain(news_tuples.into_iter().map(|t| ("news".to_string(), t)))
            .collect();
        feed.sort_by_key(|(_, t)| t.ts);

        for &cap in &[1usize, 7, 64] {
            let (reference, ref_work) = run_sharded(&plan, &feed, cap, 1, false);
            for &shards in &shard_counts() {
                if shards == 1 {
                    continue;
                }
                for hash_key in partition_modes() {
                    for (morsel, stealing) in morsel_axes() {
                        for simd in simd_modes() {
                            let (got, work) = cqac_dsms::ops::with_simd_kernels(simd, || {
                                run_sharded_morsel(
                                    &plan, &feed, cap, shards, hash_key, morsel, stealing,
                                )
                            });
                            prop_assert_eq!(
                                &got, &reference,
                                "keyed stateful plan kind {} diverged at shards {} \
                                 (hash_key {}, morsel {}, stealing {}, simd {}) cap {}",
                                kind, shards, hash_key, morsel, stealing, simd, cap
                            );
                            prop_assert_eq!(work, ref_work);
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random fused stateless chains (optionally topped by an aggregate)
    /// under the sharded executor: strict sequence equality against the
    /// single-threaded run across shard counts and batch caps.
    #[test]
    fn sharded_fused_chains_match_single_threaded(
        quotes in quote_stream(60),
        stages in proptest::collection::vec((0usize..4, 0u32..30_000), 1..5),
        top in 0usize..3,
        window in 1u64..100,
    ) {
        let plan = stateless_chain_plan(&stages, top, window);
        let feed: Vec<(String, Tuple)> = quotes
            .iter()
            .cloned()
            .map(|t| ("quotes".to_string(), t))
            .collect();
        for &cap in &[1usize, 7, 64] {
            let (reference, ref_work) = run_sharded(&plan, &feed, cap, 1, false);
            for &shards in &shard_counts() {
                if shards == 1 {
                    continue;
                }
                let (got, work) = run_sharded(&plan, &feed, cap, shards, true);
                prop_assert_eq!(
                    &got, &reference,
                    "fused chain diverged at shards {} cap {}", shards, cap
                );
                prop_assert_eq!(work, ref_work);
            }
        }
    }
}

/// A three-column stream for the ungrouped-aggregate properties: a
/// hashable shard key, an Int payload (exact partial combines), and a
/// Float payload (exact for Count/Min/Max, inexact for Sum/Avg).
fn tick_schema() -> Schema {
    Schema::new(vec![
        Field::new("sym", DataType::Str),
        Field::new("qty", DataType::Int),
        Field::new("price", DataType::Float),
    ])
}

/// Runs an aggregate plan over the ticks stream, hash-keyed on the
/// symbol column so exact aggregates at shard-incompatible group keys
/// (including the ungrouped single group) run as partial-aggregation
/// members on the shards (inexact ones stay behind the merge barrier).
fn run_ticks_sharded(
    plan: &LogicalPlan,
    feed: &[Tuple],
    max_batch: usize,
    shards: usize,
    morsel: usize,
    stealing: bool,
) -> Vec<Tuple> {
    run_ticks_adaptive(plan, feed, max_batch, shards, morsel, stealing, false)
}

/// [`run_ticks_sharded`] with the adaptive morsel controller on or off.
#[allow(clippy::too_many_arguments)]
fn run_ticks_adaptive(
    plan: &LogicalPlan,
    feed: &[Tuple],
    max_batch: usize,
    shards: usize,
    morsel: usize,
    stealing: bool,
    adaptive: bool,
) -> Vec<Tuple> {
    let mut e = DsmsEngine::new();
    e.register_stream("ticks", tick_schema());
    e.set_max_batch_size(max_batch);
    e.set_shards(shards);
    e.set_morsel_batches(morsel);
    e.set_stealing(stealing);
    e.set_adaptive_morsels(adaptive);
    e.set_shard_key("ticks", 0).unwrap();
    let cq = e.add_query(plan.clone()).unwrap();
    for chunk in feed.chunks(max_batch.max(1) * 2) {
        e.push_rows("ticks", chunk.to_vec());
    }
    e.finish();
    e.take_outputs(cq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// **Ungrouped-aggregate partial/combine equivalence** — every
    /// aggregate kind (Count/Sum/Avg/Min/Max) over Int and Float inputs,
    /// optionally behind a filter (so selection vectors push into the
    /// aggregate). Exact combines run as sharded partial-aggregation
    /// members — per-worker partials folded in deterministic partition
    /// order on the control thread; float Sum/Avg are inexact and keep
    /// the merge barrier. Either path must be **bit-identical** to the
    /// single-threaded engine across shard counts × morsel grains ×
    /// stealing on/off, including windows that close empty along sparse
    /// stretches of the feed.
    #[test]
    fn ungrouped_aggregate_partials_match_single_threaded(
        raw in proptest::collection::vec((0u64..500, 0usize..3, 1u32..30_000), 1..60),
        func in 0usize..5,
        col in 1usize..3,
        window in 1u64..60,
        filtered in 0usize..2,
    ) {
        let filtered = filtered == 1;
        let funcs = [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max];
        let mut feed: Vec<Tuple> = raw
            .into_iter()
            .map(|(ts, s, p)| {
                Tuple::new(
                    ts,
                    vec![
                        Value::str(SYMS[s % SYMS.len()]),
                        // Signed payload: sums cross zero, min/max both move.
                        Value::Int(i64::from(p) - 15_000),
                        Value::Float(f64::from(p) / 100.0),
                    ],
                )
            })
            .collect();
        feed.sort_by_key(|t| t.ts);
        let mut plan = LogicalPlan::source("ticks");
        if filtered {
            plan = plan.filter(Expr::col(1).gt(Expr::lit(Value::Int(-5_000))));
        }
        let plan = plan.aggregate(None, funcs[func], col, window);

        for &cap in &[1usize, 7, 64] {
            let reference = run_ticks_sharded(&plan, &feed, cap, 1, 1, true);
            for &shards in &shard_counts() {
                if shards == 1 {
                    continue;
                }
                for (morsel, stealing) in morsel_axes() {
                    let got = run_ticks_sharded(&plan, &feed, cap, shards, morsel, stealing);
                    prop_assert_eq!(
                        &got, &reference,
                        "ungrouped {:?} over col {} diverged at shards {} \
                         (morsel {}, stealing {}) cap {}",
                        funcs[func], col, shards, morsel, stealing, cap
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// **Grouped-partial/combine equivalence** — grouped aggregates whose
    /// group key (col 1) is *not* the shard key (col 0), so groups span
    /// shards: exact combines (Count/Sum/Avg/Min/Max over Int;
    /// Count/Min/Max over Float) run as grouped partial-aggregation
    /// members — per-worker hash partials folded per group in
    /// deterministic partition order on the control thread — while float
    /// Sum/Avg stay behind the merge barrier. Either path must produce a
    /// **strictly equal output sequence** to the single-threaded engine
    /// (same rows, same order, same windows closing empty along sparse
    /// stretches) across group-key cardinalities 1/8/1000 × aggregate
    /// kinds × shard counts × morsel grains × stealing × adaptive
    /// controller on/off.
    #[test]
    fn grouped_partials_match_single_threaded(
        raw in proptest::collection::vec((0u64..400, 0usize..1000, 1u32..30_000), 1..60),
        card in 0usize..3,
        func in 0usize..5,
        col in 1usize..3,
        window in 1u64..60,
    ) {
        let card = [1usize, 8, 1000][card];
        let funcs = [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max];
        let mut feed: Vec<Tuple> = raw
            .into_iter()
            .map(|(ts, g, p)| {
                Tuple::new(
                    ts,
                    vec![
                        // The shard key mixes independently of the group.
                        Value::str(SYMS[p as usize % SYMS.len()]),
                        // Signed group ids: FNV hashing and EmitKey
                        // ordering both see negatives.
                        Value::Int((g % card) as i64 - 3),
                        Value::Float(f64::from(p) / 100.0),
                    ],
                )
            })
            .collect();
        feed.sort_by_key(|t| t.ts);
        let plan = LogicalPlan::source("ticks").aggregate(Some(1), funcs[func], col, window);

        for &cap in &[1usize, 7, 64] {
            let reference = run_ticks_sharded(&plan, &feed, cap, 1, 1, true);
            for &shards in &shard_counts() {
                if shards == 1 {
                    continue;
                }
                for (morsel, stealing) in morsel_axes() {
                    for adaptive in adaptive_modes() {
                        let got = run_ticks_adaptive(
                            &plan, &feed, cap, shards, morsel, stealing, adaptive,
                        );
                        prop_assert_eq!(
                            &got, &reference,
                            "grouped {:?} over col {} (card {}) diverged at shards {} \
                             (morsel {}, stealing {}, adaptive {}) cap {}",
                            funcs[func], col, card, shards, morsel, stealing, adaptive, cap
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// **Adaptive-controller determinism** — the controller's inputs are
    /// deterministic `work` cost units, never wall clock, so for a fixed
    /// input the whole resize trace is reproducible: two identical
    /// adaptive runs agree on `adaptive_resizes` (and on outputs), the
    /// controller off pins the counter to zero while producing the same
    /// output sequence, and with stealing disabled the *entire*
    /// work-counter snapshot — every row, eval, lane, and resize count —
    /// is byte-identical between repeated adaptive runs.
    #[test]
    fn adaptive_controller_is_deterministic(
        raw in proptest::collection::vec((0u64..400, 0usize..1000, 1u32..30_000), 20..80),
        window in 1u64..60,
    ) {
        use cqac_dsms::types::work;
        let mut feed: Vec<Tuple> = raw
            .into_iter()
            .map(|(ts, g, p)| {
                Tuple::new(
                    ts,
                    vec![
                        // Zipf-ish hot key: most rows land on one home
                        // shard, so per-morsel costs spread and the
                        // controller has something to react to.
                        Value::str(SYMS[if g % 5 == 0 { g % SYMS.len() } else { 0 }]),
                        Value::Int((g % 8) as i64),
                        Value::Float(f64::from(p) / 100.0),
                    ],
                )
            })
            .collect();
        feed.sort_by_key(|t| t.ts);
        let plan = LogicalPlan::source("ticks").aggregate(Some(1), AggFunc::Sum, 1, window);

        let run = |stealing: bool, adaptive: bool| {
            work::reset();
            let out = run_ticks_adaptive(&plan, &feed, 8, 4, 8, stealing, adaptive);
            (out, work::snapshot())
        };
        let (out_a, snap_a) = run(true, true);
        let (out_b, snap_b) = run(true, true);
        prop_assert_eq!(&out_a, &out_b);
        prop_assert_eq!(
            snap_a.adaptive_resizes, snap_b.adaptive_resizes,
            "the resize trace must not depend on the schedule"
        );
        let (out_off, snap_off) = run(true, false);
        prop_assert_eq!(snap_off.adaptive_resizes, 0, "off means static grain");
        prop_assert_eq!(&out_off, &out_a, "the controller must not change outputs");
        // Without stealing the schedule itself is deterministic, so the
        // full counter trace must replay exactly.
        let (_, pinned_a) = run(false, true);
        let (_, pinned_b) = run(false, true);
        prop_assert_eq!(pinned_a, pinned_b);
    }
}

/// The sharded twin of [`int_sum_query_is_exact_past_2_pow_53`]: the same
/// mantissa-overflowing terms pushed through shards = 4, where the
/// ungrouped Sum runs as per-worker i128 partials combined on the control
/// thread — partial aggregation must not reintroduce float rounding.
#[test]
fn sharded_int_sum_partials_are_exact_past_2_pow_53() {
    let big = (1i64 << 53) + 1;
    let feed: Vec<Tuple> = (0..3)
        .map(|i| {
            Tuple::new(
                i,
                vec![
                    Value::str(SYMS[i as usize % SYMS.len()]),
                    Value::Int(big),
                    Value::Float(0.0),
                ],
            )
        })
        .collect();
    let plan = LogicalPlan::source("ticks").aggregate(None, AggFunc::Sum, 1, 100);
    let out = run_ticks_sharded(&plan, &feed, 1, 4, 1, true);
    assert_eq!(out.len(), 1);
    assert_eq!(
        out[0].values[1],
        Value::Int(3 * big),
        "i128 partial combine must stay exact"
    );
}

/// Integer sums must accumulate exactly: three terms of 2^53 + 1 overflow
/// the mantissa of the old `f64` accumulator (which returned 3 × 2^53).
#[test]
fn int_sum_query_is_exact_past_2_pow_53() {
    let mut e = DsmsEngine::new();
    e.register_stream("volumes", Schema::new(vec![Field::new("v", DataType::Int)]));
    let cq = e
        .add_query(LogicalPlan::source("volumes").aggregate(None, AggFunc::Sum, 0, 100))
        .unwrap();
    let big = (1i64 << 53) + 1;
    e.push_rows(
        "volumes",
        (0..3)
            .map(|i| Tuple::new(i, vec![Value::Int(big)]))
            .collect(),
    );
    e.finish();
    let out = e.take_outputs(cq);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].values[1], Value::Int(3 * big));
}

/// Float join and group keys are rejected when the plan is built — with a
/// descriptive error and no network mutation — instead of silently
/// dropping every row at runtime (`Key::from_value` returns `None` for
/// floats).
#[test]
fn float_keys_rejected_at_plan_build_not_dropped_at_runtime() {
    let mut e = engine();
    let group_err = e
        .add_query(LogicalPlan::source("quotes").aggregate(Some(1), AggFunc::Count, 0, 100))
        .unwrap_err();
    assert!(
        group_err.to_string().contains("not hashable"),
        "descriptive group-key error, got: {group_err}"
    );
    let join_err = e
        .add_query(LogicalPlan::source("quotes").join(LogicalPlan::source("quotes"), 1, 1, 10))
        .unwrap_err();
    assert!(
        join_err.to_string().contains("not hashable"),
        "descriptive join-key error, got: {join_err}"
    );
    assert_eq!(e.network().num_nodes(), 0, "rejection leaves no residue");
    assert_eq!(e.network().num_queries(), 0);
}

/// Late-arrival semantics (deterministic documentation tests): tuples that
/// arrive after the watermark passed their window are *not lost and not
/// duplicated* — the window re-opens silently and emits once at the next
/// watermark advance.
#[test]
fn late_tuple_emits_once_and_late() {
    let mut e = engine();
    let cq = e
        .add_query(LogicalPlan::source("quotes").aggregate(None, AggFunc::Count, 0, 50))
        .unwrap();
    // Watermark jumps to 100; the closed windows [0,50) and [50,100) are
    // empty, so nothing emits; the ts=100 tuple's window is still open.
    e.push_batch([("quotes".to_string(), quote(100, 0, 100))]);
    assert!(e.take_outputs(cq).is_empty());
    // A straggler for the long-closed window [0,50).
    e.push_batch([("quotes".to_string(), quote(10, 0, 100))]);
    assert_eq!(
        e.output_len(cq),
        0,
        "late window waits for the next advance"
    );
    // The next watermark advance flushes it exactly once.
    e.push_batch([("quotes".to_string(), quote(200, 0, 100))]);
    let flushed = e.take_outputs(cq);
    let late: Vec<_> = flushed.iter().filter(|t| t.ts == 50).collect();
    assert_eq!(late.len(), 1, "late window [0,50) emitted exactly once");
    e.finish();
    let rest = e.take_outputs(cq);
    assert!(
        rest.iter().all(|t| t.ts != 50),
        "no duplicate emission of [0,50)"
    );
}

/// A late join probe only matches partners still within the state horizon.
#[test]
fn late_join_probe_sees_surviving_state_only() {
    let mut e = engine();
    let cq = e
        .add_query(LogicalPlan::source("quotes").join(LogicalPlan::source("news"), 0, 0, 20))
        .unwrap();
    e.push_batch([("quotes".to_string(), quote(10, 0, 100))]);
    // Watermark far ahead evicts the ts=10 quote (horizon = 200 - 20).
    e.push_batch([("quotes".to_string(), quote(200, 1, 100))]);
    // A late news tuple that would have matched ts=10 within the window.
    e.push_batch([("news".to_string(), news(15, 0, 1))]);
    assert!(
        e.take_outputs(cq).is_empty(),
        "evicted state cannot produce late matches"
    );
}
