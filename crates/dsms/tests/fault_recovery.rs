//! Robustness integration tests: panic quarantine, worker-death recovery,
//! overload shedding, and the deterministic fault-injection harness.
//!
//! The contract under test (see the crate docs' *Robustness & failure
//! semantics* section): an operator panic quarantines exactly the queries
//! owning the panicked node — every other query's outputs stay
//! **byte-identical** to a fault-free run, across shard counts, morsel
//! grains, and work stealing; an injected worker death never loses or
//! duplicates a morsel; overload shedding drops the same rows at every
//! shard count and never touches the highest-priority stream while lower
//! ones still have batches to give.
//!
//! Env axes (mirroring `property_dsms.rs`): `CQAC_SHARDS` picks the shard
//! counts, `CQAC_FAULTS` picks the injection families (`panic`, `poison`,
//! `death`, or a comma list; default all).

use cqac_core::mechanisms::Cat;
use cqac_core::model::UserId;
use cqac_core::units::{Load, Money};
use cqac_dsms::center::{DsmsCenter, Submission};
use cqac_dsms::diag::Code;
use cqac_dsms::engine::{DsmsEngine, IngestError, OverloadPolicy};
use cqac_dsms::expr::Expr;
use cqac_dsms::fault::{FaultPlan, INJECTED_PANIC_PREFIX};
use cqac_dsms::network::CqId;
use cqac_dsms::ops::OPERATOR_KINDS;
use cqac_dsms::plan::{AggFunc, LogicalPlan};
use cqac_dsms::types::{work, DataType, Field, Schema, Tuple, Value};
use std::sync::Arc;

const SYMS: [&str; 4] = ["IBM", "AAPL", "MSFT", "ORCL"];

fn quote_schema() -> Schema {
    Schema::new(vec![
        Field::new("symbol", DataType::Str),
        Field::new("price", DataType::Float),
    ])
}

fn news_schema() -> Schema {
    Schema::new(vec![
        Field::new("symbol", DataType::Str),
        Field::new("relevance", DataType::Int),
    ])
}

fn quote(ts: u64, sym: usize, price_cents: u32) -> Tuple {
    Tuple::new(
        ts,
        vec![
            Value::str(SYMS[sym % SYMS.len()]),
            Value::Float(f64::from(price_cents) / 100.0),
        ],
    )
}

fn news(ts: u64, sym: usize, relevance: i64) -> Tuple {
    Tuple::new(
        ts,
        vec![Value::str(SYMS[sym % SYMS.len()]), Value::Int(relevance)],
    )
}

/// Tiny deterministic generator (the `shard_exec.rs` idiom).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A mixed quotes+news feed, sorted by event time.
fn mixed_feed(rows: usize, seed: u64) -> Vec<(String, Tuple)> {
    let mut rng = Lcg(seed);
    let mut feed: Vec<(String, Tuple)> = (0..rows)
        .map(|_| {
            let ts = rng.below(400);
            let sym = rng.below(4) as usize;
            if rng.below(3) == 0 {
                ("news".to_string(), news(ts, sym, rng.below(100) as i64))
            } else {
                (
                    "quotes".to_string(),
                    quote(ts, sym, 1 + rng.below(20_000) as u32),
                )
            }
        })
        .collect();
    feed.sort_by_key(|(_, t)| t.ts);
    feed
}

/// Shard counts under test; `CQAC_SHARDS` (comma list) overrides.
fn shard_counts() -> Vec<usize> {
    match std::env::var("CQAC_SHARDS") {
        Ok(s) => {
            let counts: Vec<usize> = s
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect();
            assert!(!counts.is_empty(), "CQAC_SHARDS must list shard counts");
            counts
        }
        Err(_) => vec![1, 2, 4],
    }
}

/// Injection families under test; `CQAC_FAULTS` (comma list of
/// `panic`/`poison`/`death`) overrides the default of all three.
fn fault_modes() -> Vec<&'static str> {
    const ALL: [&str; 3] = ["panic", "poison", "death"];
    match std::env::var("CQAC_FAULTS") {
        Ok(s) => {
            let modes: Vec<&'static str> = ALL
                .into_iter()
                .filter(|m| s.split(',').any(|t| t.trim() == *m))
                .collect();
            assert!(
                !modes.is_empty(),
                "CQAC_FAULTS must list panic|poison|death, got '{s}'"
            );
            modes
        }
        Err(_) => ALL.to_vec(),
    }
}

/// The plan whose physical network contains (exactly one node of) the
/// targeted operator kind. `fused` assumes fusion is enabled; `filter`
/// and `project` assume it is disabled.
fn victim_plan(kind: &str) -> LogicalPlan {
    let quotes = || LogicalPlan::source("quotes");
    match kind {
        "filter" => quotes().filter(Expr::col(1).gt(Expr::lit(Value::Float(40.0)))),
        "project" => quotes().project(vec![("price".to_string(), Expr::col(1))]),
        "fused" => quotes()
            .filter(Expr::col(1).gt(Expr::lit(Value::Float(40.0))))
            .project(vec![("price".to_string(), Expr::col(1))]),
        "join" => quotes().join(LogicalPlan::source("news"), 0, 0, 50),
        "aggregate" => quotes().aggregate(Some(0), AggFunc::Count, 0, 100),
        "union" => quotes().union(LogicalPlan::source("quotes")),
        other => panic!("no victim plan for kind '{other}'"),
    }
}

/// An innocent bystander sharing nothing with the victim — and, crucially,
/// containing no node of the victim's kind.
fn survivor_plan(kind: &str) -> LogicalPlan {
    if kind == "aggregate" {
        LogicalPlan::source("news").filter(Expr::col(1).gt(Expr::lit(Value::Int(-1))))
    } else {
        LogicalPlan::source("news").aggregate(Some(0), AggFunc::Count, 0, 100)
    }
}

struct RunOutcome {
    victim_out: Vec<Tuple>,
    survivor_out: Vec<Tuple>,
    quarantined: Vec<CqId>,
    events: Vec<cqac_dsms::engine::QuarantineEvent>,
    runtime_report: cqac_dsms::diag::Report,
    pool_spawns: u64,
    quarantines: u64,
}

fn run_kind(
    kind: &str,
    shards: usize,
    grain: usize,
    stealing: bool,
    fault: Option<Arc<FaultPlan>>,
) -> RunOutcome {
    work::reset();
    let mut e = DsmsEngine::new();
    e.set_fusion(kind == "fused");
    e.set_shards(shards);
    e.set_max_batch_size(16);
    e.set_morsel_batches(grain);
    e.set_stealing(stealing);
    e.set_shard_key("quotes", 0).unwrap();
    e.set_shard_key("news", 0).unwrap();
    e.register_stream("quotes", quote_schema());
    e.register_stream("news", news_schema());
    let victim = e.add_query(victim_plan(kind)).unwrap();
    let survivor = e.add_query(survivor_plan(kind)).unwrap();
    e.set_fault_plan(fault);
    e.push_batch(mixed_feed(240, 7));
    e.finish();
    let events = e.take_quarantine_events();
    let mut quarantined: Vec<CqId> = events.iter().flat_map(|ev| ev.queries.clone()).collect();
    quarantined.sort_unstable();
    quarantined.dedup();
    let snap = work::snapshot();
    RunOutcome {
        victim_out: e.take_outputs(victim),
        survivor_out: e.take_outputs(survivor),
        quarantined,
        events,
        runtime_report: e.runtime_report().clone(),
        pool_spawns: snap.pool_spawns,
        quarantines: snap.quarantines,
    }
}

/// The tentpole property: faulting each operator kind in turn, across
/// shard counts × morsel grains × stealing on/off, quarantines exactly
/// the owning query — the surviving query's outputs are byte-identical to
/// the fault-free run's and no pool worker is ever replaced (kernel
/// panics are caught per invocation, they do not kill threads).
#[test]
fn each_kind_quarantines_only_its_owner() {
    if !fault_modes().contains(&"panic") {
        return;
    }
    for kind in OPERATOR_KINDS {
        for shards in shard_counts() {
            for (grain, stealing) in [(1, false), (4, true)] {
                let clean = run_kind(kind, shards, grain, stealing, None);
                assert!(
                    clean.quarantined.is_empty() && clean.quarantines == 0,
                    "clean run must not quarantine ({kind}, shards={shards})"
                );
                let fault = Arc::new(FaultPlan::new().panic_on(kind, 1));
                let hurt = run_kind(kind, shards, grain, stealing, Some(fault));
                let ctx = format!("kind={kind} shards={shards} grain={grain} steal={stealing}");
                assert_eq!(hurt.quarantined.len(), 1, "one owner quarantined ({ctx})");
                assert_eq!(hurt.quarantines, 1, "quarantine counted once ({ctx})");
                assert_eq!(
                    hurt.survivor_out, clean.survivor_out,
                    "survivor diverged ({ctx})"
                );
                assert_ne!(
                    hurt.victim_out, clean.victim_out,
                    "victim unaffected — fault did not land ({ctx})"
                );
                assert_eq!(
                    hurt.pool_spawns, clean.pool_spawns,
                    "kernel panic must not respawn workers ({ctx})"
                );
                let event = &hurt.events[0];
                assert_eq!(event.kind, kind, "panic attributed to the kind ({ctx})");
                assert!(
                    event.message.starts_with(INJECTED_PANIC_PREFIX),
                    "unexpected payload '{}' ({ctx})",
                    event.message
                );
                assert!(event.report.has_code(Code::OperatorPanic), "{ctx}");
                assert!(event.report.has_code(Code::QuarantinedQuery), "{ctx}");
                assert!(hurt.runtime_report.has_code(Code::OperatorPanic), "{ctx}");
            }
        }
    }
}

/// The 100-seed soak: seed-derived single-panic plans at shards=4 never
/// abort the engine; whenever the fault lands, the quarantined query gets
/// its NL06x report and the surviving query replays bit-identically.
#[test]
fn soak_100_seeds_never_aborts_and_survivors_replay() {
    if !fault_modes().contains(&"panic") {
        return;
    }
    let mut landed = 0u32;
    let mut clean_by_kind: std::collections::HashMap<&str, RunOutcome> =
        std::collections::HashMap::new();
    for seed in 0..100u64 {
        // The plan picks its own (kind, nth); build the matching pair of
        // runs for the kind it chose so fusion is configured right.
        let probe = FaultPlan::seeded(seed, 10);
        let kind = OPERATOR_KINDS
            .iter()
            .find(|k| {
                // Re-derive which kind the seed picked by checking which
                // single trigger the plan would fire for.
                let p = FaultPlan::seeded(seed, 1);
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    p.before_kernel(k, &[]);
                }))
                .is_err()
            })
            .copied()
            .expect("seeded plan targets one kind");
        let clean = clean_by_kind
            .entry(kind)
            .or_insert_with(|| run_kind(kind, 4, 4, true, None));
        let hurt = run_kind(kind, 4, 4, true, Some(Arc::new(probe)));
        assert_eq!(
            hurt.survivor_out, clean.survivor_out,
            "seed {seed}: survivor diverged"
        );
        if hurt.quarantined.is_empty() {
            // nth exceeded the run's invocation count — a legal no-op.
            assert_eq!(hurt.victim_out, clean.victim_out, "seed {seed}");
            assert_eq!(hurt.quarantines, 0, "seed {seed}");
        } else {
            landed += 1;
            assert!(
                hurt.runtime_report.has_code(Code::OperatorPanic)
                    && hurt.runtime_report.has_code(Code::QuarantinedQuery),
                "seed {seed}: quarantine without report"
            );
        }
    }
    assert!(landed >= 40, "only {landed}/100 seeds landed a fault");
}

/// Poison rows are content-triggered, so the quarantine set and the shed
/// and quarantine work counters are identical at every shard count — the
/// invariant CI's fault axis pins.
#[test]
fn shed_and_quarantine_counters_are_shard_invariant() {
    if !fault_modes().contains(&"poison") {
        return;
    }
    let run = |shards: usize| {
        work::reset();
        let mut e = DsmsEngine::new();
        e.set_shards(shards);
        e.set_max_batch_size(16);
        e.set_shard_key("quotes", 0).unwrap();
        e.set_shard_key("news", 0).unwrap();
        e.register_stream("quotes", quote_schema());
        e.register_stream("news", news_schema());
        e.set_overload_policy(Some(OverloadPolicy {
            max_rows_per_flush: 200,
        }));
        e.set_stream_priority("quotes", 1_000);
        e.set_stream_priority("news", 1);
        let q1 = e.add_query(victim_plan("aggregate")).unwrap();
        let q2 = e.add_query(survivor_plan("aggregate")).unwrap();
        // Poison a timestamp that many quote rows carry: the fault fires
        // at the same logical point regardless of shard count.
        let poison = mixed_feed(240, 7)
            .iter()
            .find(|(s, _)| s == "quotes")
            .map(|(_, t)| t.ts)
            .unwrap();
        e.set_fault_plan(Some(Arc::new(FaultPlan::new().with_poison_ts(poison))));
        e.push_batch(mixed_feed(240, 7));
        e.finish();
        let snap = work::snapshot();
        let mut quarantined: Vec<CqId> = e
            .take_quarantine_events()
            .iter()
            .flat_map(|ev| ev.queries.clone())
            .collect();
        quarantined.sort_unstable();
        (
            snap.rows_shed,
            snap.quarantines,
            snap.overload_flushes,
            quarantined,
            e.take_outputs(q1),
            e.take_outputs(q2),
        )
    };
    let baseline = run(1);
    assert!(baseline.0 > 0, "the flood must shed");
    assert!(baseline.1 > 0, "the poison must quarantine");
    for shards in shard_counts() {
        assert_eq!(run(shards), baseline, "shards={shards}");
    }
}

/// An injected worker death loses nothing: the deserted deques replay
/// inline, every query's outputs match the fault-free run, the seat is
/// respawned (exactly one extra counted spawn), and an NL062 diagnostic
/// lands in the runtime report. No query is quarantined — a dying thread
/// is an infrastructure fault, not an operator fault.
#[test]
fn worker_death_recovers_inline_and_respawns_the_seat() {
    if !fault_modes().contains(&"death") {
        return;
    }
    for (grain, stealing) in [(1, false), (4, true)] {
        let clean = run_kind("aggregate", 4, grain, stealing, None);
        let fault = Arc::new(FaultPlan::new().with_worker_death(1, 1));
        let hurt = run_kind("aggregate", 4, grain, stealing, Some(fault));
        let ctx = format!("grain={grain} steal={stealing}");
        assert!(
            hurt.quarantined.is_empty(),
            "death quarantined a CQ ({ctx})"
        );
        assert_eq!(
            hurt.victim_out, clean.victim_out,
            "victim lost rows ({ctx})"
        );
        assert_eq!(
            hurt.survivor_out, clean.survivor_out,
            "survivor lost rows ({ctx})"
        );
        assert_eq!(
            hurt.pool_spawns,
            clean.pool_spawns + 1,
            "exactly one respawn ({ctx})"
        );
        assert!(
            hurt.runtime_report.has_code(Code::WorkerDeath),
            "missing NL062 ({ctx})"
        );
    }
}

/// A seat respawned after a worker death re-seeds the control thread's
/// kernel kill switches on its next job. With the columnar and SIMD
/// switches both off, every row must take the scalar row path — so
/// `row_evals` matches the shards=1 run exactly and `simd_lanes` stays
/// zero even when a shards=4 worker dies mid-flush and is replaced. A
/// respawned seat that silently reverted to the defaults would push its
/// share of rows through the columnar/SIMD kernels and skew both
/// counters.
#[test]
fn respawned_worker_inherits_kernel_kill_switches() {
    use cqac_dsms::ops::{with_columnar_kernels, with_simd_kernels};
    if !fault_modes().contains(&"death") {
        return;
    }
    let death = || Some(Arc::new(FaultPlan::new().with_worker_death(1, 1)));
    let run = |shards: usize, fault: Option<Arc<FaultPlan>>| {
        with_columnar_kernels(false, || {
            with_simd_kernels(false, || {
                let out = run_kind("fused", shards, 4, true, fault);
                let snap = work::snapshot();
                (out, snap.row_evals, snap.simd_lanes)
            })
        })
    };
    let (clean, clean_rows, clean_lanes) = run(1, None);
    assert!(clean_rows > 0, "columnar off must force the row path");
    assert_eq!(clean_lanes, 0, "SIMD off must count zero lanes");
    let (hurt, hurt_rows, hurt_lanes) = run(4, death());
    assert!(
        hurt.runtime_report.has_code(Code::WorkerDeath),
        "death did not land"
    );
    assert_eq!(
        hurt_rows, clean_rows,
        "respawned seat must inherit the columnar kill switch"
    );
    assert_eq!(
        hurt_lanes, 0,
        "respawned seat must inherit the SIMD kill switch"
    );
    assert_eq!(hurt.victim_out, clean.victim_out);
    assert_eq!(hurt.survivor_out, clean.survivor_out);

    // The converse: at the default settings the same faulted run counts
    // SIMD lanes and zero row evals — the re-seed forwards the live
    // switch values, it does not pin a stale 'off'.
    let on = run_kind("fused", 4, 4, true, death());
    let snap = work::snapshot();
    assert!(on.runtime_report.has_code(Code::WorkerDeath));
    assert!(snap.simd_lanes > 0, "default-on run must count SIMD lanes");
    assert_eq!(snap.row_evals, 0, "columnar kernels must handle every row");
    assert_eq!(
        on.victim_out, clean.victim_out,
        "switches must not change outputs"
    );
    assert_eq!(on.survivor_out, clean.survivor_out);
}

/// Overload shedding under a flash-crowd flood: whole batches are shed
/// from the lowest-priority stream only, the same rows at every shard
/// count, and the high-priority stream's query sees every one of its rows
/// (byte-identical to an unguarded run).
#[test]
fn flash_crowd_sheds_low_priority_streams_deterministically() {
    let flood = || {
        let mut feed: Vec<(String, Tuple)> = Vec::new();
        for ts in 1..=40u64 {
            feed.push((
                "quotes".to_string(),
                quote(ts, ts as usize, 100 + ts as u32),
            ));
            // The flash crowd: 12 news rows per tick against 1 quote.
            for i in 0..12u64 {
                feed.push(("news".to_string(), news(ts, (ts + i) as usize, i as i64)));
            }
        }
        feed
    };
    let run = |shards: usize, guarded: bool| {
        work::reset();
        let mut e = DsmsEngine::new();
        e.set_shards(shards);
        e.set_max_batch_size(8);
        e.register_stream("quotes", quote_schema());
        e.register_stream("news", news_schema());
        if guarded {
            e.set_overload_policy(Some(OverloadPolicy {
                max_rows_per_flush: 120,
            }));
            e.set_stream_priority("quotes", 90_000_000);
            e.set_stream_priority("news", 10_000_000);
        }
        let hot = e
            .add_query(
                LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(0.0)))),
            )
            .unwrap();
        let cold = e
            .add_query(
                LogicalPlan::source("news").filter(Expr::col(1).gt(Expr::lit(Value::Int(-1)))),
            )
            .unwrap();
        e.push_batch(flood());
        e.finish();
        let stats = e.stream_stats().clone();
        let snap = work::snapshot();
        (
            e.take_outputs(hot),
            e.take_outputs(cold),
            stats["quotes"].rows_shed,
            stats["news"].rows_shed,
            snap.rows_shed,
            snap.overload_flushes,
            e.overload_report().has_code(Code::OverloadShed),
        )
    };
    let unguarded = run(1, false);
    assert_eq!(unguarded.4, 0, "no policy, no shedding");
    let baseline = run(1, true);
    let (hot_out, cold_out, hot_shed, news_shed, total_shed, flushes, reported) = &baseline;
    assert_eq!(*hot_shed, 0, "the high bidder loses zero rows");
    assert!(*news_shed > 0, "the flood must shed news");
    assert_eq!(*total_shed, *news_shed);
    assert!(*flushes > 0);
    assert!(*reported, "overload_report must carry NL063");
    assert_eq!(hot_out, &unguarded.0, "hot outputs byte-identical");
    assert!(
        cold_out.len() < unguarded.1.len(),
        "shed rows must be missing from the cold query"
    );
    for shards in shard_counts() {
        assert_eq!(run(shards, true), baseline, "shards={shards}");
    }
}

// ---- center-level robustness --------------------------------------------

fn center_submissions() -> Vec<Submission> {
    vec![
        Submission {
            user: UserId(0),
            bid: Money::from_dollars(90.0),
            plan: LogicalPlan::source("quotes")
                .filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0)))),
        },
        Submission {
            user: UserId(1),
            bid: Money::from_dollars(10.0),
            plan: LogicalPlan::source("quotes")
                .filter(Expr::col(1).gt(Expr::lit(Value::Float(150.0)))),
        },
    ]
}

fn center_calibration(n: usize) -> Vec<(String, Tuple)> {
    let mut rng = Lcg(99);
    (0..n)
        .map(|i| {
            (
                "quotes".to_string(),
                quote(
                    i as u64,
                    rng.below(4) as usize,
                    1 + rng.below(20_000) as u32,
                ),
            )
        })
        .collect()
}

/// A serving-phase quarantine voids the bidder's payment for the day and
/// sits her out of the next auction (rejected pre-auction, carrying the
/// quarantine report) — after which the ban lifts.
#[test]
fn center_refunds_and_bans_quarantined_bidder() {
    // Scarce capacity: user 0 wins and pays a loser-quoted price.
    let mut c = DsmsCenter::new(Load::from_units(1.2), Box::new(Cat));
    c.register_stream("quotes", quote_schema());
    let subs = center_submissions();
    let day0 = c.run_auction(&subs, &center_calibration(2000)).unwrap();
    assert!(day0.decisions[0].admitted && !day0.decisions[1].admitted);
    assert!(day0.decisions[0].payment > Money::ZERO);

    // The winner's filter panics during serving: quarantine.
    c.engine_mut()
        .set_fault_plan(Some(Arc::new(FaultPlan::new().panic_on("filter", 1))));
    c.process(
        "quotes",
        (0..50).map(|i| quote(i, i as usize, 500)).collect(),
    );
    c.engine_mut().set_fault_plan(None);

    let day0 = &c.ledger()[0];
    assert_eq!(day0.decisions[0].payment, Money::ZERO, "payment refunded");
    assert_eq!(day0.profit, Money::ZERO, "day profit voided");
    assert_eq!(c.engine().network().num_queries(), 0, "query removed");

    // Next auction: the quarantined bidder is excluded; the runner-up now
    // fits the scarce capacity.
    let day1 = c.run_auction(&subs, &center_calibration(2000)).unwrap();
    let banned = &day1.decisions[0];
    assert!(!banned.admitted);
    let report = banned
        .rejection
        .as_ref()
        .expect("quarantine report attached");
    assert!(report.has_code(Code::OperatorPanic));
    assert!(report.has_code(Code::QuarantinedQuery));
    assert!(
        day1.decisions[1].admitted,
        "capacity freed for the runner-up"
    );

    // The ban is one round only.
    let day2 = c.run_auction(&subs, &center_calibration(2000)).unwrap();
    assert!(day2.decisions[0].admitted, "ban lifted after one round");
    assert!(day2.decisions[0].rejection.is_none());
}

/// The ingress guard wired through the center: stream priorities derive
/// from the admitted bids, so under a flood the low bidder's stream sheds
/// and the high bidder's query keeps every row.
#[test]
fn center_ingress_guard_spares_the_high_bidder() {
    let mut c = DsmsCenter::new(Load::from_units(1000.0), Box::new(Cat)).with_ingress_guard(60);
    c.register_stream("quotes", quote_schema());
    c.register_stream("news", news_schema());
    let subs = vec![
        Submission {
            user: UserId(0),
            bid: Money::from_dollars(90.0),
            plan: LogicalPlan::source("quotes")
                .filter(Expr::col(1).gt(Expr::lit(Value::Float(0.0)))),
        },
        Submission {
            user: UserId(1),
            bid: Money::from_dollars(10.0),
            plan: LogicalPlan::source("news").filter(Expr::col(1).gt(Expr::lit(Value::Int(-1)))),
        },
    ];
    let record = c.run_auction(&subs, &center_calibration(300)).unwrap();
    assert!(record.decisions.iter().all(|d| d.admitted));
    let hot = record.decisions[0].cq.unwrap();

    // One mixed flood in a single flush: both streams pending at once.
    let mut flood: Vec<(String, Tuple)> = Vec::new();
    for ts in 1..=30u64 {
        flood.push(("quotes".to_string(), quote(ts, ts as usize, 200)));
        for i in 0..6u64 {
            flood.push(("news".to_string(), news(ts, (ts + i) as usize, i as i64)));
        }
    }
    c.engine_mut().push_batch(flood.clone());

    let stats = c.engine().stream_stats();
    assert_eq!(stats["quotes"].rows_shed, 0, "high bid never shed");
    assert!(stats["news"].rows_shed > 0, "low bid shed under the flood");
    // The hot query saw all 30 of its rows.
    assert_eq!(c.take_outputs(hot).len(), 30);
}

// ---- fallible ingestion & registration ----------------------------------

#[test]
fn try_push_reports_unknown_stream_with_the_legacy_message() {
    let mut e = DsmsEngine::new();
    let err = e.try_push("nope", quote(1, 0, 100)).unwrap_err();
    assert_eq!(
        err,
        IngestError::UnknownStream {
            stream: "nope".to_string()
        }
    );
    assert_eq!(
        err.to_string(),
        "unknown stream 'nope': call register_stream before pushing"
    );
}

#[test]
fn try_push_rejects_nonconforming_rows() {
    let mut e = DsmsEngine::new();
    e.register_stream("quotes", quote_schema());
    let bad = Tuple::new(1, vec![Value::Int(3)]);
    assert_eq!(
        e.try_push("quotes", bad.clone()).unwrap_err(),
        IngestError::NonConforming {
            stream: "quotes".to_string(),
            row: 0
        }
    );
    // try_push_batch reports the failing *pair* index.
    let err = e
        .try_push_batch(vec![
            ("quotes".to_string(), quote(1, 0, 100)),
            ("quotes".to_string(), bad),
        ])
        .unwrap_err();
    assert_eq!(
        err,
        IngestError::NonConforming {
            stream: "quotes".to_string(),
            row: 1
        }
    );
}

/// `try_push_rows` validates the whole slice before buffering anything:
/// a failed call leaves the engine exactly as it was.
#[test]
fn try_push_rows_is_atomic() {
    let build = || {
        let mut e = DsmsEngine::new();
        e.register_stream("quotes", quote_schema());
        let cq = e
            .add_query(
                LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(0.0)))),
            )
            .unwrap();
        (e, cq)
    };
    let (mut touched, cq_t) = build();
    let err = touched
        .try_push_rows(
            "quotes",
            vec![
                quote(1, 0, 100),
                Tuple::new(2, vec![Value::Int(9)]),
                quote(3, 0, 100),
            ],
        )
        .unwrap_err();
    assert_eq!(
        err,
        IngestError::NonConforming {
            stream: "quotes".to_string(),
            row: 1
        }
    );
    let (mut pristine, cq_p) = build();
    touched.push_rows("quotes", vec![quote(5, 1, 300)]);
    pristine.push_rows("quotes", vec![quote(5, 1, 300)]);
    touched.finish();
    pristine.finish();
    assert_eq!(
        touched.take_outputs(cq_t),
        pristine.take_outputs(cq_p),
        "failed push must not leave partial rows behind"
    );
    assert_eq!(touched.stream_stats()["quotes"].count, 1);
}

#[test]
fn try_register_stream_reports_invalid_shard_keys() {
    let mut e = DsmsEngine::new();
    // Declaring a key on an unregistered stream is allowed...
    e.set_shard_key("quotes", 7).unwrap();
    // ...but registering a schema the key does not fit must fail — as an
    // Err now, not a panic.
    assert!(e.try_register_stream("quotes", quote_schema()).is_err());
}
