//! Values, schemas, tuples, and tuple batches — the data plane of the DSMS
//! substrate.
//!
//! The engine is deliberately simple: row-oriented tuples with a small
//! dynamic value enum, because the auction paper needs a *realistic load
//! profile* from the substrate (per-tuple operator costs, selectivities,
//! shared processing). Throughput comes from the unit of execution instead:
//! operators, routing, and the run loop all move [`TupleBatch`]es — a shared
//! schema plus a vector of rows — so per-tuple bookkeeping (queue pushes,
//! downstream fan-out, watermark checks, timing probes) is amortized over
//! up to [`TupleBatch::DEFAULT_MAX_BATCH`] rows at a time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string (cheaply clonable).
    Str,
}

/// A runtime value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(Arc<str>),
}

impl Value {
    /// A string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The value's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Boolean content, if the value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric content as f64 (ints widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer content, if the value is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String content, if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A named, typed column.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of fields.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Schema {
    /// The fields, in column order.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Self { fields }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The type of column `idx`.
    pub fn data_type(&self, idx: usize) -> DataType {
        self.fields[idx].data_type
    }

    /// Concatenates two schemas (for joins), prefixing duplicated names.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            let name = if self.index_of(&f.name).is_some() {
                format!("right.{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.data_type));
        }
        Schema::new(fields)
    }
}

/// A timestamped tuple. `ts` is event time in milliseconds; all engine
/// windowing is event-time based for deterministic replay.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    /// Event timestamp (ms).
    pub ts: u64,
    /// Column values, aligned to the stream's [`Schema`].
    pub values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple.
    pub fn new(ts: u64, values: Vec<Value>) -> Self {
        Self { ts, values }
    }

    /// The value in column `idx`.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Validates the tuple against a schema.
    pub fn conforms_to(&self, schema: &Schema) -> bool {
        self.values.len() == schema.len()
            && self
                .values
                .iter()
                .zip(&schema.fields)
                .all(|(v, f)| v.data_type() == f.data_type)
    }
}

/// A batch of tuples sharing one schema — the unit of execution everywhere
/// in the engine (ingestion, operator processing, routing, sink delivery).
///
/// The schema rides along behind an [`Arc`] so producing a batch from an
/// operator costs one pointer clone, never a schema copy. Rows keep their
/// arrival order; all engine determinism guarantees are stated over the
/// concatenation of a stream's batches, which is invariant under how the
/// stream was chunked (tested property: scalar vs. batched equivalence).
#[derive(Clone, Debug, PartialEq)]
pub struct TupleBatch {
    schema: Arc<Schema>,
    rows: Vec<Tuple>,
}

impl TupleBatch {
    /// Default cap on rows per batch used by the engine's ingestion paths.
    pub const DEFAULT_MAX_BATCH: usize = 1024;

    /// An empty batch over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        Self {
            schema,
            rows: Vec::new(),
        }
    }

    /// An empty batch with row capacity reserved.
    pub fn with_capacity(schema: Arc<Schema>, capacity: usize) -> Self {
        Self {
            schema,
            rows: Vec::with_capacity(capacity),
        }
    }

    /// A batch from existing rows.
    ///
    /// In debug builds every row is checked against the schema; release
    /// builds trust the caller (operators construct conforming rows by
    /// construction).
    pub fn from_rows(schema: Arc<Schema>, rows: Vec<Tuple>) -> Self {
        debug_assert!(
            rows.iter().all(|t| t.conforms_to(&schema)),
            "batch rows must conform to the batch schema"
        );
        Self { schema, rows }
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, in arrival order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Iterates over the rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.rows.iter()
    }

    /// Consumes the batch, yielding its rows.
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    /// Appends one row.
    pub fn push(&mut self, tuple: Tuple) {
        debug_assert!(
            tuple.conforms_to(&self.schema),
            "row must conform to the batch schema"
        );
        self.rows.push(tuple);
    }

    /// Appends rows from an iterator.
    pub fn extend<I: IntoIterator<Item = Tuple>>(&mut self, rows: I) {
        for t in rows {
            self.push(t);
        }
    }

    /// Splits off the rows from index `at` onward into a new batch sharing
    /// the same schema (mirrors [`Vec::split_off`]).
    pub fn split_off(&mut self, at: usize) -> TupleBatch {
        TupleBatch {
            schema: self.schema.clone(),
            rows: self.rows.split_off(at),
        }
    }

    /// The largest event timestamp in the batch, if any.
    pub fn max_ts(&self) -> Option<u64> {
        self.rows.iter().map(|t| t.ts).max()
    }
}

impl<'a> IntoIterator for &'a TupleBatch {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("abc").as_str(), Some("abc"));
        assert_eq!(Value::str("abc").data_type(), DataType::Str);
        assert_eq!(Value::Int(3).as_bool(), None);
    }

    #[test]
    fn schema_lookup_and_join() {
        let left = Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("price", DataType::Float),
        ]);
        let right = Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("headline", DataType::Str),
        ]);
        assert_eq!(left.index_of("price"), Some(1));
        assert_eq!(left.index_of("nope"), None);
        let joined = left.join(&right);
        assert_eq!(joined.len(), 4);
        assert_eq!(joined.fields[2].name, "right.symbol");
        assert_eq!(joined.fields[3].name, "headline");
    }

    #[test]
    fn tuple_conformance() {
        let schema = Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("price", DataType::Float),
        ]);
        let good = Tuple::new(1, vec![Value::str("IBM"), Value::Float(120.0)]);
        let bad_type = Tuple::new(1, vec![Value::Float(120.0), Value::str("IBM")]);
        let bad_len = Tuple::new(1, vec![Value::str("IBM")]);
        assert!(good.conforms_to(&schema));
        assert!(!bad_type.conforms_to(&schema));
        assert!(!bad_len.conforms_to(&schema));
    }

    fn quote_batch(n: usize) -> TupleBatch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("price", DataType::Float),
        ]));
        let rows = (0..n)
            .map(|i| {
                Tuple::new(
                    i as u64 * 10,
                    vec![Value::str("IBM"), Value::Float(i as f64)],
                )
            })
            .collect();
        TupleBatch::from_rows(schema, rows)
    }

    #[test]
    fn batch_split_off_partitions_rows_and_shares_schema() {
        let mut batch = quote_batch(5);
        let tail = batch.split_off(2);
        assert_eq!(batch.len(), 2);
        assert_eq!(tail.len(), 3);
        assert!(Arc::ptr_eq(batch.schema(), tail.schema()));
        assert_eq!(tail.rows()[0].ts, 20);
        assert_eq!(batch.max_ts(), Some(10));
        assert_eq!(tail.max_ts(), Some(40));
    }

    #[test]
    fn batch_extend_and_iteration() {
        let mut batch = quote_batch(2);
        let extra = quote_batch(3);
        batch.extend(extra.into_rows());
        assert_eq!(batch.len(), 5);
        assert!(!batch.is_empty());
        let ts: Vec<u64> = batch.iter().map(|t| t.ts).collect();
        assert_eq!(ts, vec![0, 10, 0, 10, 20]);
        let ts2: Vec<u64> = (&batch).into_iter().map(|t| t.ts).collect();
        assert_eq!(ts, ts2);
    }

    #[test]
    fn empty_batch_has_no_max_ts() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        let batch = TupleBatch::new(schema);
        assert!(batch.is_empty());
        assert_eq!(batch.max_ts(), None);
    }
}
