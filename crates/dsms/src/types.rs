//! Values, schemas, and tuples — the data plane of the DSMS substrate.
//!
//! The engine is deliberately simple: row-oriented tuples with a small
//! dynamic value enum, because the auction paper needs a *realistic load
//! profile* from the substrate (per-tuple operator costs, selectivities,
//! shared processing), not columnar throughput records.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string (cheaply clonable).
    Str,
}

/// A runtime value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(Arc<str>),
}

impl Value {
    /// A string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The value's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Boolean content, if the value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric content as f64 (ints widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer content, if the value is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String content, if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A named, typed column.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of fields.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Schema {
    /// The fields, in column order.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Self { fields }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The type of column `idx`.
    pub fn data_type(&self, idx: usize) -> DataType {
        self.fields[idx].data_type
    }

    /// Concatenates two schemas (for joins), prefixing duplicated names.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            let name = if self.index_of(&f.name).is_some() {
                format!("right.{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.data_type));
        }
        Schema::new(fields)
    }
}

/// A timestamped tuple. `ts` is event time in milliseconds; all engine
/// windowing is event-time based for deterministic replay.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    /// Event timestamp (ms).
    pub ts: u64,
    /// Column values, aligned to the stream's [`Schema`].
    pub values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple.
    pub fn new(ts: u64, values: Vec<Value>) -> Self {
        Self { ts, values }
    }

    /// The value in column `idx`.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Validates the tuple against a schema.
    pub fn conforms_to(&self, schema: &Schema) -> bool {
        self.values.len() == schema.len()
            && self
                .values
                .iter()
                .zip(&schema.fields)
                .all(|(v, f)| v.data_type() == f.data_type)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("abc").as_str(), Some("abc"));
        assert_eq!(Value::str("abc").data_type(), DataType::Str);
        assert_eq!(Value::Int(3).as_bool(), None);
    }

    #[test]
    fn schema_lookup_and_join() {
        let left = Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("price", DataType::Float),
        ]);
        let right = Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("headline", DataType::Str),
        ]);
        assert_eq!(left.index_of("price"), Some(1));
        assert_eq!(left.index_of("nope"), None);
        let joined = left.join(&right);
        assert_eq!(joined.len(), 4);
        assert_eq!(joined.fields[2].name, "right.symbol");
        assert_eq!(joined.fields[3].name, "headline");
    }

    #[test]
    fn tuple_conformance() {
        let schema = Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("price", DataType::Float),
        ]);
        let good = Tuple::new(1, vec![Value::str("IBM"), Value::Float(120.0)]);
        let bad_type = Tuple::new(1, vec![Value::Float(120.0), Value::str("IBM")]);
        let bad_len = Tuple::new(1, vec![Value::str("IBM")]);
        assert!(good.conforms_to(&schema));
        assert!(!bad_type.conforms_to(&schema));
        assert!(!bad_len.conforms_to(&schema));
    }
}
