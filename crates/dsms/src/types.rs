//! Values, schemas, tuples, and columnar tuple batches — the data plane of
//! the DSMS substrate.
//!
//! The batch layout is **columnar**: a [`TupleBatch`] is a shared
//! `Arc<Schema>`, one event-timestamp vector, and one typed [`Column`] per
//! field (`Vec<bool>` / `Vec<i64>` / `Vec<f64>` / `Vec<Arc<str>>`). Kernels
//! dispatch on a column's type **once per batch** and then run tight typed
//! loops: filter is a selection pass over a typed column, project is a
//! column take/reorder, and fused chains thread a selection vector through
//! staged column kernels. The row-oriented [`Tuple`] survives at the
//! boundaries — ingestion accepts rows and converts
//! ([`TupleBatch::from_rows`], [`TupleBatch::push`]), and sinks materialize
//! rows on demand ([`TupleBatch::iter_rows`], [`TupleBatch::into_rows`]) —
//! so the public API of the engine is unchanged by the columnar layout.
//!
//! The [`work`] module counts machine-independent execution work (row
//! materializations, per-row expression evaluations, columnar kernel
//! passes, defensive batch copies) so benchmarks can compare execution
//! strategies deterministically on throttle-noisy hardware.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string (cheaply clonable).
    Str,
}

/// A runtime value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(Arc<str>),
}

impl Value {
    /// A string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The value's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Boolean content, if the value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric content as f64 (ints widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer content, if the value is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String content, if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A named, typed column.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of fields.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Schema {
    /// The fields, in column order.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Self { fields }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The type of column `idx`.
    pub fn data_type(&self, idx: usize) -> DataType {
        self.fields[idx].data_type
    }

    /// Concatenates two schemas (for joins), prefixing duplicated names.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            let name = if self.index_of(&f.name).is_some() {
                format!("right.{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.data_type));
        }
        Schema::new(fields)
    }
}

/// A timestamped tuple. `ts` is event time in milliseconds; all engine
/// windowing is event-time based for deterministic replay.
///
/// With the columnar [`TupleBatch`] layout, `Tuple` is a *boundary* type:
/// ingestion converts rows into columns and sinks materialize rows back
/// out. Inside the engine, operators work on columns.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    /// Event timestamp (ms).
    pub ts: u64,
    /// Column values, aligned to the stream's [`Schema`].
    pub values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple.
    pub fn new(ts: u64, values: Vec<Value>) -> Self {
        Self { ts, values }
    }

    /// The value in column `idx`.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Validates the tuple against a schema.
    pub fn conforms_to(&self, schema: &Schema) -> bool {
        self.values.len() == schema.len()
            && self
                .values
                .iter()
                .zip(&schema.fields)
                .all(|(v, f)| v.data_type() == f.data_type)
    }
}

/// One typed column of a [`TupleBatch`]: a dense vector of values, all of
/// one [`DataType`].
///
/// Kernels match on the variant once per batch and then run over the typed
/// slice — no per-row [`Value`] enum dispatch, no per-row allocation.
///
/// String data has two physical layouts sharing one logical type
/// ([`DataType::Str`]): the plain [`Column::Str`] vector and the
/// dictionary-encoded [`Column::Dict`] form built at the ingestion and
/// merge boundaries for low-cardinality columns. The two compare equal
/// row-for-row ([`PartialEq`] is *logical*), so operators and tests may
/// freely mix them.
#[derive(Clone, Debug)]
pub enum Column {
    /// Boolean column.
    Bool(Vec<bool>),
    /// 64-bit integer column.
    Int(Vec<i64>),
    /// 64-bit float column.
    Float(Vec<f64>),
    /// String column (shared `Arc<str>` payloads, cheap to gather).
    Str(Vec<Arc<str>>),
    /// Dictionary-encoded string column: row `i` holds
    /// `dict[codes[i]]`. Equality predicates compare the `u32` codes,
    /// joins and group-bys hash each distinct code once instead of
    /// hashing bytes per row, and gathers move codes instead of `Arc`
    /// refcounts. Built by [`Column::dict_encode`] when the distinct
    /// count stays within [`Column::DICT_MAX_CARDINALITY`]; columns that
    /// outgrow the dictionary fall back to [`Column::Str`] transparently.
    ///
    /// Invariants: every code indexes into `dict`, and `dict` entries are
    /// distinct (so equal codes ⇔ equal strings).
    Dict {
        /// Per-row indexes into `dict`.
        codes: Vec<u32>,
        /// Distinct string payloads, in first-appearance order.
        dict: Vec<Arc<str>>,
        /// Codes of the lexicographically smallest and largest dictionary
        /// entries — range-predicate pruning metadata maintained by every
        /// dictionary builder (`(0, 0)` for an empty dictionary). A range
        /// predicate that rejects both extremes rejects every row of the
        /// batch without a per-row scan
        /// ([`work::WorkSnapshot::dict_batches_pruned`] counts those
        /// short-circuits).
        extremes: (u32, u32),
    },
}

/// Codes of the lexicographically smallest and largest entries of a
/// dictionary (`(0, 0)` when empty).
fn dict_extremes(dict: &[Arc<str>]) -> (u32, u32) {
    let (mut lo, mut hi) = (0u32, 0u32);
    for (i, s) in dict.iter().enumerate() {
        if **s < *dict[lo as usize] {
            lo = i as u32;
        }
        if **s > *dict[hi as usize] {
            hi = i as u32;
        }
    }
    (lo, hi)
}

impl Column {
    /// Cardinality bound for dictionary encoding: a string column whose
    /// distinct count exceeds this stays (or becomes) [`Column::Str`] —
    /// past it, per-row code indirection stops paying for itself.
    pub const DICT_MAX_CARDINALITY: usize = 256;
    /// An empty column of the given type with reserved capacity.
    pub fn with_capacity(data_type: DataType, capacity: usize) -> Column {
        match data_type {
            DataType::Bool => Column::Bool(Vec::with_capacity(capacity)),
            DataType::Int => Column::Int(Vec::with_capacity(capacity)),
            DataType::Float => Column::Float(Vec::with_capacity(capacity)),
            DataType::Str => Column::Str(Vec::with_capacity(capacity)),
        }
    }

    /// A column holding `n` copies of one value (scalar broadcast).
    ///
    /// A string broadcast is O(1) in the value: it becomes a dictionary
    /// column with a single entry and zeroed codes instead of `n` `Arc`
    /// refcount bumps.
    pub fn from_value(v: &Value, n: usize) -> Column {
        match v {
            Value::Bool(b) => Column::Bool(vec![*b; n]),
            Value::Int(i) => Column::Int(vec![*i; n]),
            Value::Float(f) => Column::Float(vec![*f; n]),
            Value::Str(s) => Column::Dict {
                codes: vec![0; n],
                dict: vec![s.clone()],
                extremes: (0, 0),
            },
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Bool(_) => DataType::Bool,
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) | Column::Dict { .. } => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Dict { codes, .. } => codes.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one value.
    ///
    /// # Panics
    /// Panics when the value's type does not match the column — a columnar
    /// store cannot hold a mistyped cell, so this is a hard error rather
    /// than the row layout's debug-only check.
    pub fn push(&mut self, v: Value) {
        if let Column::Dict {
            codes,
            dict,
            extremes,
        } = self
        {
            if let Value::Str(s) = v {
                // Intern: dictionaries stay small (bounded below), so a
                // linear probe beats hashing. A value that would push the
                // dictionary past its cardinality bound decodes the
                // column back to the plain layout first.
                if let Some(code) = dict.iter().position(|d| **d == *s) {
                    codes.push(code as u32);
                } else if dict.len() < Self::DICT_MAX_CARDINALITY {
                    let code = dict.len() as u32;
                    if dict.is_empty() || *s < *dict[extremes.0 as usize] {
                        extremes.0 = code;
                    }
                    if dict.is_empty() || *s > *dict[extremes.1 as usize] {
                        extremes.1 = code;
                    }
                    dict.push(s);
                    codes.push(code);
                } else {
                    *self = self.decode_to_str();
                    self.push(Value::Str(s));
                }
                return;
            }
            panic!(
                "cannot push {:?} value into {:?} column",
                v.data_type(),
                DataType::Str
            );
        }
        match (self, v) {
            (Column::Bool(col), Value::Bool(b)) => col.push(b),
            (Column::Int(col), Value::Int(i)) => col.push(i),
            (Column::Float(col), Value::Float(f)) => col.push(f),
            (Column::Str(col), Value::Str(s)) => col.push(s),
            (col, v) => panic!(
                "cannot push {:?} value into {:?} column",
                v.data_type(),
                col.data_type()
            ),
        }
    }

    /// Materializes the value at row `i` (clones the cell; `Str` cells are
    /// `Arc`-shared, so this never copies string bytes).
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Bool(v) => Value::Bool(v[i]),
            Column::Int(v) => Value::Int(v[i]),
            Column::Float(v) => Value::Float(v[i]),
            Column::Str(v) => Value::Str(v[i].clone()),
            Column::Dict { codes, dict, .. } => Value::Str(dict[codes[i] as usize].clone()),
        }
    }

    /// The rows as a `bool` slice, if this is a boolean column.
    pub fn as_bools(&self) -> Option<&[bool]> {
        match self {
            Column::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The rows as an `i64` slice, if this is an integer column.
    pub fn as_ints(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The rows as an `f64` slice, if this is a float column.
    pub fn as_floats(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The rows as an `Arc<str>` slice, if this is a **plain** string
    /// column ([`Column::Dict`] returns `None` — use [`Column::str_at`]
    /// or [`Column::as_dict`] for layout-agnostic access).
    pub fn as_strs(&self) -> Option<&[Arc<str>]> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The codes and dictionary, if this is a dictionary-encoded column.
    pub fn as_dict(&self) -> Option<(&[u32], &[Arc<str>])> {
        match self {
            Column::Dict { codes, dict, .. } => Some((codes, dict)),
            _ => None,
        }
    }

    /// Codes of the lexicographically smallest and largest dictionary
    /// entries, if this is a (non-empty) dictionary-encoded column.
    pub fn dict_extreme_codes(&self) -> Option<(u32, u32)> {
        match self {
            Column::Dict { dict, extremes, .. } if !dict.is_empty() => Some(*extremes),
            _ => None,
        }
    }

    /// The string payload at row `i` under either string layout; `None`
    /// for non-string columns.
    pub fn str_at(&self, i: usize) -> Option<&Arc<str>> {
        match self {
            Column::Str(v) => Some(&v[i]),
            Column::Dict { codes, dict, .. } => Some(&dict[codes[i] as usize]),
            _ => None,
        }
    }

    /// Dictionary-encodes a string column when its distinct count fits
    /// [`Column::DICT_MAX_CARDINALITY`]; any other column (or a
    /// high-cardinality string column) is returned unchanged. Dictionary
    /// order is first appearance, so the encoding is deterministic. This
    /// is the ingestion-boundary builder — all per-row byte hashing
    /// happens here, once, instead of inside every downstream predicate.
    pub fn dict_encode(self) -> Column {
        let Column::Str(v) = self else { return self };
        let mut by_payload: std::collections::HashMap<Arc<str>, u32> =
            std::collections::HashMap::new();
        let mut dict: Vec<Arc<str>> = Vec::new();
        let mut codes: Vec<u32> = Vec::with_capacity(v.len());
        for s in &v {
            match by_payload.get(s) {
                Some(&code) => codes.push(code),
                None => {
                    if dict.len() >= Self::DICT_MAX_CARDINALITY {
                        return Column::Str(v); // too many distincts: stay plain
                    }
                    let code = dict.len() as u32;
                    by_payload.insert(s.clone(), code);
                    dict.push(s.clone());
                    codes.push(code);
                }
            }
        }
        let extremes = dict_extremes(&dict);
        Column::Dict {
            codes,
            dict,
            extremes,
        }
    }

    /// Decodes a dictionary column back to the plain layout (cells stay
    /// `Arc`-shared with the dictionary — no byte copies). Non-dictionary
    /// columns are cloned as-is.
    fn decode_to_str(&self) -> Column {
        match self {
            Column::Dict { codes, dict, .. } => {
                Column::Str(codes.iter().map(|&c| dict[c as usize].clone()).collect())
            }
            other => other.clone(),
        }
    }

    /// Gathers the rows at the given indices into a new column (the
    /// selection-vector materialization kernel). Dictionary columns
    /// gather codes (4-byte moves) and share the dictionary.
    pub fn take(&self, sel: &[u32]) -> Column {
        match self {
            Column::Bool(v) => Column::Bool(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Int(v) => Column::Int(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Float(v) => Column::Float(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Str(v) => Column::Str(sel.iter().map(|&i| v[i as usize].clone()).collect()),
            Column::Dict {
                codes,
                dict,
                extremes,
            } => Column::Dict {
                codes: sel.iter().map(|&i| codes[i as usize]).collect(),
                dict: dict.clone(),
                extremes: *extremes,
            },
        }
    }

    /// Splits off the rows from index `at` onward (mirrors
    /// [`Vec::split_off`]). Both halves of a dictionary column keep the
    /// full dictionary.
    pub fn split_off(&mut self, at: usize) -> Column {
        match self {
            Column::Bool(v) => Column::Bool(v.split_off(at)),
            Column::Int(v) => Column::Int(v.split_off(at)),
            Column::Float(v) => Column::Float(v.split_off(at)),
            Column::Str(v) => Column::Str(v.split_off(at)),
            Column::Dict {
                codes,
                dict,
                extremes,
            } => Column::Dict {
                codes: codes.split_off(at),
                dict: dict.clone(),
                extremes: *extremes,
            },
        }
    }

    /// Appends all rows of `other` (must have the same logical type).
    /// String layouts mix freely: appending a dictionary column to
    /// another remaps codes through a dictionary union (byte comparisons
    /// at dictionary granularity only), and a union that outgrows the
    /// cardinality bound falls back to the plain layout.
    pub fn append(&mut self, mut other: Column) {
        // Mixed or dictionary string layouts first (logical type Str).
        match (&mut *self, &mut other) {
            (
                Column::Dict {
                    codes,
                    dict,
                    extremes,
                },
                Column::Dict {
                    codes: ocodes,
                    dict: odict,
                    ..
                },
            ) => {
                if dict == odict {
                    codes.append(ocodes);
                    return;
                }
                // Dictionary union: remap `other`'s codes into ours.
                let mut remap: Vec<u32> = Vec::with_capacity(odict.len());
                for s in odict.iter() {
                    match dict.iter().position(|d| d == s) {
                        Some(code) => remap.push(code as u32),
                        None => {
                            if dict.len() >= Self::DICT_MAX_CARDINALITY {
                                // Union too wide: fall back to plain.
                                let mut plain = self.decode_to_str();
                                plain.append(other.decode_to_str());
                                *self = plain;
                                return;
                            }
                            let code = dict.len() as u32;
                            if dict.is_empty() || **s < *dict[extremes.0 as usize] {
                                extremes.0 = code;
                            }
                            if dict.is_empty() || **s > *dict[extremes.1 as usize] {
                                extremes.1 = code;
                            }
                            dict.push(s.clone());
                            remap.push(code);
                        }
                    }
                }
                codes.extend(ocodes.iter().map(|&c| remap[c as usize]));
                return;
            }
            (Column::Dict { .. }, Column::Str(b)) => {
                for s in b.drain(..) {
                    self.push(Value::Str(s));
                }
                return;
            }
            (Column::Str(a), Column::Dict { codes, dict, .. }) => {
                a.extend(codes.iter().map(|&c| dict[c as usize].clone()));
                return;
            }
            _ => {}
        }
        match (self, &mut other) {
            (Column::Bool(a), Column::Bool(b)) => a.append(b),
            (Column::Int(a), Column::Int(b)) => a.append(b),
            (Column::Float(a), Column::Float(b)) => a.append(b),
            (Column::Str(a), Column::Str(b)) => a.append(b),
            (a, b) => panic!(
                "cannot append {:?} column to {:?} column",
                b.data_type(),
                a.data_type()
            ),
        }
    }
}

/// Logical row equality: the two string layouts ([`Column::Str`] and
/// [`Column::Dict`]) compare equal when they hold the same rows, so batch
/// equality is representation-independent. Same-layout columns compare
/// their vectors directly; dictionary pairs sharing an equal dictionary
/// compare codes.
impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Column::Bool(a), Column::Bool(b)) => a == b,
            (Column::Int(a), Column::Int(b)) => a == b,
            (Column::Float(a), Column::Float(b)) => a == b,
            (Column::Str(a), Column::Str(b)) => a == b,
            (
                Column::Dict { codes, dict, .. },
                Column::Dict {
                    codes: ocodes,
                    dict: odict,
                    ..
                },
            ) if dict == odict => codes == ocodes,
            (
                a @ (Column::Str(_) | Column::Dict { .. }),
                b @ (Column::Str(_) | Column::Dict { .. }),
            ) => {
                a.len() == b.len()
                    && (0..a.len()).all(|i| a.str_at(i).unwrap() == b.str_at(i).unwrap())
            }
            _ => false,
        }
    }
}

/// A batch of tuples sharing one schema — the unit of execution everywhere
/// in the engine (ingestion, operator processing, routing, sink delivery).
///
/// The layout is **columnar**: event timestamps and each field live in
/// their own typed vector (see [`Column`]), and the schema rides along
/// behind an [`Arc`] so producing a batch from an operator costs one
/// pointer clone. Rows keep their arrival order; all engine determinism
/// guarantees are stated over the concatenation of a stream's batches,
/// which is invariant under how the stream was chunked (tested property:
/// scalar vs. batched equivalence).
///
/// The row data itself is **copy-on-write**: the timestamp vector and the
/// column list sit behind their own [`Arc`]s, so `TupleBatch::clone` is a
/// pointer clone — `N` node consumers of one fan-out share the columns
/// instead of paying `N−1` deep copies. Column data is copied only when a
/// holder *mutates* a still-shared batch
/// ([`work::WorkSnapshot::batch_deep_clones`] counts exactly those
/// copies), which the engine's operators never do: readers read shared
/// columns, writers build fresh batches.
///
/// **Invariant** (checked by `debug_assert` in every constructor and
/// mutator): the timestamp vector and every column have the same length,
/// and column `i`'s type equals `schema.fields[i].data_type`.
#[derive(Clone, Debug, PartialEq)]
pub struct TupleBatch {
    schema: Arc<Schema>,
    ts: Arc<Vec<u64>>,
    columns: Arc<Vec<Column>>,
}

impl TupleBatch {
    /// Default cap on rows per batch used by the engine's ingestion paths.
    pub const DEFAULT_MAX_BATCH: usize = 1024;

    /// An empty batch over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        Self::with_capacity(schema, 0)
    }

    /// An empty batch with row capacity reserved in every column.
    pub fn with_capacity(schema: Arc<Schema>, capacity: usize) -> Self {
        let columns = schema
            .fields
            .iter()
            .map(|f| Column::with_capacity(f.data_type, capacity))
            .collect();
        Self {
            schema,
            ts: Arc::new(Vec::with_capacity(capacity)),
            columns: Arc::new(columns),
        }
    }

    /// Mutable access to the timestamp vector — copy-on-write: still-shared
    /// timestamps are copied first (uncounted; the aligned
    /// [`TupleBatch::columns_mut`] call counts the batch copy once).
    fn ts_mut(&mut self) -> &mut Vec<u64> {
        Arc::make_mut(&mut self.ts)
    }

    /// Mutable access to the column list — copy-on-write: mutating a batch
    /// whose columns another holder still shares copies the column data
    /// first, counted by [`work::WorkSnapshot::batch_deep_clones`].
    fn columns_mut(&mut self) -> &mut Vec<Column> {
        if Arc::strong_count(&self.columns) > 1 {
            work::count_batch_deep_clone();
        }
        Arc::make_mut(&mut self.columns)
    }

    /// A batch from row-oriented tuples (the ingestion boundary): each
    /// row's values are scattered into the typed columns.
    ///
    /// In debug builds every row is checked against the schema; release
    /// builds trust the caller up to the per-cell type check (a mistyped
    /// cell panics in [`Column::push`]).
    pub fn from_rows(schema: Arc<Schema>, rows: Vec<Tuple>) -> Self {
        debug_assert!(
            rows.iter().all(|t| t.conforms_to(&schema)),
            "batch rows must conform to the batch schema"
        );
        let mut batch = Self::with_capacity(schema, rows.len());
        for t in rows {
            batch.push(t);
        }
        // Ingestion boundary: dictionary-encode low-cardinality string
        // columns once, so every downstream predicate compares u32 codes
        // and every key extraction hashes each distinct payload once.
        for col in batch.columns_mut() {
            if matches!(col, Column::Str(_)) {
                let plain = std::mem::replace(col, Column::Str(Vec::new()));
                *col = plain.dict_encode();
            }
        }
        batch
    }

    /// A batch directly from columnar parts (the kernel-output path).
    ///
    /// # Panics
    /// Debug builds panic when lengths or column types are inconsistent
    /// with `schema`.
    pub fn from_columns(schema: Arc<Schema>, ts: Vec<u64>, columns: Vec<Column>) -> Self {
        let batch = Self {
            schema,
            ts: Arc::new(ts),
            columns: Arc::new(columns),
        };
        batch.debug_check_invariants();
        batch
    }

    /// Asserts the length/type invariants in debug builds.
    fn debug_check_invariants(&self) {
        debug_assert_eq!(
            self.columns.len(),
            self.schema.len(),
            "one column per schema field"
        );
        debug_assert!(
            self.columns.iter().all(|c| c.len() == self.ts.len()),
            "every column must match the timestamp vector length"
        );
        debug_assert!(
            self.columns
                .iter()
                .zip(&self.schema.fields)
                .all(|(c, f)| c.data_type() == f.data_type),
            "column types must match the schema"
        );
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Re-owns the batch under another (structurally equal) schema handle —
    /// zero-copy: only the `Arc` pointer changes. Used by pass-through
    /// operators (filter fast path, union) so their outputs carry the
    /// operator's own schema handle.
    pub fn with_schema(mut self, schema: Arc<Schema>) -> Self {
        debug_assert!(
            schema
                .fields
                .iter()
                .zip(&self.schema.fields)
                .all(|(a, b)| a.data_type == b.data_type)
                && schema.len() == self.schema.len(),
            "re-owning schema must be type-compatible"
        );
        self.schema = schema;
        self
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// The event timestamps, in arrival order.
    pub fn ts(&self) -> &[u64] {
        &self.ts
    }

    /// The typed column at index `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// All columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Materializes row `i` as a [`Tuple`] (the row-view accessor for
    /// row-oriented consumers: joins, sinks, the per-row fallback kernels).
    pub fn row(&self, i: usize) -> Tuple {
        work::count_rows_materialized(1);
        Tuple::new(
            self.ts[i],
            self.columns.iter().map(|c| c.value(i)).collect(),
        )
    }

    /// Iterates over materialized rows, in arrival order.
    pub fn iter_rows(&self) -> impl Iterator<Item = Tuple> + '_ {
        (0..self.len()).map(|i| self.row(i))
    }

    /// Consumes the batch, materializing its rows. Column data still shared
    /// with another holder (COW) is read in place, never copied.
    pub fn into_rows(self) -> Vec<Tuple> {
        work::count_rows_materialized(self.len() as u64);
        let mut rows: Vec<Tuple> = self
            .ts
            .iter()
            .map(|&ts| Tuple::new(ts, Vec::with_capacity(self.columns.len())))
            .collect();
        let columns = match Arc::try_unwrap(self.columns) {
            Ok(owned) => owned,
            // Shared columns: materialize cell by cell (Str cells are
            // Arc-shared, so even this path never copies string bytes).
            Err(shared) => {
                for col in shared.iter() {
                    for (i, row) in rows.iter_mut().enumerate() {
                        row.values.push(col.value(i));
                    }
                }
                return rows;
            }
        };
        for col in columns {
            match col {
                Column::Bool(v) => {
                    for (row, b) in rows.iter_mut().zip(v) {
                        row.values.push(Value::Bool(b));
                    }
                }
                Column::Int(v) => {
                    for (row, i) in rows.iter_mut().zip(v) {
                        row.values.push(Value::Int(i));
                    }
                }
                Column::Float(v) => {
                    for (row, f) in rows.iter_mut().zip(v) {
                        row.values.push(Value::Float(f));
                    }
                }
                Column::Str(v) => {
                    for (row, s) in rows.iter_mut().zip(v) {
                        row.values.push(Value::Str(s));
                    }
                }
                Column::Dict { codes, dict, .. } => {
                    for (row, c) in rows.iter_mut().zip(codes) {
                        row.values.push(Value::Str(dict[c as usize].clone()));
                    }
                }
            }
        }
        rows
    }

    /// Appends one row, scattering its values into the columns.
    pub fn push(&mut self, tuple: Tuple) {
        debug_assert!(
            tuple.conforms_to(&self.schema),
            "row must conform to the batch schema"
        );
        self.ts_mut().push(tuple.ts);
        for (col, v) in self.columns_mut().iter_mut().zip(tuple.values) {
            col.push(v);
        }
    }

    /// Appends rows from an iterator.
    pub fn extend<I: IntoIterator<Item = Tuple>>(&mut self, rows: I) {
        for t in rows {
            self.push(t);
        }
        self.debug_check_invariants();
    }

    /// Gathers the rows at the given indices into a new batch sharing the
    /// same schema handle (the selection-vector materialization kernel).
    pub fn take(&self, sel: &[u32]) -> TupleBatch {
        debug_assert!(
            sel.iter().all(|&i| (i as usize) < self.len()),
            "selection indices must be in range"
        );
        TupleBatch {
            schema: self.schema.clone(),
            ts: Arc::new(sel.iter().map(|&i| self.ts[i as usize]).collect()),
            columns: Arc::new(self.columns.iter().map(|c| c.take(sel)).collect()),
        }
    }

    /// Splits off the rows from index `at` onward into a new batch sharing
    /// the same schema (mirrors [`Vec::split_off`]). Every column splits at
    /// the same index, preserving the alignment invariant.
    pub fn split_off(&mut self, at: usize) -> TupleBatch {
        debug_assert!(at <= self.len(), "split index out of range");
        let ts = Arc::new(self.ts_mut().split_off(at));
        let columns = Arc::new(
            self.columns_mut()
                .iter_mut()
                .map(|c| c.split_off(at))
                .collect(),
        );
        let tail = TupleBatch {
            schema: self.schema.clone(),
            ts,
            columns,
        };
        self.debug_check_invariants();
        tail.debug_check_invariants();
        tail
    }

    /// Appends all rows of `other` column-wise (must share a
    /// type-compatible schema).
    pub fn append(&mut self, other: TupleBatch) {
        debug_assert!(
            other
                .schema
                .fields
                .iter()
                .zip(&self.schema.fields)
                .all(|(a, b)| a.data_type == b.data_type)
                && other.schema.len() == self.schema.len(),
            "appended batch must be type-compatible"
        );
        self.ts_mut().extend(other.ts.iter().copied());
        let other_columns = match Arc::try_unwrap(other.columns) {
            Ok(owned) => owned,
            Err(shared) => (*shared).clone(),
        };
        for (a, b) in self.columns_mut().iter_mut().zip(other_columns) {
            a.append(b);
        }
        self.debug_check_invariants();
    }

    /// The largest event timestamp in the batch, if any.
    pub fn max_ts(&self) -> Option<u64> {
        self.ts.iter().copied().max()
    }

    /// Merges shard outputs back into one batch ordered by their sequence
    /// tags — the deterministic merge of the shard-per-stream executor.
    ///
    /// Each part is an output batch plus, aligned with its rows, the
    /// original (strictly increasing within a part) row sequence numbers
    /// the rows carried before hash partitioning. The merged batch holds
    /// every row of every part, ordered by sequence tag — i.e. the exact
    /// row order a single-threaded run would have produced. The merge is
    /// columnar (no row materialization); rows crossing a shard boundary
    /// are counted by [`work::WorkSnapshot::shard_merge_rows`].
    ///
    /// Returns `None` when every part is empty.
    ///
    /// # Panics
    /// Debug builds panic when parts disagree on schema types, when a
    /// part's tags are not aligned with its rows, or when tags collide.
    pub fn interleave(parts: Vec<(TupleBatch, Vec<u32>)>) -> Option<TupleBatch> {
        debug_assert!(
            parts.iter().all(|(b, s)| b.len() == s.len()),
            "sequence tags must align with part rows"
        );
        let mut parts: Vec<(TupleBatch, Vec<u32>)> =
            parts.into_iter().filter(|(b, _)| !b.is_empty()).collect();
        if parts.len() <= 1 {
            return parts.pop().map(|(b, _)| b);
        }
        let total: usize = parts.iter().map(|(b, _)| b.len()).sum();
        // The global order: every (tag, part, row) triple sorted by tag.
        // Tags are unique (each names one pre-partition row), so the order
        // is total and shard-count independent.
        let mut order: Vec<(u32, u32, u32)> = Vec::with_capacity(total);
        for (p, (_, seqs)) in parts.iter().enumerate() {
            debug_assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "per-part sequence tags must be strictly increasing"
            );
            order.extend(
                seqs.iter()
                    .enumerate()
                    .map(|(i, &s)| (s, p as u32, i as u32)),
            );
        }
        order.sort_unstable();
        debug_assert!(
            order.windows(2).all(|w| w[0].0 != w[1].0),
            "sequence tags must be unique across parts"
        );
        let order: Vec<(u32, u32)> = order.into_iter().map(|(_, p, i)| (p, i)).collect();
        let batches: Vec<TupleBatch> = parts.into_iter().map(|(b, _)| b).collect();
        Some(Self::gather_parts(&batches, &order))
    }

    /// Merges shard outputs whose per-row merge tags may repeat *within* a
    /// part — the generalization [`TupleBatch::interleave`] needs once the
    /// merge barrier moves past keyed stateful operators:
    ///
    /// * a **join** emits one output row per (probe row, partner) pair, so
    ///   several output rows of one shard share the probe row's sequence
    ///   tag (they stay in shard-local order, which is the single-threaded
    ///   partner order because equal keys live on one shard);
    /// * an **aggregate window close** emits rows ordered by
    ///   `(window start, group)` — the [`MergeTags::Emits`] keys — and the
    ///   per-shard sorted runs merge into exactly the global emission order
    ///   the single-threaded operator produces.
    ///
    /// Tags must be non-decreasing within each part and **disjoint across
    /// parts** (hash partitioning guarantees it: a probe row, like a group,
    /// lives on exactly one shard); ties across parts would make the order
    /// ill-defined and are a caller bug.
    ///
    /// Returns `None` when every part is empty.
    pub fn interleave_tagged(parts: Vec<(TupleBatch, MergeTags)>) -> Option<TupleBatch> {
        debug_assert!(
            parts.iter().all(|(b, t)| b.len() == t.len()),
            "merge tags must align with part rows"
        );
        let mut parts: Vec<(TupleBatch, MergeTags)> =
            parts.into_iter().filter(|(b, _)| !b.is_empty()).collect();
        if parts.len() <= 1 {
            return parts.pop().map(|(b, _)| b);
        }
        // (part, row) pairs sorted by (tag, part, row): stable within a
        // part for repeated tags, total across parts for disjoint tags.
        let order: Vec<(u32, u32)> = match &parts[0].1 {
            MergeTags::Rows(_) => {
                let mut order: Vec<(u32, u32, u32)> = Vec::new();
                for (p, (_, tags)) in parts.iter().enumerate() {
                    let MergeTags::Rows(rows) = tags else {
                        debug_assert!(false, "mixed merge-tag kinds in one merge group");
                        continue;
                    };
                    debug_assert!(
                        rows.windows(2).all(|w| w[0] <= w[1]),
                        "per-part row tags must be non-decreasing"
                    );
                    order.extend(
                        rows.iter()
                            .enumerate()
                            .map(|(i, &s)| (s, p as u32, i as u32)),
                    );
                }
                order.sort_unstable();
                order.into_iter().map(|(_, p, i)| (p, i)).collect()
            }
            MergeTags::Emits(_) => {
                let mut order: Vec<(&EmitKey, u32, u32)> = Vec::new();
                for (p, (_, tags)) in parts.iter().enumerate() {
                    let MergeTags::Emits(keys) = tags else {
                        debug_assert!(false, "mixed merge-tag kinds in one merge group");
                        continue;
                    };
                    debug_assert!(
                        keys.windows(2).all(|w| w[0] <= w[1]),
                        "per-part emit keys must be non-decreasing"
                    );
                    order.extend(
                        keys.iter()
                            .enumerate()
                            .map(|(i, k)| (k, p as u32, i as u32)),
                    );
                }
                order.sort();
                order.into_iter().map(|(_, p, i)| (p, i)).collect()
            }
        };
        let batches: Vec<TupleBatch> = parts.into_iter().map(|(b, _)| b).collect();
        Some(Self::gather_parts(&batches, &order))
    }

    /// Gathers `(part, row)` pairs out of the part batches into one merged
    /// batch, columnar (no row materialization). Rows crossing a shard
    /// boundary are counted by [`work::WorkSnapshot::shard_merge_rows`].
    fn gather_parts(parts: &[TupleBatch], order: &[(u32, u32)]) -> TupleBatch {
        let total = order.len();
        work::count_shard_merge_rows(total as u64);
        let schema = parts[0].schema.clone();
        debug_assert!(
            parts.iter().all(|b| {
                b.schema.len() == schema.len()
                    && b.schema
                        .fields
                        .iter()
                        .zip(&schema.fields)
                        .all(|(a, c)| a.data_type == c.data_type)
            }),
            "interleaved parts must be type-compatible"
        );
        let ts: Vec<u64> = order
            .iter()
            .map(|&(p, i)| parts[p as usize].ts[i as usize])
            .collect();
        let columns: Vec<Column> = (0..schema.len())
            .map(|c| {
                let mut col = Column::with_capacity(schema.fields[c].data_type, total);
                match &mut col {
                    Column::Bool(v) => {
                        for &(p, i) in order {
                            v.push(parts[p as usize].columns[c].as_bools().unwrap()[i as usize]);
                        }
                    }
                    Column::Int(v) => {
                        for &(p, i) in order {
                            v.push(parts[p as usize].columns[c].as_ints().unwrap()[i as usize]);
                        }
                    }
                    Column::Float(v) => {
                        for &(p, i) in order {
                            v.push(parts[p as usize].columns[c].as_floats().unwrap()[i as usize]);
                        }
                    }
                    Column::Str(_) => return Self::gather_str_parts(parts, order, c),
                    Column::Dict { .. } => unreachable!("with_capacity builds plain layouts"),
                }
                col
            })
            .collect();
        TupleBatch::from_columns(schema, ts, columns)
    }

    /// Gathers one string column across parts (the merge boundary). When
    /// every part carries the same dictionary — the common case, since
    /// shards split one ingestion batch — the merge moves codes and
    /// shares the dictionary; any layout mix falls back to gathering
    /// `Arc` payloads.
    fn gather_str_parts(parts: &[TupleBatch], order: &[(u32, u32)], c: usize) -> Column {
        let first_dict = parts
            .iter()
            .find(|b| !b.is_empty())
            .and_then(|b| b.columns[c].as_dict().map(|(_, d)| d));
        if let Some(dict) = first_dict {
            let shared = parts
                .iter()
                .all(|b| b.is_empty() || b.columns[c].as_dict().is_some_and(|(_, d)| d == dict));
            if shared {
                let codes: Vec<u32> = order
                    .iter()
                    .map(|&(p, i)| parts[p as usize].columns[c].as_dict().unwrap().0[i as usize])
                    .collect();
                return Column::Dict {
                    codes,
                    dict: dict.to_vec(),
                    extremes: dict_extremes(dict),
                };
            }
        }
        Column::Str(
            order
                .iter()
                .map(|&(p, i)| {
                    parts[p as usize].columns[c]
                        .str_at(i as usize)
                        .expect("type-checked string column")
                        .clone()
                })
                .collect(),
        )
    }
}

/// The deterministic emission-order key of one window-close row:
/// `(window start, group-key debug rendering)` — exactly the comparator the
/// single-threaded aggregate sorts its closed windows by, so merging
/// per-shard sorted emission runs by `EmitKey` reproduces the global
/// single-threaded emission order bit for bit.
pub type EmitKey = (u64, String);

/// Per-row merge tags carried by shard outputs into the deterministic
/// merge (see [`TupleBatch::interleave_tagged`]).
#[derive(Clone, Debug)]
pub enum MergeTags {
    /// Pre-partition row sequence tags (hash-partitioned source rows and
    /// anything derived from them through stateless operators and join
    /// probes). Non-decreasing; duplicates mark join fan-out of one probe
    /// row.
    Rows(Vec<u32>),
    /// Window-close emission keys (aggregate outputs and anything derived
    /// from them). Non-decreasing within a part; disjoint across parts
    /// because a group lives on exactly one shard.
    Emits(Vec<EmitKey>),
}

impl MergeTags {
    /// Number of tagged rows.
    pub fn len(&self) -> usize {
        match self {
            MergeTags::Rows(v) => v.len(),
            MergeTags::Emits(v) => v.len(),
        }
    }

    /// True when no row is tagged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Gathers the tags at `sel` (the survivor trace of a stateless or
    /// join kernel applied to the tagged batch; indices may repeat for
    /// join fan-out).
    pub fn take(&self, sel: &[u32]) -> MergeTags {
        match self {
            MergeTags::Rows(v) => MergeTags::Rows(sel.iter().map(|&i| v[i as usize]).collect()),
            MergeTags::Emits(v) => {
                MergeTags::Emits(sel.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }
}

/// Deterministic, machine-independent work counters for comparing
/// execution strategies.
///
/// Wall-clock timings on shared/throttled build machines are too noisy to
/// pin a perf win in CI, so the data plane counts the work that *dominates*
/// each strategy instead: per-row materializations and per-row expression
/// evaluations for the row-at-a-time path, per-batch kernel passes for the
/// columnar path, and defensive deep copies of shared batches for the
/// delivery fan-out. Counters are thread-local (the engine's control loop
/// is single-threaded), so parallel tests never interfere; the sharded
/// executor's worker threads count into their own thread-locals and the
/// engine folds each worker's [`work::snapshot`] back into the control
/// thread via [`work::absorb`] when the shards join, so totals stay deterministic regardless
/// of shard count.
pub mod work {
    use std::cell::Cell;

    thread_local! {
        static ROWS_MATERIALIZED: Cell<u64> = const { Cell::new(0) };
        static ROW_EVALS: Cell<u64> = const { Cell::new(0) };
        static KERNEL_OPS: Cell<u64> = const { Cell::new(0) };
        static BATCH_DEEP_CLONES: Cell<u64> = const { Cell::new(0) };
        static SHARD_BATCHES: Cell<u64> = const { Cell::new(0) };
        static SHARD_MERGE_ROWS: Cell<u64> = const { Cell::new(0) };
        static KEYED_SHARD_ROWS: Cell<u64> = const { Cell::new(0) };
        static PUSHDOWN_ROWS: Cell<u64> = const { Cell::new(0) };
        static POOL_SPAWNS: Cell<u64> = const { Cell::new(0) };
        static POOL_WAKEUPS: Cell<u64> = const { Cell::new(0) };
        static MORSELS_EXECUTED: Cell<u64> = const { Cell::new(0) };
        static MORSELS_STOLEN: Cell<u64> = const { Cell::new(0) };
        static STEAL_MISSES: Cell<u64> = const { Cell::new(0) };
        static ROWS_SHED: Cell<u64> = const { Cell::new(0) };
        static QUARANTINES: Cell<u64> = const { Cell::new(0) };
        static OVERLOAD_FLUSHES: Cell<u64> = const { Cell::new(0) };
        static SIMD_LANES: Cell<u64> = const { Cell::new(0) };
        static DICT_CODE_CMPS: Cell<u64> = const { Cell::new(0) };
        static STR_CMPS: Cell<u64> = const { Cell::new(0) };
        static ADAPTIVE_RESIZES: Cell<u64> = const { Cell::new(0) };
        static CHAIN_MORSELS: Cell<u64> = const { Cell::new(0) };
        static GROUPED_PARTIAL_ROWS: Cell<u64> = const { Cell::new(0) };
        static PARTIAL_GROUPS_COMBINED: Cell<u64> = const { Cell::new(0) };
        static DICT_BATCHES_PRUNED: Cell<u64> = const { Cell::new(0) };
    }

    /// A snapshot of the current thread's work counters.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct WorkSnapshot {
        /// Rows materialized from columnar batches into [`super::Tuple`]s
        /// (row-fallback kernels, join state, sink delivery).
        pub rows_materialized: u64,
        /// Per-row expression-node evaluations (one per
        /// [`crate::expr::Expr`] node visited per row on the row path).
        pub row_evals: u64,
        /// Columnar kernel passes (one per expression node per *batch* on
        /// the columnar path).
        pub kernel_ops: u64,
        /// Column-data copies forced by mutating a still-shared batch —
        /// the copy-on-write miss of the `Arc`-shared [`super::TupleBatch`]
        /// columns. Fan-out to any mix of node and sink consumers shares
        /// columns outright (readers never copy), so this stays 0 unless a
        /// holder *writes* into a batch another holder still shares.
        pub batch_deep_clones: u64,
        /// Sub-batches processed on shard worker threads (0 when the
        /// engine runs single-threaded).
        pub shard_batches: u64,
        /// Rows gathered by the deterministic cross-shard merge
        /// ([`super::TupleBatch::interleave`]) — 0 for round-robin batch
        /// sharding, where every source batch stays whole on one shard.
        pub shard_merge_rows: u64,
        /// Rows absorbed by keyed **stateful** operators (joins,
        /// aggregates) *inside* shard workers — the work the merge barrier
        /// used to serialize on the control thread.
        pub keyed_shard_rows: u64,
        /// Rows a stateful operator absorbed through a deferred selection
        /// vector instead of a densified (gathered) batch — each one an
        /// avoided row materialization.
        pub selection_pushdown_rows: u64,
        /// Worker threads spawned by the persistent pool. After warmup
        /// (one spawn per shard) this must stay flat: flushes reuse parked
        /// workers instead of spawning.
        pub pool_spawns: u64,
        /// Jobs dispatched to (and woken on) pooled workers — one per
        /// shard per parallel flush.
        pub pool_wakeups: u64,
        /// Morsels (batch-sized work items) executed by workers — counts
        /// both locally popped and stolen morsels, so the sum across
        /// workers equals the morsels scheduled per flush.
        pub morsels_executed: u64,
        /// Morsels an idle worker stole from the tail of another worker's
        /// deque — nonzero under skewed key distributions, where stealing
        /// rebalances a hot shard's backlog onto idle cores.
        pub morsels_stolen: u64,
        /// Steal attempts that found the victim's deque empty — a measure
        /// of wasted scans while draining the flush's final morsels.
        pub steal_misses: u64,
        /// Rows dropped by the overload guardrail: whole ingestion batches
        /// shed, lowest-priority stream first, when a flush's pending rows
        /// exceed the configured ingress budget. Shedding runs *before*
        /// partitioning, so the count is shard-count invariant.
        pub rows_shed: u64,
        /// Continuous queries quarantined after an operator panic (one per
        /// quarantined query, not per panic).
        pub quarantines: u64,
        /// Flushes in which the overload guardrail shed at least one
        /// batch.
        pub overload_flushes: u64,
        /// Full fixed-width lanes processed by the unrolled compare/arith
        /// kernels (one per [`crate::expr`] lane of contiguous rows; tail
        /// rows and gather-indexed rows run scalar and are not counted).
        /// Zero when the SIMD kill switch
        /// ([`crate::ops::set_simd_kernels`]) is off.
        pub simd_lanes: u64,
        /// Per-row `u32` dictionary-code comparisons (string equality over
        /// [`super::Column::Dict`] columns) and per-row code-memo key
        /// lookups (joins/group-bys keyed off a dictionary column) — the
        /// work that *replaces* per-row string byte comparisons.
        pub dict_code_cmps: u64,
        /// Per-row string byte comparisons performed by the columnar
        /// kernels (plain [`super::Column::Str`] predicates, ordering
        /// comparisons on dictionary columns). The dictionary fast path
        /// keeps this at zero: byte comparisons happen only while
        /// building or remapping a dictionary, never per row.
        pub str_cmps: u64,
        /// Flushes in which the adaptive morsel controller changed the
        /// effective morsel grain of at least one stream (0 with
        /// [`set_adaptive_morsels`](crate::engine::DsmsEngine::set_adaptive_morsels)
        /// off). Counted on the control thread, so the resize trace is
        /// deterministic for a fixed input regardless of which workers
        /// executed which morsels.
        pub adaptive_resizes: u64,
        /// Chain morsels scheduled for order-sensitive keyed plans — the
        /// serialized fallback that keeps non-commutative stateful
        /// operators ordered. A fully commutative plan (including grouped
        /// exact partials) keeps this at zero.
        pub chain_morsels: u64,
        /// Rows absorbed into per-worker **grouped** hash partials of
        /// shard-incompatible exact aggregates — grouped work that used to
        /// serialize behind the merge barrier.
        pub grouped_partial_rows: u64,
        /// Grouped per-worker partial accumulators combined by the control
        /// thread's watermark pass (one per absorbed duplicate of a group
        /// key across partitions; ungrouped partial combines are not
        /// counted).
        pub partial_groups_combined: u64,
        /// Batches whose dictionary min/max metadata proved a range
        /// predicate matches no row, skipping the per-row scan entirely.
        pub dict_batches_pruned: u64,
    }

    impl WorkSnapshot {
        /// Deterministic scalar cost of this snapshot in abstract work
        /// units — the adaptive morsel controller's clock. A weighted sum
        /// of the per-row/per-batch counters that dominate morsel
        /// execution, so equal inputs always measure equal cost on any
        /// machine (unlike wall time).
        pub fn cost_units(&self) -> u64 {
            self.rows_materialized
                + self.row_evals
                + self.kernel_ops
                + self.keyed_shard_rows
                + self.selection_pushdown_rows
                + 8 * self.simd_lanes
                + self.dict_code_cmps
                + self.str_cmps
                + self.grouped_partial_rows
        }
    }

    /// Resets this thread's counters to zero.
    pub fn reset() {
        ROWS_MATERIALIZED.with(|c| c.set(0));
        ROW_EVALS.with(|c| c.set(0));
        KERNEL_OPS.with(|c| c.set(0));
        BATCH_DEEP_CLONES.with(|c| c.set(0));
        SHARD_BATCHES.with(|c| c.set(0));
        SHARD_MERGE_ROWS.with(|c| c.set(0));
        KEYED_SHARD_ROWS.with(|c| c.set(0));
        PUSHDOWN_ROWS.with(|c| c.set(0));
        POOL_SPAWNS.with(|c| c.set(0));
        POOL_WAKEUPS.with(|c| c.set(0));
        MORSELS_EXECUTED.with(|c| c.set(0));
        MORSELS_STOLEN.with(|c| c.set(0));
        STEAL_MISSES.with(|c| c.set(0));
        ROWS_SHED.with(|c| c.set(0));
        QUARANTINES.with(|c| c.set(0));
        OVERLOAD_FLUSHES.with(|c| c.set(0));
        SIMD_LANES.with(|c| c.set(0));
        DICT_CODE_CMPS.with(|c| c.set(0));
        STR_CMPS.with(|c| c.set(0));
        ADAPTIVE_RESIZES.with(|c| c.set(0));
        CHAIN_MORSELS.with(|c| c.set(0));
        GROUPED_PARTIAL_ROWS.with(|c| c.set(0));
        PARTIAL_GROUPS_COMBINED.with(|c| c.set(0));
        DICT_BATCHES_PRUNED.with(|c| c.set(0));
    }

    /// Reads this thread's counters.
    pub fn snapshot() -> WorkSnapshot {
        WorkSnapshot {
            rows_materialized: ROWS_MATERIALIZED.with(Cell::get),
            row_evals: ROW_EVALS.with(Cell::get),
            kernel_ops: KERNEL_OPS.with(Cell::get),
            batch_deep_clones: BATCH_DEEP_CLONES.with(Cell::get),
            shard_batches: SHARD_BATCHES.with(Cell::get),
            shard_merge_rows: SHARD_MERGE_ROWS.with(Cell::get),
            keyed_shard_rows: KEYED_SHARD_ROWS.with(Cell::get),
            selection_pushdown_rows: PUSHDOWN_ROWS.with(Cell::get),
            pool_spawns: POOL_SPAWNS.with(Cell::get),
            pool_wakeups: POOL_WAKEUPS.with(Cell::get),
            morsels_executed: MORSELS_EXECUTED.with(Cell::get),
            morsels_stolen: MORSELS_STOLEN.with(Cell::get),
            steal_misses: STEAL_MISSES.with(Cell::get),
            rows_shed: ROWS_SHED.with(Cell::get),
            quarantines: QUARANTINES.with(Cell::get),
            overload_flushes: OVERLOAD_FLUSHES.with(Cell::get),
            simd_lanes: SIMD_LANES.with(Cell::get),
            dict_code_cmps: DICT_CODE_CMPS.with(Cell::get),
            str_cmps: STR_CMPS.with(Cell::get),
            adaptive_resizes: ADAPTIVE_RESIZES.with(Cell::get),
            chain_morsels: CHAIN_MORSELS.with(Cell::get),
            grouped_partial_rows: GROUPED_PARTIAL_ROWS.with(Cell::get),
            partial_groups_combined: PARTIAL_GROUPS_COMBINED.with(Cell::get),
            dict_batches_pruned: DICT_BATCHES_PRUNED.with(Cell::get),
        }
    }

    /// Folds another thread's counters into this thread's — the shard-join
    /// path: each worker accumulates into its own thread-locals and the
    /// engine absorbs the workers' snapshots when they join, keeping the
    /// control thread's totals deterministic and shard-count independent.
    pub fn absorb(other: &WorkSnapshot) {
        ROWS_MATERIALIZED.with(|c| c.set(c.get() + other.rows_materialized));
        ROW_EVALS.with(|c| c.set(c.get() + other.row_evals));
        KERNEL_OPS.with(|c| c.set(c.get() + other.kernel_ops));
        BATCH_DEEP_CLONES.with(|c| c.set(c.get() + other.batch_deep_clones));
        SHARD_BATCHES.with(|c| c.set(c.get() + other.shard_batches));
        SHARD_MERGE_ROWS.with(|c| c.set(c.get() + other.shard_merge_rows));
        KEYED_SHARD_ROWS.with(|c| c.set(c.get() + other.keyed_shard_rows));
        PUSHDOWN_ROWS.with(|c| c.set(c.get() + other.selection_pushdown_rows));
        POOL_SPAWNS.with(|c| c.set(c.get() + other.pool_spawns));
        POOL_WAKEUPS.with(|c| c.set(c.get() + other.pool_wakeups));
        MORSELS_EXECUTED.with(|c| c.set(c.get() + other.morsels_executed));
        MORSELS_STOLEN.with(|c| c.set(c.get() + other.morsels_stolen));
        STEAL_MISSES.with(|c| c.set(c.get() + other.steal_misses));
        ROWS_SHED.with(|c| c.set(c.get() + other.rows_shed));
        QUARANTINES.with(|c| c.set(c.get() + other.quarantines));
        OVERLOAD_FLUSHES.with(|c| c.set(c.get() + other.overload_flushes));
        SIMD_LANES.with(|c| c.set(c.get() + other.simd_lanes));
        DICT_CODE_CMPS.with(|c| c.set(c.get() + other.dict_code_cmps));
        STR_CMPS.with(|c| c.set(c.get() + other.str_cmps));
        ADAPTIVE_RESIZES.with(|c| c.set(c.get() + other.adaptive_resizes));
        CHAIN_MORSELS.with(|c| c.set(c.get() + other.chain_morsels));
        GROUPED_PARTIAL_ROWS.with(|c| c.set(c.get() + other.grouped_partial_rows));
        PARTIAL_GROUPS_COMBINED.with(|c| c.set(c.get() + other.partial_groups_combined));
        DICT_BATCHES_PRUNED.with(|c| c.set(c.get() + other.dict_batches_pruned));
    }

    #[inline]
    pub(crate) fn count_rows_materialized(n: u64) {
        ROWS_MATERIALIZED.with(|c| c.set(c.get() + n));
    }

    #[inline]
    pub(crate) fn count_row_eval() {
        ROW_EVALS.with(|c| c.set(c.get() + 1));
    }

    #[inline]
    pub(crate) fn count_kernel_op() {
        KERNEL_OPS.with(|c| c.set(c.get() + 1));
    }

    #[inline]
    pub(crate) fn count_batch_deep_clone() {
        BATCH_DEEP_CLONES.with(|c| c.set(c.get() + 1));
    }

    #[inline]
    pub(crate) fn count_shard_batches(n: u64) {
        SHARD_BATCHES.with(|c| c.set(c.get() + n));
    }

    #[inline]
    pub(crate) fn count_shard_merge_rows(n: u64) {
        SHARD_MERGE_ROWS.with(|c| c.set(c.get() + n));
    }

    #[inline]
    pub(crate) fn count_keyed_shard_rows(n: u64) {
        KEYED_SHARD_ROWS.with(|c| c.set(c.get() + n));
    }

    #[inline]
    pub(crate) fn count_pushdown_rows(n: u64) {
        PUSHDOWN_ROWS.with(|c| c.set(c.get() + n));
    }

    #[inline]
    pub(crate) fn count_pool_spawn() {
        POOL_SPAWNS.with(|c| c.set(c.get() + 1));
    }

    #[inline]
    pub(crate) fn count_pool_wakeup() {
        POOL_WAKEUPS.with(|c| c.set(c.get() + 1));
    }

    #[inline]
    pub(crate) fn count_morsel_executed() {
        MORSELS_EXECUTED.with(|c| c.set(c.get() + 1));
    }

    #[inline]
    pub(crate) fn count_morsel_stolen() {
        MORSELS_STOLEN.with(|c| c.set(c.get() + 1));
    }

    #[inline]
    pub(crate) fn count_steal_miss() {
        STEAL_MISSES.with(|c| c.set(c.get() + 1));
    }

    #[inline]
    pub(crate) fn count_rows_shed(n: u64) {
        ROWS_SHED.with(|c| c.set(c.get() + n));
    }

    #[inline]
    pub(crate) fn count_quarantine() {
        QUARANTINES.with(|c| c.set(c.get() + 1));
    }

    #[inline]
    pub(crate) fn count_overload_flush() {
        OVERLOAD_FLUSHES.with(|c| c.set(c.get() + 1));
    }

    #[inline]
    pub(crate) fn count_simd_lanes(n: u64) {
        SIMD_LANES.with(|c| c.set(c.get() + n));
    }

    #[inline]
    pub(crate) fn count_dict_code_cmps(n: u64) {
        DICT_CODE_CMPS.with(|c| c.set(c.get() + n));
    }

    #[inline]
    pub(crate) fn count_str_cmps(n: u64) {
        STR_CMPS.with(|c| c.set(c.get() + n));
    }

    #[inline]
    pub(crate) fn count_adaptive_resize() {
        ADAPTIVE_RESIZES.with(|c| c.set(c.get() + 1));
    }

    #[inline]
    pub(crate) fn count_chain_morsel() {
        CHAIN_MORSELS.with(|c| c.set(c.get() + 1));
    }

    #[inline]
    pub(crate) fn count_grouped_partial_rows(n: u64) {
        GROUPED_PARTIAL_ROWS.with(|c| c.set(c.get() + n));
    }

    #[inline]
    pub(crate) fn count_partial_groups_combined(n: u64) {
        PARTIAL_GROUPS_COMBINED.with(|c| c.set(c.get() + n));
    }

    #[inline]
    pub(crate) fn count_dict_batch_pruned() {
        DICT_BATCHES_PRUNED.with(|c| c.set(c.get() + 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("abc").as_str(), Some("abc"));
        assert_eq!(Value::str("abc").data_type(), DataType::Str);
        assert_eq!(Value::Int(3).as_bool(), None);
    }

    #[test]
    fn schema_lookup_and_join() {
        let left = Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("price", DataType::Float),
        ]);
        let right = Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("headline", DataType::Str),
        ]);
        assert_eq!(left.index_of("price"), Some(1));
        assert_eq!(left.index_of("nope"), None);
        let joined = left.join(&right);
        assert_eq!(joined.len(), 4);
        assert_eq!(joined.fields[2].name, "right.symbol");
        assert_eq!(joined.fields[3].name, "headline");
    }

    #[test]
    fn tuple_conformance() {
        let schema = Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("price", DataType::Float),
        ]);
        let good = Tuple::new(1, vec![Value::str("IBM"), Value::Float(120.0)]);
        let bad_type = Tuple::new(1, vec![Value::Float(120.0), Value::str("IBM")]);
        let bad_len = Tuple::new(1, vec![Value::str("IBM")]);
        assert!(good.conforms_to(&schema));
        assert!(!bad_type.conforms_to(&schema));
        assert!(!bad_len.conforms_to(&schema));
    }

    fn quote_batch(n: usize) -> TupleBatch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("price", DataType::Float),
        ]));
        let rows = (0..n)
            .map(|i| {
                Tuple::new(
                    i as u64 * 10,
                    vec![Value::str("IBM"), Value::Float(i as f64)],
                )
            })
            .collect();
        TupleBatch::from_rows(schema, rows)
    }

    #[test]
    fn rows_round_trip_through_columns() {
        let batch = quote_batch(4);
        assert_eq!(batch.column(0).data_type(), DataType::Str);
        assert_eq!(batch.column(1).as_floats(), Some(&[0.0, 1.0, 2.0, 3.0][..]));
        let rows: Vec<Tuple> = batch.iter_rows().collect();
        assert_eq!(
            rows[2],
            Tuple::new(20, vec![Value::str("IBM"), Value::Float(2.0)])
        );
        assert_eq!(batch.row(3), rows[3]);
        assert_eq!(batch.clone().into_rows(), rows);
    }

    #[test]
    fn batch_split_off_partitions_rows_and_shares_schema() {
        let mut batch = quote_batch(5);
        let tail = batch.split_off(2);
        assert_eq!(batch.len(), 2);
        assert_eq!(tail.len(), 3);
        assert!(Arc::ptr_eq(batch.schema(), tail.schema()));
        assert_eq!(tail.row(0).ts, 20);
        assert_eq!(batch.max_ts(), Some(10));
        assert_eq!(tail.max_ts(), Some(40));
        // Both halves keep every column aligned with the timestamps.
        assert_eq!(batch.column(1).len(), batch.len());
        assert_eq!(tail.column(0).len(), tail.len());
    }

    #[test]
    fn batch_extend_and_append() {
        let mut batch = quote_batch(2);
        let extra = quote_batch(3);
        batch.extend(extra.clone().into_rows());
        assert_eq!(batch.len(), 5);
        assert!(!batch.is_empty());
        let ts: Vec<u64> = batch.iter_rows().map(|t| t.ts).collect();
        assert_eq!(ts, vec![0, 10, 0, 10, 20]);
        // Column-wise append gives the same result without materializing.
        let mut batch2 = quote_batch(2);
        batch2.append(extra);
        assert_eq!(batch2.ts(), &[0, 10, 0, 10, 20]);
    }

    #[test]
    fn take_gathers_selection() {
        let batch = quote_batch(5);
        let taken = batch.take(&[4, 0, 2]);
        assert_eq!(taken.ts(), &[40, 0, 20]);
        assert_eq!(taken.column(1).as_floats(), Some(&[4.0, 0.0, 2.0][..]));
        assert!(Arc::ptr_eq(batch.schema(), taken.schema()));
        assert!(batch.take(&[]).is_empty());
    }

    #[test]
    fn with_schema_reowns_without_copying_rows() {
        let batch = quote_batch(3);
        let other = Arc::new(Schema::new(vec![
            Field::new("sym", DataType::Str),
            Field::new("px", DataType::Float),
        ]));
        let reowned = batch.with_schema(other.clone());
        assert!(Arc::ptr_eq(reowned.schema(), &other));
        assert_eq!(reowned.len(), 3);
    }

    #[test]
    fn empty_batch_has_no_max_ts() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        let batch = TupleBatch::new(schema);
        assert!(batch.is_empty());
        assert_eq!(batch.max_ts(), None);
    }

    #[test]
    #[should_panic(expected = "cannot push")]
    fn mistyped_cell_is_rejected() {
        let mut col = Column::with_capacity(DataType::Int, 1);
        col.push(Value::Float(1.0));
    }

    #[test]
    fn interleave_restores_sequence_order_without_row_work() {
        // Split a batch's rows by parity (a 2-shard hash partition) and
        // re-merge: the result must be the original batch, produced
        // columnar (no row materialization).
        let batch = quote_batch(6);
        let even: Vec<u32> = vec![0, 2, 4];
        let odd: Vec<u32> = vec![1, 3, 5];
        let parts = vec![
            (batch.take(&even), even.clone()),
            (batch.take(&odd), odd.clone()),
        ];
        work::reset();
        let merged = TupleBatch::interleave(parts).unwrap();
        assert_eq!(merged.ts(), batch.ts());
        assert_eq!(merged.columns(), batch.columns());
        let snap = work::snapshot();
        assert_eq!(snap.rows_materialized, 0, "merge is columnar");
        assert_eq!(snap.shard_merge_rows, 6);
        // A single non-empty part passes through untouched and uncounted.
        work::reset();
        let single = TupleBatch::interleave(vec![(batch.take(&even), even)]).unwrap();
        assert_eq!(single.len(), 3);
        assert_eq!(work::snapshot().shard_merge_rows, 0);
        assert!(TupleBatch::interleave(vec![(batch.take(&[]), Vec::new())]).is_none());
    }

    #[test]
    fn interleave_tagged_merges_duplicate_row_tags_stably() {
        // Join fan-out: one probe row (tag 1) produced two output rows on
        // shard 0; shard 1 contributed tags 0 and 2. The merged order is
        // tag-ascending with shard-local order preserved inside a tag.
        let schema = Arc::new(Schema::new(vec![Field::new("v", DataType::Int)]));
        let batch = |vals: Vec<i64>| {
            TupleBatch::from_columns(schema.clone(), vec![0; vals.len()], vec![Column::Int(vals)])
        };
        let merged = TupleBatch::interleave_tagged(vec![
            (batch(vec![10, 11]), MergeTags::Rows(vec![1, 1])),
            (batch(vec![20, 21]), MergeTags::Rows(vec![0, 2])),
        ])
        .unwrap();
        assert_eq!(merged.column(0).as_ints(), Some(&[20, 10, 11, 21][..]));
    }

    #[test]
    fn interleave_tagged_merges_emission_runs_by_emit_key() {
        let schema = Arc::new(Schema::new(vec![Field::new("v", DataType::Int)]));
        let batch = |vals: Vec<i64>| {
            TupleBatch::from_columns(schema.clone(), vec![0; vals.len()], vec![Column::Int(vals)])
        };
        // Two shards' sorted window-close runs: merge by (start, group).
        let merged = TupleBatch::interleave_tagged(vec![
            (
                batch(vec![1, 3]),
                MergeTags::Emits(vec![(0, "a".into()), (100, "a".into())]),
            ),
            (
                batch(vec![2, 4]),
                MergeTags::Emits(vec![(0, "b".into()), (100, "b".into())]),
            ),
        ])
        .unwrap();
        assert_eq!(merged.column(0).as_ints(), Some(&[1, 2, 3, 4][..]));
        // Single non-empty part passes through.
        let single = TupleBatch::interleave_tagged(vec![(
            batch(vec![7]),
            MergeTags::Emits(vec![(5, "x".into())]),
        )])
        .unwrap();
        assert_eq!(single.len(), 1);
        assert!(
            TupleBatch::interleave_tagged(vec![(batch(vec![]), MergeTags::Rows(vec![]))]).is_none()
        );
    }

    #[test]
    fn clone_shares_columns_and_mutation_copies_on_write() {
        let batch = quote_batch(4);
        work::reset();
        let mut cloned = batch.clone();
        assert_eq!(
            work::snapshot().batch_deep_clones,
            0,
            "clone is a pointer clone"
        );
        // Mutating the still-shared clone copies columns exactly once.
        cloned.push(Tuple::new(99, vec![Value::str("X"), Value::Float(9.0)]));
        assert_eq!(work::snapshot().batch_deep_clones, 1, "COW miss counted");
        assert_eq!(batch.len(), 4, "the original is untouched");
        assert_eq!(cloned.len(), 5);
        // Further mutation of the now-unshared clone is free.
        cloned.push(Tuple::new(100, vec![Value::str("Y"), Value::Float(1.0)]));
        assert_eq!(work::snapshot().batch_deep_clones, 1);
        work::reset();
    }

    #[test]
    fn work_absorb_folds_foreign_snapshots() {
        work::reset();
        let foreign = work::WorkSnapshot {
            rows_materialized: 2,
            row_evals: 3,
            kernel_ops: 5,
            batch_deep_clones: 7,
            shard_batches: 11,
            shard_merge_rows: 13,
            keyed_shard_rows: 17,
            selection_pushdown_rows: 19,
            pool_spawns: 23,
            pool_wakeups: 29,
            morsels_executed: 31,
            morsels_stolen: 37,
            steal_misses: 41,
            rows_shed: 43,
            quarantines: 47,
            overload_flushes: 53,
            simd_lanes: 59,
            dict_code_cmps: 61,
            str_cmps: 67,
            adaptive_resizes: 71,
            chain_morsels: 73,
            grouped_partial_rows: 79,
            partial_groups_combined: 83,
            dict_batches_pruned: 89,
        };
        work::absorb(&foreign);
        work::absorb(&foreign);
        let snap = work::snapshot();
        assert_eq!(snap.row_evals, 6);
        assert_eq!(snap.shard_batches, 22);
        assert_eq!(snap.shard_merge_rows, 26);
        assert_eq!(snap.keyed_shard_rows, 34);
        assert_eq!(snap.selection_pushdown_rows, 38);
        assert_eq!(snap.pool_spawns, 46);
        assert_eq!(snap.pool_wakeups, 58);
        assert_eq!(snap.morsels_executed, 62);
        assert_eq!(snap.morsels_stolen, 74);
        assert_eq!(snap.steal_misses, 82);
        assert_eq!(snap.rows_shed, 86);
        assert_eq!(snap.quarantines, 94);
        assert_eq!(snap.overload_flushes, 106);
        assert_eq!(snap.simd_lanes, 118);
        assert_eq!(snap.dict_code_cmps, 122);
        assert_eq!(snap.str_cmps, 134);
        assert_eq!(snap.adaptive_resizes, 142);
        assert_eq!(snap.chain_morsels, 146);
        assert_eq!(snap.grouped_partial_rows, 158);
        assert_eq!(snap.partial_groups_combined, 166);
        assert_eq!(snap.dict_batches_pruned, 178);
        work::reset();
    }

    #[test]
    fn work_counters_track_materialization() {
        work::reset();
        let batch = quote_batch(8);
        assert_eq!(work::snapshot().rows_materialized, 0, "building is free");
        let _ = batch.row(0);
        let _rows = batch.into_rows();
        assert_eq!(work::snapshot().rows_materialized, 9);
        work::reset();
        assert_eq!(work::snapshot(), work::WorkSnapshot::default());
    }

    fn str_col(vals: &[&str]) -> Column {
        Column::Str(vals.iter().map(|s| Arc::from(*s)).collect())
    }

    #[test]
    fn dict_encode_round_trips_and_respects_cardinality_cap() {
        let col = str_col(&["a", "b", "a", "c", "b", "a"]).dict_encode();
        let (codes, dict) = col.as_dict().expect("low cardinality encodes");
        assert_eq!(codes, &[0, 1, 0, 2, 1, 0], "first-appearance code order");
        assert_eq!(dict.len(), 3);
        for (i, want) in ["a", "b", "a", "c", "b", "a"].iter().enumerate() {
            assert_eq!(col.value(i), Value::str(*want));
            assert_eq!(col.str_at(i).map(AsRef::as_ref), Some(*want));
        }
        // More distinct values than the cap: stays a plain column.
        let many: Vec<String> = (0..Column::DICT_MAX_CARDINALITY + 1)
            .map(|i| format!("s{i}"))
            .collect();
        let many_refs: Vec<&str> = many.iter().map(String::as_str).collect();
        let plain = str_col(&many_refs).dict_encode();
        assert!(plain.as_dict().is_none(), "high cardinality stays plain");
        assert_eq!(plain.len(), Column::DICT_MAX_CARDINALITY + 1);
    }

    #[test]
    fn dict_column_equals_plain_column_with_same_rows() {
        // `PartialEq` is logical, not representational: the encoding is a
        // layout choice and must never affect equality-pinned tests.
        let plain = str_col(&["x", "y", "x"]);
        let dict = str_col(&["x", "y", "x"]).dict_encode();
        assert!(dict.as_dict().is_some());
        assert_eq!(dict, plain);
        assert_eq!(plain, dict);
        assert_ne!(dict, str_col(&["x", "y", "z"]));
        // Two dicts with different layouts but equal rows compare equal.
        let mut other = Column::Dict {
            codes: Vec::new(),
            dict: Vec::new(),
            extremes: (0, 0),
        };
        for s in ["x", "y", "x"] {
            other.push(Value::str(s));
        }
        assert_eq!(dict, other);
    }

    #[test]
    fn dict_push_interns_and_overflows_to_plain() {
        let mut col = str_col(&["a"]).dict_encode();
        col.push(Value::str("b"));
        col.push(Value::str("a"));
        let (codes, dict) = col.as_dict().expect("still dictionary");
        assert_eq!(codes, &[0, 1, 0]);
        assert_eq!(dict.len(), 2);
        // Pushing past the cardinality cap decays to a plain column with
        // identical rows.
        for i in 0..Column::DICT_MAX_CARDINALITY {
            col.push(Value::str(format!("overflow{i}")));
        }
        assert!(col.as_dict().is_none(), "overflow decays to plain");
        assert_eq!(col.value(0), Value::str("a"));
        assert_eq!(col.value(2), Value::str("a"));
        assert_eq!(col.len(), 3 + Column::DICT_MAX_CARDINALITY);
    }

    #[test]
    fn dict_take_split_append_preserve_rows() {
        let dict = str_col(&["a", "b", "c", "a", "b"]).dict_encode();
        // take: gathers codes, shares the dictionary.
        let taken = dict.take(&[4, 0, 2]);
        assert_eq!(taken, str_col(&["b", "a", "c"]));
        assert!(taken.as_dict().is_some());
        // split_off: both halves stay dictionary-encoded.
        let mut head = dict.clone();
        let tail = head.split_off(2);
        assert_eq!(head, str_col(&["a", "b"]));
        assert_eq!(tail, str_col(&["c", "a", "b"]));
        assert!(head.as_dict().is_some() && tail.as_dict().is_some());
        // append dict + dict with different dictionaries: remaps codes.
        let mut left = str_col(&["a", "b"]).dict_encode();
        let right = str_col(&["c", "b"]).dict_encode();
        left.append(right);
        assert_eq!(left, str_col(&["a", "b", "c", "b"]));
        assert!(left.as_dict().is_some(), "union stays encoded");
        // append dict + plain interns the plain cells.
        let mut mixed = str_col(&["a"]).dict_encode();
        mixed.append(str_col(&["b", "a"]));
        assert_eq!(mixed, str_col(&["a", "b", "a"]));
        // append plain + dict decodes the dictionary cells.
        let mut plain = str_col(&["a"]);
        plain.append(str_col(&["b"]).dict_encode());
        assert_eq!(plain, str_col(&["a", "b"]));
    }

    #[test]
    fn from_value_broadcasts_strings_through_one_dict_entry() {
        // A broadcast string column is one dictionary entry + zeroed
        // codes — O(1) `Arc` clones however many rows it spans.
        let col = Column::from_value(&Value::str("const"), 1000);
        let (codes, dict) = col.as_dict().expect("broadcast strings encode");
        assert_eq!(dict.len(), 1);
        assert!(codes.iter().all(|&c| c == 0));
        assert_eq!(col.value(999), Value::str("const"));
    }

    #[test]
    fn from_rows_dict_encodes_string_columns_at_ingestion() {
        let batch = quote_batch(4);
        assert!(
            batch.column(0).as_dict().is_some(),
            "ingestion dictionary-encodes string columns"
        );
        assert_eq!(batch.column(0).data_type(), DataType::Str);
        assert_eq!(batch.row(1).values[0], Value::str("IBM"));
    }

    #[test]
    fn interleave_merges_dict_parts_without_decoding() {
        // Two parts carved off the same encoded batch share a dictionary:
        // the merge gathers codes. The merged column must be bit-identical
        // to the source rows.
        let batch = quote_batch(6);
        let even: Vec<u32> = vec![0, 2, 4];
        let odd: Vec<u32> = vec![1, 3, 5];
        let parts = vec![
            (batch.take(&even), even.clone()),
            (batch.take(&odd), odd.clone()),
        ];
        let merged = TupleBatch::interleave(parts).unwrap();
        assert_eq!(merged.ts(), batch.ts());
        assert_eq!(merged.columns(), batch.columns());
        assert!(
            merged.column(0).as_dict().is_some(),
            "shared-dictionary parts merge as codes"
        );
        // Parts with disjoint dictionaries still merge to identical rows,
        // falling back to a plain column.
        let a = TupleBatch::from_rows(
            batch.schema().clone(),
            vec![Tuple::new(0, vec![Value::str("AAA"), Value::Float(0.0)])],
        );
        let b = TupleBatch::from_rows(
            batch.schema().clone(),
            vec![Tuple::new(1, vec![Value::str("BBB"), Value::Float(1.0)])],
        );
        let merged = TupleBatch::interleave(vec![(a, vec![0]), (b, vec![1])]).unwrap();
        assert_eq!(merged.row(0).values[0], Value::str("AAA"));
        assert_eq!(merged.row(1).values[0], Value::str("BBB"));
    }
}
