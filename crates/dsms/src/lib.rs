//! # cqac-dsms — an Aurora-like stream-processing substrate
//!
//! The ICDE 2010 admission-control paper assumes "an underlying query model
//! similar to the Aurora model": continuous queries compiled into a shared
//! network of operators, connection points that can hold tuples while
//! subnetworks are modified, and per-operator loads the system can
//! approximate (§II). This crate *builds that substrate*:
//!
//! * [`types`] / [`expr`] — tuples, schemas, and a small expression language
//!   (predicates are data, so structurally identical operators share).
//! * [`plan`] — logical continuous-query plans with canonical sharing
//!   signatures.
//! * [`ops`] — physical operators: filter, project, windowed symmetric hash
//!   join, tumbling aggregates, union.
//! * [`network`] — the shared query network: one operator per distinct
//!   signature, reference-counted across queries.
//! * [`engine`] — deterministic push execution with event-time watermarks,
//!   connection points, and the end-of-day **transition phase**.
//! * [`cost`] — measured operator load estimation, lowering a live network
//!   into a `cqac_core` [`cqac_core::model::AuctionInstance`].
//! * [`center`] — the for-profit DSMS center: daily auctions, admission
//!   transitions, billing.
//! * [`streams`] — deterministic synthetic stock-quote and news feeds.
//!
//! ## Example: shared processing end to end
//!
//! ```
//! use cqac_dsms::engine::DsmsEngine;
//! use cqac_dsms::expr::Expr;
//! use cqac_dsms::plan::LogicalPlan;
//! use cqac_dsms::streams::{quote_schema, StockStream};
//! use cqac_dsms::types::Value;
//!
//! let mut engine = DsmsEngine::new();
//! engine.register_stream("quotes", quote_schema());
//!
//! // Two users register the same selection: one physical operator runs.
//! let plan = LogicalPlan::source("quotes")
//!     .filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))));
//! let q1 = engine.add_query(plan.clone()).unwrap();
//! let q2 = engine.add_query(plan).unwrap();
//! assert_eq!(engine.network().num_nodes(), 1);
//!
//! let mut feed = StockStream::new(&["IBM", "AAPL"], 1, 42);
//! engine.push_batch(feed.next_batch(100).into_iter().map(|t| ("quotes".into(), t)));
//! assert_eq!(engine.outputs(q1), engine.outputs(q2));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod center;
pub mod cost;
pub mod engine;
pub mod expr;
pub mod network;
pub mod ops;
pub mod plan;
pub mod streams;
pub mod types;

pub use center::{DsmsCenter, Submission};
pub use engine::DsmsEngine;
pub use network::{CqId, NodeId, QueryNetwork};
pub use plan::{AggFunc, LogicalPlan};
pub use types::{DataType, Field, Schema, Tuple, Value};
