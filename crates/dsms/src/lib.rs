//! # cqac-dsms — an Aurora-like stream-processing substrate
//!
//! The ICDE 2010 admission-control paper assumes "an underlying query model
//! similar to the Aurora model": continuous queries compiled into a shared
//! network of operators, connection points that can hold tuples while
//! subnetworks are modified, and per-operator loads the system can
//! approximate (§II). This crate *builds that substrate*:
//!
//! * [`types`] / [`expr`] — values, schemas, the columnar
//!   [`types::TupleBatch`] (typed [`types::Column`] vectors behind a shared
//!   schema), and a small expression language (predicates are data, so
//!   structurally identical operators share) with both columnar and
//!   per-row evaluation.
//! * [`plan`] — logical continuous-query plans with canonical sharing
//!   signatures.
//! * [`ops`] — physical operators: filter, project, windowed symmetric hash
//!   join, tumbling/sliding aggregates, union — all consuming and producing
//!   tuple *batches*.
//! * [`network`] — the shared query network: one operator per distinct
//!   signature, reference-counted across queries.
//! * [`engine`] — deterministic batched push execution with event-time
//!   watermarks, connection points, and the end-of-day **transition phase**.
//! * [`cost`] — operator load estimation (analytic unit costs or measured
//!   per-batch timings normalized per tuple), lowering a live network into
//!   a `cqac_core` [`cqac_core::model::AuctionInstance`].
//! * [`center`] — the for-profit DSMS center: daily auctions, admission
//!   transitions, billing.
//! * [`streams`] — deterministic synthetic stock-quote and news feeds.
//! * [`fault`] — deterministic fault injection (seeded kernel panics,
//!   poison rows, worker death) driving the robustness soak tests.
//!
//! ## Columnar batched execution model
//!
//! The engine's unit of work is the [`types::TupleBatch`]: a shared schema
//! (`Arc<Schema>`), one event-timestamp vector, and one typed
//! [`types::Column`] per field (`Vec<bool>` / `Vec<i64>` / `Vec<f64>` /
//! `Vec<Arc<str>>`, with string columns normally carried
//! **dictionary-encoded** — see below). Ingestion groups consecutive
//! same-stream tuples into batches capped at the engine's **batch-size
//! knob**
//! ([`engine::DsmsEngine::set_max_batch_size`], default
//! [`types::TupleBatch::DEFAULT_MAX_BATCH`]), converting rows to columns at
//! the boundary; node queues, operator calls, watermark propagation, and
//! sink delivery all move whole columnar batches. Because only
//! *consecutive* tuples coalesce, global arrival order is preserved, and
//! outputs are invariant under how the input was chunked — bit-identical
//! sequences for single-input pipelines (filter/project/aggregate chains);
//! for multi-port operators (join, union) the guarantee is multiset
//! equality, since the interleaving of the two ports' arrivals at the node
//! depends on where ingestion-call boundaries fall (exactly as it depended
//! on push/run interleaving under per-tuple execution). Both halves are
//! pinned by the scalar-vs-batched equivalence property in
//! `tests/property_dsms.rs`. Setting the knob to `1` recovers per-tuple
//! execution (the engine benchmark sweeps 1 vs 64 vs 1024 to track the
//! batching win).
//!
//! **Vectorized, selection-aware kernels.** Stateless operators never
//! touch rows: a filter evaluates its predicate as a typed column kernel
//! ([`expr::Expr::filter_indices`]) producing a selection vector, then
//! either forwards the batch untouched (all-pass fast path) or gathers the
//! selected rows column-wise; a projection evaluates each expression as a
//! column kernel straight into output columns; a fused chain threads one
//! selection vector through its staged kernels and materializes once at
//! the end. The kernels are selection-aware end to end:
//! [`expr::Expr::eval_columnar`] takes the `(batch, selection)` pair
//! directly, a selected column leaf stays a **lazy view** (no gather)
//! until an operator genuinely needs dense output, and a refining filter
//! produces the composed selection without densifying in between.
//! Row-level evaluation errors (division by zero, NaN comparisons) travel
//! as a validity mask ([`expr::Validity`]) so the drop-the-row semantics
//! of per-row execution are preserved bit for bit. Joins read their keys
//! straight off the typed key column and materialize a row only when it
//! enters the join state; aggregates absorb from typed column slices
//! without widening a [`types::Value`] per tuple. The row-at-a-time path
//! survives behind a per-thread kill switch
//! ([`ops::set_columnar_kernels`]) as the reference implementation — the
//! columnar-vs-row equivalence property in `tests/property_dsms.rs` pins
//! strict output-sequence equality between the two across batch caps
//! 1/7/64/1024.
//!
//! **SIMD-shaped lane loops.** The hot compare/arithmetic/selection
//! kernels over contiguous `i64`/`f64`/`bool` slices run as unrolled
//! fixed-width lane loops (eight lanes per trip, `chunks_exact` bodies
//! with no bounds checks or data-dependent branches — the shape the
//! vendored toolchain reliably auto-vectorizes; no SIMD crates or
//! intrinsics). Gathered (selection-indexed) shapes and lane tails run a
//! scalar loop. Full lanes are counted by
//! [`types::work::WorkSnapshot::simd_lanes`], and a per-thread kill
//! switch ([`ops::set_simd_kernels`], inherited by pool workers exactly
//! like the columnar switch — including seats respawned after a worker
//! death) swaps in a scalar reference loop that is **bit-identical** and
//! counts zero lanes; CI matrixes `CQAC_SIMD=on|off` through the
//! shard-invariance suites to keep both paths honest.
//!
//! **Exact integer comparisons.** `Int × Int` compares — row path and
//! columnar — compare `i64` exactly; widening to `f64` happens only for
//! genuinely mixed Int/Float operand pairs (where the float side decides
//! NaN handling: a NaN row is dropped via the validity mask, never
//! coerced). Values past 2^53, where `f64` loses integer precision, are
//! pinned by regression tests in `expr.rs` — the same guarantee PR 2
//! established for `Sum`'s i128 accumulator.
//!
//! **Dictionary-encoded strings.** String columns are interned at the
//! ingestion and merge boundaries ([`types::TupleBatch::from_rows`],
//! which every `push` path funnels through) into
//! [`types::Column::Dict`] — `u32` codes plus a first-appearance
//! dictionary of distinct `Arc<str>` values — whenever a batch stays
//! within [`types::Column::DICT_MAX_CARDINALITY`] distinct strings; wider columns
//! (and any append/merge that would overflow the cap) decay transparently
//! to plain `Column::Str`. The representation is invisible to semantics:
//! `value_at`/`gather`/`split_off`/`append`/`interleave_tagged` and
//! column equality are bit-identical across encodings, schema inference
//! still sees [`types::DataType::Str`], and hash partitioning hashes the
//! decoded bytes. What changes is the work: equality and ordering
//! predicates against a constant byte-compare **once per dictionary
//! entry** and then look up one `u32` verdict per row, dict×dict equality
//! remaps the right dictionary into the left code space once, and joins
//! and group-bys read keys through a per-code memo ([`ops`]' internal
//! `KeyReader`) that hashes each distinct string once per batch. Per-row code
//! comparisons are counted by
//! [`types::work::WorkSnapshot::dict_code_cmps`]; residual per-row byte
//! compares (plain columns, dict-vs-column ordering) by
//! [`types::work::WorkSnapshot::str_cmps`] — the `columnar_kernels`
//! bench asserts the shared string-predicate workload runs with
//! `str_cmps == 0`. Broadcast string constants
//! ([`types::Column::from_value`]) are a single dictionary entry with
//! zeroed codes — O(1) in the row count, not one `Arc` clone per row.
//!
//! **Zero-copy fan-out, copy-on-write columns.** A produced batch is
//! wrapped in one `Arc` and every downstream target receives a pointer
//! clone. Sinks keep the shared batch — a 32-sink shared query pays zero
//! per-sink row copies; rows materialize only when outputs are read
//! ([`engine::DsmsEngine::take_outputs`]). Node fan-out is free too:
//! [`types::TupleBatch`] holds its timestamp vector and column list behind
//! their own `Arc`s, so a consumer that cannot take the last reference
//! clones the batch by pointer and column data is copied only if someone
//! *mutates* a still-shared batch — which no operator does (readers read
//! shared columns, writers build fresh batches). The [`types::work`]
//! counters (row materializations, per-row evaluations, kernel passes,
//! copy-on-write misses) make these claims checkable on throttle-noisy
//! hardware; the `columnar_kernels` benchmark asserts zero deep clones for
//! both 32-way sink fan-out and 32-way node fan-out.
//!
//! Per-tuple [`engine::DsmsEngine::push`] survives as a thin wrapper that
//! appends to the current one-stream ingestion batch;
//! [`engine::DsmsEngine::push_batch`] (pairs) and
//! [`engine::DsmsEngine::push_rows`] (one stream, many rows) are the
//! primary ingestion paths.
//!
//! ## Operator fusion
//!
//! At network-instantiation time a **fusion pass** (on by default) collapses
//! each maximal chain of adjacent stateless operators — filter→filter,
//! filter→project, project→project — into a single [`ops::FusedOp`] node:
//! one queue hop and one output-batch materialization for the whole chain.
//! Construction composes stages where that is exactly
//! semantics-preserving (adjacent filters become one short-circuit
//! conjunction; back-to-back projections substitute when the inner one is
//! all `Col`/`Lit` leaves) and otherwise runs a staged per-row kernel loop.
//!
//! Sharing beats fusion: the chain walk stops at any sub-plan already
//! materialized as a physical node and subscribes to it, and a fused node
//! is keyed by its chain's top signature, so identical chains submitted by
//! different users still share one node and per-CQ cost attribution is
//! unchanged. One deliberate asymmetry remains: a chain fuses over
//! *interior* sub-plans without registering their signatures, so a query
//! equal to such an interior prefix that arrives **after** the chain gets
//! its own node (duplicate computation, never wrong results); arriving
//! before the chain, it is shared. Splitting live fused nodes when a
//! prefix reader appears is future work (see ROADMAP).
//!
//! The fused node reports a **selectivity-aware effective unit cost**
//! (each stage's analytic cost weighted by the fraction of input rows that
//! reached it), so the admission auction prices a fused plan like the
//! unfused chain's measured per-node rates, while
//! [`cost::CostModel::measured`] observes the real (lower) per-tuple time.
//! Before calibration traffic flows, the fallback is the conservative
//! full-chain sum.
//!
//! The knob lives next to the batch-size knob at every level:
//! [`network::QueryNetwork::set_fusion_enabled`],
//! [`engine::DsmsEngine::set_fusion`] / [`engine::DsmsEngine::with_fusion`],
//! and [`center::DsmsCenter::with_fusion`] (which also applies it to the
//! per-auction shadow calibration engines). Turning it off recovers one
//! physical node per logical operator; fused and unfused networks are
//! row-for-row equivalent (pinned by the `fused_network_equals_unfused`
//! property in `tests/property_dsms.rs`).
//!
//! ## Parallel execution: morsel-driven scheduling with work stealing
//!
//! The engine scales ingestion across cores without giving up replay
//! exactness. A **shard-count knob** sits next to the batch-size and
//! fusion knobs at every level — [`network::QueryNetwork::set_shards`],
//! [`engine::DsmsEngine::set_shards`] / [`engine::DsmsEngine::with_shards`],
//! [`center::DsmsCenter::with_shards`] (which also applies it to the
//! shadow calibration engines, like
//! [`center::DsmsCenter::with_shard_key`]). Shard count 1 — the default —
//! compiles down to the single-threaded path (which still carries the
//! filters' selection vectors through its per-node queues instead of
//! densifying at every hop); `n > 1` runs each flush in three phases:
//!
//! 1. **Partition.** Streams with a configured **shard key**
//!    ([`engine::DsmsEngine::set_shard_key`]) hash-partition row by row
//!    (deterministic FNV-1a, so equal keys always land on the same shard;
//!    rows carry their pre-partition index as a sequence tag) into the
//!    **keyed plan**; keyless streams distribute whole batches
//!    round-robin into their stateless prefixes. Subscribers outside both
//!    plans — shard-incompatible operators and sinks — receive raw
//!    batches at flush time, exactly like the single-threaded engine.
//! 2. **Morsel-driven execution on the pool.** The flush's work units are
//!    cut into **morsels** — batch-sized, sequence-tagged work items of at
//!    most [`engine::DsmsEngine::set_morsel_batches`] units each (a
//!    *ceiling* once the adaptive controller below is enabled) — and
//!    dealt onto **per-worker deques**: worker `w`'s deque holds the
//!    morsels whose rows hash-partitioned to home shard `w` (plus its
//!    round-robin share). One job per worker runs on a **persistent
//!    worker pool** (long-lived threads spawn once, park on condvar
//!    inboxes, wake per flush — [`types::work::WorkSnapshot::pool_spawns`]
//!    stays flat after warmup): each worker pops its *own deque's head*
//!    first, and when that runs dry **steals from the tail** of the next
//!    busy worker's deque ([`engine::DsmsEngine::set_stealing`], on by
//!    default) — so a zipf-skewed key distribution that floods one home
//!    shard rebalances across whichever workers are idle. Executed,
//!    stolen, and missed-steal morsels are counted
//!    ([`types::work::WorkSnapshot::morsels_executed`] /
//!    [`types::work::WorkSnapshot::morsels_stolen`] /
//!    [`types::work::WorkSnapshot::steal_misses`]); a worker sweeps the
//!    victim deques at most once per grab, so the counters also pin that
//!    nobody spins. Round-robin morsels walk the stream's **stateless
//!    prefix** ([`network::QueryNetwork::stateless_prefix`]). Keyed
//!    morsels run the **keyed plan**
//!    ([`network::QueryNetwork::keyed_plan`]): the stateless prefix *plus
//!    every downstream stateful operator keyed compatibly with the
//!    partition key* — joins whose both sides are partitioned by their
//!    join keys, aggregates grouping by the key, with the key's column
//!    position tracked through filters, projections, and fused chains.
//!    Stateful members execute through a `&self` kernel
//!    ([`ops::KeyedKernel`]) against **state partitions** addressed by
//!    the morsel's *home* shard (equal keys share a home, so a stolen
//!    morsel mutates exactly the partition it would have at home), close
//!    windows per-partition against the flush's merged watermark, and
//!    absorb filtered input **through the selection vector** (no densify;
//!    counted by
//!    [`types::work::WorkSnapshot::selection_pushdown_rows`]).
//! 3. **Deterministic merge — past the stateful operators.** The merge
//!    barrier sits at the keyed plan's *exits* (the first
//!    shard-incompatible node or sink), not in front of every join and
//!    aggregate. Exit outputs merge per `(producing node, entry path)`:
//!    row outputs interleave by sequence tag
//!    ([`types::TupleBatch::interleave_tagged`] — join fan-out repeats
//!    its probe row's tag, preserving shard-local partner order), and
//!    window closes merge their per-shard sorted runs by
//!    [`types::EmitKey`] `(window start, group)`. Merged batches dispatch
//!    in ascending order exactly when the control loop's pass reaches
//!    each producer, reproducing the single-threaded arrival interleaving
//!    at every out-of-plan queue.
//!
//! **Two keyed execution modes.** Stealing must not reorder state
//! mutations that produce inline outputs, so the scheduler classifies
//! each keyed plan: when every stateful member **commutes** (exact
//! aggregates — absorption order cannot change the combined state, and
//! aggregates emit only at window closes), a home shard's units chunk
//! into independent morsels and the watermark pass runs as a **second
//! phase** behind an all-absorbed barrier (worker `w` closes partition
//! `w`'s windows — per-partition, so the pass needs no locks). Plans with
//! order-sensitive members (joins, float Sum/Avg aggregates) fall back to
//! one **chain morsel** per home shard — the original one-pass walk with
//! in-line advances, still stealable as a whole, so skew still rebalances
//! at shard granularity.
//!
//! **Partial aggregation.** An ungrouped aggregate normally blocks
//! sharding (its single group spans every shard), and so does a grouped
//! aggregate whose group key is *shard-incompatible* (grouping by a
//! column other than the partition key, so one group's rows land on many
//! shards) — but when the combine is **exact** (integer inputs via the
//! i128 accumulator; Count/Min/Max over anything —
//! [`ops::AggregateOp`]'s `combine_exact`), either shape joins the keyed
//! plan as a **partial member**: each worker absorbs its morsels' rows
//! into its *own* partial accumulator — grouped members hash-accumulate
//! per group key within the worker's partition (counted by
//! [`types::work::WorkSnapshot::grouped_partial_rows`]) — and the
//! control thread's watermark pass folds the per-worker partials **in
//! deterministic partition order** at every window close, run-folding
//! equal group keys left-to-right
//! ([`types::work::WorkSnapshot::partial_groups_combined`]). Float
//! Sum/Avg stay behind the merge barrier (float addition does not
//! associate) — the determinism audit's `NL021` names any physical node
//! that claims partial membership with an order-sensitive combine. The
//! `hot_key_skew` bench's `grouped_partials` cell pins that a
//! commutative grouped workload cuts **zero chain morsels**
//! ([`types::work::WorkSnapshot::chain_morsels`]); the
//! grouped/ungrouped equivalence properties pin both halves.
//!
//! **Adaptive morsel sizing.** With
//! [`engine::DsmsEngine::set_adaptive_morsels`] on, the configured grain
//! becomes a ceiling and the engine picks each flush's effective grain
//! from **execution-cost feedback**: every morsel's cost is measured in
//! the deterministic [`types::work`] units (never wall clock), workers
//! report `(class, cost)` samples per flush (class = the round-robin
//! plan index, or the keyed plan), and the control thread folds each
//! class's sorted samples into integer Q8 EWMAs of mean cost and spread
//! (max − min). High spread — skewed per-morsel cost — shrinks the grain
//! toward 1 so stealing can rebalance; uniform cost grows it back toward
//! the ceiling to amortize scheduling overhead. The grain for a flush is
//! computed from *prior* flushes only and unseeded classes vote the
//! ceiling, so morsel cutting stays a deterministic function of the
//! input history: the resize trace
//! ([`types::work::WorkSnapshot::adaptive_resizes`]) is reproducible
//! run-to-run, outputs stay bit-identical to the static grain, and the
//! knob off (the default) reproduces the static scheduler exactly —
//! pinned by the `adaptive_controller_is_deterministic` property.
//!
//! **Core pinning (`core_pinning` feature).** An off-by-default cargo
//! feature makes worker seats topology-aware: each pool worker pins
//! itself to a core via `sched_setaffinity(2)` (best-effort, Linux only)
//! and steal victims are swept in **seat-distance order** (±1, ±2, …)
//! so rebalancing prefers nearby cores. Outputs are merge-order
//! independent, so the steal order cannot affect results; the portable
//! default build compiles the whole path out.
//!
//! **Determinism argument.** Hash partitioning sends every pair of rows a
//! keyed stateful operator must combine (equal join keys, equal group
//! keys) to the same *home* shard, and a morsel's state-partition index
//! travels with the morsel, so per-partition operator state evolves
//! exactly as the single-threaded state restricted to that partition's
//! keys no matter which worker executes it; morsels of one home shard
//! preserve source order within each deque (owners pop the head; a chain
//! morsel is never split; commutative morsels may complete out of order
//! but their absorptions commute), against the same merged watermark.
//! Join outputs ordered by probe-row tag and window closes ordered by the
//! `(window start, group)` emission comparator therefore reassemble the
//! exact single-threaded output sequences. Output sequences are hence
//! **bit-identical to the single-threaded engine regardless of shard
//! count, morsel size, stealing, or the adaptive controller** — pinned
//! by the `shard_count_invariance`, `keyed_stateful_shard_invariance`,
//! `ungrouped_aggregate_partials_match_single_threaded`, and
//! `grouped_partials_match_single_threaded` properties (stateless,
//! keyed-stateful, and grouped/ungrouped partial-aggregate plan shapes ×
//! batch caps 1/7/64/1024 × shard counts 1/2/4/8 × both partition modes
//! × morsel grains 1/4/16 × stealing on/off × adaptive on/off, strict
//! sequence equality), a 100-seed concurrency soak, and a skewed-key
//! soak in `tests/shard_exec.rs`.
//!
//! Per-worker load is observable ([`engine::DsmsEngine::shard_stats`] —
//! executing-worker attribution, near-balanced under stealing;
//! [`engine::StreamStats::shard_rows`] — home placement, where skew stays
//! visible; the `shard_batches` / `shard_merge_rows` / `keyed_shard_rows`
//! / morsel work counters) and aggregates into the same per-node totals
//! the measured cost model reads, so [`cost::CostModel::measured`] prices
//! a query's full multi-core load — including the keyed stateful fraction,
//! which now genuinely runs on the shards — and the admission auction
//! compares it against [`cost::effective_capacity`] — `shards × per-core
//! capacity`.
//!
//! ## Static verification
//!
//! Every plan is statically verified *before* it can mutate the shared
//! network. The [`diag`] module is the diagnostics framework: stable
//! `NL0xx` codes ([`diag::Code`]) with fixed severities, spans that point
//! into a plan (`$.input.left`-style paths), at a physical node, a query,
//! a stream, or the whole network ([`diag::Span`]), and an accumulating
//! [`diag::Report`] that renders human-readable text and machine-readable
//! JSON ([`diag::Report::to_json`]). [`diag::check_plan`] walks a
//! [`plan::LogicalPlan`] collecting *every* problem (not just the first),
//! and [`diag::check_shard_key`] validates partitioning keys.
//!
//! The verifier is load-bearing at three choke points:
//!
//! * [`network::QueryNetwork::add_query`] runs
//!   [`network::QueryNetwork::verify_plan`] and refuses to instantiate any
//!   plan with an error-severity diagnostic — the first error maps back to
//!   the exact [`plan::PlanError`] the legacy single-error path returned,
//!   so existing callers observe identical behavior.
//! * [`engine::DsmsEngine::set_shard_key`] validates the key against the
//!   stream schema and returns `Err` instead of debug-asserting later in
//!   the hash path.
//! * [`center::DsmsCenter::run_auction`] verifies each submitted plan
//!   before bidding; invalid bidders are rejected **pre-auction** with the
//!   full structured report in their decision
//!   (`center::Decision::rejection`) and never influence prices.
//!
//! Consequently every release-mode `debug_assert!(false, "… escaped …
//! validation")` site in [`ops`] is unreachable by construction; the
//! plan-mutation property suite in `cqac-analyze` injects each known
//! corruption and proves the analyzer fires first.
//!
//! Deeper whole-network passes — the determinism audit (an independent
//! re-derivation of the keyed-plan classification), cost-attribution
//! conservation, and sharing lints — live in the `cqac-analyze` crate
//! alongside the full diagnostic-code table and the `netlint` CLI that
//! gates CI with `--deny-warnings`.
//!
//! ## Robustness & failure semantics
//!
//! Admission is a promise the runtime keeps under failure and overload by
//! degrading **per query, never per process**:
//!
//! * **Panic quarantine.** Every operator kernel invocation — on the
//!   worker pool and on the control thread — runs under its own
//!   `catch_unwind` net. A panicking kernel loses only that invocation's
//!   outputs; the engine attributes the panic to the physical node,
//!   resolves the owning CQ set via shared-network bookkeeping
//!   ([`network::QueryNetwork::queries_owning`] — a shared node quarantines
//!   *all* of its co-owners, because each owner's plan contains the
//!   faulted node), and excises exactly those queries with the same
//!   `remove_query` + transition machinery the daily auction uses. Each
//!   quarantine is recorded as an [`engine::QuarantineEvent`] carrying a
//!   structured [`diag::Report`] (`NL060` operator panic at the node span,
//!   `NL061` per quarantined query, `NL062` for worker death) and counted
//!   by [`types::work::WorkSnapshot::quarantines`]. Every other query
//!   keeps serving: kernels are pure functions of per-invocation inputs
//!   plus per-node state, so a caught invocation cannot corrupt a
//!   *different* node's state, and surviving-CQ outputs stay bit-identical
//!   to a fault-free run (pinned per operator kind × shard count × morsel
//!   grain × stealing in `tests/fault_recovery.rs`). Worker threads
//!   survive kernel panics — `pool_spawns` stays flat — while an injected
//!   worker *death* is detected at job granularity: the scheduler's
//!   desertion flag releases the survivors' advance barrier, the control
//!   thread drains the dead worker's remaining morsels inline and runs the
//!   skipped watermark passes partition by partition, and the pool
//!   respawns the seat before the next flush. [`center::DsmsCenter`]
//!   absorbs quarantines into the billing layer: the quarantined bidder's
//!   payment for the day is zeroed and the bidder sits out the next
//!   auction round (rejected pre-auction with the quarantine report).
//! * **Overload shedding.** [`engine::OverloadPolicy`] bounds how many
//!   rows one flush may ingest. When pending ingestion exceeds the
//!   budget, the engine sheds **whole batches, lowest-priority stream
//!   first** (priority = highest admitted bid reading the stream, wired
//!   by the center after each auction), so the highest-bid CQ keeps its
//!   admitted service while a flash crowd on a cheap stream degrades
//!   first. Shedding happens *before* partitioning, on arrival-ordered
//!   whole batches, so [`types::work::WorkSnapshot::rows_shed`] is
//!   deterministic and shard-count-invariant; per-stream losses surface
//!   in [`engine::StreamStats::rows_shed`] and as `NL063` warnings in
//!   [`engine::DsmsEngine::overload_report`].
//! * **Determinism under injected faults.** The [`fault`] harness
//!   triggers failures at *logical* points — the Nth kernel invocation of
//!   an operator kind, a poison row identified by content, a worker death
//!   at job start — never at wall-clock points, so every soak replays
//!   from its seed. Quarantine resolution runs after the flush/drain
//!   loop reaches quiescence and removes queries in ascending CQ order;
//!   shedding picks victims by `(priority, stream name)`; both are pure
//!   functions of the input sequence.
//!
//! ## Example: shared batched processing end to end
//!
//! ```
//! use cqac_dsms::engine::DsmsEngine;
//! use cqac_dsms::expr::Expr;
//! use cqac_dsms::plan::LogicalPlan;
//! use cqac_dsms::streams::{quote_schema, StockStream};
//! use cqac_dsms::types::Value;
//!
//! let mut engine = DsmsEngine::new().with_max_batch_size(256);
//! engine.register_stream("quotes", quote_schema());
//!
//! // Two users register the same selection: one physical operator runs.
//! let plan = LogicalPlan::source("quotes")
//!     .filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))));
//! let q1 = engine.add_query(plan.clone()).unwrap();
//! let q2 = engine.add_query(plan).unwrap();
//! assert_eq!(engine.network().num_nodes(), 1);
//!
//! // One-tuple `push` still works (it wraps the batched path)…
//! let mut feed = StockStream::new(&["IBM", "AAPL"], 1, 42);
//! engine.push_batch(feed.next_batch(100).into_iter().map(|t| ("quotes".into(), t)));
//! // …and whole-batch ingestion is the fast path.
//! engine.push_rows("quotes", feed.next_batch(100));
//! assert_eq!(engine.outputs(q1), engine.outputs(q2));
//! assert!(engine.batches_processed() < engine.tuples_processed());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod center;
pub mod cost;
pub mod diag;
pub mod engine;
pub mod expr;
pub mod fault;
pub mod network;
pub mod ops;
pub mod plan;
pub mod streams;
pub mod types;

pub use center::{DsmsCenter, Submission};
pub use engine::DsmsEngine;
pub use fault::FaultPlan;
pub use network::{CqId, NodeId, QueryNetwork};
pub use plan::{AggFunc, LogicalPlan};
pub use types::{Column, DataType, Field, Schema, Tuple, TupleBatch, Value};
