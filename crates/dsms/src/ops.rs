//! Physical operators: the batched push-based execution units of the query
//! network.
//!
//! Every operator consumes a [`TupleBatch`] on a numbered input port and
//! appends zero or more output batches — one `process_batch` call amortizes
//! queueing, fan-out, and timing over the whole batch, which is what makes
//! per-operator cost measurement (`cost.rs`) stable. With the columnar
//! batch layout the stateless operators run **typed column kernels**:
//! filter computes a selection vector over a typed column and gathers (or
//! passes the batch through untouched when everything matches), project
//! evaluates column kernels straight into output columns, and a fused
//! chain threads one selection vector through its staged kernels. The
//! row-at-a-time evaluation survives as a per-row fallback behind
//! [`set_columnar_kernels`] — the reference implementation the
//! columnar-vs-row equivalence property tests against, and a kill switch.
//!
//! Operators also expose an analytic **unit cost** — the abstract work per
//! input tuple used by the cost model to derive the auction loads `c_j`;
//! join and aggregate are costlier than stateless filters, matching the
//! intuition of the paper's operator loads.

use crate::expr::{Expr, Validity};
use crate::plan::AggFunc;
use crate::types::{Column, Schema, Tuple, TupleBatch, Value};
use std::cell::Cell;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    /// Whether stateless operators use the columnar kernels (default) or
    /// the per-row fallback. Thread-local because the engine is
    /// single-threaded by design and parallel tests must not interfere.
    static COLUMNAR: Cell<bool> = const { Cell::new(true) };
}

/// Enables or disables the columnar filter/project kernels on this thread.
/// Off recovers row-at-a-time evaluation — the reference implementation
/// (and kill switch) the columnar-vs-row equivalence property pins.
pub fn set_columnar_kernels(enabled: bool) {
    COLUMNAR.with(|c| c.set(enabled));
}

/// Whether the columnar kernels are enabled on this thread (default true).
pub fn columnar_kernels_enabled() -> bool {
    COLUMNAR.with(Cell::get)
}

/// Runs `f` with the columnar kernels forced on or off, restoring the
/// previous setting afterwards (panic-safe).
pub fn with_columnar_kernels<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_columnar_kernels(self.0);
        }
    }
    let _restore = Restore(columnar_kernels_enabled());
    set_columnar_kernels(enabled);
    f()
}

/// A hashable key for joins and group-by (floats are rejected at plan
/// validation).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Key {
    /// Boolean key.
    Bool(bool),
    /// Integer key.
    Int(i64),
    /// String key.
    Str(Arc<str>),
}

impl Key {
    /// Extracts a key from a value; `None` for unhashable types.
    pub fn from_value(v: &Value) -> Option<Key> {
        match v {
            Value::Bool(b) => Some(Key::Bool(*b)),
            Value::Int(i) => Some(Key::Int(*i)),
            Value::Str(s) => Some(Key::Str(s.clone())),
            Value::Float(_) => None,
        }
    }

    /// Extracts a key from row `i` of a typed column without materializing
    /// the row; `None` for unhashable (float) columns.
    pub fn from_column(col: &Column, i: usize) -> Option<Key> {
        match col {
            Column::Bool(v) => Some(Key::Bool(v[i])),
            Column::Int(v) => Some(Key::Int(v[i])),
            Column::Str(v) => Some(Key::Str(v[i].clone())),
            Column::Float(_) => None,
        }
    }

    /// The key as a [`Value`].
    pub fn to_value(&self) -> Value {
        match self {
            Key::Bool(b) => Value::Bool(*b),
            Key::Int(i) => Value::Int(*i),
            Key::Str(s) => Value::Str(s.clone()),
        }
    }
}

/// A physical streaming operator over tuple batches.
pub trait Operator: std::fmt::Debug + Send {
    /// Processes one input batch arriving on `port`, appending output
    /// batches. The batch is owned: pass-through operators forward columns
    /// without copying, and stateful operators move rows into their state.
    /// Semantics must equal processing the batch's rows one at a time in
    /// order (the scalar-vs-batched equivalence property).
    fn process_batch(&mut self, port: usize, batch: TupleBatch, out: &mut Vec<TupleBatch>);

    /// Emits whatever windowed state is ready to close given the current
    /// watermark (the maximum event time seen network-wide). Stateless
    /// operators do nothing.
    fn advance_watermark(&mut self, watermark: u64, out: &mut Vec<TupleBatch>) {
        let _ = (watermark, out);
    }

    /// Force-emits all remaining state (end of the final subscription day).
    fn finish(&mut self, out: &mut Vec<TupleBatch>) {
        let _ = out;
    }

    /// The operator's output schema (shared; output batches clone the Arc).
    fn output_schema(&self) -> &Arc<Schema>;

    /// Abstract work per input tuple (cost-model input).
    fn unit_cost(&self) -> f64;

    /// Tuples currently buffered in operator state (joins/aggregates).
    fn state_size(&self) -> usize {
        0
    }

    /// The operator's shard-parallel kernel, when it has one. Stateless
    /// single-input operators (filter, project, fused chains) return
    /// `Some`; stateful and multi-input operators return `None` and act as
    /// merge barriers for the shard-per-stream executor.
    fn shard_kernel(&self) -> Option<&dyn ShardKernel> {
        None
    }
}

/// The row-survivor trace of a traced stateless application: for each
/// output row, the index it had in the input batch (strictly increasing —
/// stateless operators never reorder). `None` means every input row
/// survived in place (the identity trace).
pub type RowTrace = Option<Vec<u32>>;

/// A stateless operator the shard-per-stream executor can run on worker
/// threads: application takes `&self` (internal statistics are atomic) and
/// reports which input rows survived, so the engine can merge shard
/// outputs back into the exact row order a single-threaded run produces.
pub trait ShardKernel: Send + Sync {
    /// Processes one owned batch, returning the output batch and — when
    /// `traced` — its [`RowTrace`]. Untraced calls (round-robin shard
    /// units, whose source batch lives whole on one shard and merges
    /// without tags) skip the survivor bookkeeping and return `None`.
    /// Semantics equal [`Operator::process_batch`] on the same batch,
    /// including honoring the calling thread's columnar-kernel switch
    /// ([`set_columnar_kernels`]).
    fn process_traced(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace);
}

/// Columnar projection kernel plus survivor trace: evaluates `exprs` over
/// `sel`'s rows of `batch` into a new batch under `schema`, dropping rows
/// where any expression fails (the per-row drop-malformed-tuples
/// semantics). The second element lists,
/// for each output row, its index in the *selection view* (`sel`'s rows,
/// or the whole batch when `sel` is `None`); identity is `None`. The trace
/// is computed only when `traced` is set.
fn project_columnar_traced(
    exprs: &[Expr],
    batch: &TupleBatch,
    sel: Option<&[u32]>,
    schema: Arc<Schema>,
    traced: bool,
) -> (TupleBatch, RowTrace) {
    let n = sel.map_or(batch.len(), <[u32]>::len);
    let dropped_all = |schema| (TupleBatch::new(schema), traced.then(Vec::new));
    let mut validity = Validity::AllValid;
    let mut columns: Vec<Column> = Vec::with_capacity(exprs.len());
    for e in exprs {
        let ev = e.eval_columnar(batch, sel);
        match ev.validity {
            // An expression that fails on every row drops every row.
            Validity::NoneValid => return dropped_all(schema),
            v => validity = validity.and(v),
        }
        columns.push(ev.values.into_column(n));
    }
    let ts: Vec<u64> = match sel {
        None => batch.ts().to_vec(),
        Some(s) => s.iter().map(|&i| batch.ts()[i as usize]).collect(),
    };
    match validity {
        Validity::AllValid => (TupleBatch::from_columns(schema, ts, columns), None),
        Validity::NoneValid => dropped_all(schema),
        Validity::Mask(m) => {
            // Rare path: some rows failed (e.g. division by zero) — gather
            // the surviving rows out of the dense result.
            let keep: Vec<u32> = (0..n as u32).filter(|&i| m[i as usize]).collect();
            let kept = TupleBatch::from_columns(schema, ts, columns).take(&keep);
            (kept, traced.then_some(keep))
        }
    }
}

/// Stateless selection.
#[derive(Debug)]
pub struct FilterOp {
    predicate: Expr,
    schema: Arc<Schema>,
}

impl FilterOp {
    /// Analytic per-tuple work of one filter stage (the fusion pass sums
    /// these constants when it collapses a chain into a [`FusedOp`]).
    pub const UNIT_COST: f64 = 1.0;

    /// A filter with the given predicate; `schema` is the (pass-through)
    /// input schema.
    pub fn new(predicate: Expr, schema: Schema) -> Self {
        Self {
            predicate,
            schema: Arc::new(schema),
        }
    }
}

impl FilterOp {
    /// The shared batch/traced application (see [`ShardKernel`]).
    fn apply(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace) {
        if columnar_kernels_enabled() {
            // One selection pass over typed columns; an all-pass batch is
            // forwarded without touching any row data.
            let sel = self.predicate.filter_indices(&batch, None);
            if sel.len() == batch.len() {
                (batch.with_schema(self.schema.clone()), None)
            } else {
                let kept = batch.take(&sel).with_schema(self.schema.clone());
                (kept, traced.then_some(sel))
            }
        } else {
            // Per-row fallback (reference implementation).
            let n = batch.len();
            let mut kept = TupleBatch::with_capacity(self.schema.clone(), n);
            let mut trace: Vec<u32> = Vec::new();
            for (i, tuple) in batch.into_rows().into_iter().enumerate() {
                if self.predicate.matches(&tuple) {
                    if traced {
                        trace.push(i as u32);
                    }
                    kept.push(tuple);
                }
            }
            let trace = (traced && kept.len() != n).then_some(trace);
            (kept, trace)
        }
    }
}

impl Operator for FilterOp {
    fn process_batch(&mut self, _port: usize, batch: TupleBatch, out: &mut Vec<TupleBatch>) {
        let (kept, _) = self.apply(batch, false);
        if !kept.is_empty() {
            out.push(kept);
        }
    }

    fn output_schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn unit_cost(&self) -> f64 {
        Self::UNIT_COST
    }

    fn shard_kernel(&self) -> Option<&dyn ShardKernel> {
        Some(self)
    }
}

impl ShardKernel for FilterOp {
    fn process_traced(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace) {
        self.apply(batch, traced)
    }
}

/// Stateless projection / mapping.
#[derive(Debug)]
pub struct ProjectOp {
    exprs: Vec<Expr>,
    schema: Arc<Schema>,
}

impl ProjectOp {
    /// Analytic per-tuple work of one projection stage (summed by the
    /// fusion pass, like [`FilterOp::UNIT_COST`]).
    pub const UNIT_COST: f64 = 1.2;

    /// A projection computing `exprs` into the given output schema.
    pub fn new(exprs: Vec<Expr>, schema: Schema) -> Self {
        Self {
            exprs,
            schema: Arc::new(schema),
        }
    }
}

impl ProjectOp {
    /// The shared batch/traced application (see [`ShardKernel`]).
    fn apply(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace) {
        if columnar_kernels_enabled() {
            return project_columnar_traced(&self.exprs, &batch, None, self.schema.clone(), traced);
        }
        // Per-row fallback (reference implementation).
        let n = batch.len();
        let mut mapped = TupleBatch::with_capacity(self.schema.clone(), n);
        let mut trace: Vec<u32> = Vec::new();
        'rows: for (i, tuple) in batch.iter_rows().enumerate() {
            let mut values = Vec::with_capacity(self.exprs.len());
            for e in &self.exprs {
                match e.eval(&tuple) {
                    Ok(v) => values.push(v),
                    Err(_) => continue 'rows, // drop malformed tuples
                }
            }
            if traced {
                trace.push(i as u32);
            }
            mapped.push(Tuple::new(tuple.ts, values));
        }
        let trace = (traced && mapped.len() != n).then_some(trace);
        (mapped, trace)
    }
}

impl Operator for ProjectOp {
    fn process_batch(&mut self, _port: usize, batch: TupleBatch, out: &mut Vec<TupleBatch>) {
        let (mapped, _) = self.apply(batch, false);
        if !mapped.is_empty() {
            out.push(mapped);
        }
    }

    fn output_schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn unit_cost(&self) -> f64 {
        Self::UNIT_COST
    }

    fn shard_kernel(&self) -> Option<&dyn ShardKernel> {
        Some(self)
    }
}

impl ShardKernel for ProjectOp {
    fn process_traced(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace) {
        self.apply(batch, traced)
    }
}

/// One stage of a [`FusedOp`]: the stateless kernels the fusion pass knows
/// how to chain over a batch without materializing intermediate batches
/// per operator.
#[derive(Clone, Debug)]
pub enum FusedStage {
    /// Keep rows matching the predicate (drop on evaluation error, like
    /// [`FilterOp`]).
    Filter(Expr),
    /// Map each row through the projection expressions into the stage's
    /// output schema (drop on evaluation error, like [`ProjectOp`]).
    Project(Vec<Expr>, Arc<Schema>),
}

/// A chain of adjacent stateless operators collapsed into one physical
/// node by the query network's fusion pass.
///
/// The columnar execution threads one **selection vector** through the
/// stage list: filter stages refine the selection over the current batch's
/// typed columns, projection stages gather the surviving rows into fresh
/// columns, and only the final stage materializes an output batch — one
/// queue hop and at most one gather per projection stage for the whole
/// chain. Construction composes stages where that is exactly
/// semantics-preserving:
///
/// * **adjacent filters** become one conjunctive predicate (short-circuit
///   `AND` reproduces the staged drop behavior bit for bit);
/// * **back-to-back projections** substitute when the inner projection is
///   all leaf expressions (`Col`/`Lit`), which never fail on
///   schema-conforming rows and are free to duplicate;
/// * everything else stays a staged kernel loop.
///
/// The operator reports a **selectivity-aware effective unit cost**: each
/// composed stage keeps the summed analytic cost of the operators folded
/// into it plus a count of the rows that actually entered it, and
/// [`Operator::unit_cost`] returns `Σ costᵢ · enteredᵢ / entered₀` — the
/// same analytic load the unfused chain would report from its measured
/// per-node input rates. Before any row is processed (or for an idle
/// calibration path) it falls back to the full summed cost, a conservative
/// upper bound. The one residual approximation: rows dropped midway through
/// a *composed* filter conjunction are still charged that whole stage.
#[derive(Debug)]
pub struct FusedOp {
    /// Composed stages with their summed analytic cost and the number of
    /// rows that entered them (atomic so shard workers can count through
    /// `&self`; the per-shard counts aggregate into the same totals a
    /// single-threaded run accumulates).
    stages: Vec<(FusedStage, f64, AtomicU64)>,
    schema: Arc<Schema>,
}

impl FusedOp {
    /// A fused chain from `(stage, analytic unit cost)` pairs listed in
    /// chain order (upstream first); `schema` is the last stage's output
    /// schema.
    ///
    /// # Panics
    /// Panics when `stages` is empty.
    pub fn new(stages: Vec<(FusedStage, f64)>, schema: Schema) -> Self {
        assert!(!stages.is_empty(), "fused chain needs at least one stage");
        let mut composed: Vec<(FusedStage, f64, AtomicU64)> = Vec::with_capacity(stages.len());
        for (stage, cost) in stages {
            match (composed.last_mut(), stage) {
                (Some((FusedStage::Filter(prev), prev_cost, _)), FusedStage::Filter(next)) => {
                    let left = std::mem::replace(prev, Expr::Lit(Value::Bool(true)));
                    *prev = left.and(next);
                    *prev_cost += cost;
                }
                (
                    Some((FusedStage::Project(inner, inner_schema), prev_cost, _)),
                    FusedStage::Project(outer, outer_schema),
                ) if inner.iter().all(Expr::is_leaf) => {
                    let substituted: Vec<Expr> =
                        outer.iter().map(|e| e.substitute_cols(inner)).collect();
                    *inner = substituted;
                    *inner_schema = outer_schema;
                    *prev_cost += cost;
                }
                (_, next) => composed.push((next, cost, AtomicU64::new(0))),
            }
        }
        Self {
            stages: composed,
            schema: Arc::new(schema),
        }
    }

    /// Number of kernel stages left after composition.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The shared batch/traced application (see [`ShardKernel`]).
    fn apply(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace) {
        if columnar_kernels_enabled() {
            self.apply_columnar(batch, traced)
        } else {
            self.apply_rows(batch, traced)
        }
    }

    /// Columnar execution: refine a selection vector through the stages,
    /// materializing columns only at projection stages and at the end.
    /// When `traced`, an original-row index vector rides along so the
    /// survivor trace composes across projection rematerializations.
    fn apply_columnar(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace) {
        let mut cur = batch;
        // `None` = every row of `cur` is selected.
        let mut sel: Option<Vec<u32>> = None;
        // Original-input index of each row of `cur` (`None` = identity);
        // maintained only when a trace was requested.
        let mut orig: Option<Vec<u32>> = None;
        for (stage, _, entered) in &self.stages {
            let n = sel.as_ref().map_or(cur.len(), Vec::len);
            if n == 0 {
                return (TupleBatch::new(self.schema.clone()), traced.then(Vec::new));
            }
            entered.fetch_add(n as u64, Ordering::Relaxed);
            match stage {
                FusedStage::Filter(predicate) => {
                    sel = Some(predicate.filter_indices(&cur, sel.as_deref()));
                }
                FusedStage::Project(exprs, schema) => {
                    let (mapped, kept) = project_columnar_traced(
                        exprs,
                        &cur,
                        sel.as_deref(),
                        schema.clone(),
                        traced,
                    );
                    if traced {
                        orig = compose_trace(orig, sel.take(), kept, mapped.len());
                    }
                    sel = None;
                    cur = mapped;
                }
            }
        }
        let (result, trace) = match sel {
            None => (cur, orig),
            Some(s) if s.len() == cur.len() => (cur, orig),
            Some(s) => {
                let trace = traced.then(|| {
                    s.iter()
                        .map(|&i| orig.as_ref().map_or(i, |o| o[i as usize]))
                        .collect()
                });
                (cur.take(&s), trace)
            }
        };
        if result.is_empty() {
            (TupleBatch::new(self.schema.clone()), traced.then(Vec::new))
        } else {
            (result.with_schema(self.schema.clone()), trace)
        }
    }

    /// Per-row fallback (reference implementation).
    fn apply_rows(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace) {
        let n = batch.len();
        let mut output = TupleBatch::with_capacity(self.schema.clone(), n);
        let mut trace: Vec<u32> = Vec::new();
        'rows: for (idx, mut tuple) in batch.into_rows().into_iter().enumerate() {
            for (stage, _, entered) in &self.stages {
                entered.fetch_add(1, Ordering::Relaxed);
                match stage {
                    FusedStage::Filter(predicate) => {
                        if !predicate.matches(&tuple) {
                            continue 'rows;
                        }
                    }
                    FusedStage::Project(exprs, _) => {
                        let mut values = Vec::with_capacity(exprs.len());
                        for e in exprs.iter() {
                            match e.eval(&tuple) {
                                Ok(v) => values.push(v),
                                Err(_) => continue 'rows, // drop malformed tuples
                            }
                        }
                        tuple = Tuple::new(tuple.ts, values);
                    }
                }
            }
            if traced {
                trace.push(idx as u32);
            }
            output.push(tuple);
        }
        let trace = (traced && output.len() != n).then_some(trace);
        (output, trace)
    }
}

/// Composes a projection stage's survivor trace onto the running
/// original-row mapping of [`FusedOp::apply_columnar`]: output row `j`
/// passed the stage as view row `kept[j]`, which was `cur` row
/// `sel[kept[j]]`, which was original row `orig[…]` — with `None` meaning
/// identity at each level. Returns `None` only when every level was the
/// identity.
fn compose_trace(
    orig: Option<Vec<u32>>,
    sel: Option<Vec<u32>>,
    kept: RowTrace,
    out_len: usize,
) -> Option<Vec<u32>> {
    if orig.is_none() && sel.is_none() && kept.is_none() {
        return None;
    }
    Some(
        (0..out_len as u32)
            .map(|j| {
                let view = kept.as_ref().map_or(j, |k| k[j as usize]);
                let cur = sel.as_ref().map_or(view, |s| s[view as usize]);
                orig.as_ref().map_or(cur, |o| o[cur as usize])
            })
            .collect(),
    )
}

impl Operator for FusedOp {
    fn process_batch(&mut self, _port: usize, batch: TupleBatch, out: &mut Vec<TupleBatch>) {
        let (result, _) = self.apply(batch, false);
        if !result.is_empty() {
            out.push(result);
        }
    }

    fn output_schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn unit_cost(&self) -> f64 {
        // Effective cost per *input* row: stage costs weighted by the
        // fraction of input rows that reached each stage. An idle node
        // reports the conservative full-chain sum. Stage counts aggregate
        // across shard workers, so the effective cost prices the total
        // multi-core load exactly like the single-threaded run.
        let entered_first = self
            .stages
            .first()
            .map_or(0, |(_, _, n)| n.load(Ordering::Relaxed));
        if entered_first == 0 {
            return self.stages.iter().map(|(_, c, _)| c).sum();
        }
        self.stages
            .iter()
            .map(|(_, cost, entered)| {
                cost * (entered.load(Ordering::Relaxed) as f64 / entered_first as f64)
            })
            .sum()
    }

    fn shard_kernel(&self) -> Option<&dyn ShardKernel> {
        Some(self)
    }
}

impl ShardKernel for FusedOp {
    fn process_traced(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace) {
        self.apply(batch, traced)
    }
}

/// Windowed symmetric hash equi-join.
///
/// Keeps a per-key FIFO of recent tuples on each side; each tuple of an
/// arriving batch probes the opposite side for partners within `window_ms`
/// of event time and appends `left ++ right` outputs (one output batch per
/// input batch). Keys are read straight from the typed key column; rows are
/// gathered (materialized) only when they enter the join state. State is
/// evicted lazily as the watermark advances past `ts + window_ms`.
#[derive(Debug)]
pub struct JoinOp {
    left_key: usize,
    right_key: usize,
    window_ms: u64,
    schema: Arc<Schema>,
    left_state: HashMap<Key, VecDeque<Tuple>>,
    right_state: HashMap<Key, VecDeque<Tuple>>,
    state_len: usize,
}

impl JoinOp {
    /// A join with the given key columns, window, and output schema
    /// (`left.join(&right)`).
    pub fn new(left_key: usize, right_key: usize, window_ms: u64, schema: Schema) -> Self {
        Self {
            left_key,
            right_key,
            window_ms,
            schema: Arc::new(schema),
            left_state: HashMap::new(),
            right_state: HashMap::new(),
            state_len: 0,
        }
    }

    fn emit_match(left: &Tuple, right: &Tuple, out: &mut TupleBatch) {
        let mut values = left.values.clone();
        values.extend(right.values.iter().cloned());
        out.push(Tuple::new(left.ts.max(right.ts), values));
    }
}

impl Operator for JoinOp {
    fn process_batch(&mut self, port: usize, batch: TupleBatch, out: &mut Vec<TupleBatch>) {
        let mut matches = TupleBatch::new(self.schema.clone());
        for i in 0..batch.len() {
            let (key_col, own_state, other_state, is_left) = match port {
                0 => (self.left_key, &mut self.left_state, &self.right_state, true),
                _ => (
                    self.right_key,
                    &mut self.right_state,
                    &self.left_state,
                    false,
                ),
            };
            // The key comes straight off the typed column; the row itself
            // is materialized once, because it must live in the join state.
            let Some(key) = Key::from_column(batch.column(key_col), i) else {
                // Plan validation rejects float join keys before any
                // operator is built; reaching this means the node was
                // constructed around it. Dropping the row keeps release
                // builds safe either way.
                debug_assert!(false, "unhashable join key escaped plan validation");
                continue;
            };
            let tuple = batch.row(i);
            // Probe the opposite side.
            if let Some(partners) = other_state.get(&key) {
                for partner in partners {
                    if tuple.ts.abs_diff(partner.ts) <= self.window_ms {
                        if is_left {
                            Self::emit_match(&tuple, partner, &mut matches);
                        } else {
                            Self::emit_match(partner, &tuple, &mut matches);
                        }
                    }
                }
            }
            own_state.entry(key).or_default().push_back(tuple);
            self.state_len += 1;
        }
        if !matches.is_empty() {
            out.push(matches);
        }
    }

    fn advance_watermark(&mut self, watermark: u64, _out: &mut Vec<TupleBatch>) {
        let horizon = watermark.saturating_sub(self.window_ms);
        let mut evicted = 0usize;
        for state in [&mut self.left_state, &mut self.right_state] {
            state.retain(|_, q| {
                while q.front().is_some_and(|t| t.ts < horizon) {
                    q.pop_front();
                    evicted += 1;
                }
                !q.is_empty()
            });
        }
        debug_assert!(
            evicted <= self.state_len,
            "join evicted {evicted} tuples but tracked only {}",
            self.state_len
        );
        self.state_len = self.state_len.saturating_sub(evicted);
    }

    fn output_schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn unit_cost(&self) -> f64 {
        3.0
    }

    fn state_size(&self) -> usize {
        self.state_len
    }
}

/// One typed input drawn from the aggregated column.
#[derive(Clone, Copy, Debug)]
enum AggInput {
    /// An integer column value (or the dummy value of a pure `Count`).
    Int(i64),
    /// A float column value.
    Float(f64),
}

/// Typed per-batch access to the aggregated column: resolved once per
/// batch, so the absorb loop reads plain slices instead of widening a
/// [`Value`] per tuple.
enum AggColumn<'a> {
    /// `Count` never reads the column.
    CountOnly,
    /// Exact integer input.
    Ints(&'a [i64]),
    /// Float input.
    Floats(&'a [f64]),
    /// Integer column aggregated as float (legacy construction path).
    WidenInts(&'a [i64]),
}

impl<'a> AggColumn<'a> {
    #[inline]
    fn get(&self, i: usize) -> AggInput {
        match self {
            AggColumn::CountOnly => AggInput::Int(0), // never read, only counted
            AggColumn::Ints(xs) => AggInput::Int(xs[i]),
            AggColumn::Floats(xs) => AggInput::Float(xs[i]),
            AggColumn::WidenInts(xs) => AggInput::Float(xs[i] as f64),
        }
    }
}

/// The running accumulator of one `(window, group)` pair.
///
/// Integer inputs accumulate **exactly**: `sum` is an `i128`, wide enough
/// that no possible number of `i64` terms can overflow it, and `min`/`max`
/// stay in `i64`. The previous always-`f64` accumulator silently lost
/// precision once an integer sum passed 2^53. Float inputs keep the `f64`
/// path.
#[derive(Clone, Debug)]
enum AggState {
    /// Exact integer accumulation.
    Int {
        count: u64,
        sum: i128,
        min: i64,
        max: i64,
    },
    /// Float accumulation.
    Float {
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
    },
}

/// Saturates an exact wide sum into the `i64` output column. Clipping needs
/// more than 2^63 of accumulated magnitude; saturation is the explicit
/// spelling of what the old `f64 as i64` cast did implicitly (on top of
/// silently losing precision far earlier).
fn saturate_i128(v: i128) -> i64 {
    v.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64
}

impl AggState {
    /// An accumulator holding exactly the first absorbed value.
    fn seeded(v: AggInput) -> AggState {
        match v {
            AggInput::Int(i) => AggState::Int {
                count: 1,
                sum: i128::from(i),
                min: i,
                max: i,
            },
            AggInput::Float(f) => AggState::Float {
                count: 1,
                sum: f,
                min: f,
                max: f,
            },
        }
    }

    /// An accumulator with no absorbed tuples. `absorb` never produces one
    /// (it seeds with the first value); this exists so the empty-state
    /// contract of [`AggState::result`] is constructible and tested.
    #[cfg(test)]
    fn empty() -> AggState {
        AggState::Int {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    fn update(&mut self, v: AggInput) {
        match (self, v) {
            (
                AggState::Int {
                    count,
                    sum,
                    min,
                    max,
                },
                AggInput::Int(i),
            ) => {
                *count += 1;
                *sum += i128::from(i);
                *min = (*min).min(i);
                *max = (*max).max(i);
            }
            (
                AggState::Float {
                    count,
                    sum,
                    min,
                    max,
                },
                AggInput::Float(f),
            ) => {
                *count += 1;
                *sum += f;
                *min = min.min(f);
                *max = max.max(f);
            }
            _ => debug_assert!(false, "aggregate input type drifted mid-window"),
        }
    }

    fn count(&self) -> u64 {
        match self {
            AggState::Int { count, .. } | AggState::Float { count, .. } => *count,
        }
    }

    /// The aggregate's value, or `None` for an empty accumulator: an empty
    /// window has no defined `Min`/`Max`/`Avg` (the old code emitted the
    /// uninitialized `0.0`), so callers skip emission instead.
    fn result(&self, func: AggFunc) -> Option<Value> {
        if self.count() == 0 {
            return None;
        }
        Some(match (func, self) {
            (AggFunc::Count, s) => Value::Int(s.count() as i64),
            (AggFunc::Sum, AggState::Int { sum, .. }) => Value::Int(saturate_i128(*sum)),
            (AggFunc::Sum, AggState::Float { sum, .. }) => Value::Float(*sum),
            (AggFunc::Avg, AggState::Int { count, sum, .. }) => {
                Value::Float(*sum as f64 / *count as f64)
            }
            (AggFunc::Avg, AggState::Float { count, sum, .. }) => {
                Value::Float(*sum / *count as f64)
            }
            (AggFunc::Min, AggState::Int { min, .. }) => Value::Int(*min),
            (AggFunc::Min, AggState::Float { min, .. }) => Value::Float(*min),
            (AggFunc::Max, AggState::Int { max, .. }) => Value::Int(*max),
            (AggFunc::Max, AggState::Float { max, .. }) => Value::Float(*max),
        })
    }
}

/// Windowed aggregate, optionally grouped by one column.
///
/// Window starts are aligned to multiples of `slide_ms` in event time; a
/// tuple at `ts` belongs to every window `[start, start + window_ms)` with
/// `start ≤ ts < start + window_ms` (one window when tumbling, i.e.
/// `slide == window`). A window closes — and emits one tuple per group —
/// when the watermark reaches its end. Output: `(window_end, [group], agg)`.
#[derive(Debug)]
pub struct AggregateOp {
    group_by: Option<usize>,
    func: AggFunc,
    column: usize,
    window_ms: u64,
    slide_ms: u64,
    schema: Arc<Schema>,
    int_input: bool,
    /// (window_start, group) → running state.
    state: HashMap<(u64, Option<Key>), AggState>,
}

impl AggregateOp {
    /// A tumbling aggregate; `schema` is the output schema computed by plan
    /// validation, `int_input` records whether the aggregated column was an
    /// integer (Sum/Min/Max preserve integerness).
    pub fn new(
        group_by: Option<usize>,
        func: AggFunc,
        column: usize,
        window_ms: u64,
        schema: Schema,
        int_input: bool,
    ) -> Self {
        Self::with_slide(
            group_by, func, column, window_ms, window_ms, schema, int_input,
        )
    }

    /// A sliding aggregate (`slide_ms < window_ms` overlaps windows).
    #[allow(clippy::too_many_arguments)]
    pub fn with_slide(
        group_by: Option<usize>,
        func: AggFunc,
        column: usize,
        window_ms: u64,
        slide_ms: u64,
        schema: Schema,
        int_input: bool,
    ) -> Self {
        assert!(window_ms > 0, "window width must be positive");
        assert!(slide_ms > 0 && slide_ms <= window_ms, "invalid slide");
        Self {
            group_by,
            func,
            column,
            window_ms,
            slide_ms,
            schema: Arc::new(schema),
            int_input,
            state: HashMap::new(),
        }
    }

    /// Resolves the aggregated column to a typed accessor, once per batch.
    /// `None` means no row of this batch can be absorbed (non-numeric
    /// column under a value aggregate — the old per-row `as_f64` returned
    /// `None` for every row).
    fn agg_column<'a>(&self, batch: &'a TupleBatch) -> Option<AggColumn<'a>> {
        if self.func == AggFunc::Count {
            return Some(AggColumn::CountOnly);
        }
        let col = batch.column(self.column);
        if self.int_input {
            match col.as_ints() {
                Some(xs) => Some(AggColumn::Ints(xs)),
                None => {
                    debug_assert!(false, "non-integer column in integer aggregate");
                    None
                }
            }
        } else {
            match col {
                Column::Float(xs) => Some(AggColumn::Floats(xs)),
                Column::Int(xs) => Some(AggColumn::WidenInts(xs)),
                _ => None,
            }
        }
    }

    /// Absorbs one value into every window covering `ts`.
    fn absorb_at(&mut self, ts: u64, group: Option<Key>, v: AggInput) {
        // Every window [start, start + window) with start ≤ ts < start +
        // window and start ≡ 0 (mod slide) contains this tuple.
        let last_start = ts - ts % self.slide_ms;
        let mut start = last_start;
        loop {
            match self.state.entry((start, group.clone())) {
                Entry::Occupied(mut e) => e.get_mut().update(v),
                Entry::Vacant(e) => {
                    e.insert(AggState::seeded(v));
                }
            }
            // Step back one slide while the window still covers `ts`.
            let Some(prev) = start.checked_sub(self.slide_ms) else {
                break;
            };
            if prev + self.window_ms <= ts {
                break;
            }
            start = prev;
        }
    }

    fn emit_window(
        &self,
        (start, group): &(u64, Option<Key>),
        state: &AggState,
        out: &mut TupleBatch,
    ) {
        let Some(agg) = state.result(self.func) else {
            debug_assert!(false, "empty window state scheduled for emission");
            return;
        };
        let end = start + self.window_ms;
        let mut values = vec![Value::Int(end as i64)];
        if let Some(k) = group {
            values.push(k.to_value());
        }
        values.push(agg);
        out.push(Tuple::new(end, values));
    }

    fn emit_closed(&mut self, watermark: u64, out: &mut Vec<TupleBatch>) {
        let window_ms = self.window_ms;
        let mut ready: Vec<((u64, Option<Key>), AggState)> = Vec::new();
        self.state.retain(|key, state| {
            if key.0 + window_ms <= watermark {
                ready.push((key.clone(), state.clone()));
                false
            } else {
                true
            }
        });
        if ready.is_empty() {
            return;
        }
        // Deterministic emission order: by window start, then group key.
        ready.sort_by(|a, b| {
            a.0 .0
                .cmp(&b.0 .0)
                .then_with(|| format!("{:?}", a.0 .1).cmp(&format!("{:?}", b.0 .1)))
        });
        let mut closed = TupleBatch::with_capacity(self.schema.clone(), ready.len());
        for (key, state) in ready {
            self.emit_window(&key, &state, &mut closed);
        }
        if !closed.is_empty() {
            out.push(closed);
        }
    }
}

impl Operator for AggregateOp {
    fn process_batch(&mut self, _port: usize, batch: TupleBatch, _out: &mut Vec<TupleBatch>) {
        // Typed columnar absorb: the aggregated column and the group-key
        // column are resolved once per batch; the loop reads slices and
        // never materializes a row or widens a `Value`.
        let Some(input) = self.agg_column(&batch) else {
            return;
        };
        let group_by = self.group_by;
        for i in 0..batch.len() {
            let group = match group_by {
                Some(col) => match Key::from_column(batch.column(col), i) {
                    Some(k) => Some(k),
                    None => {
                        // Plan validation rejects float group keys; see the
                        // matching guard in `JoinOp::process_batch`.
                        debug_assert!(false, "unhashable group key escaped plan validation");
                        continue;
                    }
                },
                None => None,
            };
            let ts = batch.ts()[i];
            let v = input.get(i);
            self.absorb_at(ts, group, v);
        }
    }

    fn advance_watermark(&mut self, watermark: u64, out: &mut Vec<TupleBatch>) {
        self.emit_closed(watermark, out);
    }

    fn finish(&mut self, out: &mut Vec<TupleBatch>) {
        self.emit_closed(u64::MAX, out);
    }

    fn output_schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn unit_cost(&self) -> f64 {
        2.0
    }

    fn state_size(&self) -> usize {
        self.state.len()
    }
}

/// Union of two schema-identical inputs.
#[derive(Debug)]
pub struct UnionOp {
    schema: Arc<Schema>,
}

impl UnionOp {
    /// A union with the common schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema: Arc::new(schema),
        }
    }
}

impl Operator for UnionOp {
    fn process_batch(&mut self, _port: usize, batch: TupleBatch, out: &mut Vec<TupleBatch>) {
        if !batch.is_empty() {
            // Re-own the columns under the union's schema handle: zero
            // copies, only the schema Arc changes.
            out.push(batch.with_schema(self.schema.clone()));
        }
    }

    fn output_schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn unit_cost(&self) -> f64 {
        0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DataType, Field};

    fn quote_schema() -> Schema {
        Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("price", DataType::Float),
        ])
    }

    fn quote(ts: u64, sym: &str, price: f64) -> Tuple {
        Tuple::new(ts, vec![Value::str(sym), Value::Float(price)])
    }

    /// One batch over the quote schema.
    fn qbatch(rows: Vec<Tuple>) -> TupleBatch {
        TupleBatch::from_rows(Arc::new(quote_schema()), rows)
    }

    /// Flattens the emitted batches into rows, for assertions.
    fn rows_of(out: &[TupleBatch]) -> Vec<Tuple> {
        out.iter().flat_map(|b| b.iter_rows()).collect()
    }

    #[test]
    fn filter_selects() {
        for columnar in [true, false] {
            with_columnar_kernels(columnar, || {
                let mut f = FilterOp::new(
                    Expr::col(1).gt(Expr::lit(Value::Float(100.0))),
                    quote_schema(),
                );
                let mut out = Vec::new();
                f.process_batch(
                    0,
                    qbatch(vec![quote(1, "IBM", 120.0), quote(2, "IBM", 80.0)]),
                    &mut out,
                );
                let rows = rows_of(&out);
                assert_eq!(rows.len(), 1, "columnar={columnar}");
                assert_eq!(rows[0].ts, 1);
                // An all-rejected batch emits nothing at all.
                out.clear();
                f.process_batch(0, qbatch(vec![quote(3, "IBM", 10.0)]), &mut out);
                assert!(out.is_empty());
            });
        }
    }

    #[test]
    fn filter_all_pass_forwards_batch_without_gather() {
        let mut f = FilterOp::new(
            Expr::col(1).gt(Expr::lit(Value::Float(0.0))),
            quote_schema(),
        );
        let mut out = Vec::new();
        crate::types::work::reset();
        f.process_batch(
            0,
            qbatch(vec![quote(1, "IBM", 120.0), quote(2, "IBM", 80.0)]),
            &mut out,
        );
        let snap = crate::types::work::snapshot();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 2);
        assert_eq!(snap.rows_materialized, 0, "all-pass is zero-copy");
        assert_eq!(snap.row_evals, 0, "no per-row evaluation on the hot path");
        assert!(snap.kernel_ops > 0, "the predicate ran as a kernel");
    }

    #[test]
    fn project_maps() {
        for columnar in [true, false] {
            with_columnar_kernels(columnar, || {
                let mut p = ProjectOp::new(
                    vec![Expr::col(0)],
                    Schema::new(vec![Field::new("symbol", DataType::Str)]),
                );
                let mut out = Vec::new();
                p.process_batch(0, qbatch(vec![quote(5, "IBM", 1.0)]), &mut out);
                assert_eq!(rows_of(&out), vec![Tuple::new(5, vec![Value::str("IBM")])]);
            });
        }
    }

    #[test]
    fn project_drops_rows_that_fail_per_row() {
        // price / (price - 2): division by zero exactly when price == 2 —
        // the columnar kernel must drop precisely that row, like the
        // row-at-a-time path.
        let div = Expr::Arith(
            crate::expr::ArithOp::Div,
            Box::new(Expr::col(1)),
            Box::new(Expr::Arith(
                crate::expr::ArithOp::Sub,
                Box::new(Expr::col(1)),
                Box::new(Expr::lit(Value::Float(2.0))),
            )),
        );
        let schema = Schema::new(vec![Field::new("r", DataType::Float)]);
        let rows = vec![
            quote(1, "A", 4.0),
            quote(2, "A", 2.0), // divides by zero
            quote(3, "A", 6.0),
        ];
        let mut reference = Vec::new();
        with_columnar_kernels(false, || {
            let mut p = ProjectOp::new(vec![div.clone()], schema.clone());
            p.process_batch(0, qbatch(rows.clone()), &mut reference);
        });
        let mut columnar = Vec::new();
        with_columnar_kernels(true, || {
            let mut p = ProjectOp::new(vec![div], schema);
            p.process_batch(0, qbatch(rows), &mut columnar);
        });
        assert_eq!(rows_of(&columnar), rows_of(&reference));
        assert_eq!(rows_of(&columnar).len(), 2);
    }

    #[test]
    fn join_matches_within_window() {
        // quotes ⋈ news on symbol within 10ms.
        let news_schema = Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("headline", DataType::Str),
        ]);
        let nbatch = |rows: Vec<Tuple>| TupleBatch::from_rows(Arc::new(news_schema.clone()), rows);
        let schema = quote_schema().join(&news_schema);
        let mut j = JoinOp::new(0, 0, 10, schema);
        let mut out = Vec::new();
        j.process_batch(0, qbatch(vec![quote(100, "IBM", 120.0)]), &mut out);
        assert!(out.is_empty());
        let news = Tuple::new(105, vec![Value::str("IBM"), Value::str("up")]);
        j.process_batch(1, nbatch(vec![news]), &mut out);
        let rows = rows_of(&out);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values.len(), 4);
        assert_eq!(rows[0].ts, 105);
        // Outside the window: no match.
        let stale = Tuple::new(200, vec![Value::str("IBM"), Value::str("old")]);
        out.clear();
        j.process_batch(1, nbatch(vec![stale]), &mut out);
        assert!(out.is_empty());
        // Different key: no match.
        let other = Tuple::new(101, vec![Value::str("AAPL"), Value::str("x")]);
        out.clear();
        j.process_batch(1, nbatch(vec![other]), &mut out);
        assert!(out.is_empty());
        assert_eq!(j.state_size(), 4);
    }

    #[test]
    fn join_within_one_batch_matches_earlier_rows() {
        // Both sides of a match arriving in the same batch must still join
        // (batched processing ≡ row-at-a-time processing).
        let schema = quote_schema().join(&quote_schema());
        let mut j = JoinOp::new(0, 0, 50, schema);
        let mut out = Vec::new();
        j.process_batch(
            0,
            qbatch(vec![quote(1, "A", 1.0), quote(2, "A", 2.0)]),
            &mut out,
        );
        assert!(out.is_empty(), "left rows alone cannot match");
        j.process_batch(
            1,
            qbatch(vec![quote(3, "A", 3.0), quote(4, "B", 4.0)]),
            &mut out,
        );
        let rows = rows_of(&out);
        assert_eq!(rows.len(), 2, "the A probe matches both stored A rows");
    }

    #[test]
    fn join_eviction_respects_watermark() {
        let schema = quote_schema().join(&quote_schema());
        let mut j = JoinOp::new(0, 0, 10, schema);
        let mut out = Vec::new();
        j.process_batch(
            0,
            qbatch(vec![quote(100, "IBM", 1.0), quote(200, "IBM", 2.0)]),
            &mut out,
        );
        assert_eq!(j.state_size(), 2);
        j.advance_watermark(150, &mut out);
        assert_eq!(j.state_size(), 1, "the ts=100 tuple must be evicted");
        // The surviving tuple still joins.
        j.process_batch(1, qbatch(vec![quote(205, "IBM", 3.0)]), &mut out);
        assert_eq!(rows_of(&out).len(), 1);
    }

    #[test]
    fn join_symmetry() {
        let schema = quote_schema().join(&quote_schema());
        let mut j = JoinOp::new(0, 0, 50, schema.clone());
        let mut out_lr = Vec::new();
        j.process_batch(0, qbatch(vec![quote(1, "A", 1.0)]), &mut out_lr);
        j.process_batch(1, qbatch(vec![quote(2, "A", 2.0)]), &mut out_lr);

        let mut j2 = JoinOp::new(0, 0, 50, schema);
        let mut out_rl = Vec::new();
        j2.process_batch(1, qbatch(vec![quote(2, "A", 2.0)]), &mut out_rl);
        j2.process_batch(0, qbatch(vec![quote(1, "A", 1.0)]), &mut out_rl);

        let (lr, rl) = (rows_of(&out_lr), rows_of(&out_rl));
        assert_eq!(lr, rl, "arrival order must not change results");
        // Left columns always precede right columns.
        assert_eq!(lr[0].values[1], Value::Float(1.0));
        assert_eq!(lr[0].values[3], Value::Float(2.0));
    }

    #[test]
    fn tumbling_count_per_symbol() {
        let schema = Schema::new(vec![
            Field::new("window_end", DataType::Int),
            Field::new("symbol", DataType::Str),
            Field::new("count", DataType::Int),
        ]);
        let mut a = AggregateOp::new(Some(0), AggFunc::Count, 0, 100, schema, true);
        let mut out = Vec::new();
        a.process_batch(
            0,
            qbatch(vec![
                quote(10, "IBM", 1.0),
                quote(20, "IBM", 1.0),
                quote(30, "AAPL", 1.0),
                quote(110, "IBM", 1.0), // next window
            ]),
            &mut out,
        );
        assert!(out.is_empty(), "nothing closes before the watermark");
        a.advance_watermark(100, &mut out);
        let rows = rows_of(&out);
        assert_eq!(rows.len(), 2); // IBM=2, AAPL=1 for window [0,100)
        let counts: Vec<i64> = rows.iter().map(|t| t.values[2].as_int().unwrap()).collect();
        assert_eq!(counts.iter().sum::<i64>(), 3);
        out.clear();
        a.finish(&mut out);
        let rows = rows_of(&out);
        assert_eq!(rows.len(), 1); // the [100,200) window force-closed
        assert_eq!(rows[0].values[2], Value::Int(1));
    }

    #[test]
    fn avg_and_minmax() {
        let schema = Schema::new(vec![
            Field::new("window_end", DataType::Int),
            Field::new("avg", DataType::Float),
        ]);
        let mut a = AggregateOp::new(None, AggFunc::Avg, 1, 100, schema.clone(), false);
        let mut out = Vec::new();
        a.process_batch(
            0,
            qbatch(vec![quote(10, "X", 10.0), quote(20, "X", 20.0)]),
            &mut out,
        );
        a.advance_watermark(100, &mut out);
        assert_eq!(rows_of(&out)[0].values[1], Value::Float(15.0));

        let mut mx = AggregateOp::new(None, AggFunc::Max, 1, 100, schema, false);
        out.clear();
        mx.process_batch(
            0,
            qbatch(vec![quote(10, "X", 10.0), quote(20, "X", 20.0)]),
            &mut out,
        );
        mx.finish(&mut out);
        assert_eq!(rows_of(&out)[0].values[1], Value::Float(20.0));
    }

    #[test]
    fn aggregate_absorb_reads_typed_columns_without_row_work() {
        let schema = Schema::new(vec![
            Field::new("window_end", DataType::Int),
            Field::new("avg", DataType::Float),
        ]);
        let mut a = AggregateOp::new(Some(0), AggFunc::Avg, 1, 100, schema, false);
        let batch = qbatch((0..50).map(|i| quote(i, "X", i as f64)).collect());
        crate::types::work::reset();
        let mut out = Vec::new();
        a.process_batch(0, batch, &mut out);
        let snap = crate::types::work::snapshot();
        assert_eq!(snap.rows_materialized, 0, "absorb never builds a row");
        assert_eq!(snap.row_evals, 0);
    }

    #[test]
    fn union_passes_everything() {
        let mut u = UnionOp::new(quote_schema());
        let mut out = Vec::new();
        u.process_batch(0, qbatch(vec![quote(1, "A", 1.0)]), &mut out);
        u.process_batch(1, qbatch(vec![quote(2, "B", 2.0)]), &mut out);
        assert_eq!(rows_of(&out).len(), 2);
    }

    #[test]
    fn fused_chain_equals_staged_operators() {
        // filter(price > 100) → project(symbol, price) → filter(symbol = IBM),
        // run fused and as three separate operators over the same batch.
        let pred_price = Expr::col(1).gt(Expr::lit(Value::Float(100.0)));
        let proj = vec![Expr::col(0), Expr::col(1)];
        let pred_sym = Expr::col(0).eq(Expr::lit(Value::str("IBM")));
        let rows = vec![
            quote(1, "IBM", 120.0),
            quote(2, "IBM", 80.0),
            quote(3, "AAPL", 130.0),
            quote(4, "IBM", 140.0),
        ];

        let mut staged_out = Vec::new();
        let mut f1 = FilterOp::new(pred_price.clone(), quote_schema());
        let mut p = ProjectOp::new(proj.clone(), quote_schema());
        let mut f2 = FilterOp::new(pred_sym.clone(), quote_schema());
        let mut mid1 = Vec::new();
        f1.process_batch(0, qbatch(rows.clone()), &mut mid1);
        let mut mid2 = Vec::new();
        for b in mid1 {
            p.process_batch(0, b, &mut mid2);
        }
        for b in mid2 {
            f2.process_batch(0, b, &mut staged_out);
        }

        let mut fused = FusedOp::new(
            vec![
                (FusedStage::Filter(pred_price), FilterOp::UNIT_COST),
                (
                    FusedStage::Project(proj, Arc::new(quote_schema())),
                    ProjectOp::UNIT_COST,
                ),
                (FusedStage::Filter(pred_sym), FilterOp::UNIT_COST),
            ],
            quote_schema(),
        );
        // Before any row is seen the cost is the conservative chain sum.
        assert_eq!(
            fused.unit_cost(),
            FilterOp::UNIT_COST * 2.0 + ProjectOp::UNIT_COST
        );
        let mut fused_out = Vec::new();
        fused.process_batch(0, qbatch(rows), &mut fused_out);

        assert_eq!(rows_of(&fused_out), rows_of(&staged_out));
        // After processing, the cost is selectivity-weighted: 4 rows enter
        // the first filter, 3 survive to the project and second filter.
        let expected = FilterOp::UNIT_COST
            + (3.0 / 4.0) * ProjectOp::UNIT_COST
            + (3.0 / 4.0) * FilterOp::UNIT_COST;
        assert!((fused.unit_cost() - expected).abs() < 1e-12);
    }

    #[test]
    fn fused_chain_row_fallback_counts_stages_identically() {
        let pred = Expr::col(1).gt(Expr::lit(Value::Float(100.0)));
        let proj = vec![Expr::col(0), Expr::col(1)];
        let rows = vec![
            quote(1, "IBM", 120.0),
            quote(2, "IBM", 80.0),
            quote(3, "AAPL", 130.0),
        ];
        let build = || {
            FusedOp::new(
                vec![
                    (FusedStage::Filter(pred.clone()), FilterOp::UNIT_COST),
                    (
                        FusedStage::Project(proj.clone(), Arc::new(quote_schema())),
                        ProjectOp::UNIT_COST,
                    ),
                ],
                quote_schema(),
            )
        };
        let mut col_out = Vec::new();
        let col_cost = with_columnar_kernels(true, || {
            let mut f = build();
            f.process_batch(0, qbatch(rows.clone()), &mut col_out);
            f.unit_cost()
        });
        let mut row_out = Vec::new();
        let row_cost = with_columnar_kernels(false, || {
            let mut f = build();
            f.process_batch(0, qbatch(rows), &mut row_out);
            f.unit_cost()
        });
        assert_eq!(rows_of(&col_out), rows_of(&row_out));
        assert!(
            (col_cost - row_cost).abs() < 1e-12,
            "selectivity accounting must not depend on the kernel mode"
        );
    }

    #[test]
    fn fusion_composes_adjacent_filters_into_one_predicate() {
        let f = FusedOp::new(
            vec![
                (
                    FusedStage::Filter(Expr::col(1).gt(Expr::lit(Value::Float(1.0)))),
                    FilterOp::UNIT_COST,
                ),
                (
                    FusedStage::Filter(Expr::col(1).lt(Expr::lit(Value::Float(9.0)))),
                    FilterOp::UNIT_COST,
                ),
                (
                    FusedStage::Filter(Expr::col(0).eq(Expr::lit(Value::str("A")))),
                    FilterOp::UNIT_COST,
                ),
            ],
            quote_schema(),
        );
        assert_eq!(f.num_stages(), 1, "three filters compose into one");
        assert_eq!(
            f.unit_cost(),
            3.0 * FilterOp::UNIT_COST,
            "composition keeps the summed analytic cost"
        );
    }

    #[test]
    fn fusion_substitutes_through_leaf_projections() {
        // Inner projection is all leaves → the outer projection rewrites
        // over the inner's inputs and one stage remains.
        let swap = vec![Expr::col(1), Expr::col(0)];
        let swapped_schema = Arc::new(Schema::new(vec![
            Field::new("price", DataType::Float),
            Field::new("symbol", DataType::Str),
        ]));
        let mut f = FusedOp::new(
            vec![
                (
                    FusedStage::Project(swap.clone(), swapped_schema),
                    ProjectOp::UNIT_COST,
                ),
                (
                    FusedStage::Project(swap.clone(), Arc::new(quote_schema())),
                    ProjectOp::UNIT_COST,
                ),
            ],
            quote_schema(),
        );
        assert_eq!(f.num_stages(), 1, "leaf projections substitute");
        // Swapping twice is the identity.
        let mut out = Vec::new();
        f.process_batch(0, qbatch(vec![quote(1, "IBM", 2.0)]), &mut out);
        assert_eq!(rows_of(&out), vec![quote(1, "IBM", 2.0)]);
    }

    #[test]
    fn fusion_keeps_staged_loop_for_non_leaf_projections() {
        // Inner projection computes arithmetic — substitution would
        // duplicate work (and change error behavior), so stages stay.
        let double = Expr::Arith(
            crate::expr::ArithOp::Add,
            Box::new(Expr::col(1)),
            Box::new(Expr::col(1)),
        );
        let f = FusedOp::new(
            vec![
                (
                    FusedStage::Project(vec![Expr::col(0), double], Arc::new(quote_schema())),
                    ProjectOp::UNIT_COST,
                ),
                (
                    FusedStage::Project(
                        vec![Expr::col(1), Expr::col(0)],
                        Arc::new(Schema::new(vec![
                            Field::new("price", DataType::Float),
                            Field::new("symbol", DataType::Str),
                        ])),
                    ),
                    ProjectOp::UNIT_COST,
                ),
            ],
            Schema::new(vec![
                Field::new("price", DataType::Float),
                Field::new("symbol", DataType::Str),
            ]),
        );
        assert_eq!(
            f.num_stages(),
            2,
            "non-leaf inner projection is not substituted"
        );
    }

    #[test]
    fn int_sum_accumulates_exactly_past_2_pow_53() {
        // Three copies of 2^53 + 1: the old f64 accumulator rounded each
        // term to 2^53 and returned 3 × 2^53.
        let big = (1i64 << 53) + 1;
        let schema = Schema::new(vec![
            Field::new("window_end", DataType::Int),
            Field::new("sum", DataType::Int),
        ]);
        let volume_schema = Arc::new(Schema::new(vec![Field::new("volume", DataType::Int)]));
        let mut a = AggregateOp::new(None, AggFunc::Sum, 0, 100, schema, true);
        let rows = (0..3)
            .map(|i| Tuple::new(i, vec![Value::Int(big)]))
            .collect();
        let mut out = Vec::new();
        a.process_batch(0, TupleBatch::from_rows(volume_schema, rows), &mut out);
        a.finish(&mut out);
        assert_eq!(rows_of(&out)[0].values[1], Value::Int(3 * big));
    }

    #[test]
    fn int_min_max_avg_stay_exact() {
        let big = (1i64 << 60) + 7;
        let schema = Schema::new(vec![
            Field::new("window_end", DataType::Int),
            Field::new("max", DataType::Int),
        ]);
        let volume_schema = Arc::new(Schema::new(vec![Field::new("volume", DataType::Int)]));
        let mut mx = AggregateOp::new(None, AggFunc::Max, 0, 100, schema, true);
        let rows: Vec<Tuple> = [big, big - 1]
            .iter()
            .enumerate()
            .map(|(i, v)| Tuple::new(i as u64, vec![Value::Int(*v)]))
            .collect();
        let mut out = Vec::new();
        mx.process_batch(0, TupleBatch::from_rows(volume_schema, rows), &mut out);
        mx.finish(&mut out);
        // f64 cannot distinguish big from big - 1 at this magnitude.
        assert_eq!(rows_of(&out)[0].values[1], Value::Int(big));
    }

    #[test]
    fn empty_agg_state_yields_no_value() {
        let s = AggState::empty();
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            assert_eq!(s.result(func), None, "{func:?} over an empty window");
        }
    }

    #[test]
    fn saturating_sum_is_explicit_at_i64_bounds() {
        assert_eq!(saturate_i128(i128::from(i64::MAX) + 1), i64::MAX);
        assert_eq!(saturate_i128(i128::from(i64::MIN) - 1), i64::MIN);
        assert_eq!(saturate_i128(42), 42);
    }

    #[test]
    fn join_eviction_survives_repeated_watermarks() {
        let schema = quote_schema().join(&quote_schema());
        let mut j = JoinOp::new(0, 0, 10, schema);
        let mut out = Vec::new();
        j.process_batch(0, qbatch(vec![quote(100, "IBM", 1.0)]), &mut out);
        assert_eq!(j.state_size(), 1);
        // Re-advancing past everything must not underflow the tracked size.
        j.advance_watermark(500, &mut out);
        j.advance_watermark(500, &mut out);
        j.advance_watermark(900, &mut out);
        assert_eq!(j.state_size(), 0);
    }

    #[test]
    fn unit_costs_rank_operators_sanely() {
        let f = FilterOp::new(Expr::lit(Value::Bool(true)), quote_schema());
        let j = JoinOp::new(0, 0, 1, quote_schema().join(&quote_schema()));
        let schema = Schema::new(vec![
            Field::new("window_end", DataType::Int),
            Field::new("count", DataType::Int),
        ]);
        let a = AggregateOp::new(None, AggFunc::Count, 0, 1, schema, true);
        assert!(j.unit_cost() > a.unit_cost());
        assert!(a.unit_cost() > f.unit_cost());
    }

    #[test]
    fn columnar_kernel_knob_is_scoped_and_restored() {
        assert!(columnar_kernels_enabled(), "defaults to on");
        with_columnar_kernels(false, || {
            assert!(!columnar_kernels_enabled());
            with_columnar_kernels(true, || assert!(columnar_kernels_enabled()));
            assert!(!columnar_kernels_enabled());
        });
        assert!(columnar_kernels_enabled());
    }
}
