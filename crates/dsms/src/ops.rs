//! Physical operators: the batched push-based execution units of the query
//! network.
//!
//! Every operator consumes a [`TupleBatch`] on a numbered input port and
//! appends zero or more output batches — one `process_batch` call amortizes
//! queueing, fan-out, and timing over the whole batch, which is what makes
//! per-operator cost measurement (`cost.rs`) stable. With the columnar
//! batch layout the stateless operators run **typed column kernels**:
//! filter computes a selection vector over a typed column and gathers (or
//! passes the batch through untouched when everything matches), project
//! evaluates column kernels straight into output columns, and a fused
//! chain threads one selection vector through its staged kernels. The
//! row-at-a-time evaluation survives as a per-row fallback behind
//! [`set_columnar_kernels`] — the reference implementation the
//! columnar-vs-row equivalence property tests against, and a kill switch.
//!
//! Operators also expose an analytic **unit cost** — the abstract work per
//! input tuple used by the cost model to derive the auction loads `c_j`;
//! join and aggregate are costlier than stateless filters, matching the
//! intuition of the paper's operator loads.

use crate::expr::{Expr, Validity};
use crate::plan::AggFunc;
use crate::types::{Column, EmitKey, Schema, Tuple, TupleBatch, Value};
use std::cell::Cell;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Lane width of the SIMD-shaped aggregate-absorb fast path (matches the
/// compare/arith kernels in [`crate::expr`]).
const LANES: usize = 8;

thread_local! {
    /// Whether stateless operators use the columnar kernels (default) or
    /// the per-row fallback. Thread-local because the engine is
    /// single-threaded by design and parallel tests must not interfere.
    static COLUMNAR: Cell<bool> = const { Cell::new(true) };

    /// Whether the columnar kernels run their unrolled fixed-width lane
    /// loops (default) or the scalar reference loops. Independent of the
    /// columnar switch: `COLUMNAR` selects row vs columnar evaluation,
    /// `SIMD` selects how the columnar kernels traverse contiguous slices.
    /// Off produces bit-identical results with `work::simd_lanes` pinned
    /// to zero — the kill switch the `CQAC_SIMD` CI axis drives.
    static SIMD: Cell<bool> = const { Cell::new(true) };
}

/// Enables or disables the columnar filter/project kernels on this thread.
/// Off recovers row-at-a-time evaluation — the reference implementation
/// (and kill switch) the columnar-vs-row equivalence property pins.
pub fn set_columnar_kernels(enabled: bool) {
    COLUMNAR.with(|c| c.set(enabled));
}

/// Whether the columnar kernels are enabled on this thread (default true).
pub fn columnar_kernels_enabled() -> bool {
    COLUMNAR.with(Cell::get)
}

/// Runs `f` with the columnar kernels forced on or off, restoring the
/// previous setting afterwards (panic-safe).
pub fn with_columnar_kernels<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_columnar_kernels(self.0);
        }
    }
    let _restore = Restore(columnar_kernels_enabled());
    set_columnar_kernels(enabled);
    f()
}

/// Enables or disables the unrolled SIMD lane loops inside the columnar
/// kernels on this thread. Off falls back to the scalar reference loops —
/// bit-identical output, `work::simd_lanes` stays zero.
pub fn set_simd_kernels(enabled: bool) {
    SIMD.with(|c| c.set(enabled));
}

/// Whether the SIMD lane loops are enabled on this thread (default true).
pub fn simd_kernels_enabled() -> bool {
    SIMD.with(Cell::get)
}

/// Runs `f` with the SIMD lane loops forced on or off, restoring the
/// previous setting afterwards (panic-safe).
pub fn with_simd_kernels<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_simd_kernels(self.0);
        }
    }
    let _restore = Restore(simd_kernels_enabled());
    set_simd_kernels(enabled);
    f()
}

/// Every operator kind label a physical node can carry
/// ([`crate::network::Node::kind`]) — the domain of the fault-injection
/// harness's per-kind triggers ([`crate::fault::FaultPlan`]) and of
/// kind-keyed reports.
pub const OPERATOR_KINDS: [&str; 6] = ["filter", "project", "fused", "join", "aggregate", "union"];

/// The deterministic (FNV-1a) hash the shard partitioner and the
/// partitioned operator state share — stable across runs and platforms,
/// unlike the std hasher, so shard assignment is replayable and a key's
/// state partition always matches the shard its rows hash to.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The shard of one key cell read straight off a typed column (the
/// ingestion partitioner's hot path; byte-encoding identical to
/// [`Key::shard_of`]).
pub(crate) fn shard_of_cell(col: &Column, i: usize, shards: usize) -> usize {
    let h = match col {
        Column::Bool(v) => fnv1a(&[u8::from(v[i])]),
        Column::Int(v) => fnv1a(&v[i].to_le_bytes()),
        Column::Str(v) => fnv1a(v[i].as_bytes()),
        // Hash the decoded dictionary entry's bytes so dictionary-encoded
        // and plain string columns shard identically (the encoding is a
        // layout choice, never a semantic one). Loops over key cells
        // should prefer [`KeyReader`], which memoizes this per code.
        Column::Dict { codes, dict, .. } => fnv1a(dict[codes[i] as usize].as_bytes()),
        Column::Float(_) => {
            // `set_shard_key` rejects float columns before any run
            // (diagnostic NL014, `diag::Code::BadShardKey`), so this arm
            // is unreachable by construction.
            debug_assert!(false, "float shard key escaped validation");
            0
        }
    };
    (h % shards as u64) as usize
}

/// A hashable key for joins and group-by (floats are rejected at plan
/// validation).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Key {
    /// Boolean key.
    Bool(bool),
    /// Integer key.
    Int(i64),
    /// String key.
    Str(Arc<str>),
}

impl Key {
    /// Extracts a key from a value; `None` for unhashable types.
    pub fn from_value(v: &Value) -> Option<Key> {
        match v {
            Value::Bool(b) => Some(Key::Bool(*b)),
            Value::Int(i) => Some(Key::Int(*i)),
            Value::Str(s) => Some(Key::Str(s.clone())),
            Value::Float(_) => None,
        }
    }

    /// Extracts a key from row `i` of a typed column without materializing
    /// the row; `None` for unhashable (float) columns.
    pub fn from_column(col: &Column, i: usize) -> Option<Key> {
        match col {
            Column::Bool(v) => Some(Key::Bool(v[i])),
            Column::Int(v) => Some(Key::Int(v[i])),
            Column::Str(v) => Some(Key::Str(v[i].clone())),
            Column::Dict { codes, dict, .. } => Some(Key::Str(dict[codes[i] as usize].clone())),
            Column::Float(_) => None,
        }
    }

    /// The key as a [`Value`].
    pub fn to_value(&self) -> Value {
        match self {
            Key::Bool(b) => Value::Bool(*b),
            Key::Int(i) => Value::Int(*i),
            Key::Str(s) => Value::Str(s.clone()),
        }
    }

    /// The shard this key's rows — and therefore its operator state —
    /// live on under hash partitioning (byte-encoding identical to
    /// `shard_of_cell`, so partitioned state and partitioned rows can
    /// never disagree).
    pub fn shard_of(&self, shards: usize) -> usize {
        let h = match self {
            Key::Bool(b) => fnv1a(&[u8::from(*b)]),
            Key::Int(i) => fnv1a(&i.to_le_bytes()),
            Key::Str(s) => fnv1a(s.as_bytes()),
        };
        (h % shards as u64) as usize
    }
}

/// A per-batch key-cell reader that hashes dictionary codes, not bytes.
///
/// `Key::from_column` / `shard_of_cell` decode and FNV-hash string bytes
/// per row; over a dictionary-encoded column every row carrying the same
/// code yields the same key and the same shard. `KeyReader` resolves the
/// `(Key, hash)` pair once per distinct code and serves subsequent rows
/// from a u32-indexed memo — byte hashing happens at dictionary
/// granularity, the per-row work is one code lookup (counted by
/// [`crate::types::work::WorkSnapshot::dict_code_cmps`]). Non-dictionary
/// columns pass straight through to the per-row paths, so the reader is
/// always safe to use in key loops.
pub(crate) struct KeyReader<'a> {
    col: &'a Column,
    /// Lazily-filled per-code memo for `Column::Dict`: `(key, FNV hash)`.
    memo: Vec<Option<(Key, u64)>>,
}

impl<'a> KeyReader<'a> {
    pub(crate) fn new(col: &'a Column) -> KeyReader<'a> {
        let codes = match col {
            Column::Dict { dict, .. } => dict.len(),
            _ => 0,
        };
        KeyReader {
            col,
            memo: vec![None; codes],
        }
    }

    /// The memo slot for row `i` of a dictionary column (`None` when the
    /// column isn't dictionary-encoded).
    fn dict_entry(&mut self, i: usize) -> Option<&(Key, u64)> {
        let Column::Dict { codes, dict, .. } = self.col else {
            return None;
        };
        crate::types::work::count_dict_code_cmps(1);
        let c = codes[i] as usize;
        if self.memo[c].is_none() {
            let s = &dict[c];
            self.memo[c] = Some((Key::Str(s.clone()), fnv1a(s.as_bytes())));
        }
        self.memo[c].as_ref()
    }

    /// The key at row `i`; `None` for unhashable (float) columns.
    pub(crate) fn key(&mut self, i: usize) -> Option<Key> {
        if matches!(self.col, Column::Dict { .. }) {
            return self.dict_entry(i).map(|(k, _)| k.clone());
        }
        Key::from_column(self.col, i)
    }

    /// The key at row `i` together with its partition among `parts` — one
    /// memo lookup for dictionary columns, so the counted per-row work is
    /// the same whatever the partition count.
    pub(crate) fn key_and_shard(&mut self, i: usize, parts: usize) -> Option<(Key, usize)> {
        if matches!(self.col, Column::Dict { .. }) {
            let &(ref k, h) = self.dict_entry(i)?;
            let key = k.clone();
            let p = if parts == 1 {
                0
            } else {
                (h % parts as u64) as usize
            };
            return Some((key, p));
        }
        let key = Key::from_column(self.col, i)?;
        let p = if parts == 1 { 0 } else { key.shard_of(parts) };
        Some((key, p))
    }

    /// The shard of row `i` under hash partitioning (byte-encoding
    /// identical to [`shard_of_cell`] / [`Key::shard_of`]).
    pub(crate) fn shard(&mut self, i: usize, shards: usize) -> usize {
        if matches!(self.col, Column::Dict { .. }) {
            let &(_, h) = self.dict_entry(i).expect("dict column rows are hashable");
            return (h % shards as u64) as usize;
        }
        shard_of_cell(self.col, i, shards)
    }
}

/// A physical streaming operator over tuple batches.
pub trait Operator: std::fmt::Debug + Send {
    /// Processes one input batch arriving on `port`, appending output
    /// batches. The batch is owned: pass-through operators forward columns
    /// without copying, and stateful operators move rows into their state.
    /// Semantics must equal processing the batch's rows one at a time in
    /// order (the scalar-vs-batched equivalence property).
    fn process_batch(&mut self, port: usize, batch: TupleBatch, out: &mut Vec<TupleBatch>);

    /// Emits whatever windowed state is ready to close given the current
    /// watermark (the maximum event time seen network-wide). Stateless
    /// operators do nothing.
    fn advance_watermark(&mut self, watermark: u64, out: &mut Vec<TupleBatch>) {
        let _ = (watermark, out);
    }

    /// Force-emits all remaining state (end of the final subscription day).
    fn finish(&mut self, out: &mut Vec<TupleBatch>) {
        let _ = out;
    }

    /// The operator's output schema (shared; output batches clone the Arc).
    fn output_schema(&self) -> &Arc<Schema>;

    /// Abstract work per input tuple (cost-model input).
    fn unit_cost(&self) -> f64;

    /// Tuples currently buffered in operator state (joins/aggregates).
    fn state_size(&self) -> usize {
        0
    }

    /// The operator's shard-parallel kernel, when it has one. Stateless
    /// single-input operators (filter, project, fused chains) return
    /// `Some`; stateful and multi-input operators return `None` and act as
    /// merge barriers for the shard-per-stream executor — unless they are
    /// keyed compatibly with the partition key (see
    /// [`Operator::keyed_kernel`]).
    fn shard_kernel(&self) -> Option<&dyn ShardKernel> {
        None
    }

    /// The operator's **keyed** shard kernel — per-shard partitioned state
    /// behind `&self` — when it has one (joins and aggregates). Whether it
    /// may actually run inside the shards for a given plan is decided by
    /// [`Operator::keyed_out`].
    fn keyed_kernel(&self) -> Option<&dyn KeyedKernel> {
        None
    }

    /// Key propagation for keyed stateful sharding: given the column
    /// position of the partition key in each input port's rows (`None` =
    /// unknown / lost), returns the position of the partition key in this
    /// operator's *output* rows when the operator can execute partitioned
    /// by that key — i.e. when rows it must combine are guaranteed to
    /// share a shard:
    ///
    /// * stateless operators always can (they combine nothing); they
    ///   return where the key column survives to, or `None` when a
    ///   projection drops it (downstream stateful operators then fall back
    ///   to the merge barrier);
    /// * a join can when each side's join key *is* that side's partition
    ///   key (equal keys already share a shard);
    /// * an aggregate can when its group-by column is the partition key;
    /// * unions and everything else return `None` — a merge barrier.
    fn keyed_out(&self, in_keys: &[Option<usize>]) -> Option<usize> {
        let _ = in_keys;
        None
    }

    /// Whether the operator's keyed absorption **commutes across input
    /// batches**: absorbing a flush's units into per-shard state in any
    /// order produces bit-identical state and eventual emissions. The
    /// morsel scheduler only lets work stealing reorder a shard's units
    /// when every keyed stateful member of the plan commutes; otherwise
    /// the shard's units run as one sequential chain. Joins never commute
    /// (the probe/insert interleave determines match order and content);
    /// aggregates commute exactly when their accumulator combines exactly
    /// (counts, `i128` integer arithmetic, min/max).
    fn keyed_commutative(&self) -> bool {
        false
    }

    /// Whether the operator can run as a **partial-aggregation** member
    /// of the keyed parallel plan: workers fold rows into per-worker
    /// partial accumulators ([`KeyedKernel::process_keyed`] with the
    /// *worker* index as the partition) and a deterministic
    /// partition-order combine merges the partials when windows close.
    /// Exact combines qualify, grouped or not: ungrouped aggregates keep
    /// one accumulator per worker, grouped aggregates at
    /// **shard-incompatible** group keys keep a per-worker hash-partial
    /// map (a group's rows may land on any worker; the exact combine
    /// makes the split schedule-invariant). Inexact float sums would pick
    /// up schedule-dependent rounding, so they never qualify. The keyed
    /// planner consults this only when [`Operator::keyed_out`] already
    /// failed — a group key that *is* the partition key runs as a full
    /// member with sharded state instead.
    fn keyed_partial(&self) -> bool {
        false
    }

    /// Whether this partial member folds **grouped** hash partials
    /// (`false` for ungrouped partials and non-partial operators) — the
    /// engine attributes per-worker absorbs to
    /// [`crate::types::work::WorkSnapshot::grouped_partial_rows`] by this
    /// flag.
    fn keyed_partial_grouped(&self) -> bool {
        false
    }

    /// Processes the `sel`-selected rows of a shared batch arriving on
    /// `port` — the single-threaded selection-pushdown hook. The default
    /// gathers the selection into a dense batch and delegates to
    /// [`Operator::process_batch`]; stateful operators override it to
    /// absorb straight through the selection vector (counted by
    /// [`crate::types::work::WorkSnapshot::selection_pushdown_rows`]),
    /// never materializing the dropped rows.
    fn process_selected(
        &mut self,
        port: usize,
        batch: &TupleBatch,
        sel: &[u32],
        out: &mut Vec<TupleBatch>,
    ) {
        self.process_batch(port, batch.take(sel), out);
    }

    /// Re-partitions internal operator state across `n` shards (default:
    /// stateless operators have nothing to do). Keyed state moves whole —
    /// a key's tuples stay in arrival order — into the partition its key
    /// hashes to ([`Key::shard_of`]), so state location always matches row
    /// routing regardless of when the shard count changed.
    fn set_partitions(&mut self, n: usize) {
        let _ = n;
    }
}

/// The row-survivor trace of a traced stateless application: for each
/// output row, the index it had in the input batch (strictly increasing —
/// stateless operators never reorder). `None` means every input row
/// survived in place (the identity trace).
pub type RowTrace = Option<Vec<u32>>;

/// A stateless operator the shard-per-stream executor can run on worker
/// threads: application takes `&self` (internal statistics are atomic) and
/// reports which input rows survived, so the engine can merge shard
/// outputs back into the exact row order a single-threaded run produces.
pub trait ShardKernel: Send + Sync {
    /// Processes one owned batch, returning the output batch and — when
    /// `traced` — its [`RowTrace`]. Untraced calls (round-robin shard
    /// units, whose source batch lives whole on one shard and merges
    /// without tags) skip the survivor bookkeeping and return `None`.
    /// Semantics equal [`Operator::process_batch`] on the same batch,
    /// including honoring the calling thread's columnar-kernel switch
    /// ([`set_columnar_kernels`]).
    fn process_traced(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace);

    /// Selection-vector pushdown: refines `sel` (batch-row indices; `None`
    /// = all rows) over `batch` **without materializing survivors**, for
    /// consumers that can absorb a deferred selection (keyed joins and
    /// aggregates, further filters). Returns `None` when the operator
    /// cannot run selection-deferred (projections rewrite columns), in
    /// which case the caller densifies as usual. Only pure-filter kernels
    /// running columnar implement this — the row fallback keeps its
    /// per-row reference semantics.
    fn refine_selection(&self, batch: &TupleBatch, sel: Option<&[u32]>) -> Option<Vec<u32>> {
        let _ = (batch, sel);
        None
    }
}

/// A keyed stateful operator the shard executor can run *inside* the
/// shards: state is split into per-shard partitions behind `&self`
/// (uncontended `Mutex`es — a partition is only ever touched by its own
/// shard during a flush), so the merge barrier moves past the operator.
///
/// Correctness rests on the partition-key contract checked by
/// [`Operator::keyed_out`]: every pair of rows the operator must combine
/// (equal join keys, equal group keys) shares a shard under hash
/// partitioning, so per-shard state observes exactly the single-threaded
/// state restricted to its keys.
pub trait KeyedKernel: Send + Sync {
    /// Absorbs one input batch (restricted to `sel` when a deferred
    /// selection is pushed down) into shard `shard`'s state partition,
    /// returning the rows emitted inline (join matches; empty for
    /// aggregates) plus, per output row, the *batch-row index* that
    /// produced it — non-decreasing, repeating for join fan-out — so the
    /// caller can compose merge tags.
    fn process_keyed(
        &self,
        shard: usize,
        port: usize,
        batch: &TupleBatch,
        sel: Option<&[u32]>,
    ) -> (TupleBatch, Vec<u32>);

    /// Advances shard `shard`'s watermark: evicts expired state and emits
    /// closed windows as a batch sorted by [`EmitKey`] (the single-threaded
    /// emission comparator), tagged for the deterministic cross-shard
    /// merge. `None` when nothing closes.
    fn advance_keyed(&self, shard: usize, watermark: u64) -> Option<(TupleBatch, Vec<EmitKey>)>;
}

/// Columnar projection kernel plus survivor trace: evaluates `exprs` over
/// `sel`'s rows of `batch` into a new batch under `schema`, dropping rows
/// where any expression fails (the per-row drop-malformed-tuples
/// semantics). The second element lists,
/// for each output row, its index in the *selection view* (`sel`'s rows,
/// or the whole batch when `sel` is `None`); identity is `None`. The trace
/// is computed only when `traced` is set.
fn project_columnar_traced(
    exprs: &[Expr],
    batch: &TupleBatch,
    sel: Option<&[u32]>,
    schema: Arc<Schema>,
    traced: bool,
) -> (TupleBatch, RowTrace) {
    let n = sel.map_or(batch.len(), <[u32]>::len);
    let dropped_all = |schema| (TupleBatch::new(schema), traced.then(Vec::new));
    let mut validity = Validity::AllValid;
    let mut columns: Vec<Column> = Vec::with_capacity(exprs.len());
    for e in exprs {
        let ev = e.eval_columnar(batch, sel);
        match ev.validity {
            // An expression that fails on every row drops every row.
            Validity::NoneValid => return dropped_all(schema),
            v => validity = validity.and(v),
        }
        columns.push(ev.values.into_column(n));
    }
    let ts: Vec<u64> = match sel {
        None => batch.ts().to_vec(),
        Some(s) => s.iter().map(|&i| batch.ts()[i as usize]).collect(),
    };
    match validity {
        Validity::AllValid => (TupleBatch::from_columns(schema, ts, columns), None),
        Validity::NoneValid => dropped_all(schema),
        Validity::Mask(m) => {
            // Rare path: some rows failed (e.g. division by zero) — gather
            // the surviving rows out of the dense result.
            let keep: Vec<u32> = (0..n as u32).filter(|&i| m[i as usize]).collect();
            let kept = TupleBatch::from_columns(schema, ts, columns).take(&keep);
            (kept, traced.then_some(keep))
        }
    }
}

/// Stateless selection.
#[derive(Debug)]
pub struct FilterOp {
    predicate: Expr,
    schema: Arc<Schema>,
}

impl FilterOp {
    /// Analytic per-tuple work of one filter stage (the fusion pass sums
    /// these constants when it collapses a chain into a [`FusedOp`]).
    pub const UNIT_COST: f64 = 1.0;

    /// A filter with the given predicate; `schema` is the (pass-through)
    /// input schema.
    pub fn new(predicate: Expr, schema: Schema) -> Self {
        Self {
            predicate,
            schema: Arc::new(schema),
        }
    }
}

impl FilterOp {
    /// The shared batch/traced application (see [`ShardKernel`]).
    fn apply(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace) {
        if columnar_kernels_enabled() {
            // One selection pass over typed columns; an all-pass batch is
            // forwarded without touching any row data.
            let sel = self.predicate.filter_indices(&batch, None);
            if sel.len() == batch.len() {
                (batch.with_schema(self.schema.clone()), None)
            } else {
                let kept = batch.take(&sel).with_schema(self.schema.clone());
                (kept, traced.then_some(sel))
            }
        } else {
            // Per-row fallback (reference implementation).
            let n = batch.len();
            let mut kept = TupleBatch::with_capacity(self.schema.clone(), n);
            let mut trace: Vec<u32> = Vec::new();
            for (i, tuple) in batch.into_rows().into_iter().enumerate() {
                if self.predicate.matches(&tuple) {
                    if traced {
                        trace.push(i as u32);
                    }
                    kept.push(tuple);
                }
            }
            let trace = (traced && kept.len() != n).then_some(trace);
            (kept, trace)
        }
    }
}

impl Operator for FilterOp {
    fn process_batch(&mut self, _port: usize, batch: TupleBatch, out: &mut Vec<TupleBatch>) {
        let (kept, _) = self.apply(batch, false);
        if !kept.is_empty() {
            out.push(kept);
        }
    }

    fn output_schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn unit_cost(&self) -> f64 {
        Self::UNIT_COST
    }

    fn shard_kernel(&self) -> Option<&dyn ShardKernel> {
        Some(self)
    }

    fn keyed_out(&self, in_keys: &[Option<usize>]) -> Option<usize> {
        // Pass-through schema: the key column survives in place.
        in_keys.first().copied().flatten()
    }
}

impl ShardKernel for FilterOp {
    fn process_traced(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace) {
        self.apply(batch, traced)
    }

    fn refine_selection(&self, batch: &TupleBatch, sel: Option<&[u32]>) -> Option<Vec<u32>> {
        columnar_kernels_enabled().then(|| self.predicate.filter_indices(batch, sel))
    }
}

/// Stateless projection / mapping.
#[derive(Debug)]
pub struct ProjectOp {
    exprs: Vec<Expr>,
    schema: Arc<Schema>,
}

impl ProjectOp {
    /// Analytic per-tuple work of one projection stage (summed by the
    /// fusion pass, like [`FilterOp::UNIT_COST`]).
    pub const UNIT_COST: f64 = 1.2;

    /// A projection computing `exprs` into the given output schema.
    pub fn new(exprs: Vec<Expr>, schema: Schema) -> Self {
        Self {
            exprs,
            schema: Arc::new(schema),
        }
    }
}

impl ProjectOp {
    /// The shared batch/traced application (see [`ShardKernel`]).
    fn apply(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace) {
        if columnar_kernels_enabled() {
            return project_columnar_traced(&self.exprs, &batch, None, self.schema.clone(), traced);
        }
        // Per-row fallback (reference implementation).
        let n = batch.len();
        let mut mapped = TupleBatch::with_capacity(self.schema.clone(), n);
        let mut trace: Vec<u32> = Vec::new();
        'rows: for (i, tuple) in batch.iter_rows().enumerate() {
            let mut values = Vec::with_capacity(self.exprs.len());
            for e in &self.exprs {
                match e.eval(&tuple) {
                    Ok(v) => values.push(v),
                    Err(_) => continue 'rows, // drop malformed tuples
                }
            }
            if traced {
                trace.push(i as u32);
            }
            mapped.push(Tuple::new(tuple.ts, values));
        }
        let trace = (traced && mapped.len() != n).then_some(trace);
        (mapped, trace)
    }
}

impl Operator for ProjectOp {
    fn process_batch(&mut self, _port: usize, batch: TupleBatch, out: &mut Vec<TupleBatch>) {
        let (mapped, _) = self.apply(batch, false);
        if !mapped.is_empty() {
            out.push(mapped);
        }
    }

    fn output_schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn unit_cost(&self) -> f64 {
        Self::UNIT_COST
    }

    fn shard_kernel(&self) -> Option<&dyn ShardKernel> {
        Some(self)
    }

    fn keyed_out(&self, in_keys: &[Option<usize>]) -> Option<usize> {
        // The key survives wherever an output column is exactly `Col(key)`.
        let key = in_keys.first().copied().flatten()?;
        self.exprs.iter().position(|e| e.as_col() == Some(key))
    }
}

impl ShardKernel for ProjectOp {
    fn process_traced(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace) {
        self.apply(batch, traced)
    }
}

/// One stage of a [`FusedOp`]: the stateless kernels the fusion pass knows
/// how to chain over a batch without materializing intermediate batches
/// per operator.
#[derive(Clone, Debug)]
pub enum FusedStage {
    /// Keep rows matching the predicate (drop on evaluation error, like
    /// [`FilterOp`]).
    Filter(Expr),
    /// Map each row through the projection expressions into the stage's
    /// output schema (drop on evaluation error, like [`ProjectOp`]).
    Project(Vec<Expr>, Arc<Schema>),
}

/// A chain of adjacent stateless operators collapsed into one physical
/// node by the query network's fusion pass.
///
/// The columnar execution threads one **selection vector** through the
/// stage list: filter stages refine the selection over the current batch's
/// typed columns, projection stages gather the surviving rows into fresh
/// columns, and only the final stage materializes an output batch — one
/// queue hop and at most one gather per projection stage for the whole
/// chain. Construction composes stages where that is exactly
/// semantics-preserving:
///
/// * **adjacent filters** become one conjunctive predicate (short-circuit
///   `AND` reproduces the staged drop behavior bit for bit);
/// * **back-to-back projections** substitute when the inner projection is
///   all leaf expressions (`Col`/`Lit`), which never fail on
///   schema-conforming rows and are free to duplicate;
/// * everything else stays a staged kernel loop.
///
/// The operator reports a **selectivity-aware effective unit cost**: each
/// composed stage keeps the summed analytic cost of the operators folded
/// into it plus a count of the rows that actually entered it, and
/// [`Operator::unit_cost`] returns `Σ costᵢ · enteredᵢ / entered₀` — the
/// same analytic load the unfused chain would report from its measured
/// per-node input rates. Before any row is processed (or for an idle
/// calibration path) it falls back to the full summed cost, a conservative
/// upper bound. The one residual approximation: rows dropped midway through
/// a *composed* filter conjunction are still charged that whole stage.
#[derive(Debug)]
pub struct FusedOp {
    /// Composed stages with their summed analytic cost and the number of
    /// rows that entered them (atomic so shard workers can count through
    /// `&self`; the per-shard counts aggregate into the same totals a
    /// single-threaded run accumulates).
    stages: Vec<(FusedStage, f64, AtomicU64)>,
    schema: Arc<Schema>,
}

impl FusedOp {
    /// A fused chain from `(stage, analytic unit cost)` pairs listed in
    /// chain order (upstream first); `schema` is the last stage's output
    /// schema.
    ///
    /// # Panics
    /// Panics when `stages` is empty.
    pub fn new(stages: Vec<(FusedStage, f64)>, schema: Schema) -> Self {
        assert!(!stages.is_empty(), "fused chain needs at least one stage");
        let mut composed: Vec<(FusedStage, f64, AtomicU64)> = Vec::with_capacity(stages.len());
        for (stage, cost) in stages {
            match (composed.last_mut(), stage) {
                (Some((FusedStage::Filter(prev), prev_cost, _)), FusedStage::Filter(next)) => {
                    let left = std::mem::replace(prev, Expr::Lit(Value::Bool(true)));
                    *prev = left.and(next);
                    *prev_cost += cost;
                }
                (
                    Some((FusedStage::Project(inner, inner_schema), prev_cost, _)),
                    FusedStage::Project(outer, outer_schema),
                ) if inner.iter().all(Expr::is_leaf) => {
                    let substituted: Vec<Expr> =
                        outer.iter().map(|e| e.substitute_cols(inner)).collect();
                    *inner = substituted;
                    *inner_schema = outer_schema;
                    *prev_cost += cost;
                }
                (_, next) => composed.push((next, cost, AtomicU64::new(0))),
            }
        }
        Self {
            stages: composed,
            schema: Arc::new(schema),
        }
    }

    /// Number of kernel stages left after composition.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The shared batch/traced application (see [`ShardKernel`]).
    fn apply(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace) {
        if columnar_kernels_enabled() {
            self.apply_columnar(batch, traced)
        } else {
            self.apply_rows(batch, traced)
        }
    }

    /// Columnar execution: refine a selection vector through the stages,
    /// materializing columns only at projection stages and at the end.
    /// When `traced`, an original-row index vector rides along so the
    /// survivor trace composes across projection rematerializations.
    fn apply_columnar(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace) {
        let mut cur = batch;
        // `None` = every row of `cur` is selected.
        let mut sel: Option<Vec<u32>> = None;
        // Original-input index of each row of `cur` (`None` = identity);
        // maintained only when a trace was requested.
        let mut orig: Option<Vec<u32>> = None;
        for (stage, _, entered) in &self.stages {
            let n = sel.as_ref().map_or(cur.len(), Vec::len);
            if n == 0 {
                return (TupleBatch::new(self.schema.clone()), traced.then(Vec::new));
            }
            entered.fetch_add(n as u64, Ordering::Relaxed);
            match stage {
                FusedStage::Filter(predicate) => {
                    sel = Some(predicate.filter_indices(&cur, sel.as_deref()));
                }
                FusedStage::Project(exprs, schema) => {
                    let (mapped, kept) = project_columnar_traced(
                        exprs,
                        &cur,
                        sel.as_deref(),
                        schema.clone(),
                        traced,
                    );
                    if traced {
                        orig = compose_trace(orig, sel.take(), kept, mapped.len());
                    }
                    sel = None;
                    cur = mapped;
                }
            }
        }
        let (result, trace) = match sel {
            None => (cur, orig),
            Some(s) if s.len() == cur.len() => (cur, orig),
            Some(s) => {
                let trace = traced.then(|| {
                    s.iter()
                        .map(|&i| orig.as_ref().map_or(i, |o| o[i as usize]))
                        .collect()
                });
                (cur.take(&s), trace)
            }
        };
        if result.is_empty() {
            (TupleBatch::new(self.schema.clone()), traced.then(Vec::new))
        } else {
            (result.with_schema(self.schema.clone()), trace)
        }
    }

    /// Per-row fallback (reference implementation).
    fn apply_rows(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace) {
        let n = batch.len();
        let mut output = TupleBatch::with_capacity(self.schema.clone(), n);
        let mut trace: Vec<u32> = Vec::new();
        'rows: for (idx, mut tuple) in batch.into_rows().into_iter().enumerate() {
            for (stage, _, entered) in &self.stages {
                entered.fetch_add(1, Ordering::Relaxed);
                match stage {
                    FusedStage::Filter(predicate) => {
                        if !predicate.matches(&tuple) {
                            continue 'rows;
                        }
                    }
                    FusedStage::Project(exprs, _) => {
                        let mut values = Vec::with_capacity(exprs.len());
                        for e in exprs {
                            match e.eval(&tuple) {
                                Ok(v) => values.push(v),
                                Err(_) => continue 'rows, // drop malformed tuples
                            }
                        }
                        tuple = Tuple::new(tuple.ts, values);
                    }
                }
            }
            if traced {
                trace.push(idx as u32);
            }
            output.push(tuple);
        }
        let trace = (traced && output.len() != n).then_some(trace);
        (output, trace)
    }
}

/// Composes a projection stage's survivor trace onto the running
/// original-row mapping of [`FusedOp::apply_columnar`]: output row `j`
/// passed the stage as view row `kept[j]`, which was `cur` row
/// `sel[kept[j]]`, which was original row `orig[…]` — with `None` meaning
/// identity at each level. Returns `None` only when every level was the
/// identity.
fn compose_trace(
    orig: Option<Vec<u32>>,
    sel: Option<Vec<u32>>,
    kept: RowTrace,
    out_len: usize,
) -> Option<Vec<u32>> {
    if orig.is_none() && sel.is_none() && kept.is_none() {
        return None;
    }
    Some(
        (0..out_len as u32)
            .map(|j| {
                let view = kept.as_ref().map_or(j, |k| k[j as usize]);
                let cur = sel.as_ref().map_or(view, |s| s[view as usize]);
                orig.as_ref().map_or(cur, |o| o[cur as usize])
            })
            .collect(),
    )
}

impl Operator for FusedOp {
    fn process_batch(&mut self, _port: usize, batch: TupleBatch, out: &mut Vec<TupleBatch>) {
        let (result, _) = self.apply(batch, false);
        if !result.is_empty() {
            out.push(result);
        }
    }

    fn output_schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn unit_cost(&self) -> f64 {
        // Effective cost per *input* row: stage costs weighted by the
        // fraction of input rows that reached each stage. An idle node
        // reports the conservative full-chain sum. Stage counts aggregate
        // across shard workers, so the effective cost prices the total
        // multi-core load exactly like the single-threaded run.
        let entered_first = self
            .stages
            .first()
            .map_or(0, |(_, _, n)| n.load(Ordering::Relaxed));
        if entered_first == 0 {
            return self.stages.iter().map(|(_, c, _)| c).sum();
        }
        self.stages
            .iter()
            .map(|(_, cost, entered)| {
                cost * (entered.load(Ordering::Relaxed) as f64 / entered_first as f64)
            })
            .sum()
    }

    fn shard_kernel(&self) -> Option<&dyn ShardKernel> {
        Some(self)
    }

    fn keyed_out(&self, in_keys: &[Option<usize>]) -> Option<usize> {
        // Thread the key position through the composed stages: filters
        // keep it in place, projections keep it only where an output
        // column is exactly `Col(key)`.
        let mut key = in_keys.first().copied().flatten()?;
        for (stage, _, _) in &self.stages {
            match stage {
                FusedStage::Filter(_) => {}
                FusedStage::Project(exprs, _) => {
                    key = exprs.iter().position(|e| e.as_col() == Some(key))?;
                }
            }
        }
        Some(key)
    }
}

impl ShardKernel for FusedOp {
    fn process_traced(&self, batch: TupleBatch, traced: bool) -> (TupleBatch, RowTrace) {
        self.apply(batch, traced)
    }

    fn refine_selection(&self, batch: &TupleBatch, sel: Option<&[u32]>) -> Option<Vec<u32>> {
        // Only a pure-filter chain can stay selection-deferred; stage
        // composition folds adjacent filters, so that is exactly the
        // single composed-Filter case.
        if !columnar_kernels_enabled() || self.stages.len() != 1 {
            return None;
        }
        let (FusedStage::Filter(predicate), _, entered) = &self.stages[0] else {
            return None;
        };
        entered.fetch_add(
            sel.map_or(batch.len(), <[u32]>::len) as u64,
            Ordering::Relaxed,
        );
        Some(predicate.filter_indices(batch, sel))
    }
}

/// One shard partition of a [`JoinOp`]'s state: a per-key FIFO of recent
/// tuples on each side. Equal keys always live in one partition
/// ([`Key::shard_of`]), so a partition is the full single-threaded state
/// restricted to its keys.
#[derive(Debug, Default)]
struct JoinPart {
    left: HashMap<Key, VecDeque<Tuple>>,
    right: HashMap<Key, VecDeque<Tuple>>,
    len: usize,
}

impl JoinPart {
    /// Probes the opposite side for one arriving tuple, appends its
    /// matches, and inserts the tuple into its own side's state.
    fn probe_insert(
        &mut self,
        port: usize,
        key: Key,
        tuple: Tuple,
        window_ms: u64,
        matches: &mut TupleBatch,
    ) -> usize {
        let (own_state, other_state, is_left) = match port {
            0 => (&mut self.left, &self.right, true),
            _ => (&mut self.right, &self.left, false),
        };
        let before = matches.len();
        if let Some(partners) = other_state.get(&key) {
            for partner in partners {
                if tuple.ts.abs_diff(partner.ts) <= window_ms {
                    if is_left {
                        JoinOp::emit_match(&tuple, partner, matches);
                    } else {
                        JoinOp::emit_match(partner, &tuple, matches);
                    }
                }
            }
        }
        own_state.entry(key).or_default().push_back(tuple);
        self.len += 1;
        matches.len() - before
    }

    /// Evicts state older than the watermark horizon.
    fn evict(&mut self, horizon: u64) {
        let mut evicted = 0usize;
        for state in [&mut self.left, &mut self.right] {
            state.retain(|_, q| {
                while q.front().is_some_and(|t| t.ts < horizon) {
                    q.pop_front();
                    evicted += 1;
                }
                !q.is_empty()
            });
        }
        debug_assert!(
            evicted <= self.len,
            "join evicted {evicted} tuples but tracked only {}",
            self.len
        );
        self.len = self.len.saturating_sub(evicted);
    }
}

/// Windowed symmetric hash equi-join.
///
/// Keeps a per-key FIFO of recent tuples on each side; each tuple of an
/// arriving batch probes the opposite side for partners within `window_ms`
/// of event time and appends `left ++ right` outputs (one output batch per
/// input batch). Keys are read straight from the typed key column; rows are
/// gathered (materialized) only when they enter the join state. State is
/// evicted lazily as the watermark advances past `ts + window_ms`.
///
/// State is **hash-partitioned by join key** into [`JoinOp::set_partitions`]
/// shard slices behind uncontended `Mutex`es, so when both inputs are
/// hash-sharded on their join keys the whole join runs inside the shard
/// workers through the `&self` [`KeyedKernel`] — the control thread only
/// merges. The single-threaded `&mut` path routes each row to the same
/// partition its key hashes to, so results are identical no matter which
/// path (or mix of paths) processed the stream.
#[derive(Debug)]
pub struct JoinOp {
    left_key: usize,
    right_key: usize,
    window_ms: u64,
    schema: Arc<Schema>,
    parts: Vec<Mutex<JoinPart>>,
}

impl JoinOp {
    /// A join with the given key columns, window, and output schema
    /// (`left.join(&right)`).
    pub fn new(left_key: usize, right_key: usize, window_ms: u64, schema: Schema) -> Self {
        Self {
            left_key,
            right_key,
            window_ms,
            schema: Arc::new(schema),
            parts: vec![Mutex::new(JoinPart::default())],
        }
    }

    fn emit_match(left: &Tuple, right: &Tuple, out: &mut TupleBatch) {
        let mut values = left.values.clone();
        values.extend(right.values.iter().cloned());
        out.push(Tuple::new(left.ts.max(right.ts), values));
    }

    /// Shared probe loop over `rows` (batch-row indices) of one batch:
    /// appends matches (and, when `trace` is given, the producing batch-row
    /// index per match) into one partition chosen per row.
    #[allow(clippy::too_many_arguments)]
    fn absorb_rows<'a>(
        parts: &mut [&mut JoinPart],
        key_col: &Column,
        window_ms: u64,
        port: usize,
        batch: &TupleBatch,
        rows: impl Iterator<Item = usize> + 'a,
        matches: &mut TupleBatch,
        mut trace: Option<&mut Vec<u32>>,
    ) {
        let n_parts = parts.len();
        let mut reader = KeyReader::new(key_col);
        for i in rows {
            let Some((key, p)) = reader.key_and_shard(i, n_parts) else {
                // Plan validation rejects float join keys before any
                // operator is built (diagnostic NL005,
                // `diag::Code::UnhashableJoinKey`); reaching this means the
                // node was constructed around it. Dropping the row keeps
                // release builds safe either way.
                debug_assert!(false, "unhashable join key escaped plan validation");
                continue;
            };
            let emitted = parts[p].probe_insert(port, key, batch.row(i), window_ms, matches);
            if let Some(trace) = trace.as_deref_mut() {
                trace.extend(std::iter::repeat_n(i as u32, emitted));
            }
        }
    }
}

impl Operator for JoinOp {
    fn process_batch(&mut self, port: usize, batch: TupleBatch, out: &mut Vec<TupleBatch>) {
        let key_col = batch.column(if port == 0 {
            self.left_key
        } else {
            self.right_key
        });
        let mut matches = TupleBatch::new(self.schema.clone());
        let mut parts: Vec<&mut JoinPart> = self
            .parts
            .iter_mut()
            .map(|m| m.get_mut().expect("join partition lock poisoned"))
            .collect();
        Self::absorb_rows(
            &mut parts,
            key_col,
            self.window_ms,
            port,
            &batch,
            0..batch.len(),
            &mut matches,
            None,
        );
        if !matches.is_empty() {
            out.push(matches);
        }
    }

    fn process_selected(
        &mut self,
        port: usize,
        batch: &TupleBatch,
        sel: &[u32],
        out: &mut Vec<TupleBatch>,
    ) {
        // Absorb straight through the deferred selection: the dropped
        // rows of the upstream filter are never gathered.
        crate::types::work::count_pushdown_rows(sel.len() as u64);
        let key_col = batch.column(if port == 0 {
            self.left_key
        } else {
            self.right_key
        });
        let mut matches = TupleBatch::new(self.schema.clone());
        let mut parts: Vec<&mut JoinPart> = self
            .parts
            .iter_mut()
            .map(|m| m.get_mut().expect("join partition lock poisoned"))
            .collect();
        Self::absorb_rows(
            &mut parts,
            key_col,
            self.window_ms,
            port,
            batch,
            sel.iter().map(|&i| i as usize),
            &mut matches,
            None,
        );
        if !matches.is_empty() {
            out.push(matches);
        }
    }

    fn advance_watermark(&mut self, watermark: u64, _out: &mut Vec<TupleBatch>) {
        let horizon = watermark.saturating_sub(self.window_ms);
        for part in &mut self.parts {
            part.get_mut()
                .expect("join partition lock poisoned")
                .evict(horizon);
        }
    }

    fn output_schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn unit_cost(&self) -> f64 {
        3.0
    }

    fn state_size(&self) -> usize {
        self.parts
            .iter()
            .map(|p| p.lock().expect("join partition lock poisoned").len)
            .sum()
    }

    fn keyed_kernel(&self) -> Option<&dyn KeyedKernel> {
        Some(self)
    }

    fn keyed_out(&self, in_keys: &[Option<usize>]) -> Option<usize> {
        // Both sides must be partitioned by their join key: equal join
        // keys then share a shard, so every matching pair meets in one
        // partition. The output carries the key at the left key's position
        // (output columns are left ++ right).
        let left = in_keys.first().copied().flatten()?;
        let right = in_keys.get(1).copied().flatten()?;
        (left == self.left_key && right == self.right_key).then_some(self.left_key)
    }

    fn set_partitions(&mut self, n: usize) {
        assert!(n > 0, "partition count must be positive");
        if n == self.parts.len() {
            return;
        }
        let old: Vec<JoinPart> = std::mem::take(&mut self.parts)
            .into_iter()
            .map(|m| m.into_inner().expect("join partition lock poisoned"))
            .collect();
        let mut parts: Vec<JoinPart> = (0..n).map(|_| JoinPart::default()).collect();
        for part in old {
            for (side, state) in [(0usize, part.left), (1, part.right)] {
                for (key, queue) in state {
                    let p = if n == 1 { 0 } else { key.shard_of(n) };
                    let target = &mut parts[p];
                    target.len += queue.len();
                    let slot = match side {
                        0 => target.left.entry(key).or_default(),
                        _ => target.right.entry(key).or_default(),
                    };
                    debug_assert!(slot.is_empty(), "key may live in only one partition");
                    *slot = queue;
                }
            }
        }
        self.parts = parts.into_iter().map(Mutex::new).collect();
    }
}

impl KeyedKernel for JoinOp {
    fn process_keyed(
        &self,
        shard: usize,
        port: usize,
        batch: &TupleBatch,
        sel: Option<&[u32]>,
    ) -> (TupleBatch, Vec<u32>) {
        let key_col = batch.column(if port == 0 {
            self.left_key
        } else {
            self.right_key
        });
        let mut matches = TupleBatch::new(self.schema.clone());
        let mut trace = Vec::new();
        let mut part = self.parts[shard]
            .lock()
            .expect("join partition lock poisoned");
        let mut parts: Vec<&mut JoinPart> = vec![&mut part];
        match sel {
            Some(sel) => Self::absorb_rows(
                &mut parts,
                key_col,
                self.window_ms,
                port,
                batch,
                sel.iter().map(|&i| i as usize),
                &mut matches,
                Some(&mut trace),
            ),
            None => Self::absorb_rows(
                &mut parts,
                key_col,
                self.window_ms,
                port,
                batch,
                0..batch.len(),
                &mut matches,
                Some(&mut trace),
            ),
        }
        (matches, trace)
    }

    fn advance_keyed(&self, shard: usize, watermark: u64) -> Option<(TupleBatch, Vec<EmitKey>)> {
        self.parts[shard]
            .lock()
            .expect("join partition lock poisoned")
            .evict(watermark.saturating_sub(self.window_ms));
        None
    }
}

/// One typed input drawn from the aggregated column.
#[derive(Clone, Copy, Debug)]
enum AggInput {
    /// An integer column value (or the dummy value of a pure `Count`).
    Int(i64),
    /// A float column value.
    Float(f64),
}

/// Typed per-batch access to the aggregated column: resolved once per
/// batch, so the absorb loop reads plain slices instead of widening a
/// [`Value`] per tuple.
enum AggColumn<'a> {
    /// `Count` never reads the column.
    CountOnly,
    /// Exact integer input.
    Ints(&'a [i64]),
    /// Float input.
    Floats(&'a [f64]),
    /// Integer column aggregated as float (legacy construction path).
    WidenInts(&'a [i64]),
}

impl AggColumn<'_> {
    #[inline]
    fn get(&self, i: usize) -> AggInput {
        match self {
            AggColumn::CountOnly => AggInput::Int(0), // never read, only counted
            AggColumn::Ints(xs) => AggInput::Int(xs[i]),
            AggColumn::Floats(xs) => AggInput::Float(xs[i]),
            AggColumn::WidenInts(xs) => AggInput::Float(xs[i] as f64),
        }
    }
}

/// The running accumulator of one `(window, group)` pair.
///
/// Integer inputs accumulate **exactly**: `sum` is an `i128`, wide enough
/// that no possible number of `i64` terms can overflow it, and `min`/`max`
/// stay in `i64`. The previous always-`f64` accumulator silently lost
/// precision once an integer sum passed 2^53. Float inputs keep the `f64`
/// path.
#[derive(Clone, Debug)]
enum AggState {
    /// Exact integer accumulation.
    Int {
        count: u64,
        sum: i128,
        min: i64,
        max: i64,
    },
    /// Float accumulation.
    Float {
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
    },
}

/// Saturates an exact wide sum into the `i64` output column. Clipping needs
/// more than 2^63 of accumulated magnitude; saturation is the explicit
/// spelling of what the old `f64 as i64` cast did implicitly (on top of
/// silently losing precision far earlier).
fn saturate_i128(v: i128) -> i64 {
    v.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64
}

impl AggState {
    /// An accumulator holding exactly the first absorbed value.
    fn seeded(v: AggInput) -> AggState {
        match v {
            AggInput::Int(i) => AggState::Int {
                count: 1,
                sum: i128::from(i),
                min: i,
                max: i,
            },
            AggInput::Float(f) => AggState::Float {
                count: 1,
                sum: f,
                min: f,
                max: f,
            },
        }
    }

    /// An accumulator with no absorbed tuples. `absorb` never produces one
    /// (it seeds with the first value); this exists so the empty-state
    /// contract of [`AggState::result`] is constructible and tested.
    #[cfg(test)]
    fn empty() -> AggState {
        AggState::Int {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    fn update(&mut self, v: AggInput) {
        match (self, v) {
            (
                AggState::Int {
                    count,
                    sum,
                    min,
                    max,
                },
                AggInput::Int(i),
            ) => {
                *count += 1;
                *sum += i128::from(i);
                *min = (*min).min(i);
                *max = (*max).max(i);
            }
            (
                AggState::Float {
                    count,
                    sum,
                    min,
                    max,
                },
                AggInput::Float(f),
            ) => {
                *count += 1;
                *sum += f;
                *min = min.min(f);
                *max = max.max(f);
            }
            _ => debug_assert!(false, "aggregate input type drifted mid-window"),
        }
    }

    fn count(&self) -> u64 {
        match self {
            AggState::Int { count, .. } | AggState::Float { count, .. } => *count,
        }
    }

    /// Folds another accumulator — a partial over a disjoint row subset of
    /// the same `(window, group)` — into this one. The `Int` arm is
    /// **exact** (i128 sums and i64 min/max associate and commute, so any
    /// split of the rows across workers combines to the single-threaded
    /// state bit for bit). The `Float` arm is deterministic only under a
    /// fixed combine order; callers combine partials in partition order.
    fn combine(&mut self, other: &AggState) {
        if other.count() == 0 {
            return;
        }
        if self.count() == 0 {
            *self = other.clone();
            return;
        }
        match (self, other) {
            (
                AggState::Int {
                    count,
                    sum,
                    min,
                    max,
                },
                AggState::Int {
                    count: c2,
                    sum: s2,
                    min: m2,
                    max: x2,
                },
            ) => {
                *count += c2;
                *sum += s2;
                *min = (*min).min(*m2);
                *max = (*max).max(*x2);
            }
            (
                AggState::Float {
                    count,
                    sum,
                    min,
                    max,
                },
                AggState::Float {
                    count: c2,
                    sum: s2,
                    min: m2,
                    max: x2,
                },
            ) => {
                *count += c2;
                *sum += s2;
                *min = min.min(*m2);
                *max = max.max(*x2);
            }
            _ => debug_assert!(false, "aggregate partials disagree on input type"),
        }
    }

    /// The aggregate's value, or `None` for an empty accumulator: an empty
    /// window has no defined `Min`/`Max`/`Avg` (the old code emitted the
    /// uninitialized `0.0`), so callers skip emission instead.
    fn result(&self, func: AggFunc) -> Option<Value> {
        if self.count() == 0 {
            return None;
        }
        Some(match (func, self) {
            (AggFunc::Count, s) => Value::Int(s.count() as i64),
            (AggFunc::Sum, AggState::Int { sum, .. }) => Value::Int(saturate_i128(*sum)),
            (AggFunc::Sum, AggState::Float { sum, .. }) => Value::Float(*sum),
            (AggFunc::Avg, AggState::Int { count, sum, .. }) => {
                Value::Float(*sum as f64 / *count as f64)
            }
            (AggFunc::Avg, AggState::Float { count, sum, .. }) => {
                Value::Float(*sum / *count as f64)
            }
            (AggFunc::Min, AggState::Int { min, .. }) => Value::Int(*min),
            (AggFunc::Min, AggState::Float { min, .. }) => Value::Float(*min),
            (AggFunc::Max, AggState::Int { max, .. }) => Value::Int(*max),
            (AggFunc::Max, AggState::Float { max, .. }) => Value::Float(*max),
        })
    }
}

/// One shard partition of an [`AggregateOp`]'s windowed state:
/// `(window_start, group) → running accumulator`. When the aggregate runs
/// as a **full** keyed member, a group's windows live in exactly one
/// partition ([`Key::shard_of`]); as a **partial** member (ungrouped, or
/// grouped at a shard-incompatible key) each worker owns one partition of
/// per-worker partials and a window's state spans however many workers
/// absorbed its rows until the watermark combine folds them.
type AggPart = HashMap<(u64, Option<Key>), AggState>;

/// Windowed aggregate, optionally grouped by one column.
///
/// Window starts are aligned to multiples of `slide_ms` in event time; a
/// tuple at `ts` belongs to every window `[start, start + window_ms)` with
/// `start ≤ ts < start + window_ms` (one window when tumbling, i.e.
/// `slide == window`). A window closes — and emits one tuple per group —
/// when the watermark reaches its end. Output: `(window_end, [group], agg)`.
///
/// State is **hash-partitioned by group key** into per-shard `AggPart`
/// slices, so a
/// grouped aggregate whose group-by column is the stream's shard key runs
/// entirely inside the shard workers through the `&self` [`KeyedKernel`]:
/// absorption and watermark-driven window closes happen per shard, and the
/// per-shard emission runs (each sorted by the deterministic
/// `(window start, group)` comparator) merge back into exactly the
/// single-threaded emission order via their [`EmitKey`] tags.
#[derive(Debug)]
pub struct AggregateOp {
    group_by: Option<usize>,
    func: AggFunc,
    column: usize,
    window_ms: u64,
    slide_ms: u64,
    schema: Arc<Schema>,
    int_input: bool,
    /// Per-shard state partitions (length 1 until re-partitioned).
    parts: Vec<Mutex<AggPart>>,
}

impl AggregateOp {
    /// A tumbling aggregate; `schema` is the output schema computed by plan
    /// validation, `int_input` records whether the aggregated column was an
    /// integer (Sum/Min/Max preserve integerness).
    pub fn new(
        group_by: Option<usize>,
        func: AggFunc,
        column: usize,
        window_ms: u64,
        schema: Schema,
        int_input: bool,
    ) -> Self {
        Self::with_slide(
            group_by, func, column, window_ms, window_ms, schema, int_input,
        )
    }

    /// A sliding aggregate (`slide_ms < window_ms` overlaps windows).
    #[allow(clippy::too_many_arguments)]
    pub fn with_slide(
        group_by: Option<usize>,
        func: AggFunc,
        column: usize,
        window_ms: u64,
        slide_ms: u64,
        schema: Schema,
        int_input: bool,
    ) -> Self {
        assert!(window_ms > 0, "window width must be positive");
        assert!(slide_ms > 0 && slide_ms <= window_ms, "invalid slide");
        Self {
            group_by,
            func,
            column,
            window_ms,
            slide_ms,
            schema: Arc::new(schema),
            int_input,
            parts: vec![Mutex::new(AggPart::new())],
        }
    }

    /// Resolves the aggregated column to a typed accessor, once per batch.
    /// `None` means no row of this batch can be absorbed (non-numeric
    /// column under a value aggregate — the old per-row `as_f64` returned
    /// `None` for every row).
    fn agg_column<'a>(&self, batch: &'a TupleBatch) -> Option<AggColumn<'a>> {
        if self.func == AggFunc::Count {
            return Some(AggColumn::CountOnly);
        }
        let col = batch.column(self.column);
        if self.int_input {
            match col.as_ints() {
                Some(xs) => Some(AggColumn::Ints(xs)),
                None => {
                    debug_assert!(false, "non-integer column in integer aggregate");
                    None
                }
            }
        } else {
            match col {
                Column::Float(xs) => Some(AggColumn::Floats(xs)),
                Column::Int(xs) => Some(AggColumn::WidenInts(xs)),
                _ => None,
            }
        }
    }

    /// Whether per-worker partial accumulators combine **exactly** into
    /// the single-threaded result regardless of which worker absorbed
    /// which rows: counts, `i128` integer arithmetic, and min/max (both
    /// input types) associate and commute; float `Sum`/`Avg` round
    /// differently under reassociation, so they stay on the
    /// order-preserving path.
    fn combine_exact(&self) -> bool {
        self.int_input || matches!(self.func, AggFunc::Count | AggFunc::Min | AggFunc::Max)
    }

    /// Selection-aware absorb for **ungrouped tumbling** aggregates:
    /// walks the row set as maximal dense runs, splits each run at window
    /// boundaries, and folds every window-homogeneous segment into its
    /// accumulator with one state lookup and a fixed-trip-count
    /// eight-lane loop (counted by
    /// [`crate::types::work::WorkSnapshot::simd_lanes`]) instead of a
    /// per-row lookup and enum dispatch. Updates apply in row order, so
    /// the result is bit-identical to the scalar reference loop — float
    /// sums included. Sliding windows and grouped aggregates keep the
    /// scalar path; the SIMD kill switch ([`set_simd_kernels`]) disables
    /// this path entirely.
    fn absorb_dense_runs(
        window_ms: u64,
        part: &mut AggPart,
        ts: &[u64],
        input: &AggColumn<'_>,
        rows: impl Iterator<Item = usize>,
    ) {
        let mut run: Option<(usize, usize)> = None; // current dense [lo, hi)
        for i in rows {
            run = match run {
                Some((lo, hi)) if i == hi => Some((lo, hi + 1)),
                Some((lo, hi)) => {
                    Self::absorb_window_segments(window_ms, part, ts, input, lo, hi);
                    Some((i, i + 1))
                }
                None => Some((i, i + 1)),
            };
        }
        if let Some((lo, hi)) = run {
            Self::absorb_window_segments(window_ms, part, ts, input, lo, hi);
        }
    }

    /// Splits a dense run `[lo, hi)` at tumbling-window boundaries and
    /// folds each window's segment into its accumulator.
    fn absorb_window_segments(
        window_ms: u64,
        part: &mut AggPart,
        ts: &[u64],
        input: &AggColumn<'_>,
        lo: usize,
        hi: usize,
    ) {
        let mut a = lo;
        while a < hi {
            let start = ts[a] - ts[a] % window_ms;
            let mut b = a + 1;
            while b < hi && ts[b] - ts[b] % window_ms == start {
                b += 1;
            }
            match part.entry((start, None)) {
                Entry::Occupied(mut e) => Self::fold_segment(e.get_mut(), input, a, b),
                Entry::Vacant(e) => {
                    let state = e.insert(AggState::seeded(input.get(a)));
                    Self::fold_segment(state, input, a + 1, b);
                }
            }
            a = b;
        }
    }

    /// Folds rows `[lo, hi)` of the aggregated column into `state` in row
    /// order — eight-lane chunks with a scalar tail, the same SIMD shape
    /// as the [`crate::expr`] kernels.
    fn fold_segment(state: &mut AggState, input: &AggColumn<'_>, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        let n = (hi - lo) as u64;
        match (state, input) {
            // `Count` never reads the column: a whole run is one add.
            (AggState::Int { count, .. }, AggColumn::CountOnly) => *count += n,
            (
                AggState::Int {
                    count,
                    sum,
                    min,
                    max,
                },
                AggColumn::Ints(xs),
            ) => {
                *count += n;
                let xs = &xs[lo..hi];
                crate::types::work::count_simd_lanes((xs.len() / LANES) as u64);
                let mut chunks = xs.chunks_exact(LANES);
                for c in &mut chunks {
                    for &v in c {
                        *sum += i128::from(v);
                        *min = (*min).min(v);
                        *max = (*max).max(v);
                    }
                }
                for &v in chunks.remainder() {
                    *sum += i128::from(v);
                    *min = (*min).min(v);
                    *max = (*max).max(v);
                }
            }
            (
                AggState::Float {
                    count,
                    sum,
                    min,
                    max,
                },
                AggColumn::Floats(xs),
            ) => {
                *count += n;
                let xs = &xs[lo..hi];
                crate::types::work::count_simd_lanes((xs.len() / LANES) as u64);
                let mut chunks = xs.chunks_exact(LANES);
                for c in &mut chunks {
                    for &v in c {
                        *sum += v;
                        *min = min.min(v);
                        *max = max.max(v);
                    }
                }
                for &v in chunks.remainder() {
                    *sum += v;
                    *min = min.min(v);
                    *max = max.max(v);
                }
            }
            (
                AggState::Float {
                    count,
                    sum,
                    min,
                    max,
                },
                AggColumn::WidenInts(xs),
            ) => {
                *count += n;
                let xs = &xs[lo..hi];
                crate::types::work::count_simd_lanes((xs.len() / LANES) as u64);
                let mut chunks = xs.chunks_exact(LANES);
                for c in &mut chunks {
                    for &i in c {
                        let v = i as f64;
                        *sum += v;
                        *min = min.min(v);
                        *max = max.max(v);
                    }
                }
                for &i in chunks.remainder() {
                    let v = i as f64;
                    *sum += v;
                    *min = min.min(v);
                    *max = max.max(v);
                }
            }
            _ => debug_assert!(false, "aggregate input type drifted mid-window"),
        }
    }

    /// Absorbs `rows` (batch-row indices) of one batch, routing each row
    /// to the partition its group key hashes to — the shared body of
    /// [`Operator::process_batch`] and [`Operator::process_selected`].
    fn absorb_routed(&mut self, batch: &TupleBatch, rows: impl Iterator<Item = usize>) {
        // Typed columnar absorb: the aggregated column and the group-key
        // column are resolved once per batch; the loop reads slices and
        // never materializes a row or widens a `Value`. Rows route to the
        // partition their group key hashes to — the same partition the
        // keyed shard path would use.
        let Some(input) = self.agg_column(batch) else {
            return;
        };
        // Ungrouped tumbling aggregates absorb the row set as dense runs
        // through the eight-lane fast path (with no group key to hash,
        // every row routes to partition 0).
        if self.group_by.is_none() && self.slide_ms == self.window_ms && simd_kernels_enabled() {
            let window_ms = self.window_ms;
            let part = self.parts[0]
                .get_mut()
                .expect("aggregate partition lock poisoned");
            return Self::absorb_dense_runs(window_ms, part, batch.ts(), &input, rows);
        }
        let (slide_ms, window_ms, group_by) = (self.slide_ms, self.window_ms, self.group_by);
        // `&mut self` owns the locks: borrow every partition once per
        // batch instead of locking per row.
        let mut parts: Vec<&mut AggPart> = self
            .parts
            .iter_mut()
            .map(|m| m.get_mut().expect("aggregate partition lock poisoned"))
            .collect();
        let n_parts = parts.len();
        let mut reader = group_by.map(|col| KeyReader::new(batch.column(col)));
        for i in rows {
            let (group, p) = match reader.as_mut() {
                Some(reader) => match reader.key_and_shard(i, n_parts) {
                    Some((k, p)) => (Some(k), p),
                    None => {
                        // Plan validation rejects float group keys
                        // (diagnostic NL011,
                        // `diag::Code::UnhashableGroupKey`); see the
                        // matching guard in `JoinOp`.
                        debug_assert!(false, "unhashable group key escaped plan validation");
                        continue;
                    }
                },
                None => (None, 0),
            };
            Self::absorb_at(
                parts[p],
                slide_ms,
                window_ms,
                batch.ts()[i],
                group,
                input.get(i),
            );
        }
    }

    /// Absorbs one value into every window of `part` covering `ts` (a
    /// free-standing helper so callers that hold `&mut` borrows into
    /// `self.parts` can still route rows — see `process_batch`).
    fn absorb_at(
        part: &mut AggPart,
        slide_ms: u64,
        window_ms: u64,
        ts: u64,
        group: Option<Key>,
        v: AggInput,
    ) {
        // Every window [start, start + window) with start ≤ ts < start +
        // window and start ≡ 0 (mod slide) contains this tuple.
        let last_start = ts - ts % slide_ms;
        let mut start = last_start;
        loop {
            match part.entry((start, group.clone())) {
                Entry::Occupied(mut e) => e.get_mut().update(v),
                Entry::Vacant(e) => {
                    e.insert(AggState::seeded(v));
                }
            }
            // Step back one slide while the window still covers `ts`.
            let Some(prev) = start.checked_sub(slide_ms) else {
                break;
            };
            if prev + window_ms <= ts {
                break;
            }
            start = prev;
        }
    }

    /// Absorbs `rows` (batch-row indices) of one batch into `part`
    /// (possibly a deferred selection — the pushdown path never gathers).
    /// The caller has already routed the rows: under keyed sharding every
    /// row of the batch belongs to this partition.
    fn absorb_rows(
        &self,
        part: &mut AggPart,
        batch: &TupleBatch,
        input: &AggColumn<'_>,
        rows: impl Iterator<Item = usize>,
    ) {
        if self.group_by.is_none() && self.slide_ms == self.window_ms && simd_kernels_enabled() {
            return Self::absorb_dense_runs(self.window_ms, part, batch.ts(), input, rows);
        }
        let mut reader = self.group_by.map(|col| KeyReader::new(batch.column(col)));
        for i in rows {
            let group = match reader.as_mut() {
                Some(reader) => match reader.key(i) {
                    Some(k) => Some(k),
                    None => {
                        // Plan validation rejects float group keys
                        // (diagnostic NL011,
                        // `diag::Code::UnhashableGroupKey`); see the
                        // matching guard in `JoinOp`.
                        debug_assert!(false, "unhashable group key escaped plan validation");
                        continue;
                    }
                },
                None => None,
            };
            Self::absorb_at(
                part,
                self.slide_ms,
                self.window_ms,
                batch.ts()[i],
                group,
                input.get(i),
            );
        }
    }

    fn emit_window(
        &self,
        (start, group): &(u64, Option<Key>),
        state: &AggState,
        out: &mut TupleBatch,
    ) {
        let Some(agg) = state.result(self.func) else {
            debug_assert!(false, "empty window state scheduled for emission");
            return;
        };
        let end = start + self.window_ms;
        let mut values = vec![Value::Int(end as i64)];
        if let Some(k) = group {
            values.push(k.to_value());
        }
        values.push(agg);
        out.push(Tuple::new(end, values));
    }

    /// Drains windows of `part` closed by `watermark` — unsorted; each
    /// caller sorts exactly once by the deterministic emission comparator
    /// (`(window start, group debug)`, i.e. ascending [`EmitKey`]): per
    /// shard in `advance_keyed`, globally in `emit_closed`.
    fn drain_closed(
        &self,
        part: &mut AggPart,
        watermark: u64,
    ) -> Vec<((u64, Option<Key>), AggState)> {
        let window_ms = self.window_ms;
        let mut ready: Vec<((u64, Option<Key>), AggState)> = Vec::new();
        part.retain(|key, state| {
            if key.0 + window_ms <= watermark {
                ready.push((key.clone(), state.clone()));
                false
            } else {
                true
            }
        });
        ready
    }

    fn emit_closed(&mut self, watermark: u64, out: &mut Vec<TupleBatch>) {
        // Drain every partition, then sort globally: identical to the
        // unpartitioned operator's single global sort, whatever the
        // partition count.
        let mut ready: Vec<((u64, Option<Key>), AggState)> = Vec::new();
        for part in &self.parts {
            let mut part = part.lock().expect("aggregate partition lock poisoned");
            ready.extend(self.drain_closed(&mut part, watermark));
        }
        if ready.is_empty() {
            return;
        }
        // Deterministic emission order: by window start, then group key
        // (one rendered key per element, not two per comparison).
        ready.sort_by_cached_key(|(key, _)| (key.0, format!("{:?}", key.1)));
        // Combine runs of equal keys: a window absorbed as per-worker
        // partials — ungrouped, or grouped at a shard-incompatible group
        // key — lives in several partitions at once. The stable sort
        // keeps equal keys in partition order, so the left-to-right fold
        // *is* the deterministic partition-order combine (exact for every
        // partial-eligible aggregate, so the fold order cannot shift the
        // value anyway). Grouped combines are counted
        // ([`work::WorkSnapshot::partial_groups_combined`]): each one is
        // a group that crossed the merge barrier as partials.
        let mut merged: Vec<((u64, Option<Key>), AggState)> = Vec::with_capacity(ready.len());
        let mut grouped_combines = 0u64;
        for (key, state) in ready {
            match merged.last_mut() {
                Some((prev, acc)) if *prev == key => {
                    if key.1.is_some() {
                        grouped_combines += 1;
                    }
                    acc.combine(&state);
                }
                _ => merged.push((key, state)),
            }
        }
        if grouped_combines > 0 {
            crate::types::work::count_partial_groups_combined(grouped_combines);
        }
        let mut closed = TupleBatch::with_capacity(self.schema.clone(), merged.len());
        for (key, state) in merged {
            self.emit_window(&key, &state, &mut closed);
        }
        if !closed.is_empty() {
            out.push(closed);
        }
    }
}

impl Operator for AggregateOp {
    fn process_batch(&mut self, _port: usize, batch: TupleBatch, _out: &mut Vec<TupleBatch>) {
        self.absorb_routed(&batch, 0..batch.len());
    }

    fn process_selected(
        &mut self,
        _port: usize,
        batch: &TupleBatch,
        sel: &[u32],
        _out: &mut Vec<TupleBatch>,
    ) {
        // Absorb straight through the deferred selection: the dropped
        // rows of the upstream filter are never gathered.
        crate::types::work::count_pushdown_rows(sel.len() as u64);
        self.absorb_routed(batch, sel.iter().map(|&i| i as usize));
    }

    fn advance_watermark(&mut self, watermark: u64, out: &mut Vec<TupleBatch>) {
        self.emit_closed(watermark, out);
    }

    fn finish(&mut self, out: &mut Vec<TupleBatch>) {
        self.emit_closed(u64::MAX, out);
    }

    fn output_schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn unit_cost(&self) -> f64 {
        2.0
    }

    fn state_size(&self) -> usize {
        self.parts
            .iter()
            .map(|p| p.lock().expect("aggregate partition lock poisoned").len())
            .sum()
    }

    fn keyed_kernel(&self) -> Option<&dyn KeyedKernel> {
        Some(self)
    }

    fn keyed_out(&self, in_keys: &[Option<usize>]) -> Option<usize> {
        // The group-by column must *be* the partition key: equal groups
        // then share a shard. The output carries the group (= key) in
        // column 1: (window_end, group, agg).
        let key = in_keys.first().copied().flatten()?;
        (self.group_by == Some(key)).then_some(1)
    }

    fn keyed_commutative(&self) -> bool {
        self.combine_exact()
    }

    fn keyed_partial(&self) -> bool {
        self.combine_exact()
    }

    fn keyed_partial_grouped(&self) -> bool {
        self.group_by.is_some()
    }

    fn set_partitions(&mut self, n: usize) {
        assert!(n > 0, "partition count must be positive");
        if n == self.parts.len() {
            return;
        }
        let old: Vec<AggPart> = std::mem::take(&mut self.parts)
            .into_iter()
            .map(|m| m.into_inner().expect("aggregate partition lock poisoned"))
            .collect();
        let mut parts: Vec<AggPart> = (0..n).map(|_| AggPart::new()).collect();
        for part in old {
            for ((start, group), state) in part {
                // Ungrouped state re-homes to partition 0 (its partials
                // spread across workers only during a flush); grouped
                // state moves to the partition its key hashes to.
                let p = match &group {
                    Some(k) if n > 1 => k.shard_of(n),
                    _ => 0,
                };
                match parts[p].entry((start, group)) {
                    // Per-worker partials of one window merge when
                    // partitions collapse — iterating `old` in partition
                    // order keeps the combine deterministic. This covers
                    // grouped keys too: under grouped partial aggregation
                    // (shard-incompatible group key, exact combine) one
                    // group's mid-window state legitimately spans
                    // partitions, and the exact combine re-homes it
                    // without schedule-dependent drift.
                    Entry::Occupied(mut e) => {
                        e.get_mut().combine(&state);
                    }
                    Entry::Vacant(e) => {
                        e.insert(state);
                    }
                }
            }
        }
        self.parts = parts.into_iter().map(Mutex::new).collect();
    }
}

impl KeyedKernel for AggregateOp {
    fn process_keyed(
        &self,
        shard: usize,
        _port: usize,
        batch: &TupleBatch,
        sel: Option<&[u32]>,
    ) -> (TupleBatch, Vec<u32>) {
        let empty = (TupleBatch::new(self.schema.clone()), Vec::new());
        let Some(input) = self.agg_column(batch) else {
            return empty;
        };
        let mut part = self.parts[shard]
            .lock()
            .expect("aggregate partition lock poisoned");
        match sel {
            Some(sel) => {
                self.absorb_rows(&mut part, batch, &input, sel.iter().map(|&i| i as usize));
            }
            None => self.absorb_rows(&mut part, batch, &input, 0..batch.len()),
        }
        empty
    }

    fn advance_keyed(&self, shard: usize, watermark: u64) -> Option<(TupleBatch, Vec<EmitKey>)> {
        let ready = {
            let mut part = self.parts[shard]
                .lock()
                .expect("aggregate partition lock poisoned");
            self.drain_closed(&mut part, watermark)
        };
        if ready.is_empty() {
            return None;
        }
        // Tag with the emission key (needed for the merge anyway), then
        // sort by it — exactly the emission comparator `emit_closed` uses.
        let mut tagged: Vec<(EmitKey, (u64, Option<Key>), AggState)> = ready
            .into_iter()
            .map(|(key, state)| ((key.0, format!("{:?}", key.1)), key, state))
            .collect();
        tagged.sort_by(|a, b| a.0.cmp(&b.0));
        let mut closed = TupleBatch::with_capacity(self.schema.clone(), tagged.len());
        let mut keys: Vec<EmitKey> = Vec::with_capacity(tagged.len());
        for (emit_key, key, state) in tagged {
            let before = closed.len();
            self.emit_window(&key, &state, &mut closed);
            if closed.len() > before {
                keys.push(emit_key);
            }
        }
        (!closed.is_empty()).then_some((closed, keys))
    }
}

/// Union of two schema-identical inputs.
#[derive(Debug)]
pub struct UnionOp {
    schema: Arc<Schema>,
}

impl UnionOp {
    /// A union with the common schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema: Arc::new(schema),
        }
    }
}

impl Operator for UnionOp {
    fn process_batch(&mut self, _port: usize, batch: TupleBatch, out: &mut Vec<TupleBatch>) {
        if !batch.is_empty() {
            // Re-own the columns under the union's schema handle: zero
            // copies, only the schema Arc changes.
            out.push(batch.with_schema(self.schema.clone()));
        }
    }

    fn output_schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn unit_cost(&self) -> f64 {
        0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DataType, Field};

    fn quote_schema() -> Schema {
        Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("price", DataType::Float),
        ])
    }

    fn quote(ts: u64, sym: &str, price: f64) -> Tuple {
        Tuple::new(ts, vec![Value::str(sym), Value::Float(price)])
    }

    /// One batch over the quote schema.
    fn qbatch(rows: Vec<Tuple>) -> TupleBatch {
        TupleBatch::from_rows(Arc::new(quote_schema()), rows)
    }

    /// Flattens the emitted batches into rows, for assertions.
    fn rows_of(out: &[TupleBatch]) -> Vec<Tuple> {
        out.iter()
            .flat_map(super::super::types::TupleBatch::iter_rows)
            .collect()
    }

    #[test]
    fn filter_selects() {
        for columnar in [true, false] {
            with_columnar_kernels(columnar, || {
                let mut f = FilterOp::new(
                    Expr::col(1).gt(Expr::lit(Value::Float(100.0))),
                    quote_schema(),
                );
                let mut out = Vec::new();
                f.process_batch(
                    0,
                    qbatch(vec![quote(1, "IBM", 120.0), quote(2, "IBM", 80.0)]),
                    &mut out,
                );
                let rows = rows_of(&out);
                assert_eq!(rows.len(), 1, "columnar={columnar}");
                assert_eq!(rows[0].ts, 1);
                // An all-rejected batch emits nothing at all.
                out.clear();
                f.process_batch(0, qbatch(vec![quote(3, "IBM", 10.0)]), &mut out);
                assert!(out.is_empty());
            });
        }
    }

    #[test]
    fn filter_all_pass_forwards_batch_without_gather() {
        let mut f = FilterOp::new(
            Expr::col(1).gt(Expr::lit(Value::Float(0.0))),
            quote_schema(),
        );
        let mut out = Vec::new();
        crate::types::work::reset();
        f.process_batch(
            0,
            qbatch(vec![quote(1, "IBM", 120.0), quote(2, "IBM", 80.0)]),
            &mut out,
        );
        let snap = crate::types::work::snapshot();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 2);
        assert_eq!(snap.rows_materialized, 0, "all-pass is zero-copy");
        assert_eq!(snap.row_evals, 0, "no per-row evaluation on the hot path");
        assert!(snap.kernel_ops > 0, "the predicate ran as a kernel");
    }

    #[test]
    fn project_maps() {
        for columnar in [true, false] {
            with_columnar_kernels(columnar, || {
                let mut p = ProjectOp::new(
                    vec![Expr::col(0)],
                    Schema::new(vec![Field::new("symbol", DataType::Str)]),
                );
                let mut out = Vec::new();
                p.process_batch(0, qbatch(vec![quote(5, "IBM", 1.0)]), &mut out);
                assert_eq!(rows_of(&out), vec![Tuple::new(5, vec![Value::str("IBM")])]);
            });
        }
    }

    #[test]
    fn project_drops_rows_that_fail_per_row() {
        // price / (price - 2): division by zero exactly when price == 2 —
        // the columnar kernel must drop precisely that row, like the
        // row-at-a-time path.
        let div = Expr::Arith(
            crate::expr::ArithOp::Div,
            Box::new(Expr::col(1)),
            Box::new(Expr::Arith(
                crate::expr::ArithOp::Sub,
                Box::new(Expr::col(1)),
                Box::new(Expr::lit(Value::Float(2.0))),
            )),
        );
        let schema = Schema::new(vec![Field::new("r", DataType::Float)]);
        let rows = vec![
            quote(1, "A", 4.0),
            quote(2, "A", 2.0), // divides by zero
            quote(3, "A", 6.0),
        ];
        let mut reference = Vec::new();
        with_columnar_kernels(false, || {
            let mut p = ProjectOp::new(vec![div.clone()], schema.clone());
            p.process_batch(0, qbatch(rows.clone()), &mut reference);
        });
        let mut columnar = Vec::new();
        with_columnar_kernels(true, || {
            let mut p = ProjectOp::new(vec![div], schema);
            p.process_batch(0, qbatch(rows), &mut columnar);
        });
        assert_eq!(rows_of(&columnar), rows_of(&reference));
        assert_eq!(rows_of(&columnar).len(), 2);
    }

    #[test]
    fn join_matches_within_window() {
        // quotes ⋈ news on symbol within 10ms.
        let news_schema = Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("headline", DataType::Str),
        ]);
        let nbatch = |rows: Vec<Tuple>| TupleBatch::from_rows(Arc::new(news_schema.clone()), rows);
        let schema = quote_schema().join(&news_schema);
        let mut j = JoinOp::new(0, 0, 10, schema);
        let mut out = Vec::new();
        j.process_batch(0, qbatch(vec![quote(100, "IBM", 120.0)]), &mut out);
        assert!(out.is_empty());
        let news = Tuple::new(105, vec![Value::str("IBM"), Value::str("up")]);
        j.process_batch(1, nbatch(vec![news]), &mut out);
        let rows = rows_of(&out);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values.len(), 4);
        assert_eq!(rows[0].ts, 105);
        // Outside the window: no match.
        let stale = Tuple::new(200, vec![Value::str("IBM"), Value::str("old")]);
        out.clear();
        j.process_batch(1, nbatch(vec![stale]), &mut out);
        assert!(out.is_empty());
        // Different key: no match.
        let other = Tuple::new(101, vec![Value::str("AAPL"), Value::str("x")]);
        out.clear();
        j.process_batch(1, nbatch(vec![other]), &mut out);
        assert!(out.is_empty());
        assert_eq!(j.state_size(), 4);
    }

    #[test]
    fn join_within_one_batch_matches_earlier_rows() {
        // Both sides of a match arriving in the same batch must still join
        // (batched processing ≡ row-at-a-time processing).
        let schema = quote_schema().join(&quote_schema());
        let mut j = JoinOp::new(0, 0, 50, schema);
        let mut out = Vec::new();
        j.process_batch(
            0,
            qbatch(vec![quote(1, "A", 1.0), quote(2, "A", 2.0)]),
            &mut out,
        );
        assert!(out.is_empty(), "left rows alone cannot match");
        j.process_batch(
            1,
            qbatch(vec![quote(3, "A", 3.0), quote(4, "B", 4.0)]),
            &mut out,
        );
        let rows = rows_of(&out);
        assert_eq!(rows.len(), 2, "the A probe matches both stored A rows");
    }

    #[test]
    fn join_eviction_respects_watermark() {
        let schema = quote_schema().join(&quote_schema());
        let mut j = JoinOp::new(0, 0, 10, schema);
        let mut out = Vec::new();
        j.process_batch(
            0,
            qbatch(vec![quote(100, "IBM", 1.0), quote(200, "IBM", 2.0)]),
            &mut out,
        );
        assert_eq!(j.state_size(), 2);
        j.advance_watermark(150, &mut out);
        assert_eq!(j.state_size(), 1, "the ts=100 tuple must be evicted");
        // The surviving tuple still joins.
        j.process_batch(1, qbatch(vec![quote(205, "IBM", 3.0)]), &mut out);
        assert_eq!(rows_of(&out).len(), 1);
    }

    #[test]
    fn join_symmetry() {
        let schema = quote_schema().join(&quote_schema());
        let mut j = JoinOp::new(0, 0, 50, schema.clone());
        let mut out_lr = Vec::new();
        j.process_batch(0, qbatch(vec![quote(1, "A", 1.0)]), &mut out_lr);
        j.process_batch(1, qbatch(vec![quote(2, "A", 2.0)]), &mut out_lr);

        let mut j2 = JoinOp::new(0, 0, 50, schema);
        let mut out_rl = Vec::new();
        j2.process_batch(1, qbatch(vec![quote(2, "A", 2.0)]), &mut out_rl);
        j2.process_batch(0, qbatch(vec![quote(1, "A", 1.0)]), &mut out_rl);

        let (lr, rl) = (rows_of(&out_lr), rows_of(&out_rl));
        assert_eq!(lr, rl, "arrival order must not change results");
        // Left columns always precede right columns.
        assert_eq!(lr[0].values[1], Value::Float(1.0));
        assert_eq!(lr[0].values[3], Value::Float(2.0));
    }

    #[test]
    fn tumbling_count_per_symbol() {
        let schema = Schema::new(vec![
            Field::new("window_end", DataType::Int),
            Field::new("symbol", DataType::Str),
            Field::new("count", DataType::Int),
        ]);
        let mut a = AggregateOp::new(Some(0), AggFunc::Count, 0, 100, schema, true);
        let mut out = Vec::new();
        a.process_batch(
            0,
            qbatch(vec![
                quote(10, "IBM", 1.0),
                quote(20, "IBM", 1.0),
                quote(30, "AAPL", 1.0),
                quote(110, "IBM", 1.0), // next window
            ]),
            &mut out,
        );
        assert!(out.is_empty(), "nothing closes before the watermark");
        a.advance_watermark(100, &mut out);
        let rows = rows_of(&out);
        assert_eq!(rows.len(), 2); // IBM=2, AAPL=1 for window [0,100)
        let counts: Vec<i64> = rows.iter().map(|t| t.values[2].as_int().unwrap()).collect();
        assert_eq!(counts.iter().sum::<i64>(), 3);
        out.clear();
        a.finish(&mut out);
        let rows = rows_of(&out);
        assert_eq!(rows.len(), 1); // the [100,200) window force-closed
        assert_eq!(rows[0].values[2], Value::Int(1));
    }

    #[test]
    fn avg_and_minmax() {
        let schema = Schema::new(vec![
            Field::new("window_end", DataType::Int),
            Field::new("avg", DataType::Float),
        ]);
        let mut a = AggregateOp::new(None, AggFunc::Avg, 1, 100, schema.clone(), false);
        let mut out = Vec::new();
        a.process_batch(
            0,
            qbatch(vec![quote(10, "X", 10.0), quote(20, "X", 20.0)]),
            &mut out,
        );
        a.advance_watermark(100, &mut out);
        assert_eq!(rows_of(&out)[0].values[1], Value::Float(15.0));

        let mut mx = AggregateOp::new(None, AggFunc::Max, 1, 100, schema, false);
        out.clear();
        mx.process_batch(
            0,
            qbatch(vec![quote(10, "X", 10.0), quote(20, "X", 20.0)]),
            &mut out,
        );
        mx.finish(&mut out);
        assert_eq!(rows_of(&out)[0].values[1], Value::Float(20.0));
    }

    #[test]
    fn aggregate_absorb_reads_typed_columns_without_row_work() {
        let schema = Schema::new(vec![
            Field::new("window_end", DataType::Int),
            Field::new("avg", DataType::Float),
        ]);
        let mut a = AggregateOp::new(Some(0), AggFunc::Avg, 1, 100, schema, false);
        let batch = qbatch((0..50).map(|i| quote(i, "X", i as f64)).collect());
        crate::types::work::reset();
        let mut out = Vec::new();
        a.process_batch(0, batch, &mut out);
        let snap = crate::types::work::snapshot();
        assert_eq!(snap.rows_materialized, 0, "absorb never builds a row");
        assert_eq!(snap.row_evals, 0);
    }

    #[test]
    fn union_passes_everything() {
        let mut u = UnionOp::new(quote_schema());
        let mut out = Vec::new();
        u.process_batch(0, qbatch(vec![quote(1, "A", 1.0)]), &mut out);
        u.process_batch(1, qbatch(vec![quote(2, "B", 2.0)]), &mut out);
        assert_eq!(rows_of(&out).len(), 2);
    }

    #[test]
    fn fused_chain_equals_staged_operators() {
        // filter(price > 100) → project(symbol, price) → filter(symbol = IBM),
        // run fused and as three separate operators over the same batch.
        let pred_price = Expr::col(1).gt(Expr::lit(Value::Float(100.0)));
        let proj = vec![Expr::col(0), Expr::col(1)];
        let pred_sym = Expr::col(0).eq(Expr::lit(Value::str("IBM")));
        let rows = vec![
            quote(1, "IBM", 120.0),
            quote(2, "IBM", 80.0),
            quote(3, "AAPL", 130.0),
            quote(4, "IBM", 140.0),
        ];

        let mut staged_out = Vec::new();
        let mut f1 = FilterOp::new(pred_price.clone(), quote_schema());
        let mut p = ProjectOp::new(proj.clone(), quote_schema());
        let mut f2 = FilterOp::new(pred_sym.clone(), quote_schema());
        let mut mid1 = Vec::new();
        f1.process_batch(0, qbatch(rows.clone()), &mut mid1);
        let mut mid2 = Vec::new();
        for b in mid1 {
            p.process_batch(0, b, &mut mid2);
        }
        for b in mid2 {
            f2.process_batch(0, b, &mut staged_out);
        }

        let mut fused = FusedOp::new(
            vec![
                (FusedStage::Filter(pred_price), FilterOp::UNIT_COST),
                (
                    FusedStage::Project(proj, Arc::new(quote_schema())),
                    ProjectOp::UNIT_COST,
                ),
                (FusedStage::Filter(pred_sym), FilterOp::UNIT_COST),
            ],
            quote_schema(),
        );
        // Before any row is seen the cost is the conservative chain sum.
        assert_eq!(
            fused.unit_cost(),
            FilterOp::UNIT_COST * 2.0 + ProjectOp::UNIT_COST
        );
        let mut fused_out = Vec::new();
        fused.process_batch(0, qbatch(rows), &mut fused_out);

        assert_eq!(rows_of(&fused_out), rows_of(&staged_out));
        // After processing, the cost is selectivity-weighted: 4 rows enter
        // the first filter, 3 survive to the project and second filter.
        let expected = FilterOp::UNIT_COST
            + (3.0 / 4.0) * ProjectOp::UNIT_COST
            + (3.0 / 4.0) * FilterOp::UNIT_COST;
        assert!((fused.unit_cost() - expected).abs() < 1e-12);
    }

    #[test]
    fn fused_chain_row_fallback_counts_stages_identically() {
        let pred = Expr::col(1).gt(Expr::lit(Value::Float(100.0)));
        let proj = vec![Expr::col(0), Expr::col(1)];
        let rows = vec![
            quote(1, "IBM", 120.0),
            quote(2, "IBM", 80.0),
            quote(3, "AAPL", 130.0),
        ];
        let build = || {
            FusedOp::new(
                vec![
                    (FusedStage::Filter(pred.clone()), FilterOp::UNIT_COST),
                    (
                        FusedStage::Project(proj.clone(), Arc::new(quote_schema())),
                        ProjectOp::UNIT_COST,
                    ),
                ],
                quote_schema(),
            )
        };
        let mut col_out = Vec::new();
        let col_cost = with_columnar_kernels(true, || {
            let mut f = build();
            f.process_batch(0, qbatch(rows.clone()), &mut col_out);
            f.unit_cost()
        });
        let mut row_out = Vec::new();
        let row_cost = with_columnar_kernels(false, || {
            let mut f = build();
            f.process_batch(0, qbatch(rows), &mut row_out);
            f.unit_cost()
        });
        assert_eq!(rows_of(&col_out), rows_of(&row_out));
        assert!(
            (col_cost - row_cost).abs() < 1e-12,
            "selectivity accounting must not depend on the kernel mode"
        );
    }

    #[test]
    fn fusion_composes_adjacent_filters_into_one_predicate() {
        let f = FusedOp::new(
            vec![
                (
                    FusedStage::Filter(Expr::col(1).gt(Expr::lit(Value::Float(1.0)))),
                    FilterOp::UNIT_COST,
                ),
                (
                    FusedStage::Filter(Expr::col(1).lt(Expr::lit(Value::Float(9.0)))),
                    FilterOp::UNIT_COST,
                ),
                (
                    FusedStage::Filter(Expr::col(0).eq(Expr::lit(Value::str("A")))),
                    FilterOp::UNIT_COST,
                ),
            ],
            quote_schema(),
        );
        assert_eq!(f.num_stages(), 1, "three filters compose into one");
        assert_eq!(
            f.unit_cost(),
            3.0 * FilterOp::UNIT_COST,
            "composition keeps the summed analytic cost"
        );
    }

    #[test]
    fn fusion_substitutes_through_leaf_projections() {
        // Inner projection is all leaves → the outer projection rewrites
        // over the inner's inputs and one stage remains.
        let swap = vec![Expr::col(1), Expr::col(0)];
        let swapped_schema = Arc::new(Schema::new(vec![
            Field::new("price", DataType::Float),
            Field::new("symbol", DataType::Str),
        ]));
        let mut f = FusedOp::new(
            vec![
                (
                    FusedStage::Project(swap.clone(), swapped_schema),
                    ProjectOp::UNIT_COST,
                ),
                (
                    FusedStage::Project(swap.clone(), Arc::new(quote_schema())),
                    ProjectOp::UNIT_COST,
                ),
            ],
            quote_schema(),
        );
        assert_eq!(f.num_stages(), 1, "leaf projections substitute");
        // Swapping twice is the identity.
        let mut out = Vec::new();
        f.process_batch(0, qbatch(vec![quote(1, "IBM", 2.0)]), &mut out);
        assert_eq!(rows_of(&out), vec![quote(1, "IBM", 2.0)]);
    }

    #[test]
    fn fusion_keeps_staged_loop_for_non_leaf_projections() {
        // Inner projection computes arithmetic — substitution would
        // duplicate work (and change error behavior), so stages stay.
        let double = Expr::Arith(
            crate::expr::ArithOp::Add,
            Box::new(Expr::col(1)),
            Box::new(Expr::col(1)),
        );
        let f = FusedOp::new(
            vec![
                (
                    FusedStage::Project(vec![Expr::col(0), double], Arc::new(quote_schema())),
                    ProjectOp::UNIT_COST,
                ),
                (
                    FusedStage::Project(
                        vec![Expr::col(1), Expr::col(0)],
                        Arc::new(Schema::new(vec![
                            Field::new("price", DataType::Float),
                            Field::new("symbol", DataType::Str),
                        ])),
                    ),
                    ProjectOp::UNIT_COST,
                ),
            ],
            Schema::new(vec![
                Field::new("price", DataType::Float),
                Field::new("symbol", DataType::Str),
            ]),
        );
        assert_eq!(
            f.num_stages(),
            2,
            "non-leaf inner projection is not substituted"
        );
    }

    #[test]
    fn int_sum_accumulates_exactly_past_2_pow_53() {
        // Three copies of 2^53 + 1: the old f64 accumulator rounded each
        // term to 2^53 and returned 3 × 2^53.
        let big = (1i64 << 53) + 1;
        let schema = Schema::new(vec![
            Field::new("window_end", DataType::Int),
            Field::new("sum", DataType::Int),
        ]);
        let volume_schema = Arc::new(Schema::new(vec![Field::new("volume", DataType::Int)]));
        let mut a = AggregateOp::new(None, AggFunc::Sum, 0, 100, schema, true);
        let rows = (0..3)
            .map(|i| Tuple::new(i, vec![Value::Int(big)]))
            .collect();
        let mut out = Vec::new();
        a.process_batch(0, TupleBatch::from_rows(volume_schema, rows), &mut out);
        a.finish(&mut out);
        assert_eq!(rows_of(&out)[0].values[1], Value::Int(3 * big));
    }

    #[test]
    fn int_min_max_avg_stay_exact() {
        let big = (1i64 << 60) + 7;
        let schema = Schema::new(vec![
            Field::new("window_end", DataType::Int),
            Field::new("max", DataType::Int),
        ]);
        let volume_schema = Arc::new(Schema::new(vec![Field::new("volume", DataType::Int)]));
        let mut mx = AggregateOp::new(None, AggFunc::Max, 0, 100, schema, true);
        let rows: Vec<Tuple> = [big, big - 1]
            .iter()
            .enumerate()
            .map(|(i, v)| Tuple::new(i as u64, vec![Value::Int(*v)]))
            .collect();
        let mut out = Vec::new();
        mx.process_batch(0, TupleBatch::from_rows(volume_schema, rows), &mut out);
        mx.finish(&mut out);
        // f64 cannot distinguish big from big - 1 at this magnitude.
        assert_eq!(rows_of(&out)[0].values[1], Value::Int(big));
    }

    #[test]
    fn empty_agg_state_yields_no_value() {
        let s = AggState::empty();
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            assert_eq!(s.result(func), None, "{func:?} over an empty window");
        }
    }

    #[test]
    fn saturating_sum_is_explicit_at_i64_bounds() {
        assert_eq!(saturate_i128(i128::from(i64::MAX) + 1), i64::MAX);
        assert_eq!(saturate_i128(i128::from(i64::MIN) - 1), i64::MIN);
        assert_eq!(saturate_i128(42), 42);
    }

    #[test]
    fn join_eviction_survives_repeated_watermarks() {
        let schema = quote_schema().join(&quote_schema());
        let mut j = JoinOp::new(0, 0, 10, schema);
        let mut out = Vec::new();
        j.process_batch(0, qbatch(vec![quote(100, "IBM", 1.0)]), &mut out);
        assert_eq!(j.state_size(), 1);
        // Re-advancing past everything must not underflow the tracked size.
        j.advance_watermark(500, &mut out);
        j.advance_watermark(500, &mut out);
        j.advance_watermark(900, &mut out);
        assert_eq!(j.state_size(), 0);
    }

    #[test]
    fn unit_costs_rank_operators_sanely() {
        let f = FilterOp::new(Expr::lit(Value::Bool(true)), quote_schema());
        let j = JoinOp::new(0, 0, 1, quote_schema().join(&quote_schema()));
        let schema = Schema::new(vec![
            Field::new("window_end", DataType::Int),
            Field::new("count", DataType::Int),
        ]);
        let a = AggregateOp::new(None, AggFunc::Count, 0, 1, schema, true);
        assert!(j.unit_cost() > a.unit_cost());
        assert!(a.unit_cost() > f.unit_cost());
    }

    #[test]
    fn columnar_kernel_knob_is_scoped_and_restored() {
        assert!(columnar_kernels_enabled(), "defaults to on");
        with_columnar_kernels(false, || {
            assert!(!columnar_kernels_enabled());
            with_columnar_kernels(true, || assert!(columnar_kernels_enabled()));
            assert!(!columnar_kernels_enabled());
        });
        assert!(columnar_kernels_enabled());
    }

    #[test]
    fn key_shard_matches_cell_shard() {
        // The state partitioner (Key) and the row partitioner (column
        // cell) must agree byte for byte, or keyed state would end up on
        // the wrong shard.
        let batch = qbatch(vec![quote(1, "IBM", 1.0), quote(2, "AAPL", 2.0)]);
        for shards in [1usize, 2, 4, 8] {
            for i in 0..batch.len() {
                let key = Key::from_column(batch.column(0), i).unwrap();
                assert_eq!(
                    key.shard_of(shards),
                    shard_of_cell(batch.column(0), i, shards)
                );
            }
        }
        assert_eq!(Key::Int(7).shard_of(1), 0);
        assert_eq!(Key::Bool(true).shard_of(3), Key::Bool(true).shard_of(3));
    }

    #[test]
    fn simd_kernel_knob_is_scoped_and_restored() {
        assert!(simd_kernels_enabled(), "defaults to on");
        with_simd_kernels(false, || {
            assert!(!simd_kernels_enabled());
            with_simd_kernels(true, || assert!(simd_kernels_enabled()));
            assert!(!simd_kernels_enabled());
        });
        assert!(simd_kernels_enabled());
    }

    #[test]
    fn key_reader_agrees_with_per_row_paths_and_hashes_codes() {
        // `from_rows` dictionary-encodes the symbol column, so this
        // exercises the memoized dict path; the float column exercises the
        // plain pass-through. The reader must agree with the per-row
        // `Key::from_column` / `shard_of_cell` on every row while hashing
        // string bytes only once per distinct code.
        let batch = qbatch(vec![
            quote(1, "IBM", 1.0),
            quote(2, "AAPL", 2.0),
            quote(3, "IBM", 3.0),
            quote(4, "MSFT", 4.0),
            quote(5, "AAPL", 5.0),
        ]);
        let col = batch.column(0);
        assert!(col.as_dict().is_some());
        crate::types::work::reset();
        let mut reader = KeyReader::new(col);
        for shards in [1usize, 3, 8] {
            for i in 0..batch.len() {
                assert_eq!(reader.key(i), Key::from_column(col, i));
                assert_eq!(reader.shard(i, shards), shard_of_cell(col, i, shards));
                let (k, p) = reader.key_and_shard(i, shards).unwrap();
                assert_eq!(k, Key::from_column(col, i).unwrap());
                assert_eq!(p, shard_of_cell(col, i, shards));
            }
        }
        assert!(
            crate::types::work::snapshot().dict_code_cmps > 0,
            "dict key loops count code lookups"
        );
        // Plain (non-dict) columns pass through untouched and uncounted.
        let plain = Column::Int(vec![10, 20, 30]);
        crate::types::work::reset();
        let mut reader = KeyReader::new(&plain);
        for i in 0..3 {
            assert_eq!(reader.key(i), Key::from_column(&plain, i));
            assert_eq!(reader.shard(i, 4), shard_of_cell(&plain, i, 4));
        }
        assert_eq!(crate::types::work::snapshot().dict_code_cmps, 0);
    }

    #[test]
    fn join_repartition_preserves_results() {
        // Build state at 1 partition, repartition to 4, keep probing: the
        // outputs must be exactly what an unpartitioned join produces.
        let schema = quote_schema().join(&quote_schema());
        let mut reference = JoinOp::new(0, 0, 50, schema.clone());
        let mut repartitioned = JoinOp::new(0, 0, 50, schema);
        let left = vec![quote(1, "A", 1.0), quote(2, "B", 2.0), quote(3, "A", 3.0)];
        let right = vec![quote(4, "A", 4.0), quote(5, "B", 5.0)];
        let mut ref_out = Vec::new();
        let mut rep_out = Vec::new();
        reference.process_batch(0, qbatch(left.clone()), &mut ref_out);
        repartitioned.process_batch(0, qbatch(left), &mut rep_out);
        repartitioned.set_partitions(4);
        assert_eq!(repartitioned.state_size(), 3, "state survives repartition");
        reference.process_batch(1, qbatch(right.clone()), &mut ref_out);
        repartitioned.process_batch(1, qbatch(right), &mut rep_out);
        assert_eq!(rows_of(&rep_out), rows_of(&ref_out));
        // Keyed eviction through the kernel mirrors &mut eviction.
        reference.advance_watermark(100, &mut ref_out);
        for shard in 0..4 {
            assert!(repartitioned.advance_keyed(shard, 100).is_none());
        }
        assert_eq!(repartitioned.state_size(), reference.state_size());
    }

    #[test]
    fn keyed_join_kernel_traces_probe_rows() {
        let schema = quote_schema().join(&quote_schema());
        let mut j = JoinOp::new(0, 0, 50, schema);
        j.set_partitions(2);
        let shard_a = Key::Str(Arc::from("A")).shard_of(2);
        // Store two A rows on A's shard, then probe with one A row: two
        // matches, both traced to probe row 0.
        let stored = qbatch(vec![quote(1, "A", 1.0), quote(2, "A", 2.0)]);
        let (out, trace) = j.process_keyed(shard_a, 0, &stored, None);
        assert!(out.is_empty() && trace.is_empty());
        let probe = qbatch(vec![quote(3, "A", 3.0)]);
        let (out, trace) = j.process_keyed(shard_a, 1, &probe, None);
        assert_eq!(out.len(), 2, "probe matches both stored rows");
        assert_eq!(trace, vec![0, 0], "join fan-out repeats the probe row");
    }

    #[test]
    fn keyed_aggregate_emits_sorted_with_emit_keys() {
        let schema = Schema::new(vec![
            Field::new("window_end", DataType::Int),
            Field::new("symbol", DataType::Str),
            Field::new("count", DataType::Int),
        ]);
        let mut a = AggregateOp::new(Some(0), AggFunc::Count, 0, 100, schema, true);
        a.set_partitions(2);
        let shard_of = |s: &str| Key::Str(Arc::from(s)).shard_of(2);
        let rows = vec![quote(10, "IBM", 1.0), quote(20, "IBM", 1.0)];
        let (out, trace) = a.process_keyed(shard_of("IBM"), 0, &qbatch(rows), None);
        assert!(
            out.is_empty() && trace.is_empty(),
            "aggregates emit on close"
        );
        let (batch, keys) = a.advance_keyed(shard_of("IBM"), 100).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].0, 0, "window start rides in the emit key");
        assert!(keys[0].1.contains("IBM"));
        // The other shard has nothing.
        let other = 1 - shard_of("IBM");
        assert!(a.advance_keyed(other, 100).is_none());
    }

    #[test]
    fn aggregate_partitioned_control_path_equals_unpartitioned() {
        let schema = Schema::new(vec![
            Field::new("window_end", DataType::Int),
            Field::new("symbol", DataType::Str),
            Field::new("count", DataType::Int),
        ]);
        let rows: Vec<Tuple> = (0..40)
            .map(|i| quote(i, ["A", "B", "C"][i as usize % 3], 1.0))
            .collect();
        let mut single = AggregateOp::new(Some(0), AggFunc::Count, 0, 10, schema.clone(), true);
        let mut parted = AggregateOp::new(Some(0), AggFunc::Count, 0, 10, schema, true);
        parted.set_partitions(4);
        let (mut out_s, mut out_p) = (Vec::new(), Vec::new());
        single.process_batch(0, qbatch(rows.clone()), &mut out_s);
        parted.process_batch(0, qbatch(rows), &mut out_p);
        single.advance_watermark(25, &mut out_s);
        parted.advance_watermark(25, &mut out_p);
        single.finish(&mut out_s);
        parted.finish(&mut out_p);
        assert_eq!(
            rows_of(&out_p),
            rows_of(&out_s),
            "partition count must not change emission content or order"
        );
    }

    #[test]
    fn selection_pushdown_absorbs_without_densifying() {
        // A deferred selection into an aggregate: only selected rows
        // absorb, and no row is materialized in the process.
        let schema = Schema::new(vec![
            Field::new("window_end", DataType::Int),
            Field::new("count", DataType::Int),
        ]);
        let a = AggregateOp::new(None, AggFunc::Count, 0, 100, schema, true);
        let batch = qbatch(vec![
            quote(1, "A", 1.0),
            quote(2, "B", 2.0),
            quote(3, "C", 3.0),
        ]);
        crate::types::work::reset();
        let sel: Vec<u32> = vec![0, 2];
        a.process_keyed(0, 0, &batch, Some(&sel));
        assert_eq!(
            crate::types::work::snapshot().rows_materialized,
            0,
            "pushdown absorb never gathers"
        );
        let mut parts_out = Vec::new();
        let mut a = a;
        a.finish(&mut parts_out);
        assert_eq!(
            rows_of(&parts_out)[0].values[1],
            Value::Int(2),
            "only the selected rows were absorbed"
        );
    }

    #[test]
    fn filter_refine_selection_composes() {
        let f = FilterOp::new(
            Expr::col(1).gt(Expr::lit(Value::Float(1.5))),
            quote_schema(),
        );
        let batch = qbatch(vec![
            quote(1, "A", 1.0),
            quote(2, "B", 2.0),
            quote(3, "C", 3.0),
        ]);
        let sel = ShardKernel::refine_selection(&f, &batch, None).unwrap();
        assert_eq!(sel, vec![1, 2]);
        // Refining an existing selection returns batch-level indices.
        let narrowed = ShardKernel::refine_selection(&f, &batch, Some(&[0, 2])).unwrap();
        assert_eq!(narrowed, vec![2]);
        // The row fallback keeps reference semantics: no deferral.
        with_columnar_kernels(false, || {
            assert!(ShardKernel::refine_selection(&f, &batch, None).is_none());
        });
    }

    #[test]
    fn keyed_out_propagation_rules() {
        let filter = FilterOp::new(
            Expr::col(1).gt(Expr::lit(Value::Float(0.0))),
            quote_schema(),
        );
        assert_eq!(filter.keyed_out(&[Some(0)]), Some(0));
        assert_eq!(filter.keyed_out(&[None]), None);

        let project_keeps = ProjectOp::new(
            vec![Expr::col(1), Expr::col(0)],
            Schema::new(vec![
                Field::new("price", DataType::Float),
                Field::new("symbol", DataType::Str),
            ]),
        );
        assert_eq!(project_keeps.keyed_out(&[Some(0)]), Some(1));
        let project_drops = ProjectOp::new(
            vec![Expr::col(1)],
            Schema::new(vec![Field::new("price", DataType::Float)]),
        );
        assert_eq!(project_drops.keyed_out(&[Some(0)]), None);

        let join = JoinOp::new(0, 0, 10, quote_schema().join(&quote_schema()));
        assert_eq!(join.keyed_out(&[Some(0), Some(0)]), Some(0));
        assert_eq!(join.keyed_out(&[Some(0), Some(1)]), None);
        assert_eq!(join.keyed_out(&[Some(0), None]), None);

        let agg_schema = Schema::new(vec![
            Field::new("window_end", DataType::Int),
            Field::new("symbol", DataType::Str),
            Field::new("count", DataType::Int),
        ]);
        let grouped = AggregateOp::new(Some(0), AggFunc::Count, 0, 10, agg_schema.clone(), true);
        assert_eq!(grouped.keyed_out(&[Some(0)]), Some(1));
        assert_eq!(grouped.keyed_out(&[Some(1)]), None);
        let ungrouped = AggregateOp::new(None, AggFunc::Count, 0, 10, agg_schema, true);
        assert_eq!(ungrouped.keyed_out(&[Some(0)]), None);

        let union = UnionOp::new(quote_schema());
        assert_eq!(
            union.keyed_out(&[Some(0), Some(0)]),
            None,
            "unions stay barriers"
        );
    }
}
