//! The shared query network: one physical operator per distinct plan
//! signature, reference-counted across the continuous queries that use it.
//!
//! This is the substrate property the whole paper builds on — "it is
//! expected that many CQs may contain the same operator" (§II). Adding a
//! query walks its logical plan bottom-up, reusing any node whose signature
//! (operator kind + parameters + transitive inputs) already exists;
//! removing a query decrements reference counts and garbage-collects
//! orphaned operators.
//!
//! Invariant exploited by the engine: every edge points from a
//! lower-numbered node to a higher-numbered node (children are always
//! instantiated before parents, and reused parents already have their input
//! edges), so ascending node id is a topological order.
//!
//! Instantiation runs a **fusion pass** (on by default, see
//! [`QueryNetwork::set_fusion_enabled`]): a chain of adjacent stateless
//! operators (filter→filter, filter→project, project→project) collapses
//! into a single [`FusedOp`] node, keyed by the chain's top signature.
//! Sharing beats fusion — the chain walk stops at any sub-plan already
//! materialized as a (possibly shared) node and subscribes to it instead.
//! The cost of fusing is that a chain's *interior* signatures are not
//! registered, so operator sharing becomes order-dependent in one corner:
//! a query equal to an interior prefix of an already-fused chain gets its
//! own node (duplicate work, identical results) instead of splitting the
//! fused chain. See `fusion_does_not_share_interior_prefixes_added_later`
//! for the pinned behavior.

use crate::ops::{
    AggregateOp, FilterOp, FusedOp, FusedStage, JoinOp, Operator, ProjectOp, UnionOp,
};
use crate::plan::{AggFunc, LogicalPlan, PlanError, StreamCatalog};
use crate::types::{DataType, Schema};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Identifies a continuous query registered in a network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CqId(pub u32);

impl fmt::Display for CqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cq{}", self.0)
    }
}

/// Identifies a physical operator node within a network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Where an operator's (or stream's) output goes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// Input port `1` of node `0`.
    Node(NodeId, usize),
    /// The output sink of a continuous query.
    Sink(CqId),
}

/// What produces a plan node's input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Producer {
    /// A raw registered stream.
    Stream(String),
    /// Another operator node.
    Node(NodeId),
}

/// A physical operator node.
pub struct Node {
    /// The executable operator.
    pub op: Box<dyn Operator>,
    /// The sharing signature that keyed this node.
    pub signature: String,
    /// Operator kind label (for reports).
    pub kind: &'static str,
    /// Downstream consumers.
    pub downstream: Vec<Target>,
    /// Number of registered queries whose plan contains this node.
    pub refcount: u32,
    /// Tuples consumed (all ports).
    pub in_count: u64,
    /// Batches consumed (all ports); `in_count / in_batches` is the mean
    /// batch size the operator actually saw.
    pub in_batches: u64,
    /// Tuples produced.
    pub out_count: u64,
    /// Cumulative wall-clock time spent inside `process_batch` — the
    /// measured per-batch timing the cost model normalizes to per-tuple
    /// load.
    pub busy: Duration,
    /// Watermark already propagated to this node.
    pub last_watermark: u64,
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("kind", &self.kind)
            .field("refcount", &self.refcount)
            .field("in", &self.in_count)
            .field("out", &self.out_count)
            .finish()
    }
}

/// Everything the network remembers about one registered query.
#[derive(Clone, Debug)]
pub struct QueryInfo {
    /// The logical plan as submitted.
    pub plan: LogicalPlan,
    /// The distinct node ids the query's plan maps to.
    pub nodes: Vec<NodeId>,
    /// What feeds the query's sink.
    pub top: Producer,
    /// The query's output schema.
    pub schema: Schema,
}

/// One node of a stream's stateless prefix (see
/// [`QueryNetwork::stateless_prefix`]).
#[derive(Clone, Debug)]
pub struct PrefixNode {
    /// The physical node.
    pub id: NodeId,
    /// Downstream consumers *inside* the prefix, as indices into
    /// [`StreamPrefix::nodes`].
    pub internal: Vec<usize>,
    /// Downstream consumers *outside* the prefix — sinks and stateful
    /// nodes, in the node's `downstream` order. These are the merge points
    /// of the sharded executor.
    pub exits: Vec<Target>,
}

/// The maximal subgraph of stateless single-input operators reachable from
/// one stream — the part of the network the shard-per-stream executor can
/// replicate across worker threads. Stateful operators (joins, aggregates,
/// unions) and sinks sit at the prefix's exits, where shard outputs are
/// deterministically merged back into single-threaded row order.
#[derive(Clone, Debug, Default)]
pub struct StreamPrefix {
    /// Prefix nodes in ascending id order (a topological order).
    pub nodes: Vec<PrefixNode>,
    /// Indices into `nodes` of the operators fed directly by the stream.
    pub roots: Vec<usize>,
    /// Stream subscribers outside the prefix (stateful nodes, sinks):
    /// routed whole at flush time, exactly like the single-threaded path.
    pub direct: Vec<Target>,
}

/// One node of the multi-stream **keyed plan** (see
/// [`QueryNetwork::keyed_plan`]).
#[derive(Clone, Debug)]
pub struct KeyedNode {
    /// The physical node.
    pub id: NodeId,
    /// Whether the node is a keyed *stateful* operator (join, aggregate)
    /// running with per-shard state partitions; stateless plan members run
    /// their ordinary shard kernels.
    pub stateful: bool,
    /// Whether the node is a **partial-aggregation** member (an exact
    /// aggregate whose single group — or shard-incompatible group key —
    /// spans shards): workers absorb rows into per-*worker* partial
    /// accumulators instead of key-homed partitions, and the control
    /// thread's watermark pass combines the partials in partition order
    /// when windows close. Grouped members hash-accumulate per group key
    /// within each worker partition. Downstream consumers still see the
    /// node as a merge barrier (its output is produced on the control
    /// thread), so a partial node's `internal` is always empty.
    pub partial: bool,
    /// Downstream consumers *inside* the plan, as
    /// `(index into [`KeyedPlan::nodes`], input port)` pairs, in the
    /// node's `downstream` order.
    pub internal: Vec<(usize, usize)>,
    /// Downstream consumers *outside* the plan — sinks and
    /// shard-incompatible nodes, in `downstream` order. These are the
    /// **merge points**: the deterministic merge relocates here, past
    /// every keyed join and aggregate of the plan.
    pub exits: Vec<Target>,
}

/// One hash-partitioned source stream of a keyed plan.
#[derive(Clone, Debug)]
pub struct KeyedRoot {
    /// The stream name.
    pub stream: String,
    /// The stream's shard-key column.
    pub key: usize,
    /// Plan members fed directly by the stream, as
    /// `(index into [`KeyedPlan::nodes`], input port)` pairs.
    pub targets: Vec<(usize, usize)>,
    /// Stream subscribers outside the plan (shard-incompatible nodes,
    /// sinks): routed whole at flush time, exactly like the
    /// single-threaded path.
    pub direct: Vec<Target>,
}

/// The maximal subgraph the shard executor can run *inside* the worker
/// shards when streams are hash-partitioned on shard keys: every stateless
/// single-input operator reachable from a keyed stream, **plus every
/// downstream stateful operator keyed compatibly with the partition key**
/// — joins whose both sides are partitioned by their join keys, aggregates
/// whose group-by column is the partition key (equal keys already share a
/// shard, so per-shard operator state is exact). Computed across *all*
/// keyed streams at once, because a join couples two streams' prefixes.
///
/// The deterministic merge happens at the plan's exits — the first
/// shard-incompatible node or sink past each member — instead of in front
/// of every stateful operator.
#[derive(Clone, Debug, Default)]
pub struct KeyedPlan {
    /// Plan members in ascending id order (a topological order: edges
    /// ascend, and a member's producers are members or roots).
    pub nodes: Vec<KeyedNode>,
    /// One entry per keyed stream, sorted by stream name.
    pub roots: Vec<KeyedRoot>,
    /// Whether any member is stateful — if so, every flush that advances
    /// the watermark must run a window-close pass on every shard.
    pub has_stateful: bool,
}

impl KeyedPlan {
    /// The root feeding `stream`, if the plan covers it.
    pub fn root_of(&self, stream: &str) -> Option<usize> {
        self.roots.iter().position(|r| r.stream == stream)
    }
}

/// The shared operator network (see module docs).
pub struct QueryNetwork {
    streams: HashMap<String, Arc<Schema>>,
    nodes: Vec<Option<Node>>,
    by_signature: HashMap<String, NodeId>,
    source_subs: HashMap<String, Vec<Target>>,
    queries: HashMap<CqId, QueryInfo>,
    next_cq: u32,
    /// When true (the default), chains of adjacent stateless operators are
    /// collapsed into single [`FusedOp`] nodes at instantiation time.
    fusion: bool,
    /// Worker-shard count for the parallel executor (1 = single-threaded).
    /// Carried by the network so every engine built over it — including
    /// the center's shadow calibration engines — runs the same shape.
    shards: usize,
}

impl Default for QueryNetwork {
    fn default() -> Self {
        Self {
            streams: HashMap::new(),
            nodes: Vec::new(),
            by_signature: HashMap::new(),
            source_subs: HashMap::new(),
            queries: HashMap::new(),
            next_cq: 0,
            fusion: true,
            shards: 1,
        }
    }
}

impl fmt::Debug for QueryNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryNetwork")
            .field("streams", &self.streams.keys().collect::<Vec<_>>())
            .field("nodes", &self.num_nodes())
            .field("queries", &self.queries.len())
            .finish()
    }
}

impl StreamCatalog for QueryNetwork {
    fn stream_schema(&self, name: &str) -> Option<&Schema> {
        self.streams.get(name).map(Arc::as_ref)
    }
}

impl QueryNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the stateless-operator fusion pass is enabled (on by
    /// default).
    pub fn fusion_enabled(&self) -> bool {
        self.fusion
    }

    /// Enables or disables the fusion pass. Affects only *subsequently
    /// instantiated* operators; live nodes keep whatever shape they were
    /// built with (identical plans keep sharing either way, because fused
    /// and unfused nodes are keyed by the same plan signature).
    pub fn set_fusion_enabled(&mut self, enabled: bool) {
        self.fusion = enabled;
    }

    /// The worker-shard count of the parallel executor (1 = the
    /// single-threaded path; the default).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Sets the worker-shard count. Shard count 1 compiles down to the
    /// single-threaded engine path; higher counts run each stream's
    /// shardable prefix on that many worker threads with a deterministic
    /// merge at the exits (see [`QueryNetwork::stateless_prefix`] and
    /// [`QueryNetwork::keyed_plan`]).
    ///
    /// Live stateful operators re-partition their keyed state to match
    /// ([`crate::ops::Operator::set_partitions`]): a key's tuples move
    /// whole, in order, to the partition the key hashes to, so the change
    /// is invisible in the outputs.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn set_shards(&mut self, n: usize) {
        assert!(n > 0, "shard count must be positive");
        if n == self.shards {
            return;
        }
        self.shards = n;
        for node in self.nodes.iter_mut().flatten() {
            node.op.set_partitions(n);
        }
    }

    /// Registers an input stream. Re-registering with the same schema is a
    /// no-op; with a different schema it panics (streams are append-only
    /// contracts).
    pub fn register_stream(&mut self, name: impl Into<String>, schema: Schema) {
        let name = name.into();
        match self.streams.get(&name) {
            Some(existing) => assert_eq!(
                existing.as_ref(),
                &schema,
                "stream '{name}' re-registered with a different schema"
            ),
            None => {
                self.streams.insert(name.clone(), Arc::new(schema));
                self.source_subs.entry(name).or_default();
            }
        }
    }

    /// The shared schema handle of a registered stream (source batches
    /// clone this `Arc` instead of copying the schema).
    pub fn stream_schema_arc(&self, name: &str) -> Option<&Arc<Schema>> {
        self.streams.get(name)
    }

    /// Live (non-removed) node count.
    pub fn num_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// The node with the given id, if live.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index()).and_then(Option::as_ref)
    }

    /// Mutable access to a live node.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        self.nodes.get_mut(id.index()).and_then(Option::as_mut)
    }

    /// Ids of all live nodes, ascending (a valid topological order).
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|_| NodeId(i as u32)))
            .collect()
    }

    /// Registered query ids, ascending.
    pub fn query_ids(&self) -> Vec<CqId> {
        let mut ids: Vec<CqId> = self.queries.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Info for a registered query.
    pub fn query(&self, cq: CqId) -> Option<&QueryInfo> {
        self.queries.get(&cq)
    }

    /// The subscribers of a raw stream.
    pub fn stream_subscribers(&self, stream: &str) -> &[Target] {
        self.source_subs.get(stream).map_or(&[], Vec::as_slice)
    }

    /// Every query whose plan contains physical node `node`, ascending —
    /// the blast radius of a fault at that node. Because
    /// [`QueryInfo::nodes`] lists *all* nodes a query's plan materialized
    /// to (shared or not), a panic at a shared operator attributes to each
    /// co-owning query, which is exactly the set the quarantine machinery
    /// must excise.
    pub fn queries_owning(&self, node: NodeId) -> Vec<CqId> {
        let mut owners: Vec<CqId> = self
            .queries
            .iter()
            .filter(|(_, info)| info.nodes.contains(&node))
            .map(|(cq, _)| *cq)
            .collect();
        owners.sort_unstable();
        owners
    }

    /// The maximum number of queries sharing one node — the paper's "degree
    /// of sharing" realized in the running system.
    pub fn max_degree_of_sharing(&self) -> u32 {
        self.nodes
            .iter()
            .flatten()
            .map(|n| n.refcount)
            .max()
            .unwrap_or(0)
    }

    /// Statically verifies a plan against this network's stream catalog,
    /// returning **every** problem as a diagnostic report rather than the
    /// first error (see [`crate::diag`]). An error-severity report means
    /// [`Self::add_query`] would reject the plan.
    pub fn verify_plan(&self, plan: &LogicalPlan) -> crate::diag::Report {
        crate::diag::check_plan(plan, self)
    }

    /// Adds a continuous query, sharing operators with existing queries
    /// wherever signatures match. Returns the new query's id.
    pub fn add_query(&mut self, plan: LogicalPlan) -> Result<CqId, PlanError> {
        // Statically verify before mutating: the analyzer accumulates every
        // problem, and its first error-severity diagnostic maps back onto
        // the `Result` API this method exposes.
        let report = self.verify_plan(&plan);
        if let Some(err) = report.first_error() {
            return Err(err);
        }
        let schema = plan
            .output_schema(self)
            .expect("verified plan has a schema");
        let mut new_nodes: Vec<NodeId> = Vec::new();
        let top = self.instantiate(&plan, &mut new_nodes)?;

        let cq = CqId(self.next_cq);
        self.next_cq += 1;

        // Collect the full node set of the plan (shared and new).
        let mut node_set = Vec::new();
        self.collect_plan_nodes(&plan, &mut node_set);
        node_set.sort_unstable();
        node_set.dedup();
        for &n in &node_set {
            self.nodes[n.index()]
                .as_mut()
                .expect("plan node is live")
                .refcount += 1;
        }

        // Wire the sink.
        self.connect(&top, Target::Sink(cq));

        self.queries.insert(
            cq,
            QueryInfo {
                plan,
                nodes: node_set,
                top,
                schema,
            },
        );
        Ok(cq)
    }

    /// Removes a query, garbage-collecting operators no longer referenced by
    /// any registered query. Returns the info of the removed query, or
    /// `None` if no query with that id is registered (removal is
    /// idempotent — removing an already-removed query is a no-op).
    pub fn remove_query(&mut self, cq: CqId) -> Option<QueryInfo> {
        let info = self.queries.remove(&cq)?;
        // Unwire the sink.
        self.disconnect(&info.top, Target::Sink(cq));
        // Drop references; collect orphans.
        let mut orphans = Vec::new();
        for &n in &info.nodes {
            let node = self.nodes[n.index()].as_mut().expect("query node is live");
            node.refcount -= 1;
            if node.refcount == 0 {
                orphans.push(n);
            }
        }
        for n in orphans {
            self.remove_node(n);
        }
        Some(info)
    }

    fn remove_node(&mut self, id: NodeId) {
        let node = self.nodes[id.index()].take().expect("node is live");
        self.by_signature.remove(&node.signature);
        // Remove edges pointing at the node from streams and other nodes.
        for subs in self.source_subs.values_mut() {
            subs.retain(|t| !matches!(t, Target::Node(n, _) if *n == id));
        }
        for other in self.nodes.iter_mut().flatten() {
            other
                .downstream
                .retain(|t| !matches!(t, Target::Node(n, _) if *n == id));
        }
    }

    fn connect(&mut self, producer: &Producer, target: Target) {
        match producer {
            Producer::Stream(s) => {
                let subs = self
                    .source_subs
                    .get_mut(s)
                    .expect("stream registered before connect");
                if !subs.contains(&target) {
                    subs.push(target);
                }
            }
            Producer::Node(id) => {
                let node = self.nodes[id.index()].as_mut().expect("producer is live");
                if !node.downstream.contains(&target) {
                    node.downstream.push(target);
                }
            }
        }
    }

    fn disconnect(&mut self, producer: &Producer, target: Target) {
        match producer {
            Producer::Stream(s) => {
                if let Some(subs) = self.source_subs.get_mut(s) {
                    subs.retain(|t| *t != target);
                }
            }
            Producer::Node(id) => {
                if let Some(node) = self.nodes[id.index()].as_mut() {
                    node.downstream.retain(|t| *t != target);
                }
            }
        }
    }

    fn new_node(
        &mut self,
        mut op: Box<dyn Operator>,
        signature: String,
        kind: &'static str,
    ) -> NodeId {
        // Stateful operators partition their keyed state per shard from
        // birth, so shard workers and the control thread agree on where a
        // key's state lives.
        op.set_partitions(self.shards);
        let id = NodeId(self.nodes.len() as u32);
        self.by_signature.insert(signature.clone(), id);
        self.nodes.push(Some(Node {
            op,
            signature,
            kind,
            downstream: Vec::new(),
            refcount: 0,
            in_count: 0,
            in_batches: 0,
            out_count: 0,
            busy: Duration::ZERO,
            last_watermark: 0,
        }));
        id
    }

    /// Recursively instantiates a plan, reusing signature-identical nodes.
    fn instantiate(
        &mut self,
        plan: &LogicalPlan,
        created: &mut Vec<NodeId>,
    ) -> Result<Producer, PlanError> {
        if let LogicalPlan::Source { stream } = plan {
            if !self.streams.contains_key(stream) {
                return Err(PlanError::UnknownStream(stream.clone()));
            }
            return Ok(Producer::Stream(stream.clone()));
        }
        let signature = plan.signature();
        if let Some(&existing) = self.by_signature.get(&signature) {
            return Ok(Producer::Node(existing));
        }
        let producer = match plan {
            LogicalPlan::Source { .. } => unreachable!("handled above"),
            LogicalPlan::Filter { .. } | LogicalPlan::Project { .. } => {
                self.instantiate_stateless(plan, signature, created)?
            }
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
                window_ms,
            } => {
                let lp = self.instantiate(left, created)?;
                let rp = self.instantiate(right, created)?;
                let schema = plan.output_schema(self)?;
                let id = self.new_node(
                    Box::new(JoinOp::new(*left_key, *right_key, *window_ms, schema)),
                    signature,
                    "join",
                );
                self.connect(&lp, Target::Node(id, 0));
                self.connect(&rp, Target::Node(id, 1));
                id
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                func,
                column,
                window_ms,
                slide_ms,
            } => {
                let child = self.instantiate(input, created)?;
                let in_schema = input.output_schema(self)?;
                let schema = plan.output_schema(self)?;
                let int_input =
                    *func != AggFunc::Count && in_schema.data_type(*column) == DataType::Int;
                let id = self.new_node(
                    Box::new(AggregateOp::with_slide(
                        *group_by, *func, *column, *window_ms, *slide_ms, schema, int_input,
                    )),
                    signature,
                    "aggregate",
                );
                self.connect(&child, Target::Node(id, 0));
                id
            }
            LogicalPlan::Union { left, right } => {
                let lp = self.instantiate(left, created)?;
                let rp = self.instantiate(right, created)?;
                let schema = plan.output_schema(self)?;
                let id = self.new_node(Box::new(UnionOp::new(schema)), signature, "union");
                self.connect(&lp, Target::Node(id, 0));
                self.connect(&rp, Target::Node(id, 1));
                id
            }
        };
        created.push(producer);
        Ok(Producer::Node(producer))
    }

    /// Lowers a stateless plan node (filter or project), fusing the maximal
    /// chain of stateless ancestors into one [`FusedOp`] when fusion is
    /// enabled.
    ///
    /// The chain walk stops at the first ancestor that either is stateful
    /// (or a source) or already exists as a physical node — **sharing beats
    /// fusion**: a materialized prefix may serve other queries, so the
    /// chain subscribes to it instead of re-computing it. The fused node is
    /// keyed by the chain's *top* signature (which transitively encodes the
    /// whole chain), so identical chains submitted by different users still
    /// collapse onto one node, and `collect_plan_nodes` attributes the node
    /// to every query whose plan contains the chain's top — per-CQ cost
    /// attribution is unchanged by fusion. Interior signatures of the
    /// fused chain are *not* registered: a later query equal to such a
    /// prefix builds its own node rather than splitting the chain (see the
    /// module docs).
    fn instantiate_stateless(
        &mut self,
        plan: &LogicalPlan,
        signature: String,
        created: &mut Vec<NodeId>,
    ) -> Result<NodeId, PlanError> {
        let mut chain: Vec<&LogicalPlan> = vec![plan];
        let mut cursor = plan.stateless_input().expect("stateless plan node");
        if self.fusion {
            while cursor.is_stateless() && !self.by_signature.contains_key(&cursor.signature()) {
                chain.push(cursor);
                cursor = cursor.stateless_input().expect("stateless plan node");
            }
        }
        let child = self.instantiate(cursor, created)?;
        let id = if chain.len() == 1 {
            // Nothing to fuse with: a plain single-operator node.
            match plan {
                LogicalPlan::Filter { input, predicate } => {
                    let schema = input.output_schema(self)?;
                    self.new_node(
                        Box::new(FilterOp::new(predicate.clone(), schema)),
                        signature,
                        "filter",
                    )
                }
                LogicalPlan::Project { columns, .. } => {
                    let schema = plan.output_schema(self)?;
                    let exprs = columns.iter().map(|(_, e)| e.clone()).collect();
                    self.new_node(
                        Box::new(ProjectOp::new(exprs, schema)),
                        signature,
                        "project",
                    )
                }
                _ => unreachable!("stateless plan nodes are filter or project"),
            }
        } else {
            // Stage list in chain order (upstream first), each stage
            // carrying its analytic unit cost: the fused node reports a
            // selectivity-aware effective cost, so the admission auction
            // prices the fused chain like the unfused chain's measured
            // per-stage rates, while the measured cost model observes the
            // real (lower) per-tuple time.
            let mut stages = Vec::with_capacity(chain.len());
            for node in chain.iter().rev() {
                match node {
                    LogicalPlan::Filter { predicate, .. } => {
                        stages.push((FusedStage::Filter(predicate.clone()), FilterOp::UNIT_COST));
                    }
                    LogicalPlan::Project { columns, .. } => {
                        // Each projection stage carries its own output
                        // schema so the columnar kernels can materialize
                        // intermediate batches without re-deriving types.
                        let stage_schema = Arc::new(node.output_schema(self)?);
                        stages.push((
                            FusedStage::Project(
                                columns.iter().map(|(_, e)| e.clone()).collect(),
                                stage_schema,
                            ),
                            ProjectOp::UNIT_COST,
                        ));
                    }
                    _ => unreachable!("stateless plan nodes are filter or project"),
                }
            }
            let schema = plan.output_schema(self)?;
            self.new_node(Box::new(FusedOp::new(stages, schema)), signature, "fused")
        };
        self.connect(&child, Target::Node(id, 0));
        Ok(id)
    }

    /// Computes the stream's **stateless prefix**: the maximal set of
    /// shardable nodes (filter / project / fused — single input, no state,
    /// see [`crate::ops::ShardKernel`]) fed by the stream directly or
    /// through other prefix nodes. Every stateless node has exactly one
    /// producer, so prefixes of different streams are disjoint and the
    /// prefix is closed under "reachable through stateless nodes only".
    ///
    /// Nodes are listed in ascending id order — edges always ascend, so
    /// that is a topological order the shard workers can evaluate in one
    /// pass.
    pub fn stateless_prefix(&self, stream: &str) -> StreamPrefix {
        let subs = self.stream_subscribers(stream);
        let shardable = |id: NodeId| self.node(id).is_some_and(|n| n.op.shard_kernel().is_some());
        // Membership first: roots are shardable stream subscribers, then
        // close over shardable downstream nodes in ascending id order
        // (a node's producer always has a smaller id, so one pass
        // suffices).
        let mut members: Vec<NodeId> = Vec::new();
        for t in subs {
            if let Target::Node(id, _) = t {
                if shardable(*id) && !members.contains(id) {
                    members.push(*id);
                }
            }
        }
        members.sort_unstable();
        let mut i = 0;
        while i < members.len() {
            let id = members[i];
            let downstream = &self.node(id).expect("prefix node is live").downstream;
            for t in downstream {
                if let Target::Node(d, _) = t {
                    if shardable(*d) && !members.contains(d) {
                        let pos = members.partition_point(|m| m < d);
                        members.insert(pos, *d);
                    }
                }
            }
            i += 1;
        }
        // Second pass: split each member's downstream into internal edges
        // and exits.
        let index_of = |id: NodeId| members.binary_search(&id).ok();
        let nodes: Vec<PrefixNode> = members
            .iter()
            .map(|&id| {
                let node = self.node(id).expect("prefix node is live");
                let mut internal = Vec::new();
                let mut exits = Vec::new();
                for &t in &node.downstream {
                    match t {
                        Target::Node(d, _) if index_of(d).is_some() => {
                            internal.push(index_of(d).expect("member"));
                        }
                        other => exits.push(other),
                    }
                }
                PrefixNode {
                    id,
                    internal,
                    exits,
                }
            })
            .collect();
        let roots: Vec<usize> = subs
            .iter()
            .filter_map(|t| match t {
                Target::Node(id, _) => index_of(*id),
                Target::Sink(_) => None,
            })
            .collect();
        let direct: Vec<Target> = subs
            .iter()
            .copied()
            .filter(|t| match t {
                Target::Node(id, _) => index_of(*id).is_none(),
                Target::Sink(_) => true,
            })
            .collect();
        StreamPrefix {
            nodes,
            roots,
            direct,
        }
    }

    /// Computes the multi-stream [`KeyedPlan`] for the given per-stream
    /// shard keys (see the type docs for the membership rule).
    ///
    /// Key positions are tracked through the plan: filters pass the key
    /// through, projections keep it only where an output column is exactly
    /// the key column, fused chains thread it stage by stage, joins carry
    /// it at the left key's position, aggregates at the group column. A
    /// node joins the plan only when **every** producer is a keyed stream
    /// or an in-plan node, and — for stateful nodes — when
    /// [`crate::ops::Operator::keyed_out`] accepts the producers' key
    /// positions.
    pub fn keyed_plan(&self, shard_keys: &HashMap<String, usize>) -> KeyedPlan {
        // Upstream view: producers per node, per port. (The network stores
        // downstream edges; invert them once.)
        enum Src {
            Stream(String),
            Node(NodeId),
        }
        let mut in_edges: HashMap<NodeId, Vec<(usize, Src)>> = HashMap::new();
        for (stream, subs) in &self.source_subs {
            for t in subs {
                if let Target::Node(id, port) = t {
                    in_edges
                        .entry(*id)
                        .or_default()
                        .push((*port, Src::Stream(stream.clone())));
                }
            }
        }
        for id in self.node_ids() {
            for t in &self.node(id).expect("live node").downstream {
                if let Target::Node(d, port) = t {
                    in_edges.entry(*d).or_default().push((*port, Src::Node(id)));
                }
            }
        }

        // Membership + key tracking, ascending id order (producers always
        // have smaller ids, so one pass suffices). `members[id]` holds the
        // member's output key position (`None` = key lost; stateless
        // members stay shardable either way).
        let mut members: HashMap<NodeId, Option<usize>> = HashMap::new();
        let mut partials: HashSet<NodeId> = HashSet::new();
        let mut order: Vec<NodeId> = Vec::new();
        for id in self.node_ids() {
            let Some(edges) = in_edges.get(&id) else {
                continue;
            };
            let node = self.node(id).expect("live node");
            let num_ports = edges.iter().map(|(p, _)| p + 1).max().unwrap_or(0);
            let mut in_keys: Vec<Option<usize>> = vec![None; num_ports];
            let mut all_covered = true;
            for (port, src) in edges {
                let key = match src {
                    Src::Stream(s) => match shard_keys.get(s) {
                        Some(&k) => Some(k),
                        None => {
                            all_covered = false;
                            break;
                        }
                    },
                    Src::Node(p) => match members.get(p) {
                        Some(&k) => k,
                        None => {
                            all_covered = false;
                            break;
                        }
                    },
                };
                in_keys[*port] = key;
            }
            if !all_covered {
                continue;
            }
            let key_out = node.op.keyed_out(&in_keys);
            let stateless = node.op.shard_kernel().is_some();
            let keyed_stateful = !stateless && node.op.keyed_kernel().is_some();
            if stateless || (keyed_stateful && key_out.is_some()) {
                members.insert(id, key_out);
                order.push(id);
            } else if keyed_stateful && node.op.keyed_partial() {
                // Partial-aggregation member: absorbs rows inside the
                // shards (per-worker partials, no key needed — every row
                // folds into whichever worker ran its morsel, legal
                // because the combine is exact; grouped aggregates at a
                // shard-incompatible key accumulate per group *within*
                // each worker partition), but its *output* is produced by
                // the control thread's watermark pass, which combines the
                // partials. Downstream nodes therefore see a merge
                // barrier: the node joins `order` but not `members`.
                partials.insert(id);
                order.push(id);
            }
        }

        // Second pass: split downstream edges into internal edges and
        // exits (the merge points).
        let index_of = |id: NodeId| order.binary_search(&id).ok();
        let nodes: Vec<KeyedNode> = order
            .iter()
            .map(|&id| {
                let node = self.node(id).expect("plan node is live");
                let mut internal = Vec::new();
                let mut exits = Vec::new();
                for &t in &node.downstream {
                    match t {
                        Target::Node(d, port) if index_of(d).is_some() => {
                            internal.push((index_of(d).expect("member"), port));
                        }
                        other => exits.push(other),
                    }
                }
                debug_assert!(
                    !partials.contains(&id) || internal.is_empty(),
                    "partial members emit on the control thread, never in-plan"
                );
                KeyedNode {
                    id,
                    stateful: node.op.shard_kernel().is_none(),
                    partial: partials.contains(&id),
                    internal,
                    exits,
                }
            })
            .collect();
        let mut streams: Vec<&String> = shard_keys.keys().collect();
        streams.sort();
        let roots: Vec<KeyedRoot> = streams
            .into_iter()
            .filter(|s| self.streams.contains_key(*s))
            .map(|stream| {
                let subs = self.stream_subscribers(stream);
                let mut targets = Vec::new();
                let mut direct = Vec::new();
                for &t in subs {
                    match t {
                        Target::Node(d, port) if index_of(d).is_some() => {
                            targets.push((index_of(d).expect("member"), port));
                        }
                        other => direct.push(other),
                    }
                }
                KeyedRoot {
                    stream: stream.clone(),
                    key: shard_keys[stream],
                    targets,
                    direct,
                }
            })
            .collect();
        let has_stateful = nodes.iter().any(|n| n.stateful);
        KeyedPlan {
            nodes,
            roots,
            has_stateful,
        }
    }

    /// Collects the node ids a (registered) plan maps to.
    fn collect_plan_nodes(&self, plan: &LogicalPlan, out: &mut Vec<NodeId>) {
        if let LogicalPlan::Source { .. } = plan {
            return;
        }
        if let Some(&id) = self.by_signature.get(&plan.signature()) {
            out.push(id);
        }
        match plan {
            LogicalPlan::Source { .. } => {}
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. } => self.collect_plan_nodes(input, out),
            LogicalPlan::Join { left, right, .. } | LogicalPlan::Union { left, right } => {
                self.collect_plan_nodes(left, out);
                self.collect_plan_nodes(right, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::types::{Field, Value};

    fn network_with_quotes() -> QueryNetwork {
        let mut n = QueryNetwork::new();
        n.register_stream(
            "quotes",
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("price", DataType::Float),
            ]),
        );
        n
    }

    fn high_price_filter() -> LogicalPlan {
        LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))))
    }

    #[test]
    fn identical_queries_share_all_nodes() {
        let mut n = network_with_quotes();
        let q1 = n.add_query(high_price_filter()).unwrap();
        let q2 = n.add_query(high_price_filter()).unwrap();
        assert_eq!(n.num_nodes(), 1, "one shared filter node");
        assert_eq!(n.max_degree_of_sharing(), 2);
        let filter = n.query(q1).unwrap().nodes[0];
        assert_eq!(n.query(q2).unwrap().nodes, vec![filter]);
        // Both sinks hang off the shared node.
        let node = n.node(filter).unwrap();
        assert_eq!(node.downstream.len(), 2);
    }

    #[test]
    fn different_predicates_do_not_share() {
        let mut n = network_with_quotes();
        n.add_query(high_price_filter()).unwrap();
        n.add_query(
            LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(50.0)))),
        )
        .unwrap();
        assert_eq!(n.num_nodes(), 2);
        assert_eq!(n.max_degree_of_sharing(), 1);
    }

    #[test]
    fn subplan_sharing_with_distinct_tops() {
        // Both queries share the select; each has its own aggregate.
        let mut n = network_with_quotes();
        let base = high_price_filter();
        n.add_query(base.clone().aggregate(Some(0), AggFunc::Count, 0, 1000))
            .unwrap();
        n.add_query(base.aggregate(Some(0), AggFunc::Avg, 1, 1000))
            .unwrap();
        assert_eq!(n.num_nodes(), 3, "filter + 2 aggregates");
        assert_eq!(n.max_degree_of_sharing(), 2); // the shared filter
    }

    #[test]
    fn remove_query_keeps_shared_nodes() {
        let mut n = network_with_quotes();
        let q1 = n.add_query(high_price_filter()).unwrap();
        let q2 = n.add_query(high_price_filter()).unwrap();
        n.remove_query(q1);
        assert_eq!(n.num_nodes(), 1, "q2 still needs the filter");
        n.remove_query(q2);
        assert_eq!(n.num_nodes(), 0, "orphaned node collected");
        assert!(n.stream_subscribers("quotes").is_empty());
    }

    #[test]
    fn remove_query_cleans_sink_edges() {
        let mut n = network_with_quotes();
        let q1 = n.add_query(high_price_filter()).unwrap();
        let q2 = n.add_query(high_price_filter()).unwrap();
        let node = n.query(q1).unwrap().nodes[0];
        n.remove_query(q2);
        let targets = &n.node(node).unwrap().downstream;
        assert_eq!(targets, &vec![Target::Sink(q1)]);
    }

    #[test]
    fn source_only_query_sinks_from_stream() {
        let mut n = network_with_quotes();
        let q = n.add_query(LogicalPlan::source("quotes")).unwrap();
        assert_eq!(n.num_nodes(), 0);
        assert_eq!(n.stream_subscribers("quotes"), &[Target::Sink(q)]);
        n.remove_query(q);
        assert!(n.stream_subscribers("quotes").is_empty());
    }

    #[test]
    fn unknown_stream_is_rejected_before_mutation() {
        let mut n = network_with_quotes();
        let err = n.add_query(LogicalPlan::source("nope")).unwrap_err();
        assert_eq!(err, PlanError::UnknownStream("nope".into()));
        assert_eq!(n.num_nodes(), 0);
        assert_eq!(n.num_queries(), 0);
    }

    #[test]
    fn remove_of_unknown_query_is_a_no_op() {
        let mut n = network_with_quotes();
        assert!(n.remove_query(CqId(7)).is_none());
        let q = n.add_query(high_price_filter()).unwrap();
        let info = n.remove_query(q).expect("registered query removes");
        assert_eq!(info.plan, high_price_filter());
        // Idempotent: the second removal finds nothing and mutates nothing.
        assert!(n.remove_query(q).is_none());
        assert_eq!(n.num_nodes(), 0);
    }

    #[test]
    fn add_query_accumulates_diagnostics_in_verify_plan() {
        let n = network_with_quotes();
        // Three independent problems; `add_query` surfaces the first as
        // its `PlanError`, `verify_plan` reports them all.
        let plan = LogicalPlan::source("quotes")
            .filter(Expr::col(9).gt(Expr::lit(Value::Int(0))))
            .aggregate(Some(1), AggFunc::Count, 0, 0);
        let report = n.verify_plan(&plan);
        assert_eq!(report.num_errors(), 3);
        let mut n = n;
        let err = n.add_query(plan).unwrap_err();
        assert_eq!(err, report.first_error().unwrap());
        assert_eq!(n.num_nodes(), 0);
    }

    #[test]
    fn edges_always_ascend() {
        // The engine relies on ascending ids being a topo order.
        let mut n = network_with_quotes();
        n.register_stream(
            "news",
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("headline", DataType::Str),
            ]),
        );
        let select_quotes = high_price_filter();
        let select_news =
            LogicalPlan::source("news").filter(Expr::col(1).eq(Expr::lit(Value::str("earnings"))));
        n.add_query(select_quotes.clone()).unwrap();
        n.add_query(select_quotes.clone().join(select_news, 0, 0, 1000))
            .unwrap();
        for id in n.node_ids() {
            for t in &n.node(id).unwrap().downstream {
                if let Target::Node(d, _) = t {
                    assert!(d.0 > id.0, "edge {id} -> {d} must ascend");
                }
            }
        }
    }

    fn stateless_chain() -> LogicalPlan {
        LogicalPlan::source("quotes")
            .filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))))
            .filter(Expr::col(0).eq(Expr::lit(Value::str("IBM"))))
            .project(vec![("price".to_string(), Expr::col(1))])
    }

    #[test]
    fn stateless_chain_fuses_into_one_node() {
        let mut n = network_with_quotes();
        let q = n.add_query(stateless_chain()).unwrap();
        assert_eq!(n.num_nodes(), 1, "three stateless ops fuse into one node");
        let id = n.query(q).unwrap().nodes[0];
        let node = n.node(id).unwrap();
        assert_eq!(node.kind, "fused");
        // The auction still sees the full chain's analytic load.
        assert_eq!(
            node.op.unit_cost(),
            2.0 * crate::ops::FilterOp::UNIT_COST + crate::ops::ProjectOp::UNIT_COST
        );
    }

    #[test]
    fn fusion_off_materializes_each_stage() {
        let mut n = network_with_quotes();
        assert!(n.fusion_enabled(), "fusion defaults to on");
        n.set_fusion_enabled(false);
        n.add_query(stateless_chain()).unwrap();
        assert_eq!(n.num_nodes(), 3, "unfused: one node per operator");
    }

    #[test]
    fn identical_fused_chains_share_one_node() {
        let mut n = network_with_quotes();
        n.add_query(stateless_chain()).unwrap();
        n.add_query(stateless_chain()).unwrap();
        assert_eq!(n.num_nodes(), 1);
        assert_eq!(n.max_degree_of_sharing(), 2);
    }

    #[test]
    fn fusion_stops_at_materialized_shared_prefix() {
        // The bare filter exists first; the chain must subscribe to it
        // rather than re-computing the shared prefix inside a fused node.
        let mut n = network_with_quotes();
        let q1 = n.add_query(high_price_filter()).unwrap();
        let chain = high_price_filter()
            .filter(Expr::col(0).eq(Expr::lit(Value::str("IBM"))))
            .project(vec![("price".to_string(), Expr::col(1))]);
        let q2 = n.add_query(chain).unwrap();
        assert_eq!(n.num_nodes(), 2, "shared filter + fused suffix");
        let shared = n.query(q1).unwrap().nodes[0];
        assert_eq!(n.node(shared).unwrap().refcount, 2, "prefix serves both");
        let suffix = *n
            .query(q2)
            .unwrap()
            .nodes
            .iter()
            .find(|id| **id != shared)
            .unwrap();
        assert_eq!(n.node(suffix).unwrap().kind, "fused");
        assert_eq!(
            n.node(shared).unwrap().downstream,
            vec![Target::Sink(q1), Target::Node(suffix, 0)]
        );
    }

    #[test]
    fn fused_chain_serves_as_prefix_for_later_queries() {
        // A query whose plan extends an already-fused chain reuses the
        // fused node, and per-CQ attribution lists both physical nodes.
        let mut n = network_with_quotes();
        n.add_query(stateless_chain()).unwrap();
        let extended = n
            .add_query(stateless_chain().aggregate(None, AggFunc::Count, 0, 1000))
            .unwrap();
        assert_eq!(n.num_nodes(), 2, "fused chain + aggregate");
        let info = n.query(extended).unwrap();
        assert_eq!(info.nodes.len(), 2, "attribution covers fused + aggregate");
        let kinds: Vec<&str> = info
            .nodes
            .iter()
            .map(|id| n.node(*id).unwrap().kind)
            .collect();
        assert!(kinds.contains(&"fused") && kinds.contains(&"aggregate"));
    }

    #[test]
    fn fusion_does_not_share_interior_prefixes_added_later() {
        // Pinned tradeoff (see module docs): a fused chain does not
        // register its interior signatures, so a *later* query equal to an
        // interior prefix gets its own node — duplicate computation, never
        // wrong results. Submitted in the opposite order the prefix is
        // shared (`fusion_stops_at_materialized_shared_prefix`).
        let mut n = network_with_quotes();
        n.add_query(stateless_chain()).unwrap();
        assert_eq!(n.num_nodes(), 1);
        let prefix = n.add_query(high_price_filter()).unwrap();
        assert_eq!(
            n.num_nodes(),
            2,
            "the interior prefix is re-materialized, not split out"
        );
        let prefix_node = n.query(prefix).unwrap().nodes[0];
        assert_eq!(n.node(prefix_node).unwrap().kind, "filter");
        assert_eq!(n.node(prefix_node).unwrap().refcount, 1);
    }

    #[test]
    fn fused_node_is_garbage_collected_with_its_query() {
        let mut n = network_with_quotes();
        let q = n.add_query(stateless_chain()).unwrap();
        assert_eq!(n.num_nodes(), 1);
        n.remove_query(q);
        assert_eq!(n.num_nodes(), 0);
        assert!(n.stream_subscribers("quotes").is_empty());
    }

    #[test]
    fn stateless_prefix_covers_chains_and_stops_at_stateful() {
        let mut n = network_with_quotes();
        // Shared filter with its own sink, a fused suffix hanging off it,
        // an aggregate on the filter, and a source-only query.
        let q_filter = n.add_query(high_price_filter()).unwrap();
        let chain = high_price_filter()
            .filter(Expr::col(0).eq(Expr::lit(Value::str("IBM"))))
            .project(vec![("price".to_string(), Expr::col(1))]);
        let q_chain = n.add_query(chain).unwrap();
        let q_agg = n
            .add_query(high_price_filter().aggregate(None, AggFunc::Count, 0, 100))
            .unwrap();
        let q_raw = n.add_query(LogicalPlan::source("quotes")).unwrap();

        let prefix = n.stateless_prefix("quotes");
        assert_eq!(prefix.nodes.len(), 2, "shared filter + fused suffix");
        assert_eq!(prefix.roots, vec![0], "only the filter reads the stream");
        assert_eq!(
            prefix.direct,
            vec![Target::Sink(q_raw)],
            "the source-only sink routes raw"
        );
        let filter = &prefix.nodes[0];
        assert_eq!(filter.internal, vec![1], "filter feeds the fused suffix");
        let agg_node = *n
            .query(q_agg)
            .unwrap()
            .nodes
            .iter()
            .find(|id| n.node(**id).unwrap().kind == "aggregate")
            .unwrap();
        assert_eq!(
            filter.exits,
            vec![Target::Sink(q_filter), Target::Node(agg_node, 0)],
            "exits keep the node's downstream order"
        );
        let fused = &prefix.nodes[1];
        assert!(fused.internal.is_empty());
        assert_eq!(fused.exits, vec![Target::Sink(q_chain)]);
    }

    #[test]
    fn stateless_prefix_is_empty_for_stateful_subscribers() {
        let mut n = network_with_quotes();
        n.register_stream(
            "news",
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("headline", DataType::Str),
            ]),
        );
        n.add_query(LogicalPlan::source("quotes").join(LogicalPlan::source("news"), 0, 0, 100))
            .unwrap();
        let prefix = n.stateless_prefix("quotes");
        assert!(prefix.nodes.is_empty(), "a join is a merge barrier");
        assert_eq!(prefix.direct.len(), 1, "the join subscribes raw");
    }

    fn keys(pairs: &[(&str, usize)]) -> HashMap<String, usize> {
        pairs.iter().map(|(s, c)| (s.to_string(), *c)).collect()
    }

    #[test]
    fn keyed_plan_extends_past_compatible_aggregates() {
        let mut n = network_with_quotes();
        let q = n
            .add_query(
                high_price_filter()
                    .aggregate(Some(0), AggFunc::Count, 0, 100)
                    .filter(Expr::col(2).gt(Expr::lit(Value::Int(1)))),
            )
            .unwrap();
        let plan = n.keyed_plan(&keys(&[("quotes", 0)]));
        assert_eq!(
            plan.nodes.len(),
            3,
            "filter, keyed aggregate, and post-aggregate filter all shard"
        );
        assert!(plan.has_stateful);
        let agg = plan
            .nodes
            .iter()
            .find(|kn| n.node(kn.id).unwrap().kind == "aggregate")
            .unwrap();
        assert!(agg.stateful);
        assert!(agg.exits.is_empty(), "the merge moved past the aggregate");
        let last = plan.nodes.last().unwrap();
        assert_eq!(
            last.exits,
            vec![Target::Sink(q)],
            "the sink is the merge point"
        );
        assert_eq!(plan.roots.len(), 1);
        assert_eq!(plan.roots[0].key, 0);
    }

    #[test]
    fn keyed_plan_stops_at_inexact_ungrouped_aggregates() {
        let mut n = network_with_quotes();
        // An ungrouped float Sum cannot combine per-worker partials
        // exactly (reassociation changes the rounding), so it must stay a
        // merge barrier.
        n.add_query(high_price_filter().aggregate(None, AggFunc::Sum, 1, 100))
            .unwrap();
        let plan = n.keyed_plan(&keys(&[("quotes", 0)]));
        assert_eq!(plan.nodes.len(), 1, "only the filter shards");
        assert!(!plan.has_stateful);
        let filter = &plan.nodes[0];
        assert_eq!(filter.exits.len(), 1, "the aggregate is an exit");
    }

    #[test]
    fn keyed_plan_admits_ungrouped_exact_aggregates_as_partials() {
        let mut n = network_with_quotes();
        // An ungrouped Count combines exactly, so it joins the plan as a
        // partial-aggregation member: rows fold into per-worker partials
        // in-shard, and the control thread's watermark pass combines
        // them. Its consumers still see a merge barrier (empty internal).
        let q = n
            .add_query(high_price_filter().aggregate(None, AggFunc::Count, 0, 100))
            .unwrap();
        let plan = n.keyed_plan(&keys(&[("quotes", 0)]));
        assert_eq!(plan.nodes.len(), 2, "filter + partial aggregate");
        assert!(plan.has_stateful);
        let agg = plan.nodes.last().unwrap();
        assert!(agg.stateful);
        assert!(agg.partial, "ungrouped exact aggregate absorbs as partials");
        assert!(agg.internal.is_empty());
        assert_eq!(agg.exits, vec![Target::Sink(q)]);
        assert!(
            !plan.nodes[0].partial,
            "stateless members are never partial"
        );
    }

    #[test]
    fn keyed_plan_includes_joins_keyed_on_both_shard_keys() {
        let mut n = network_with_quotes();
        n.register_stream(
            "news",
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("headline", DataType::Str),
            ]),
        );
        let join = high_price_filter().join(LogicalPlan::source("news"), 0, 0, 100);
        let q = n.add_query(join).unwrap();
        // Both streams keyed on the join keys: the join runs in-shard.
        let plan = n.keyed_plan(&keys(&[("quotes", 0), ("news", 0)]));
        assert_eq!(plan.nodes.len(), 2, "filter + join");
        assert!(plan.has_stateful);
        let join_node = plan.nodes.last().unwrap();
        assert!(join_node.stateful);
        assert_eq!(join_node.exits, vec![Target::Sink(q)]);
        assert_eq!(plan.roots.len(), 2, "both streams are keyed roots");
        // The news root feeds the join's port 1 directly.
        let news_root = &plan.roots[plan.root_of("news").unwrap()];
        assert_eq!(news_root.targets.len(), 1);
        assert_eq!(news_root.targets[0].1, 1, "news feeds the right port");

        // With only one stream keyed, the join is a barrier again.
        let half = n.keyed_plan(&keys(&[("quotes", 0)]));
        assert_eq!(half.nodes.len(), 1, "just the quotes filter");
        assert!(!half.has_stateful);
    }

    #[test]
    fn keyed_plan_tracks_key_position_through_projections() {
        let mut n = network_with_quotes();
        // The projection moves symbol to column 1; grouping by column 1
        // downstream is therefore keyed-compatible.
        n.add_query(
            LogicalPlan::source("quotes")
                .project(vec![
                    ("price".to_string(), Expr::col(1)),
                    ("symbol".to_string(), Expr::col(0)),
                ])
                .aggregate(Some(1), AggFunc::Count, 0, 100),
        )
        .unwrap();
        let plan = n.keyed_plan(&keys(&[("quotes", 0)]));
        assert!(
            plan.has_stateful,
            "key tracked to column 1 through the project"
        );

        // A projection that *drops* the key severs the keyed chain for a
        // *grouped* aggregate (its groups then span shards) — but an
        // exact combine lets it rejoin as a grouped *partial* member:
        // per-worker hash partials, combined behind the merge barrier.
        let mut n2 = QueryNetwork::new();
        n2.register_stream(
            "trades",
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("size", DataType::Int),
            ]),
        );
        n2.add_query(
            LogicalPlan::source("trades")
                .project(vec![("size".to_string(), Expr::col(1))])
                .aggregate(Some(0), AggFunc::Count, 0, 100),
        )
        .unwrap();
        let plan2 = n2.keyed_plan(&keys(&[("trades", 0)]));
        assert!(plan2.has_stateful, "exact grouped aggregate re-enters");
        let agg2 = plan2.nodes.last().unwrap();
        assert!(agg2.partial, "…as a grouped partial member");
        assert!(agg2.internal.is_empty());

        // An *inexact* grouped aggregate (float Avg) at a
        // shard-incompatible group key cannot combine partials exactly:
        // it keeps the merge barrier.
        let mut n2b = QueryNetwork::new();
        n2b.register_stream(
            "ticks",
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("price", DataType::Float),
                Field::new("venue", DataType::Str),
            ]),
        );
        n2b.add_query(LogicalPlan::source("ticks").aggregate(Some(2), AggFunc::Avg, 1, 100))
            .unwrap();
        let plan2b = n2b.keyed_plan(&keys(&[("ticks", 0)]));
        assert!(
            !plan2b.has_stateful,
            "inexact grouped aggregate keeps the merge barrier"
        );

        // An *ungrouped* exact aggregate doesn't need the key at all: it
        // also joins the plan as a partial member.
        let mut n3 = network_with_quotes();
        n3.add_query(
            LogicalPlan::source("quotes")
                .project(vec![("price".to_string(), Expr::col(1))])
                .aggregate(None, AggFunc::Count, 0, 100),
        )
        .unwrap();
        let plan3 = n3.keyed_plan(&keys(&[("quotes", 0)]));
        assert!(plan3.has_stateful, "partial members survive key loss");
        assert!(plan3.nodes.last().unwrap().partial);
    }

    #[test]
    fn keyed_plan_is_empty_without_shard_keys() {
        let mut n = network_with_quotes();
        n.add_query(high_price_filter().aggregate(Some(0), AggFunc::Count, 0, 100))
            .unwrap();
        let plan = n.keyed_plan(&HashMap::new());
        assert!(plan.nodes.is_empty());
        assert!(plan.roots.is_empty());
        assert!(!plan.has_stateful);
    }

    #[test]
    fn shards_knob_threads_through_the_network() {
        let mut n = QueryNetwork::new();
        assert_eq!(n.shards(), 1, "single-threaded by default");
        n.set_shards(4);
        assert_eq!(n.shards(), 4);
    }

    #[test]
    #[should_panic(expected = "different schema")]
    fn stream_schema_conflict_panics() {
        let mut n = network_with_quotes();
        n.register_stream("quotes", Schema::new(vec![Field::new("x", DataType::Int)]));
    }
}
