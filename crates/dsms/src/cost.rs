//! Operator load estimation — the bridge from the running substrate to the
//! auction model.
//!
//! §II assumes "each operator `o_j` has an associated load `c_j` … and this
//! load can at least be reasonably approximated by the system". Here the
//! approximation is measured: after replaying a calibration sample through
//! the (shadow) network, an operator's load is
//!
//! ```text
//! c_j = input_rate_j (tuples/ms) × unit_cost_j × scale
//! ```
//!
//! where `unit_cost_j` is the operator's per-tuple work and `scale`
//! converts abstract work per millisecond into the auction's capacity
//! units. Two sources feed `unit_cost_j`:
//!
//! * the operator's **analytic** unit cost (joins > aggregates > filters) —
//!   deterministic, the default, and what all experiment seeds use;
//! * the **measured** per-tuple cost — the engine times every
//!   `process_batch` call and the estimator normalizes the node's
//!   cumulative busy time by its tuple count. Batched execution is what
//!   makes this measurement usable: one clock read per *batch* (not per
//!   tuple) keeps probe overhead out of the measured quantity, so the
//!   per-tuple figure stabilizes as batches grow. Opt in with
//!   [`CostModel::measured`].

use crate::engine::DsmsEngine;
use crate::network::{CqId, NodeId};
use cqac_core::model::{AuctionInstance, InstanceBuilder, OperatorId, UserId};
use cqac_core::units::{Load, Money};
use std::collections::HashMap;

/// How a node's per-tuple unit cost is obtained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum UnitCostSource {
    /// The operator's analytic unit cost (deterministic; the default).
    #[default]
    Analytic,
    /// The measured per-batch timings, normalized to microseconds per
    /// tuple. Falls back to the analytic cost for nodes the calibration
    /// sample never reached.
    Measured,
}

/// Conversion parameters from measured work to auction capacity units.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Capacity units per (tuple/ms × unit-cost). Default 1.0.
    pub scale: f64,
    /// Load charged to a query that sinks a raw stream without any operator
    /// (delivery cost per tuple/ms).
    pub delivery_unit_cost: f64,
    /// Minimum load assigned to any operator (avoids zero-load operators
    /// when the calibration sample misses a path).
    pub min_load: Load,
    /// Where per-tuple unit costs come from.
    pub unit_cost_source: UnitCostSource,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            scale: 1.0,
            delivery_unit_cost: 0.2,
            min_load: Load::from_micro(1_000), // 0.001 capacity units
            unit_cost_source: UnitCostSource::Analytic,
        }
    }
}

impl CostModel {
    /// A model whose unit costs come from the engine's per-batch timing
    /// measurements (µs per tuple) instead of the analytic constants.
    pub fn measured() -> Self {
        Self {
            unit_cost_source: UnitCostSource::Measured,
            ..Self::default()
        }
    }
}

/// One node's estimated load with its provenance.
#[derive(Clone, Debug)]
pub struct NodeLoadEstimate {
    /// The node.
    pub node: NodeId,
    /// Operator kind label.
    pub kind: &'static str,
    /// Measured input rate in tuples per millisecond.
    pub input_rate: f64,
    /// The per-tuple unit cost that entered the load formula (analytic or
    /// measured, per [`CostModel::unit_cost_source`]).
    pub unit_cost: f64,
    /// Mean batch size the node saw during calibration (0 when idle).
    pub mean_batch: f64,
    /// Measured per-tuple processing time in microseconds, when the node
    /// processed at least one tuple.
    pub measured_us_per_tuple: Option<f64>,
    /// The resulting auction load `c_j`.
    pub load: Load,
}

/// The aggregate capacity an admission auction should price against when
/// the engine runs `shards` worker shards: `shards × per-core capacity`.
///
/// This is the capacity-side half of per-shard load aggregation: on the
/// load side, a sharded engine's per-node statistics (`in_count`, `busy`)
/// already sum over every worker shard — `CostModel::measured` therefore
/// observes the *total* multi-core work of an operator, and the auction
/// must compare that total against the total capacity of all cores, not
/// one core's.
///
/// **Keyed stateful sharding** makes this honest for stateful-heavy
/// workloads too: when a stream carries a shard key, every join keyed on
/// it and every aggregate grouping by it executes *inside* the worker
/// shards with per-shard state (see
/// [`crate::network::QueryNetwork::keyed_plan`]), so their measured loads
/// — which aggregate across shards exactly like stateless loads — really
/// are served by `shards` cores, and the auction admits more stateful
/// bidders at higher shard counts (pinned by the center's
/// `sharded_center_admits_more_keyed_stateful_bidders` test).
///
/// **Residual approximation (Amdahl):** shard-*incompatible* operators
/// (unions, joins/aggregates not keyed by the partition key), the
/// deterministic merge, and sink delivery still run on the control
/// thread; a workload dominated by those can be admitted up to `shards ×`
/// what the control thread alone can serve. The serial fraction has been
/// shrinking release over release — keyed stateful sharding moved
/// compatible joins/aggregates onto the workers, partial aggregation
/// moved exact *ungrouped* aggregates there too (only the per-window
/// partial-combine fold stays on the control thread), and morsel-level
/// work stealing keeps the workers busy under key skew that would
/// otherwise serialize on the hot shard — but pricing the remaining
/// residue against per-core capacity is still a ROADMAP follow-on.
pub fn effective_capacity(per_core: Load, shards: usize) -> Load {
    assert!(shards > 0, "shard count must be positive");
    Load::from_units(per_core.as_f64() * shards as f64)
}

/// Measures every live node's load from the engine's accumulated statistics.
///
/// With a sharded engine the statistics aggregate across worker shards
/// (each shard's rows and busy time fold into the same per-node totals),
/// so estimated loads are the query's full multi-core load — price them
/// against [`effective_capacity`].
///
/// The observation window is the event-time span of all pushed streams; an
/// engine that has seen no tuples yields `min_load` for every node.
pub fn estimate_node_loads(engine: &DsmsEngine, model: &CostModel) -> Vec<NodeLoadEstimate> {
    let duration_ms = observation_span_ms(engine).max(1);
    engine
        .network()
        .node_ids()
        .into_iter()
        .map(|id| {
            let node = engine.network().node(id).expect("live node");
            let input_rate = node.in_count as f64 / duration_ms as f64;
            let mean_batch = if node.in_batches == 0 {
                0.0
            } else {
                node.in_count as f64 / node.in_batches as f64
            };
            let measured_us_per_tuple =
                (node.in_count > 0).then(|| node.busy.as_secs_f64() * 1e6 / node.in_count as f64);
            let unit_cost = match model.unit_cost_source {
                UnitCostSource::Analytic => node.op.unit_cost(),
                UnitCostSource::Measured => {
                    measured_us_per_tuple.unwrap_or_else(|| node.op.unit_cost())
                }
            };
            let raw = Load::from_units(input_rate * unit_cost * model.scale);
            let load = raw.max(model.min_load);
            NodeLoadEstimate {
                node: id,
                kind: node.kind,
                input_rate,
                unit_cost,
                mean_batch,
                measured_us_per_tuple,
                load,
            }
        })
        .collect()
}

fn observation_span_ms(engine: &DsmsEngine) -> u64 {
    engine
        .stream_stats()
        .values()
        .map(|s| s.max_ts.saturating_sub(s.min_ts) + 1)
        .max()
        .unwrap_or(0)
}

/// The auction instance built from a calibrated engine: one auction
/// operator per live network node (plus one synthetic *delivery* operator
/// per node-less, source-only query), and one auction query per network
/// query with the caller-provided user and bid.
///
/// Returns the instance together with the instance-index → [`CqId`]
/// mapping.
pub fn auction_instance(
    engine: &DsmsEngine,
    bids: &[(CqId, UserId, Money)],
    capacity: Load,
    model: &CostModel,
) -> (AuctionInstance, Vec<CqId>) {
    let estimates = estimate_node_loads(engine, model);
    let mut builder = InstanceBuilder::new(capacity);
    let mut op_of_node: HashMap<NodeId, OperatorId> = HashMap::new();
    for est in &estimates {
        let op = builder.operator(est.load);
        op_of_node.insert(est.node, op);
    }

    let duration_ms = observation_span_ms(engine).max(1);
    let mut mapping = Vec::with_capacity(bids.len());
    for (cq, user, bid) in bids {
        let info = engine
            .network()
            .query(*cq)
            .unwrap_or_else(|| panic!("bid for unregistered query {cq}"));
        let mut ops: Vec<OperatorId> = info.nodes.iter().map(|n| op_of_node[n]).collect();
        if ops.is_empty() {
            // Source-only query: charge a private delivery operator sized by
            // the stream's measured rate.
            let rate: f64 = info
                .plan
                .input_streams()
                .iter()
                .filter_map(|s| engine.stream_stats().get(s))
                .map(|s| s.count as f64 / duration_ms as f64)
                .sum();
            let load =
                Load::from_units(rate * model.delivery_unit_cost * model.scale).max(model.min_load);
            ops.push(builder.operator(load));
        }
        builder.query_for_user(*user, *bid, &ops);
        mapping.push(*cq);
    }
    let inst = builder.build().expect("engine-derived instance is valid");
    (inst, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::LogicalPlan;
    use crate::types::{DataType, Field, Schema, Tuple, Value};
    use cqac_core::model::QueryId;

    fn quote(ts: u64, sym: &str, price: f64) -> Tuple {
        Tuple::new(ts, vec![Value::str(sym), Value::Float(price)])
    }

    fn calibrated_engine() -> (DsmsEngine, CqId, CqId) {
        let mut e = DsmsEngine::new();
        e.register_stream(
            "quotes",
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("price", DataType::Float),
            ]),
        );
        let shared =
            LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))));
        let q1 = e.add_query(shared.clone()).unwrap();
        let q2 = e
            .add_query(shared.filter(Expr::col(0).eq(Expr::lit(Value::str("IBM")))))
            .unwrap();
        // 100 tuples over 100 ms → 1 tuple/ms into the shared filter.
        e.push_batch((0..100).map(|i| {
            (
                "quotes".to_string(),
                quote(
                    i,
                    if i % 2 == 0 { "IBM" } else { "AAPL" },
                    90.0 + (i % 20) as f64,
                ),
            )
        }));
        (e, q1, q2)
    }

    #[test]
    fn loads_scale_with_rate_and_unit_cost() {
        let (e, _, _) = calibrated_engine();
        let model = CostModel::default();
        let estimates = estimate_node_loads(&e, &model);
        assert_eq!(estimates.len(), 2);
        let filter1 = &estimates[0]; // upstream shared filter
        let filter2 = &estimates[1]; // downstream IBM filter
        assert!(filter1.input_rate > filter2.input_rate);
        assert!(filter1.load > filter2.load);
        // 100 tuples over span 100ms → rate 1.0; unit cost 1.0 → load 1.0.
        assert!((filter1.input_rate - 1.0).abs() < 0.02);
        assert_eq!(filter1.load, Load::from_units(filter1.input_rate * 1.0));
    }

    #[test]
    fn auction_instance_reflects_sharing() {
        let (e, q1, q2) = calibrated_engine();
        let bids = vec![
            (q1, UserId(0), Money::from_dollars(10.0)),
            (q2, UserId(1), Money::from_dollars(20.0)),
        ];
        let (inst, mapping) =
            auction_instance(&e, &bids, Load::from_units(100.0), &CostModel::default());
        assert_eq!(mapping, vec![q1, q2]);
        assert_eq!(inst.num_queries(), 2);
        assert_eq!(inst.num_operators(), 2);
        // The shared filter has sharing degree 2.
        assert_eq!(inst.max_degree_of_sharing(), 2);
        // q2's total load strictly exceeds q1's (superset of operators).
        assert!(inst.total_load(QueryId(1)) > inst.total_load(QueryId(0)));
    }

    #[test]
    fn source_only_query_gets_delivery_operator() {
        let mut e = DsmsEngine::new();
        e.register_stream(
            "quotes",
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("price", DataType::Float),
            ]),
        );
        let cq = e.add_query(LogicalPlan::source("quotes")).unwrap();
        e.push_batch((0..50).map(|i| ("quotes".to_string(), quote(i, "A", 1.0))));
        let (inst, _) = auction_instance(
            &e,
            &[(cq, UserId(0), Money::from_dollars(5.0))],
            Load::from_units(10.0),
            &CostModel::default(),
        );
        assert_eq!(inst.num_operators(), 1);
        assert!(inst.total_load(QueryId(0)) > Load::ZERO);
    }

    #[test]
    fn measured_costs_come_from_batch_timings() {
        let (e, _, _) = calibrated_engine();
        let estimates = estimate_node_loads(&e, &CostModel::measured());
        for est in &estimates {
            let measured = est
                .measured_us_per_tuple
                .expect("calibrated nodes have timings");
            assert!(measured > 0.0);
            assert_eq!(est.unit_cost, measured, "measured mode uses the timing");
            assert!(est.mean_batch >= 1.0, "batched ingestion amortizes timing");
            assert!(est.load >= CostModel::default().min_load);
        }
    }

    /// Runs `chain` through a fused and an unfused engine over the same
    /// feed and returns the two total analytic loads.
    fn total_loads(
        chain: &LogicalPlan,
        feed: &[Tuple],
        expected_unfused_nodes: usize,
    ) -> (f64, f64) {
        let schema = || {
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("price", DataType::Float),
            ])
        };
        let mut fused = DsmsEngine::new();
        fused.register_stream("quotes", schema());
        let mut unfused = DsmsEngine::new().with_fusion(false);
        unfused.register_stream("quotes", schema());
        fused.add_query(chain.clone()).unwrap();
        unfused.add_query(chain.clone()).unwrap();
        fused.push_rows("quotes", feed.to_vec());
        unfused.push_rows("quotes", feed.to_vec());

        let model = CostModel::default();
        let fused_est = estimate_node_loads(&fused, &model);
        let unfused_est = estimate_node_loads(&unfused, &model);
        assert_eq!(fused_est.len(), 1);
        assert_eq!(unfused_est.len(), expected_unfused_nodes);
        (
            fused_est.iter().map(|e| e.load.as_f64()).sum(),
            unfused_est.iter().map(|e| e.load.as_f64()).sum(),
        )
    }

    #[test]
    fn fused_chain_charges_the_summed_analytic_load() {
        // Selectivity-1 chain: every stage of the unfused network sees the
        // full input rate, so the fused node's effective cost degenerates
        // to the plain sum and the totals match exactly.
        let chain = LogicalPlan::source("quotes")
            .filter(Expr::col(1).gt(Expr::lit(Value::Float(0.0))))
            .filter(Expr::col(1).gt(Expr::lit(Value::Float(-1.0))))
            .project(vec![("price".to_string(), Expr::col(1))]);
        let feed: Vec<Tuple> = (0..200).map(|i| quote(i, "IBM", 50.0)).collect();
        let (fused_total, unfused_total) = total_loads(&chain, &feed, 3);
        assert!(
            (fused_total - unfused_total).abs() < 1e-3,
            "fused {fused_total} vs unfused {unfused_total}"
        );
    }

    #[test]
    fn fused_chain_load_tracks_intra_chain_selectivity() {
        // Half the rows pass the filter, so the unfused project node sees
        // half the rate. The fused node's selectivity-aware effective cost
        // must reproduce that — not charge every input row the full chain
        // sum (which would inflate admission prices ~1.6× here and change
        // auction outcomes).
        let chain = LogicalPlan::source("quotes")
            .filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))))
            .project(vec![("price".to_string(), Expr::col(1))]);
        let feed: Vec<Tuple> = (0..200)
            .map(|i| quote(i, "IBM", if i % 2 == 0 { 50.0 } else { 150.0 }))
            .collect();
        let (fused_total, unfused_total) = total_loads(&chain, &feed, 2);
        assert!(
            (fused_total - unfused_total).abs() < 1e-3,
            "fused {fused_total} vs unfused {unfused_total}"
        );
        // And it is strictly below the naive full-sum charge.
        let naive = 200.0 / 200.0 * (1.0 + 1.2);
        assert!(fused_total < naive - 0.5);
    }

    #[test]
    fn measured_cost_path_covers_fused_nodes() {
        let chain = LogicalPlan::source("quotes")
            .filter(Expr::col(1).gt(Expr::lit(Value::Float(0.0))))
            .project(vec![("price".to_string(), Expr::col(1))]);
        let mut e = DsmsEngine::new();
        e.register_stream(
            "quotes",
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("price", DataType::Float),
            ]),
        );
        e.add_query(chain).unwrap();
        e.push_rows("quotes", (0..200).map(|i| quote(i, "IBM", 50.0)).collect());
        let measured = estimate_node_loads(&e, &CostModel::measured());
        assert_eq!(measured.len(), 1);
        assert!(measured[0].measured_us_per_tuple.is_some());
    }

    #[test]
    fn effective_capacity_scales_with_shards() {
        let per_core = Load::from_units(1.5);
        assert_eq!(effective_capacity(per_core, 1), per_core);
        assert_eq!(effective_capacity(per_core, 4), Load::from_units(6.0));
    }

    #[test]
    fn sharded_engine_measures_the_same_aggregate_load() {
        // The same feed through a 1-shard and a 4-shard engine must yield
        // identical analytic load estimates: per-shard input counts fold
        // into the same per-node totals.
        let schema = || {
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("price", DataType::Float),
            ])
        };
        let plan =
            LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))));
        let feed: Vec<Tuple> = (0..200)
            .map(|i| {
                quote(
                    i,
                    if i % 2 == 0 { "IBM" } else { "AAPL" },
                    90.0 + (i % 20) as f64,
                )
            })
            .collect();
        let mut single = DsmsEngine::new().with_max_batch_size(16);
        single.register_stream("quotes", schema());
        single.add_query(plan.clone()).unwrap();
        single.push_rows("quotes", feed.clone());
        let mut sharded = DsmsEngine::new().with_max_batch_size(16).with_shards(4);
        sharded.register_stream("quotes", schema());
        sharded.set_shard_key("quotes", 0).unwrap();
        sharded.add_query(plan).unwrap();
        sharded.push_rows("quotes", feed);

        let model = CostModel::default();
        let single_est = estimate_node_loads(&single, &model);
        let sharded_est = estimate_node_loads(&sharded, &model);
        assert_eq!(single_est.len(), sharded_est.len());
        for (a, b) in single_est.iter().zip(&sharded_est) {
            assert_eq!(a.load, b.load, "aggregate load is shard-count invariant");
            assert!((a.input_rate - b.input_rate).abs() < 1e-9);
        }
        // Measured mode still has timings for every calibrated node.
        for est in estimate_node_loads(&sharded, &CostModel::measured()) {
            assert!(est.measured_us_per_tuple.is_some());
        }
    }

    #[test]
    fn keyed_stateful_loads_are_shard_count_invariant() {
        // A grouped aggregate keyed by the shard key runs *inside* the
        // shards (merge barrier moved past it); its per-shard input counts
        // must still fold into the same aggregate load a single-threaded
        // engine estimates — that invariance is what makes pricing keyed
        // stateful nodes against `effective_capacity` honest.
        use crate::plan::AggFunc;
        let schema = || {
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("price", DataType::Float),
            ])
        };
        let plan = LogicalPlan::source("quotes")
            .filter(Expr::col(1).gt(Expr::lit(Value::Float(50.0))))
            .aggregate(Some(0), AggFunc::Count, 0, 40);
        let feed: Vec<Tuple> = (0..300)
            .map(|i| {
                quote(
                    i,
                    if i % 2 == 0 { "IBM" } else { "AAPL" },
                    40.0 + (i % 40) as f64,
                )
            })
            .collect();
        let run = |shards: usize| {
            let mut e = DsmsEngine::new()
                .with_max_batch_size(16)
                .with_shards(shards);
            e.register_stream("quotes", schema());
            if shards > 1 {
                e.set_shard_key("quotes", 0).unwrap();
            }
            e.add_query(plan.clone()).unwrap();
            e.push_rows("quotes", feed.clone());
            estimate_node_loads(&e, &CostModel::default())
        };
        let single = run(1);
        let sharded = run(4);
        assert_eq!(single.len(), sharded.len());
        for (a, b) in single.iter().zip(&sharded) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(
                a.load, b.load,
                "keyed stateful load is shard-count invariant"
            );
        }
        assert!(sharded.iter().any(|e| e.kind == "aggregate"));
    }

    #[test]
    fn empty_engine_yields_min_loads() {
        let mut e = DsmsEngine::new();
        e.register_stream(
            "quotes",
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("price", DataType::Float),
            ]),
        );
        let _cq = e
            .add_query(
                LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(1.0)))),
            )
            .unwrap();
        let model = CostModel::default();
        let estimates = estimate_node_loads(&e, &model);
        assert_eq!(estimates[0].load, model.min_load);
    }
}
