//! Deterministic fault injection for the robustness layer.
//!
//! A [`FaultPlan`] is a test/bench-visible knob handed to the engine
//! ([`crate::engine::DsmsEngine::set_fault_plan`]) that makes failures
//! *reproducible*: it can panic the Nth kernel invocation of a chosen
//! operator kind, poison every kernel invocation whose input batch carries
//! a chosen event timestamp, and kill a pool worker thread outright when it
//! is woken for a chosen job. The engine's quarantine machinery
//! (`engine.rs`) is what recovers; this module only *triggers*.
//!
//! Triggers are counted with atomics so the plan can be `Arc`-shared
//! between the control thread and the pool workers, and every trigger
//! fires **exactly once** (fetch-and-swap claims), which keeps soak tests
//! deterministic: a 100-seed soak derives `(kind, nth)` pairs from the
//! seed via [`FaultPlan::seeded`] and replays bit-identically.

use crate::ops::OPERATOR_KINDS;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The panic payload of an injected **worker death** — recognized by the
/// worker pool, which lets the thread exit (instead of treating the panic
/// as a kernel fault) and respawns a replacement on the next parallel
/// flush (counted by [`crate::types::work::WorkSnapshot::pool_spawns`]).
#[derive(Clone, Copy, Debug)]
pub struct WorkerDeath;

/// The message prefix of every injected kernel panic, so reports (and
/// tests) can tell injected faults from genuine operator bugs.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault";

/// A deterministic, `Sync` fault schedule (see module docs).
///
/// All triggers are optional and independent; a plan with none set is
/// inert. Invocation counting is per *operator kind*, shared across every
/// node of that kind and across the control thread and all workers —
/// which keeps the Nth-invocation trigger meaningful under any shard
/// count, because the quarantine contract is asserted on *outputs*, not
/// on which thread happened to hit the trigger.
#[derive(Debug)]
pub struct FaultPlan {
    /// Per-kind invocation counters, indexed like [`OPERATOR_KINDS`].
    counters: [AtomicU64; 6],
    /// `panic_at[kind] == Some(n)` panics the `n`-th (1-based) kernel
    /// invocation of that kind.
    panic_at: [Option<u64>; 6],
    /// One-shot claims for the count-based panics.
    fired: [AtomicBool; 6],
    /// Any kernel invocation whose input batch carries this event
    /// timestamp panics (a poison row: content-triggered, so the fault
    /// site is independent of shard count and morsel scheduling).
    poison_ts: Option<u64>,
    /// Kill worker `w` when it is woken for its `n`-th (1-based) job.
    kill_worker: Option<(usize, u64)>,
    /// Per-worker job counters for the kill trigger (up to 64 workers;
    /// larger pools never trigger beyond this, which is fine for a test
    /// harness).
    jobs: [AtomicU64; 64],
    kill_fired: AtomicBool,
}

fn kind_index(kind: &str) -> Option<usize> {
    OPERATOR_KINDS.iter().position(|k| *k == kind)
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            counters: Default::default(),
            panic_at: [None; 6],
            fired: Default::default(),
            poison_ts: None,
            kill_worker: None,
            jobs: std::array::from_fn(|_| AtomicU64::new(0)),
            kill_fired: AtomicBool::new(false),
        }
    }
}

impl FaultPlan {
    /// An inert plan (no triggers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Panics the `nth` (1-based) kernel invocation of operator `kind`
    /// (builder form).
    ///
    /// # Panics
    /// Panics when `kind` is not one of [`OPERATOR_KINDS`] or `nth == 0`.
    #[must_use]
    pub fn panic_on(mut self, kind: &str, nth: u64) -> Self {
        let idx = kind_index(kind)
            .unwrap_or_else(|| panic!("unknown operator kind '{kind}' (see OPERATOR_KINDS)"));
        assert!(nth > 0, "invocation counts are 1-based");
        self.panic_at[idx] = Some(nth);
        self
    }

    /// Panics every kernel invocation whose input batch carries event
    /// timestamp `ts` (builder form). Content-triggered, so the fault
    /// fires at the same logical point regardless of shard count.
    #[must_use]
    pub fn with_poison_ts(mut self, ts: u64) -> Self {
        self.poison_ts = Some(ts);
        self
    }

    /// Kills pool worker `worker` when it is woken for its `nth` (1-based)
    /// job (builder form). The thread exits; the pool respawns a
    /// replacement on the next parallel flush.
    ///
    /// # Panics
    /// Panics when `nth == 0`.
    #[must_use]
    pub fn with_worker_death(mut self, worker: usize, nth: u64) -> Self {
        assert!(nth > 0, "job counts are 1-based");
        self.kill_worker = Some((worker, nth));
        self
    }

    /// A seed-derived single-panic plan: picks one operator kind and one
    /// invocation number (1..=`max_nth`) from `seed` via a splitmix64
    /// step, so a seed sweep covers every kind and a spread of fault
    /// depths deterministically.
    #[must_use]
    pub fn seeded(seed: u64, max_nth: u64) -> Self {
        let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let kind = OPERATOR_KINDS[(next() % OPERATOR_KINDS.len() as u64) as usize];
        let nth = 1 + next() % max_nth.max(1);
        Self::new().panic_on(kind, nth)
    }

    /// The configured poison timestamp, if any.
    pub fn poison_ts(&self) -> Option<u64> {
        self.poison_ts
    }

    /// The kernel-invocation hook: counts one invocation of `kind` over a
    /// batch with timestamps `ts`, and panics when a trigger fires. Called
    /// by the engine immediately before every operator kernel call; the
    /// engine's per-invocation `catch_unwind` net turns the panic into a
    /// quarantine of the owning queries.
    ///
    /// # Panics
    /// Panics when a count-based or poison trigger fires — that is the
    /// injection.
    pub fn before_kernel(&self, kind: &str, ts: &[u64]) {
        if let Some(poison) = self.poison_ts {
            if ts.contains(&poison) {
                panic!("{INJECTED_PANIC_PREFIX}: poison row (ts {poison}) entering {kind} kernel");
            }
        }
        let Some(idx) = kind_index(kind) else {
            return;
        };
        let count = self.counters[idx].fetch_add(1, Ordering::AcqRel) + 1;
        if self.panic_at[idx] == Some(count) && !self.fired[idx].swap(true, Ordering::AcqRel) {
            panic!("{INJECTED_PANIC_PREFIX}: {kind} kernel invocation #{count}");
        }
    }

    /// The worker-wakeup hook: counts one job for `worker` and reports
    /// whether the worker should die *now* (one-shot). Called by the
    /// engine at the start of each pooled job, before any morsel runs, so
    /// an injected death never leaves a morsel half-executed — its whole
    /// deque is recovered on the control thread.
    pub fn claims_worker_death(&self, worker: usize) -> bool {
        let Some((w, nth)) = self.kill_worker else {
            return false;
        };
        if w != worker || w >= self.jobs.len() {
            return false;
        }
        let count = self.jobs[w].fetch_add(1, Ordering::AcqRel) + 1;
        count == nth && !self.kill_fired.swap(true, Ordering::AcqRel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_invocation_trigger_fires_exactly_once() {
        let plan = FaultPlan::new().panic_on("filter", 3);
        plan.before_kernel("filter", &[1]);
        plan.before_kernel("filter", &[2]);
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.before_kernel("filter", &[3]);
        }));
        assert!(hit.is_err(), "third invocation must panic");
        // One-shot: the counter keeps advancing, the trigger does not.
        plan.before_kernel("filter", &[4]);
        // Other kinds are independent.
        plan.before_kernel("aggregate", &[5]);
    }

    #[test]
    fn poison_row_triggers_on_content() {
        let plan = FaultPlan::new().with_poison_ts(42);
        plan.before_kernel("join", &[1, 2, 3]);
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.before_kernel("join", &[41, 42]);
        }));
        assert!(hit.is_err(), "poison ts must panic");
    }

    #[test]
    fn worker_death_claims_once_for_the_right_worker() {
        let plan = FaultPlan::new().with_worker_death(1, 2);
        assert!(!plan.claims_worker_death(0));
        assert!(!plan.claims_worker_death(1), "first job survives");
        assert!(plan.claims_worker_death(1), "second job dies");
        assert!(!plan.claims_worker_death(1), "one-shot");
    }

    #[test]
    fn seeded_plans_are_deterministic_and_cover_kinds() {
        let mut kinds = std::collections::HashSet::new();
        for seed in 0..64u64 {
            let a = FaultPlan::seeded(seed, 10);
            let b = FaultPlan::seeded(seed, 10);
            assert_eq!(a.panic_at, b.panic_at, "seed {seed} must replay");
            kinds.insert(a.panic_at.iter().position(Option::is_some).unwrap());
        }
        assert_eq!(
            kinds.len(),
            OPERATOR_KINDS.len(),
            "seed sweep covers all kinds"
        );
    }
}
