//! Logical continuous-query plans and their sharing signatures.
//!
//! A [`LogicalPlan`] is the unit users submit. Plans are *data*; every node
//! has a canonical [`LogicalPlan::signature`] derived from its structure and
//! its inputs' signatures, and the query network instantiates **one physical
//! operator per distinct signature** — Aurora-style shared operator
//! processing, the mechanism-design crux of the paper ("many CQs are
//! monitoring a few hot streams, and many of the CQs are similar").

use crate::expr::Expr;
use crate::types::{DataType, Field, Schema};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Supported aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// Number of tuples in the window.
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Mean of a numeric column.
    Avg,
    /// Minimum of a numeric column.
    Min,
    /// Maximum of a numeric column.
    Max,
}

impl AggFunc {
    /// The result type given the aggregated column's type.
    pub fn result_type(self, input: DataType) -> DataType {
        match self {
            AggFunc::Count => DataType::Int,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => input,
            AggFunc::Avg => DataType::Float,
        }
    }

    /// Stable name used in signatures and output column names.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// A logical continuous query plan.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LogicalPlan {
    /// Tuples of a named input stream.
    Source {
        /// The registered stream name.
        stream: String,
    },
    /// Tuples satisfying a predicate.
    Filter {
        /// Upstream plan.
        input: Box<LogicalPlan>,
        /// Boolean predicate over the input schema.
        predicate: Expr,
    },
    /// Computed columns.
    Project {
        /// Upstream plan.
        input: Box<LogicalPlan>,
        /// Output columns: name and defining expression.
        columns: Vec<(String, Expr)>,
    },
    /// Windowed symmetric equi-join: matches left/right tuples whose key
    /// columns are equal and whose event times differ by at most
    /// `window_ms`.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Key column index on the left schema.
        left_key: usize,
        /// Key column index on the right schema.
        right_key: usize,
        /// Join window in milliseconds.
        window_ms: u64,
    },
    /// Windowed aggregate, optionally grouped by one column. With
    /// `slide_ms == window_ms` the windows tumble; with `slide_ms <
    /// window_ms` they slide (each tuple contributes to
    /// `⌈window/slide⌉` overlapping windows).
    Aggregate {
        /// Upstream plan.
        input: Box<LogicalPlan>,
        /// Optional group-by column index.
        group_by: Option<usize>,
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated column index (ignored for `Count`).
        column: usize,
        /// Window width in milliseconds.
        window_ms: u64,
        /// Window slide in milliseconds (must divide into sensible window
        /// starts; equals `window_ms` for tumbling windows).
        slide_ms: u64,
    },
    /// Union of two inputs with identical schemas.
    Union {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
}

/// Plan validation errors.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// A referenced stream is not registered.
    UnknownStream(String),
    /// An expression failed to type check.
    Expr(String),
    /// A column index is out of range.
    ColumnOutOfRange {
        /// Where the reference occurred.
        context: &'static str,
        /// The offending index.
        index: usize,
    },
    /// Join keys must be hashable types (Int, Str, or Bool — not Float).
    UnhashableJoinKey(DataType),
    /// Union inputs must have identical schemas.
    UnionSchemaMismatch,
    /// Aggregate window width must be positive.
    ZeroWindow,
    /// A shard-key column index is out of range for its stream's schema.
    ShardKeyOutOfRange {
        /// The stream the key was configured for.
        stream: String,
        /// The offending column index.
        column: usize,
    },
    /// Shard keys must be hashable types (Int, Str, or Bool — not Float),
    /// exactly like join and group keys.
    UnhashableShardKey {
        /// The stream the key was configured for.
        stream: String,
        /// The offending column index.
        column: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownStream(s) => write!(f, "unknown stream '{s}'"),
            PlanError::Expr(e) => write!(f, "expression error: {e}"),
            PlanError::ColumnOutOfRange { context, index } => {
                write!(f, "column {index} out of range in {context}")
            }
            PlanError::UnhashableJoinKey(t) => write!(f, "join key type {t:?} is not hashable"),
            PlanError::UnionSchemaMismatch => write!(f, "union inputs have different schemas"),
            PlanError::ZeroWindow => write!(f, "window width must be positive"),
            PlanError::ShardKeyOutOfRange { stream, column } => {
                write!(
                    f,
                    "shard key column {column} out of range for stream '{stream}'"
                )
            }
            PlanError::UnhashableShardKey { stream, column } => {
                write!(
                    f,
                    "float column {column} of stream '{stream}' is not a hashable shard key"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Resolves stream names to schemas during plan validation.
pub trait StreamCatalog {
    /// The schema of stream `name`, if registered.
    fn stream_schema(&self, name: &str) -> Option<&Schema>;
}

impl LogicalPlan {
    /// Convenience constructor: `Source`.
    pub fn source(stream: impl Into<String>) -> Self {
        LogicalPlan::Source {
            stream: stream.into(),
        }
    }

    /// Convenience constructor: `Filter` on `self`.
    pub fn filter(self, predicate: Expr) -> Self {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Convenience constructor: `Project` on `self`.
    pub fn project(self, columns: Vec<(String, Expr)>) -> Self {
        LogicalPlan::Project {
            input: Box::new(self),
            columns,
        }
    }

    /// Convenience constructor: windowed equi-join of `self` with `right`.
    pub fn join(
        self,
        right: LogicalPlan,
        left_key: usize,
        right_key: usize,
        window_ms: u64,
    ) -> Self {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_key,
            right_key,
            window_ms,
        }
    }

    /// Convenience constructor: tumbling aggregate on `self`.
    pub fn aggregate(
        self,
        group_by: Option<usize>,
        func: AggFunc,
        column: usize,
        window_ms: u64,
    ) -> Self {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by,
            func,
            column,
            window_ms,
            slide_ms: window_ms,
        }
    }

    /// Convenience constructor: sliding-window aggregate on `self` (window
    /// `window_ms`, advancing every `slide_ms`).
    pub fn sliding_aggregate(
        self,
        group_by: Option<usize>,
        func: AggFunc,
        column: usize,
        window_ms: u64,
        slide_ms: u64,
    ) -> Self {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by,
            func,
            column,
            window_ms,
            slide_ms,
        }
    }

    /// Convenience constructor: union of `self` with `right`.
    pub fn union(self, right: LogicalPlan) -> Self {
        LogicalPlan::Union {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// The canonical structural signature: two plans share physical
    /// operators exactly when their signatures match. The signature covers
    /// the operator kind, its parameters, and (recursively) its inputs.
    pub fn signature(&self) -> String {
        let mut s = String::new();
        self.write_signature(&mut s);
        s
    }

    fn write_signature(&self, out: &mut String) {
        match self {
            LogicalPlan::Source { stream } => {
                let _ = write!(out, "src({stream})");
            }
            LogicalPlan::Filter { input, predicate } => {
                let _ = write!(out, "filter({predicate:?})<-");
                input.write_signature(out);
            }
            LogicalPlan::Project { input, columns } => {
                let _ = write!(out, "project({columns:?})<-");
                input.write_signature(out);
            }
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
                window_ms,
            } => {
                let _ = write!(out, "join(k{left_key},k{right_key},w{window_ms})<-[");
                left.write_signature(out);
                out.push(';');
                right.write_signature(out);
                out.push(']');
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                func,
                column,
                window_ms,
                slide_ms,
            } => {
                let _ = write!(
                    out,
                    "agg({},g{group_by:?},c{column},w{window_ms},s{slide_ms})<-",
                    func.name()
                );
                input.write_signature(out);
            }
            LogicalPlan::Union { left, right } => {
                out.push_str("union<-[");
                left.write_signature(out);
                out.push(';');
                right.write_signature(out);
                out.push(']');
            }
        }
    }

    /// Type checks the plan against a catalog and computes its output
    /// schema.
    pub fn output_schema(&self, catalog: &dyn StreamCatalog) -> Result<Schema, PlanError> {
        match self {
            LogicalPlan::Source { stream } => catalog
                .stream_schema(stream)
                .cloned()
                .ok_or_else(|| PlanError::UnknownStream(stream.clone())),
            LogicalPlan::Filter { input, predicate } => {
                let schema = input.output_schema(catalog)?;
                let t = predicate
                    .infer_type(&schema)
                    .map_err(|e| PlanError::Expr(e.to_string()))?;
                if t != DataType::Bool {
                    return Err(PlanError::Expr("filter predicate must be boolean".into()));
                }
                Ok(schema)
            }
            LogicalPlan::Project { input, columns } => {
                let schema = input.output_schema(catalog)?;
                let mut fields = Vec::with_capacity(columns.len());
                for (name, expr) in columns {
                    let t = expr
                        .infer_type(&schema)
                        .map_err(|e| PlanError::Expr(e.to_string()))?;
                    fields.push(Field::new(name.clone(), t));
                }
                Ok(Schema::new(fields))
            }
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
                window_ms,
            } => {
                if *window_ms == 0 {
                    return Err(PlanError::ZeroWindow);
                }
                let ls = left.output_schema(catalog)?;
                let rs = right.output_schema(catalog)?;
                let lk = ls
                    .fields
                    .get(*left_key)
                    .ok_or(PlanError::ColumnOutOfRange {
                        context: "join left key",
                        index: *left_key,
                    })?;
                let rk = rs
                    .fields
                    .get(*right_key)
                    .ok_or(PlanError::ColumnOutOfRange {
                        context: "join right key",
                        index: *right_key,
                    })?;
                for key_type in [lk.data_type, rk.data_type] {
                    if key_type == DataType::Float {
                        return Err(PlanError::UnhashableJoinKey(key_type));
                    }
                }
                if lk.data_type != rk.data_type {
                    return Err(PlanError::Expr(format!(
                        "join key types differ: {:?} vs {:?}",
                        lk.data_type, rk.data_type
                    )));
                }
                Ok(ls.join(&rs))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                func,
                column,
                window_ms,
                slide_ms,
            } => {
                if *window_ms == 0 || *slide_ms == 0 {
                    return Err(PlanError::ZeroWindow);
                }
                if *slide_ms > *window_ms {
                    return Err(PlanError::Expr(
                        "window slide must not exceed the window width".into(),
                    ));
                }
                let schema = input.output_schema(catalog)?;
                let mut fields = vec![Field::new("window_end", DataType::Int)];
                if let Some(g) = group_by {
                    let gf = schema.fields.get(*g).ok_or(PlanError::ColumnOutOfRange {
                        context: "group by",
                        index: *g,
                    })?;
                    if gf.data_type == DataType::Float {
                        return Err(PlanError::UnhashableJoinKey(gf.data_type));
                    }
                    fields.push(gf.clone());
                }
                let in_type = if *func == AggFunc::Count {
                    DataType::Int
                } else {
                    let cf = schema
                        .fields
                        .get(*column)
                        .ok_or(PlanError::ColumnOutOfRange {
                            context: "aggregate column",
                            index: *column,
                        })?;
                    if !matches!(cf.data_type, DataType::Int | DataType::Float) {
                        return Err(PlanError::Expr(format!(
                            "cannot aggregate non-numeric column {:?}",
                            cf.data_type
                        )));
                    }
                    cf.data_type
                };
                fields.push(Field::new(func.name(), func.result_type(in_type)));
                Ok(Schema::new(fields))
            }
            LogicalPlan::Union { left, right } => {
                let ls = left.output_schema(catalog)?;
                let rs = right.output_schema(catalog)?;
                if ls != rs {
                    return Err(PlanError::UnionSchemaMismatch);
                }
                Ok(ls)
            }
        }
    }

    /// True when the node is a stateless single-input operator (filter or
    /// project) — the shapes the network's fusion pass may collapse into one
    /// physical [`crate::ops::FusedOp`] node.
    pub fn is_stateless(&self) -> bool {
        matches!(
            self,
            LogicalPlan::Filter { .. } | LogicalPlan::Project { .. }
        )
    }

    /// The single input of a stateless node ([`None`] for sources and
    /// stateful operators).
    pub fn stateless_input(&self) -> Option<&LogicalPlan> {
        match self {
            LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => Some(input),
            _ => None,
        }
    }

    /// The set of stream names the plan reads.
    pub fn input_streams(&self) -> Vec<String> {
        let mut streams = Vec::new();
        self.collect_streams(&mut streams);
        streams.sort();
        streams.dedup();
        streams
    }

    fn collect_streams(&self, out: &mut Vec<String>) {
        match self {
            LogicalPlan::Source { stream } => out.push(stream.clone()),
            LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
                input.collect_streams(out);
            }
            LogicalPlan::Aggregate { input, .. } => input.collect_streams(out),
            LogicalPlan::Join { left, right, .. } | LogicalPlan::Union { left, right } => {
                left.collect_streams(out);
                right.collect_streams(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::types::Value;
    use std::collections::HashMap;

    struct MapCatalog(HashMap<String, Schema>);

    impl StreamCatalog for MapCatalog {
        fn stream_schema(&self, name: &str) -> Option<&Schema> {
            self.0.get(name)
        }
    }

    fn catalog() -> MapCatalog {
        let mut m = HashMap::new();
        m.insert(
            "quotes".to_string(),
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("price", DataType::Float),
                Field::new("volume", DataType::Int),
            ]),
        );
        m.insert(
            "news".to_string(),
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("headline", DataType::Str),
            ]),
        );
        MapCatalog(m)
    }

    fn paper_example_plan() -> LogicalPlan {
        // §II: select high-value transactions, select publicly-traded news,
        // join on the company name.
        let high_value =
            LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))));
        let relevant_news =
            LogicalPlan::source("news").filter(Expr::col(1).eq(Expr::lit(Value::str("earnings"))));
        high_value.join(relevant_news, 0, 0, 1000)
    }

    #[test]
    fn identical_plans_share_signatures() {
        assert_eq!(
            paper_example_plan().signature(),
            paper_example_plan().signature()
        );
    }

    #[test]
    fn different_parameters_split_signatures() {
        let a =
            LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))));
        let b =
            LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(200.0))));
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn shared_subplan_signature_is_embedded() {
        let select =
            LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))));
        let agg = select.clone().aggregate(Some(0), AggFunc::Avg, 1, 60_000);
        assert!(agg.signature().contains(&select.signature()));
    }

    #[test]
    fn schema_of_paper_example() {
        let schema = paper_example_plan().output_schema(&catalog()).unwrap();
        assert_eq!(schema.len(), 5); // 3 quote cols + 2 news cols
        assert_eq!(schema.fields[3].name, "right.symbol");
    }

    #[test]
    fn join_on_float_key_rejected() {
        let plan = LogicalPlan::source("quotes").join(LogicalPlan::source("quotes"), 1, 1, 10);
        assert_eq!(
            plan.output_schema(&catalog()),
            Err(PlanError::UnhashableJoinKey(DataType::Float))
        );
    }

    #[test]
    fn group_by_float_key_rejected() {
        // Grouping hashes the key column exactly like a join key does;
        // without this plan-build check a float group column would make the
        // runtime silently drop every row (`Key::from_value` → `None`).
        let plan = LogicalPlan::source("quotes").aggregate(Some(1), AggFunc::Count, 0, 1000);
        assert_eq!(
            plan.output_schema(&catalog()),
            Err(PlanError::UnhashableJoinKey(DataType::Float))
        );
    }

    #[test]
    fn stateless_chain_helpers() {
        let src = LogicalPlan::source("quotes");
        assert!(!src.is_stateless());
        assert!(src.stateless_input().is_none());
        let filtered = src.filter(Expr::col(1).gt(Expr::lit(Value::Float(1.0))));
        assert!(filtered.is_stateless());
        let projected = filtered.clone().project(vec![("s".into(), Expr::col(0))]);
        assert!(projected.is_stateless());
        assert_eq!(projected.stateless_input(), Some(&filtered));
        let agg = projected.clone().aggregate(None, AggFunc::Count, 0, 10);
        assert!(!agg.is_stateless());
        assert!(agg.stateless_input().is_none());
    }

    #[test]
    fn unknown_stream_rejected() {
        let plan = LogicalPlan::source("nope");
        assert_eq!(
            plan.output_schema(&catalog()),
            Err(PlanError::UnknownStream("nope".into()))
        );
    }

    #[test]
    fn aggregate_schema() {
        let plan = LogicalPlan::source("quotes").aggregate(Some(0), AggFunc::Avg, 1, 1000);
        let schema = plan.output_schema(&catalog()).unwrap();
        assert_eq!(schema.fields[0].name, "window_end");
        assert_eq!(schema.fields[1].name, "symbol");
        assert_eq!(schema.fields[2].name, "avg");
        assert_eq!(schema.fields[2].data_type, DataType::Float);
    }

    #[test]
    fn union_requires_identical_schemas() {
        let ok = LogicalPlan::source("quotes").union(LogicalPlan::source("quotes"));
        assert!(ok.output_schema(&catalog()).is_ok());
        let bad = LogicalPlan::source("quotes").union(LogicalPlan::source("news"));
        assert_eq!(
            bad.output_schema(&catalog()),
            Err(PlanError::UnionSchemaMismatch)
        );
    }

    #[test]
    fn zero_window_rejected() {
        let agg = LogicalPlan::source("quotes").aggregate(None, AggFunc::Count, 0, 0);
        assert_eq!(agg.output_schema(&catalog()), Err(PlanError::ZeroWindow));
        let join = LogicalPlan::source("quotes").join(LogicalPlan::source("news"), 0, 0, 0);
        assert_eq!(join.output_schema(&catalog()), Err(PlanError::ZeroWindow));
    }

    #[test]
    fn input_streams_collects_unique_sorted() {
        let plan = paper_example_plan();
        assert_eq!(
            plan.input_streams(),
            vec!["news".to_string(), "quotes".to_string()]
        );
    }
}
