//! Structured diagnostics for static plan and network verification.
//!
//! Every invariant the runtime depends on — hashable join/group/shard
//! keys, in-range column references, positive windows, identical union
//! schemas — is checked here *before* any operator is built, as a list of
//! [`Diagnostic`]s with stable codes (`NL0xx`), severities, and spans.
//! Unlike [`LogicalPlan::output_schema`], which stops at the first
//! [`PlanError`], [`check_plan`] **accumulates**: a submission with three
//! problems produces three diagnostics, so a rejected bidder learns
//! everything wrong with her query in one round trip.
//!
//! The framework is shared by two consumers:
//!
//! * **admission** — [`crate::network::QueryNetwork::add_query`] and the
//!   [`crate::center::DsmsCenter`] auction verify every plan and reject
//!   error-severity submissions with the full report attached;
//! * **`cqac-analyze`** — the static network analyzer builds its
//!   determinism, cost-conservation, and sharing passes on these same
//!   types, so `netlint` output and admission rejections speak one
//!   diagnostic vocabulary.
//!
//! See the `cqac-analyze` crate docs for the full diagnostic-code table.

use crate::plan::{AggFunc, LogicalPlan, PlanError, StreamCatalog};
use crate::types::{DataType, Field, Schema};
use std::fmt;

/// How bad a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Legal but suspicious — admission proceeds; `netlint
    /// --deny-warnings` fails.
    Warning,
    /// An invariant violation: the plan (or network) must not run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes. The numeric ranges group the passes:
/// `NL001`–`NL019` plan-level type/schema inference, `NL020`–`NL029`
/// determinism audit, `NL030`–`NL039` cost-attribution conservation,
/// `NL040`–`NL049` sharing lints, `NL060`–`NL069` runtime robustness
/// events (quarantine, worker death, overload shedding).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Code {
    /// NL001: a referenced stream is not registered.
    UnknownStream,
    /// NL002: an expression failed to type check.
    ExprType,
    /// NL003: a filter predicate is not boolean.
    PredicateNotBool,
    /// NL004: a join key column is out of range.
    JoinKeyOutOfRange,
    /// NL005: a join key column is not hashable (float).
    UnhashableJoinKey,
    /// NL006: the two join key columns have different types.
    JoinKeyTypeMismatch,
    /// NL007: union inputs have different schemas.
    UnionSchemaMismatch,
    /// NL008: a window (or slide) width is zero.
    ZeroWindow,
    /// NL009: a window slide exceeds the window width.
    SlideExceedsWindow,
    /// NL010: a group-by column is out of range.
    GroupKeyOutOfRange,
    /// NL011: a group-by column is not hashable (float).
    UnhashableGroupKey,
    /// NL012: an aggregated column is out of range.
    AggColumnOutOfRange,
    /// NL013: an aggregated column is not numeric.
    AggColumnNotNumeric,
    /// NL014: a shard key is out of range or not hashable for its stream.
    BadShardKey,
    /// NL020: the keyed-plan classification derived from the logical
    /// plans diverges from the network's physical classification.
    KeyedClassificationDivergence,
    /// NL021: a stateful node's ordering safety cannot be proven — it is
    /// neither behind a merge barrier nor order-free, or its claimed
    /// commutativity diverges from the logical re-derivation.
    StatefulOrderUnsafe,
    /// NL030: per-CQ attributed costs do not sum to the per-node totals.
    CostNotConserved,
    /// NL031: node refcounts diverge from per-query attribution lists.
    AttributionDrift,
    /// NL040: a node duplicates an interior stage of a fused chain
    /// (the pinned fusion/sharing tradeoff — duplicate work, identical
    /// results).
    InteriorPrefixDuplicate,
    /// NL041: a live node is referenced by no registered query.
    DeadNode,
    /// NL042: a query's sink is not wired to its producer.
    UnreachableSink,
    /// NL060: an operator kernel panicked at runtime (worker or control
    /// thread). The invocation's outputs were dropped and every query
    /// owning the node was quarantined.
    OperatorPanic,
    /// NL061: a continuous query was quarantined because one of its
    /// operators panicked — it stops serving and its bidder's payment is
    /// voided.
    QuarantinedQuery,
    /// NL062: a pool worker thread died; its work was recovered on the
    /// control thread and the worker was respawned on the next flush.
    WorkerDeath,
    /// NL063: ingress exceeded the configured overload budget and whole
    /// ingestion batches were shed, lowest-priority stream first.
    OverloadShed,
}

impl Code {
    /// The stable `NL0xx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnknownStream => "NL001",
            Code::ExprType => "NL002",
            Code::PredicateNotBool => "NL003",
            Code::JoinKeyOutOfRange => "NL004",
            Code::UnhashableJoinKey => "NL005",
            Code::JoinKeyTypeMismatch => "NL006",
            Code::UnionSchemaMismatch => "NL007",
            Code::ZeroWindow => "NL008",
            Code::SlideExceedsWindow => "NL009",
            Code::GroupKeyOutOfRange => "NL010",
            Code::UnhashableGroupKey => "NL011",
            Code::AggColumnOutOfRange => "NL012",
            Code::AggColumnNotNumeric => "NL013",
            Code::BadShardKey => "NL014",
            Code::KeyedClassificationDivergence => "NL020",
            Code::StatefulOrderUnsafe => "NL021",
            Code::CostNotConserved => "NL030",
            Code::AttributionDrift => "NL031",
            Code::InteriorPrefixDuplicate => "NL040",
            Code::DeadNode => "NL041",
            Code::UnreachableSink => "NL042",
            Code::OperatorPanic => "NL060",
            Code::QuarantinedQuery => "NL061",
            Code::WorkerDeath => "NL062",
            Code::OverloadShed => "NL063",
        }
    }

    /// The default severity of the code.
    pub fn severity(self) -> Severity {
        match self {
            Code::InteriorPrefixDuplicate | Code::DeadNode | Code::OverloadShed => {
                Severity::Warning
            }
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Span {
    /// A path into a logical plan, root-first: `$` is the submitted plan,
    /// `.input` / `.left` / `.right` descend one operator.
    Plan(String),
    /// A physical node of the query network.
    Node(u32),
    /// A registered continuous query.
    Query(u32),
    /// A registered input stream.
    Stream(String),
    /// The network as a whole.
    Network,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Plan(p) => f.write_str(p),
            Span::Node(n) => write!(f, "n{n}"),
            Span::Query(q) => write!(f, "cq{q}"),
            Span::Stream(s) => write!(f, "stream '{s}'"),
            Span::Network => f.write_str("network"),
        }
    }
}

/// One verified problem.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// How bad it is.
    pub severity: Severity,
    /// Where it points.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
    /// The equivalent first-error [`PlanError`], for plan-level
    /// diagnostics (admission maps the first error-severity diagnostic
    /// back onto the `Result`-based API).
    pub error: Option<PlanError>,
}

impl Diagnostic {
    /// A diagnostic at the code's default severity with no
    /// [`PlanError`] payload.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
            error: None,
        }
    }

    /// Attaches the equivalent [`PlanError`].
    pub fn with_error(mut self, error: PlanError) -> Self {
        self.error = Some(error);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({})",
            self.severity, self.code, self.message, self.span
        )
    }
}

/// An accumulated list of diagnostics — the analyzer's result type.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Diagnostics in discovery order (a deterministic walk order, so
    /// reports are stable across runs).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Merges another report's diagnostics into this one.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// True when no diagnostics were produced.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when any diagnostic is error severity.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity diagnostics.
    pub fn num_errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn num_warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// True when the report contains a diagnostic with the given code.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The first error-severity diagnostic mapped back to the
    /// [`PlanError`] the first-error API would have produced.
    pub fn first_error(&self) -> Option<PlanError> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
            .map(|d| {
                d.error
                    .clone()
                    .unwrap_or_else(|| PlanError::Expr(d.message.clone()))
            })
    }

    /// Renders the report as a JSON array of diagnostic objects —
    /// machine-readable output for `netlint --json` and rejected-bidder
    /// responses.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(d.code.as_str());
            out.push_str("\",\"severity\":\"");
            out.push_str(match d.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            });
            out.push_str("\",\"span\":\"");
            escape_json_into(&d.span.to_string(), &mut out);
            out.push_str("\",\"message\":\"");
            escape_json_into(&d.message, &mut out);
            out.push_str("\"}");
        }
        out.push(']');
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

fn escape_json_into(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Type/schema inference over a whole plan with error accumulation —
/// the multi-diagnostic subsumption of [`LogicalPlan::output_schema`].
///
/// Guarantees, pinned by tests:
///
/// * **agreement** — `check_plan` reports at least one error exactly when
///   `output_schema` returns `Err`, and [`Report::first_error`] equals the
///   error `output_schema` produces;
/// * **accumulation** — independent problems each get their own
///   diagnostic (inference recovers a best-effort schema and keeps
///   walking wherever types are still known).
pub fn check_plan(plan: &LogicalPlan, catalog: &dyn StreamCatalog) -> Report {
    let mut report = Report::new();
    walk(plan, catalog, "$", &mut report);
    report
}

/// Recursive best-effort inference: returns the node's output schema when
/// it is still known, pushing every discovered problem into `report`.
fn walk(
    plan: &LogicalPlan,
    catalog: &dyn StreamCatalog,
    path: &str,
    report: &mut Report,
) -> Option<Schema> {
    match plan {
        LogicalPlan::Source { stream } => match catalog.stream_schema(stream) {
            Some(s) => Some(s.clone()),
            None => {
                report.push(
                    Diagnostic::new(
                        Code::UnknownStream,
                        Span::Plan(path.to_string()),
                        format!("unknown stream '{stream}'"),
                    )
                    .with_error(PlanError::UnknownStream(stream.clone())),
                );
                None
            }
        },
        LogicalPlan::Filter { input, predicate } => {
            let schema = walk(input, catalog, &format!("{path}.input"), report)?;
            let mut errors = Vec::new();
            let t = predicate.check_types(&schema, &mut errors);
            for e in errors {
                report.push(
                    Diagnostic::new(
                        Code::ExprType,
                        Span::Plan(path.to_string()),
                        format!("filter predicate: {e}"),
                    )
                    .with_error(PlanError::Expr(e.to_string())),
                );
            }
            if let Some(t) = t {
                if t != DataType::Bool {
                    report.push(
                        Diagnostic::new(
                            Code::PredicateNotBool,
                            Span::Plan(path.to_string()),
                            format!("filter predicate must be boolean, found {t:?}"),
                        )
                        .with_error(PlanError::Expr("filter predicate must be boolean".into())),
                    );
                }
            }
            Some(schema)
        }
        LogicalPlan::Project { input, columns } => {
            let schema = walk(input, catalog, &format!("{path}.input"), report)?;
            let mut fields = Vec::with_capacity(columns.len());
            let mut known = true;
            for (name, expr) in columns {
                let mut errors = Vec::new();
                match expr.check_types(&schema, &mut errors) {
                    Some(t) => fields.push(Field::new(name.clone(), t)),
                    None => known = false,
                }
                for e in errors {
                    report.push(
                        Diagnostic::new(
                            Code::ExprType,
                            Span::Plan(path.to_string()),
                            format!("projected column '{name}': {e}"),
                        )
                        .with_error(PlanError::Expr(e.to_string())),
                    );
                }
            }
            known.then(|| Schema::new(fields))
        }
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
            window_ms,
        } => {
            if *window_ms == 0 {
                report.push(
                    Diagnostic::new(
                        Code::ZeroWindow,
                        Span::Plan(path.to_string()),
                        "join window width must be positive",
                    )
                    .with_error(PlanError::ZeroWindow),
                );
            }
            let ls = walk(left, catalog, &format!("{path}.left"), report);
            let rs = walk(right, catalog, &format!("{path}.right"), report);
            let lk = ls
                .as_ref()
                .and_then(|s| check_key(s, *left_key, "join left key", path, report));
            let rk = rs
                .as_ref()
                .and_then(|s| check_key(s, *right_key, "join right key", path, report));
            if let (Some(lk), Some(rk)) = (lk, rk) {
                if lk != rk {
                    report.push(
                        Diagnostic::new(
                            Code::JoinKeyTypeMismatch,
                            Span::Plan(path.to_string()),
                            format!("join key types differ: {lk:?} vs {rk:?}"),
                        )
                        .with_error(PlanError::Expr(format!(
                            "join key types differ: {lk:?} vs {rk:?}"
                        ))),
                    );
                }
            }
            Some(ls?.join(&rs?))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            func,
            column,
            window_ms,
            slide_ms,
        } => {
            if *window_ms == 0 || *slide_ms == 0 {
                report.push(
                    Diagnostic::new(
                        Code::ZeroWindow,
                        Span::Plan(path.to_string()),
                        "aggregate window and slide widths must be positive",
                    )
                    .with_error(PlanError::ZeroWindow),
                );
            } else if *slide_ms > *window_ms {
                report.push(
                    Diagnostic::new(
                        Code::SlideExceedsWindow,
                        Span::Plan(path.to_string()),
                        format!("window slide {slide_ms}ms exceeds window width {window_ms}ms"),
                    )
                    .with_error(PlanError::Expr(
                        "window slide must not exceed the window width".into(),
                    )),
                );
            }
            let schema = walk(input, catalog, &format!("{path}.input"), report)?;
            let mut fields = vec![Field::new("window_end", DataType::Int)];
            let mut known = true;
            if let Some(g) = group_by {
                match schema.fields.get(*g) {
                    None => {
                        report.push(
                            Diagnostic::new(
                                Code::GroupKeyOutOfRange,
                                Span::Plan(path.to_string()),
                                format!("group-by column {g} out of range"),
                            )
                            .with_error(PlanError::ColumnOutOfRange {
                                context: "group by",
                                index: *g,
                            }),
                        );
                        known = false;
                    }
                    Some(gf) => {
                        if gf.data_type == DataType::Float {
                            report.push(
                                Diagnostic::new(
                                    Code::UnhashableGroupKey,
                                    Span::Plan(path.to_string()),
                                    format!(
                                        "group-by column {g} has type Float, which is not hashable"
                                    ),
                                )
                                .with_error(PlanError::UnhashableJoinKey(gf.data_type)),
                            );
                        }
                        fields.push(gf.clone());
                    }
                }
            }
            let in_type = if *func == AggFunc::Count {
                Some(DataType::Int)
            } else {
                match schema.fields.get(*column) {
                    None => {
                        report.push(
                            Diagnostic::new(
                                Code::AggColumnOutOfRange,
                                Span::Plan(path.to_string()),
                                format!("aggregated column {column} out of range"),
                            )
                            .with_error(PlanError::ColumnOutOfRange {
                                context: "aggregate column",
                                index: *column,
                            }),
                        );
                        None
                    }
                    Some(cf) => {
                        if !matches!(cf.data_type, DataType::Int | DataType::Float) {
                            report.push(
                                Diagnostic::new(
                                    Code::AggColumnNotNumeric,
                                    Span::Plan(path.to_string()),
                                    format!(
                                        "cannot aggregate non-numeric column {:?}",
                                        cf.data_type
                                    ),
                                )
                                .with_error(PlanError::Expr(
                                    format!(
                                        "cannot aggregate non-numeric column {:?}",
                                        cf.data_type
                                    ),
                                )),
                            );
                        }
                        Some(cf.data_type)
                    }
                }
            };
            match in_type {
                Some(t) => fields.push(Field::new(func.name(), func.result_type(t))),
                None => known = false,
            }
            known.then(|| Schema::new(fields))
        }
        LogicalPlan::Union { left, right } => {
            let ls = walk(left, catalog, &format!("{path}.left"), report);
            let rs = walk(right, catalog, &format!("{path}.right"), report);
            if let (Some(ls), Some(rs)) = (&ls, &rs) {
                if ls != rs {
                    report.push(
                        Diagnostic::new(
                            Code::UnionSchemaMismatch,
                            Span::Plan(path.to_string()),
                            "union inputs have different schemas",
                        )
                        .with_error(PlanError::UnionSchemaMismatch),
                    );
                }
            }
            ls.or(rs)
        }
    }
}

/// Checks a join key column reference, returning its type when valid.
fn check_key(
    schema: &Schema,
    index: usize,
    context: &'static str,
    path: &str,
    report: &mut Report,
) -> Option<DataType> {
    match schema.fields.get(index) {
        None => {
            report.push(
                Diagnostic::new(
                    Code::JoinKeyOutOfRange,
                    Span::Plan(path.to_string()),
                    format!("column {index} out of range in {context}"),
                )
                .with_error(PlanError::ColumnOutOfRange { context, index }),
            );
            None
        }
        Some(field) => {
            if field.data_type == DataType::Float {
                report.push(
                    Diagnostic::new(
                        Code::UnhashableJoinKey,
                        Span::Plan(path.to_string()),
                        format!("{context} column {index} has type Float, which is not hashable"),
                    )
                    .with_error(PlanError::UnhashableJoinKey(field.data_type)),
                );
            }
            Some(field.data_type)
        }
    }
}

/// Validates a shard-key configuration against a stream schema — the
/// diagnostic twin of [`crate::engine::DsmsEngine::set_shard_key`]'s
/// error path (code NL014).
pub fn check_shard_key(schema: &Schema, stream: &str, column: usize) -> Report {
    let mut report = Report::new();
    if column >= schema.len() {
        report.push(
            Diagnostic::new(
                Code::BadShardKey,
                Span::Stream(stream.to_string()),
                format!("shard key column {column} out of range for stream '{stream}'"),
            )
            .with_error(PlanError::ShardKeyOutOfRange {
                stream: stream.to_string(),
                column,
            }),
        );
    } else if schema.data_type(column) == DataType::Float {
        report.push(
            Diagnostic::new(
                Code::BadShardKey,
                Span::Stream(stream.to_string()),
                format!("float column {column} of stream '{stream}' is not a hashable shard key"),
            )
            .with_error(PlanError::UnhashableShardKey {
                stream: stream.to_string(),
                column,
            }),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::types::Value;
    use std::collections::HashMap;

    struct MapCatalog(HashMap<String, Schema>);

    impl StreamCatalog for MapCatalog {
        fn stream_schema(&self, name: &str) -> Option<&Schema> {
            self.0.get(name)
        }
    }

    fn catalog() -> MapCatalog {
        let mut m = HashMap::new();
        m.insert(
            "quotes".to_string(),
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("price", DataType::Float),
                Field::new("volume", DataType::Int),
            ]),
        );
        m.insert(
            "news".to_string(),
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("headline", DataType::Str),
            ]),
        );
        MapCatalog(m)
    }

    #[test]
    fn clean_plan_has_empty_report() {
        let plan = LogicalPlan::source("quotes")
            .filter(Expr::col(1).gt(Expr::lit(Value::Float(10.0))))
            .aggregate(Some(0), AggFunc::Avg, 1, 1000);
        let report = check_plan(&plan, &catalog());
        assert!(report.is_clean(), "unexpected: {report}");
        assert_eq!(report.first_error(), None);
    }

    #[test]
    fn accumulation_reports_every_problem() {
        // Float join key on both sides AND a zero window: three
        // diagnostics from one plan, where output_schema stops at one.
        let plan = LogicalPlan::source("quotes").join(LogicalPlan::source("quotes"), 1, 1, 0);
        let report = check_plan(&plan, &catalog());
        assert_eq!(report.num_errors(), 3, "{report}");
        assert!(report.has_code(Code::ZeroWindow));
        assert!(report.has_code(Code::UnhashableJoinKey));
    }

    #[test]
    fn first_error_matches_output_schema() {
        let cat = catalog();
        let plans = vec![
            LogicalPlan::source("nope"),
            LogicalPlan::source("quotes").join(LogicalPlan::source("quotes"), 1, 1, 10),
            LogicalPlan::source("quotes").aggregate(Some(1), AggFunc::Count, 0, 1000),
            LogicalPlan::source("quotes").join(LogicalPlan::source("news"), 0, 0, 0),
            LogicalPlan::source("quotes").union(LogicalPlan::source("news")),
            LogicalPlan::source("quotes").filter(Expr::col(7).gt(Expr::lit(Value::Int(1)))),
            LogicalPlan::source("quotes").aggregate(None, AggFunc::Sum, 0, 1000),
            LogicalPlan::source("quotes").join(LogicalPlan::source("news"), 9, 0, 10),
            LogicalPlan::source("quotes").sliding_aggregate(None, AggFunc::Count, 0, 10, 20),
            LogicalPlan::source("quotes").filter(Expr::col(1)),
        ];
        for plan in plans {
            let report = check_plan(&plan, &cat);
            let schema = plan.output_schema(&cat);
            assert_eq!(
                report.has_errors(),
                schema.is_err(),
                "agreement violated for {plan:?}: {report}"
            );
            assert_eq!(
                report.first_error(),
                schema.err(),
                "first-error mapping diverged for {plan:?}"
            );
        }
    }

    #[test]
    fn recovered_schema_keeps_downstream_checks_running() {
        // The broken predicate doesn't stop the group-key check above it.
        let plan = LogicalPlan::source("quotes")
            .filter(Expr::col(9).gt(Expr::lit(Value::Int(0))))
            .aggregate(Some(1), AggFunc::Count, 0, 100);
        let report = check_plan(&plan, &catalog());
        assert!(report.has_code(Code::ExprType));
        assert!(
            report.has_code(Code::UnhashableGroupKey),
            "inference recovered past the filter: {report}"
        );
    }

    #[test]
    fn spans_descend_the_plan() {
        let plan = LogicalPlan::source("quotes").join(LogicalPlan::source("nope"), 0, 0, 10);
        let report = check_plan(&plan, &catalog());
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(
            report.diagnostics[0].span,
            Span::Plan("$.right".to_string())
        );
    }

    #[test]
    fn json_output_is_machine_readable() {
        let plan = LogicalPlan::source("quotes").aggregate(Some(1), AggFunc::Count, 0, 0);
        let json = check_plan(&plan, &catalog()).to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"code\":\"NL008\""));
        assert!(json.contains("\"code\":\"NL011\""));
        assert!(json.contains("\"severity\":\"error\""));
        // The vendored serde_json parses it back.
        let parsed = serde::json::Json::parse(&json).expect("valid JSON");
        match parsed {
            serde::json::Json::Arr(items) => assert_eq!(items.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn shard_key_checks() {
        let schema = Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("price", DataType::Float),
        ]);
        assert!(check_shard_key(&schema, "quotes", 0).is_clean());
        let float = check_shard_key(&schema, "quotes", 1);
        assert!(float.has_code(Code::BadShardKey));
        assert_eq!(
            float.first_error(),
            Some(PlanError::UnhashableShardKey {
                stream: "quotes".into(),
                column: 1
            })
        );
        let range = check_shard_key(&schema, "quotes", 9);
        assert_eq!(
            range.first_error(),
            Some(PlanError::ShardKeyOutOfRange {
                stream: "quotes".into(),
                column: 9
            })
        );
    }
}
