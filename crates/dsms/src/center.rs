//! The for-profit DSMS center: the business loop the paper's introduction
//! sketches — collect bids once per subscription period, run the admission
//! auction, transition the query network to the winner set, and bill.
//!
//! ```text
//!        submissions (plan + bid)          streams
//!              │                              │
//!              ▼                              ▼
//!  ┌─ auction day ───────────────┐   ┌─ serving ────────┐
//!  │ shadow-calibrate loads c_j  │   │ engine.push(...) │
//!  │ build AuctionInstance       │   │ outputs per CQ   │
//!  │ run Mechanism (CAT, …)      │   └──────────────────┘
//!  │ transition network          │
//!  │ record ledger               │
//!  └─────────────────────────────┘
//! ```
//!
//! Continuing queries — winners on consecutive days with identical plans —
//! keep their operator state across the day boundary via the engine's
//! transition phase (§II).

use crate::cost::{auction_instance, effective_capacity, CostModel};
use crate::diag::Report;
use crate::engine::{DsmsEngine, OverloadPolicy};
use crate::network::CqId;
use crate::plan::{LogicalPlan, PlanError};
use crate::types::{Schema, Tuple};
use cqac_core::mechanisms::Mechanism;
use cqac_core::model::{QueryId, UserId};
use cqac_core::units::{Load, Money};
use std::collections::HashMap;

/// A user's daily submission: her continuous query and her bid for running
/// it through the next subscription period.
#[derive(Clone, Debug)]
pub struct Submission {
    /// The bidding user.
    pub user: UserId,
    /// The declared bid `b_i`.
    pub bid: Money,
    /// The continuous query.
    pub plan: LogicalPlan,
}

/// The center's decision for one submission.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Index into the day's submission list.
    pub submission: usize,
    /// The bidding user.
    pub user: UserId,
    /// Whether the query was admitted for the next period.
    pub admitted: bool,
    /// The payment charged (zero for rejected queries).
    pub payment: Money,
    /// The live query id, for admitted queries.
    pub cq: Option<CqId>,
    /// Static-verification diagnostics, for submissions rejected *before*
    /// the auction ran (the plan failed [`crate::diag::check_plan`]).
    /// `None` for every submission that entered the auction — losing a
    /// well-formed bid is not a verification failure.
    pub rejection: Option<Report>,
}

/// Ledger entry for one auction day.
#[derive(Clone, Debug)]
pub struct DayRecord {
    /// Day counter (starts at 0).
    pub day: u32,
    /// Mechanism used.
    pub mechanism: String,
    /// Per-submission decisions.
    pub decisions: Vec<Decision>,
    /// Total revenue of the day's auction.
    pub profit: Money,
    /// Estimated load of the admitted set.
    pub admitted_load: Load,
    /// Fraction of capacity the admitted set uses (0..=1).
    pub utilization: f64,
}

/// The DSMS cloud center (see module docs).
pub struct DsmsCenter {
    engine: DsmsEngine,
    capacity: Load,
    mechanism: Box<dyn Mechanism>,
    cost_model: CostModel,
    streams: Vec<(String, Schema)>,
    /// Live queries from the latest auction, keyed by plan signature;
    /// several identical plans map to several entries in the Vec.
    active: HashMap<String, Vec<CqId>>,
    /// Users whose queries were quarantined during the serving phase,
    /// with the quarantine report. Consumed by the **next** auction: their
    /// submissions are rejected pre-auction, then the ban is lifted.
    banned: HashMap<UserId, Report>,
    ledger: Vec<DayRecord>,
    day: u32,
}

impl std::fmt::Debug for DsmsCenter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsmsCenter")
            .field("capacity", &self.capacity)
            .field("mechanism", &self.mechanism.name())
            .field("day", &self.day)
            .field("active_queries", &self.engine.network().num_queries())
            .finish()
    }
}

impl DsmsCenter {
    /// A center with the given capacity and admission mechanism.
    pub fn new(capacity: Load, mechanism: Box<dyn Mechanism>) -> Self {
        Self {
            engine: DsmsEngine::new(),
            capacity,
            mechanism,
            cost_model: CostModel::default(),
            streams: Vec::new(),
            active: HashMap::new(),
            banned: HashMap::new(),
            ledger: Vec::new(),
            day: 0,
        }
    }

    /// Overrides the cost model used for load estimation.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Overrides the ingestion batch-size cap used by both the serving
    /// engine and the per-auction shadow calibration engines.
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.engine.set_max_batch_size(n);
        self
    }

    /// Enables or disables stateless-operator fusion (on by default) for
    /// both the serving engine and the per-auction shadow calibration
    /// engines — the knob next to the batch-size knob. Shadow engines must
    /// match the serving engine's shape so measured loads price the network
    /// that will actually run.
    pub fn with_fusion(mut self, enabled: bool) -> Self {
        self.engine.set_fusion(enabled);
        self
    }

    /// Sets the worker-shard count (default 1) for the serving engine and
    /// the per-auction shadow calibration engines — the knob next to the
    /// batch-size and fusion knobs. The center's `capacity` is **per
    /// core**: the auction prices the admitted set against
    /// [`effective_capacity`] (`shards × capacity`), which is honest
    /// exactly because a sharded engine's measured per-node loads aggregate
    /// every worker shard's work.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.engine.set_shards(n);
        self
    }

    /// Hash-partitions a stream on `column` for the serving engine *and*
    /// the per-auction shadow calibration engines. With a shard key set,
    /// joins keyed on it and aggregates grouping by it execute inside the
    /// worker shards (keyed stateful sharding), so their measured loads
    /// genuinely scale with the shard count the auction prices against.
    ///
    /// May be called before the stream is registered, like
    /// [`crate::engine::DsmsEngine::set_shard_key`].
    /// # Panics
    /// Panics when the stream is registered and the key is invalid (see
    /// [`crate::engine::DsmsEngine::set_shard_key`]'s error conditions).
    pub fn with_shard_key(mut self, stream: &str, column: usize) -> Self {
        self.engine
            .set_shard_key(stream, column)
            .expect("invalid shard key");
        self
    }

    /// Caps serving-phase ingestion at `rows_per_flush` buffered rows per
    /// flush (an [`OverloadPolicy`] on the serving engine). Under a flash
    /// crowd the engine sheds whole batches from the **lowest-priority**
    /// streams first, where each stream's priority is the highest bid among
    /// the admitted queries reading it — refreshed after every auction — so
    /// the paying customers' data survives. Shed volume is visible in
    /// [`crate::engine::StreamStats::rows_shed`] and
    /// [`crate::engine::DsmsEngine::overload_report`].
    #[must_use]
    pub fn with_ingress_guard(mut self, rows_per_flush: u64) -> Self {
        self.engine.set_overload_policy(Some(OverloadPolicy {
            max_rows_per_flush: rows_per_flush,
        }));
        self
    }

    /// Registers an input stream (must precede submissions that read it).
    pub fn register_stream(&mut self, name: impl Into<String>, schema: Schema) {
        let name = name.into();
        self.engine.register_stream(name.clone(), schema.clone());
        self.streams.push((name, schema));
    }

    /// The serving engine (read access — e.g. for output inspection).
    pub fn engine(&self) -> &DsmsEngine {
        &self.engine
    }

    /// The serving engine, mutably — e.g. to install a
    /// [`crate::fault::FaultPlan`] in robustness tests, or to tune the
    /// [`OverloadPolicy`] after construction.
    pub fn engine_mut(&mut self) -> &mut DsmsEngine {
        &mut self.engine
    }

    /// Billing history.
    pub fn ledger(&self) -> &[DayRecord] {
        &self.ledger
    }

    /// Runs one end-of-period auction:
    ///
    /// 1. builds a **shadow engine** with every submitted plan and replays
    ///    `calibration` through it to measure operator loads;
    /// 2. lowers the shadow network into an [`cqac_core::model::AuctionInstance`]
    ///    (operators = shared nodes, loads = measured `c_j`);
    /// 3. runs the configured mechanism;
    /// 4. transitions the live network: admitted plans are added (or kept,
    ///    preserving state, when an identical plan is already running) and
    ///    non-admitted actives are removed;
    /// 5. records payments in the ledger.
    ///
    /// A user whose query was **quarantined** during the previous serving
    /// phase (an operator panic attributed to her query — see
    /// [`crate::engine::QuarantineEvent`]) sits this auction out: her
    /// submission is rejected pre-auction with the quarantine report
    /// attached, and the ban is lifted afterwards.
    pub fn run_auction(
        &mut self,
        submissions: &[Submission],
        calibration: &[(String, Tuple)],
    ) -> Result<DayRecord, PlanError> {
        // 1. Shadow calibration.
        let mut shadow = DsmsEngine::new()
            .with_max_batch_size(self.engine.max_batch_size())
            .with_fusion(self.engine.fusion_enabled())
            .with_shards(self.engine.shards());
        // Shadow engines must run the serving engine's exact shape —
        // including which stateful operators shard — so measured loads
        // price the network that will actually serve.
        for (stream, &column) in self.engine.shard_keys() {
            shadow
                .set_shard_key(stream, column)
                .expect("serving engine's shard keys are valid");
        }
        for (name, schema) in &self.streams {
            shadow.register_stream(name.clone(), schema.clone());
        }
        // Statically verify every submission; invalid bidders are rejected
        // here, with the full diagnostic report, and never enter the
        // auction — so one malformed plan cannot sink the whole day.
        // Likewise bidders banned by a serving-phase quarantine: they are
        // rejected with the quarantine report, for this one round only.
        let banned = std::mem::take(&mut self.banned);
        let mut shadow_cqs: Vec<Option<CqId>> = Vec::with_capacity(submissions.len());
        let mut rejections: Vec<Option<Report>> = Vec::with_capacity(submissions.len());
        for s in submissions {
            if let Some(report) = banned.get(&s.user) {
                shadow_cqs.push(None);
                rejections.push(Some(report.clone()));
                continue;
            }
            let report = shadow.network().verify_plan(&s.plan);
            if report.has_errors() {
                shadow_cqs.push(None);
                rejections.push(Some(report));
            } else {
                shadow_cqs.push(Some(shadow.add_query(s.plan.clone())?));
                rejections.push(None);
            }
        }
        shadow.push_batch(calibration.iter().cloned());

        // 2. The auction instance, over the verified submissions only.
        // `auction_pos[idx]` is submission `idx`'s index into the bid list
        // (and hence its `QueryId` in the mechanism's outcome).
        let mut bids: Vec<(CqId, UserId, Money)> = Vec::new();
        let mut auction_pos: Vec<Option<usize>> = Vec::with_capacity(submissions.len());
        for (s, cq) in submissions.iter().zip(&shadow_cqs) {
            match cq {
                Some(cq) => {
                    auction_pos.push(Some(bids.len()));
                    bids.push((*cq, s.user, s.bid));
                }
                None => auction_pos.push(None),
            }
        }
        // The auction prices against the aggregate multi-shard capacity.
        let capacity = effective_capacity(self.capacity, self.engine.shards());
        let (inst, mapping) = auction_instance(&shadow, &bids, capacity, &self.cost_model);

        // 3. Run the mechanism, seeded by the day for reproducibility.
        let outcome = self.mechanism.run_seeded(&inst, u64::from(self.day));
        debug_assert!(outcome.validate(&inst).is_ok());

        // 4. Transition the live network.
        self.engine.begin_transition();
        // Claimable continuing queries by plan signature.
        let mut claimable: HashMap<String, Vec<CqId>> = self.active.clone();
        let mut next_active: HashMap<String, Vec<CqId>> = HashMap::new();
        let mut decisions = Vec::with_capacity(submissions.len());
        for (idx, submission) in submissions.iter().enumerate() {
            let (admitted, payment) = match auction_pos[idx] {
                Some(pos) => {
                    let auction_qid = QueryId(pos as u32);
                    debug_assert_eq!(Some(mapping[pos]), shadow_cqs[idx]);
                    (outcome.is_winner(auction_qid), outcome.payment(auction_qid))
                }
                // Rejected by static verification: never auctioned.
                None => (false, Money::ZERO),
            };
            let cq = if admitted {
                let signature = submission.plan.signature();
                let reused = claimable.get_mut(&signature).and_then(Vec::pop);
                let cq = match reused {
                    Some(cq) => cq,
                    None => self.engine.add_query(submission.plan.clone())?,
                };
                next_active.entry(signature).or_default().push(cq);
                Some(cq)
            } else {
                None
            };
            decisions.push(Decision {
                submission: idx,
                user: submission.user,
                admitted,
                payment,
                cq,
                rejection: rejections[idx].take(),
            });
        }
        // Retire every active query that was not claimed by a winner.
        for (_, leftovers) in claimable {
            for cq in leftovers {
                let removed = self.engine.remove_query(cq);
                debug_assert!(removed.is_some(), "active query {cq} is registered");
            }
        }
        self.active = next_active;
        self.engine.end_transition();
        self.refresh_stream_priorities(submissions, &decisions);

        // 5. Ledger.
        let record = DayRecord {
            day: self.day,
            mechanism: self.mechanism.name().to_string(),
            decisions,
            profit: outcome.profit(),
            admitted_load: outcome.used_capacity,
            utilization: outcome.utilization(&inst),
        };
        self.ledger.push(record.clone());
        self.day += 1;
        Ok(record)
    }

    /// Re-derives each registered stream's shedding priority from the
    /// day's admitted bids: a stream's priority is the highest bid (in
    /// micro-dollars, exact) among the admitted queries reading it, zero
    /// when nobody admitted reads it — so under overload the engine sheds
    /// the cheapest subscribers' data first.
    fn refresh_stream_priorities(&mut self, submissions: &[Submission], decisions: &[Decision]) {
        let mut best: HashMap<String, u64> = HashMap::new();
        for decision in decisions.iter().filter(|d| d.admitted) {
            let submission = &submissions[decision.submission];
            for stream in submission.plan.input_streams() {
                let entry = best.entry(stream).or_insert(0);
                *entry = (*entry).max(submission.bid.micro());
            }
        }
        for (name, _) in &self.streams {
            self.engine
                .set_stream_priority(name.clone(), best.get(name).copied().unwrap_or(0));
        }
    }

    /// Absorbs the serving engine's quarantine events into the business
    /// state: a quarantined query's bidder has her payment refunded for the
    /// current day (the center failed to serve her full period), her query
    /// is dropped from the active set, and she is excluded from the next
    /// auction round (pre-auction rejection carrying the quarantine
    /// report).
    fn absorb_quarantines(&mut self) {
        for event in self.engine.take_quarantine_events() {
            for cq in &event.queries {
                for list in self.active.values_mut() {
                    list.retain(|c| c != cq);
                }
                if let Some(day) = self.ledger.last_mut() {
                    let mut refunded = Money::ZERO;
                    for decision in day.decisions.iter_mut().filter(|d| d.cq == Some(*cq)) {
                        refunded += decision.payment;
                        decision.payment = Money::ZERO;
                        self.banned.insert(decision.user, event.report.clone());
                    }
                    day.profit = day.profit.saturating_sub(refunded);
                }
            }
        }
        self.active.retain(|_, list| !list.is_empty());
    }

    /// Feeds stream data through the live network (the serving phase) as
    /// batches. An operator panic during processing quarantines the owning
    /// queries only — the push itself never unwinds for other subscribers —
    /// and the center then refunds and bans the affected bidders (see
    /// [`DsmsCenter::run_auction`]).
    ///
    /// # Panics
    /// Panics when `stream` was never registered with
    /// [`DsmsCenter::register_stream`].
    pub fn process(&mut self, stream: &str, tuples: Vec<Tuple>) {
        self.engine.push_rows(stream, tuples);
        self.absorb_quarantines();
    }

    /// Takes a live query's accumulated outputs.
    pub fn take_outputs(&mut self, cq: CqId) -> Vec<Tuple> {
        self.engine.take_outputs(cq)
    }

    /// Total revenue across all recorded days.
    pub fn total_revenue(&self) -> Money {
        self.ledger.iter().map(|r| r.profit).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::streams::{quote_schema, StockStream};
    use crate::types::Value;
    use cqac_core::mechanisms::Cat;

    fn high_price(threshold: f64) -> LogicalPlan {
        LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(threshold))))
    }

    fn calibration_sample(n: usize) -> Vec<(String, Tuple)> {
        StockStream::new(&["IBM", "AAPL", "MSFT"], 1, 99)
            .next_batch(n)
            .into_iter()
            .map(|t| ("quotes".to_string(), t))
            .collect()
    }

    fn center(capacity: f64) -> DsmsCenter {
        let mut c = DsmsCenter::new(Load::from_units(capacity), Box::new(Cat));
        c.register_stream("quotes", quote_schema());
        c
    }

    #[test]
    fn auction_admits_within_capacity_and_bills() {
        // Plenty of capacity: everyone gets in, nobody pays (no loser).
        let mut c = center(1000.0);
        let submissions = vec![
            Submission {
                user: UserId(0),
                bid: Money::from_dollars(30.0),
                plan: high_price(100.0),
            },
            Submission {
                user: UserId(1),
                bid: Money::from_dollars(20.0),
                plan: high_price(150.0),
            },
        ];
        let record = c
            .run_auction(&submissions, &calibration_sample(500))
            .unwrap();
        assert!(record.decisions.iter().all(|d| d.admitted));
        assert_eq!(record.profit, Money::ZERO);
        assert_eq!(c.engine().network().num_queries(), 2);
    }

    #[test]
    fn scarce_capacity_rejects_and_charges() {
        // Capacity fits roughly one filter's load (rate ≈ 1 t/ms, unit cost
        // 1.0 → load ≈ 1): two disjoint-threshold queries compete.
        let mut c = center(1.2);
        let submissions = vec![
            Submission {
                user: UserId(0),
                bid: Money::from_dollars(90.0),
                plan: high_price(100.0),
            },
            Submission {
                user: UserId(1),
                bid: Money::from_dollars(10.0),
                plan: high_price(150.0),
            },
        ];
        let record = c
            .run_auction(&submissions, &calibration_sample(2000))
            .unwrap();
        let admitted: Vec<bool> = record.decisions.iter().map(|d| d.admitted).collect();
        assert_eq!(admitted, vec![true, false]);
        assert!(
            record.profit > Money::ZERO,
            "the winner pays a loser-quoted price"
        );
        assert_eq!(c.engine().network().num_queries(), 1);
    }

    #[test]
    fn continuing_queries_keep_their_cq_across_days() {
        let mut c = center(1000.0);
        let submission = Submission {
            user: UserId(0),
            bid: Money::from_dollars(30.0),
            plan: high_price(100.0),
        };
        let day0 = c
            .run_auction(std::slice::from_ref(&submission), &calibration_sample(300))
            .unwrap();
        let cq0 = day0.decisions[0].cq.unwrap();
        let day1 = c
            .run_auction(&[submission], &calibration_sample(300))
            .unwrap();
        let cq1 = day1.decisions[0].cq.unwrap();
        assert_eq!(
            cq0, cq1,
            "identical winning plan continues under the same id"
        );
    }

    #[test]
    fn losing_renewal_is_retired() {
        let mut c = center(1000.0);
        let sub = |bid: f64| Submission {
            user: UserId(0),
            bid: Money::from_dollars(bid),
            plan: high_price(100.0),
        };
        c.run_auction(&[sub(30.0)], &calibration_sample(300))
            .unwrap();
        assert_eq!(c.engine().network().num_queries(), 1);
        // Next day the user does not resubmit; the query is retired.
        let record = c.run_auction(&[], &calibration_sample(300)).unwrap();
        assert!(record.decisions.is_empty());
        assert_eq!(c.engine().network().num_queries(), 0);
    }

    #[test]
    fn serving_after_admission_produces_outputs() {
        let mut c = center(1000.0);
        let record = c
            .run_auction(
                &[Submission {
                    user: UserId(0),
                    bid: Money::from_dollars(30.0),
                    plan: high_price(50.0),
                }],
                &calibration_sample(300),
            )
            .unwrap();
        let cq = record.decisions[0].cq.unwrap();
        let mut feed = StockStream::new(&["IBM"], 1, 7);
        c.process("quotes", feed.next_batch(200));
        let outputs = c.take_outputs(cq);
        assert!(!outputs.is_empty(), "admitted query must produce results");
    }

    #[test]
    fn fusion_knob_reaches_serving_and_shadow_engines() {
        let chain = high_price(100.0)
            .filter(Expr::col(0).eq(Expr::lit(Value::str("IBM"))))
            .project(vec![("price".to_string(), Expr::col(1))]);
        let submission = Submission {
            user: UserId(0),
            bid: Money::from_dollars(30.0),
            plan: chain,
        };
        for (fusion, expected_nodes) in [(true, 1usize), (false, 3)] {
            let mut c =
                DsmsCenter::new(Load::from_units(1000.0), Box::new(Cat)).with_fusion(fusion);
            c.register_stream("quotes", quote_schema());
            let record = c
                .run_auction(std::slice::from_ref(&submission), &calibration_sample(300))
                .unwrap();
            assert!(record.decisions[0].admitted);
            assert_eq!(
                c.engine().network().num_nodes(),
                expected_nodes,
                "fusion={fusion}"
            );
        }
    }

    #[test]
    fn sharded_center_auctions_against_aggregate_capacity() {
        // Per-core capacity fits one filter's load (≈1). Single-threaded
        // the second bidder is rejected; with 2 worker shards the same
        // per-core capacity prices 2× and both fit.
        let submissions = vec![
            Submission {
                user: UserId(0),
                bid: Money::from_dollars(90.0),
                plan: high_price(100.0),
            },
            Submission {
                user: UserId(1),
                bid: Money::from_dollars(10.0),
                plan: high_price(150.0),
            },
        ];
        for (shards, expected) in [(1usize, vec![true, false]), (2, vec![true, true])] {
            let mut c = DsmsCenter::new(Load::from_units(1.2), Box::new(Cat)).with_shards(shards);
            c.register_stream("quotes", quote_schema());
            let record = c
                .run_auction(&submissions, &calibration_sample(2000))
                .unwrap();
            let admitted: Vec<bool> = record.decisions.iter().map(|d| d.admitted).collect();
            assert_eq!(admitted, expected, "shards={shards}");
        }
    }

    #[test]
    fn sharded_serving_matches_single_threaded_outputs() {
        let run = |shards: usize| {
            let mut c = DsmsCenter::new(Load::from_units(1000.0), Box::new(Cat))
                .with_batch_size(32)
                .with_shards(shards);
            c.register_stream("quotes", quote_schema());
            let record = c
                .run_auction(
                    &[Submission {
                        user: UserId(0),
                        bid: Money::from_dollars(30.0),
                        plan: high_price(50.0),
                    }],
                    &calibration_sample(300),
                )
                .unwrap();
            let cq = record.decisions[0].cq.unwrap();
            let mut feed = StockStream::new(&["IBM", "AAPL"], 1, 7);
            c.process("quotes", feed.next_batch(500));
            c.take_outputs(cq)
        };
        assert_eq!(run(1), run(4), "serving outputs are shard-count invariant");
    }

    #[test]
    fn sharded_center_admits_more_keyed_stateful_bidders() {
        // Two *stateful* bidders: grouped aggregates keyed by the shard
        // key (symbol), which execute inside the shards. Per-core capacity
        // fits roughly one aggregate's load; single-threaded the weaker
        // bid loses, while 2 worker shards double the priced capacity and
        // both stateful bidders fit — the auction now admits stateful
        // load beyond one core because the engine really absorbs it.
        use crate::plan::AggFunc;
        let agg = |threshold: f64| {
            LogicalPlan::source("quotes")
                .filter(Expr::col(1).gt(Expr::lit(Value::Float(threshold))))
                .aggregate(Some(0), AggFunc::Count, 0, 100)
        };
        let submissions = vec![
            Submission {
                user: UserId(0),
                bid: Money::from_dollars(90.0),
                plan: agg(10.0),
            },
            Submission {
                user: UserId(1),
                bid: Money::from_dollars(10.0),
                plan: agg(60.0),
            },
        ];
        for (shards, expected) in [(1usize, vec![true, false]), (2, vec![true, true])] {
            let mut c = DsmsCenter::new(Load::from_units(3.5), Box::new(Cat))
                .with_shards(shards)
                .with_shard_key("quotes", 0);
            c.register_stream("quotes", quote_schema());
            let record = c
                .run_auction(&submissions, &calibration_sample(2000))
                .unwrap();
            let admitted: Vec<bool> = record.decisions.iter().map(|d| d.admitted).collect();
            assert_eq!(admitted, expected, "shards={shards}");
        }
    }

    #[test]
    fn keyed_stateful_serving_matches_single_threaded() {
        use crate::plan::AggFunc;
        let plan = LogicalPlan::source("quotes")
            .filter(Expr::col(1).gt(Expr::lit(Value::Float(20.0))))
            .aggregate(Some(0), AggFunc::Avg, 1, 200);
        let run = |shards: usize| {
            let mut c = DsmsCenter::new(Load::from_units(1000.0), Box::new(Cat))
                .with_batch_size(32)
                .with_shards(shards)
                .with_shard_key("quotes", 0);
            c.register_stream("quotes", quote_schema());
            let record = c
                .run_auction(
                    &[Submission {
                        user: UserId(0),
                        bid: Money::from_dollars(30.0),
                        plan: plan.clone(),
                    }],
                    &calibration_sample(300),
                )
                .unwrap();
            let cq = record.decisions[0].cq.unwrap();
            let mut feed = StockStream::new(&["IBM", "AAPL", "MSFT"], 1, 7);
            c.process("quotes", feed.next_batch(800));
            c.take_outputs(cq)
        };
        let single = run(1);
        assert!(!single.is_empty());
        assert_eq!(
            single,
            run(4),
            "keyed stateful serving is shard-count invariant"
        );
    }

    #[test]
    fn invalid_bidder_rejected_pre_auction_with_diagnostics() {
        use crate::diag::Code;
        let mut c = center(1000.0);
        let submissions = vec![
            Submission {
                user: UserId(0),
                bid: Money::from_dollars(30.0),
                plan: high_price(100.0),
            },
            // Float group key AND zero window: statically invalid.
            Submission {
                user: UserId(1),
                bid: Money::from_dollars(500.0),
                plan: LogicalPlan::source("quotes").aggregate(
                    Some(1),
                    crate::plan::AggFunc::Count,
                    0,
                    0,
                ),
            },
        ];
        let record = c
            .run_auction(&submissions, &calibration_sample(300))
            .unwrap();
        // The valid bidder's day is unaffected by the invalid one.
        assert!(record.decisions[0].admitted);
        assert!(record.decisions[0].rejection.is_none());
        // The invalid bidder never entered the auction: not admitted, not
        // charged, and handed the full accumulated report.
        let rejected = &record.decisions[1];
        assert!(!rejected.admitted);
        assert_eq!(rejected.payment, Money::ZERO);
        assert_eq!(rejected.cq, None);
        let report = rejected.rejection.as_ref().expect("structured rejection");
        assert!(report.has_code(Code::UnhashableGroupKey));
        assert!(report.has_code(Code::ZeroWindow));
        assert_eq!(report.num_errors(), 2);
        assert_eq!(c.engine().network().num_queries(), 1);
    }

    #[test]
    fn revenue_accumulates_across_days() {
        let mut c = center(1.2);
        let submissions = vec![
            Submission {
                user: UserId(0),
                bid: Money::from_dollars(90.0),
                plan: high_price(100.0),
            },
            Submission {
                user: UserId(1),
                bid: Money::from_dollars(10.0),
                plan: high_price(150.0),
            },
        ];
        c.run_auction(&submissions, &calibration_sample(2000))
            .unwrap();
        c.run_auction(&submissions, &calibration_sample(2000))
            .unwrap();
        assert_eq!(c.ledger().len(), 2);
        assert!(c.total_revenue() > Money::ZERO);
        assert_eq!(
            c.total_revenue(),
            c.ledger()[0].profit + c.ledger()[1].profit
        );
    }
}
