//! The execution engine: deterministic push-based processing over the
//! shared query network, with Aurora-style connection points and the
//! end-of-subscription-day **transition phase** (§II of the paper).
//!
//! Determinism is a design requirement, not an optimization: the
//! transition-correctness guarantee ("CQs that continue to execute for the
//! next day produce correct results") is proved here *by test*, which needs
//! replay-exact runs. The engine is single-threaded, processes nodes in
//! ascending id order (a topological order — see `network.rs`), and uses
//! event-time watermarks for all windowing.

use crate::network::{CqId, NodeId, QueryNetwork, Target};
use crate::plan::StreamCatalog;
use crate::plan::{LogicalPlan, PlanError};
use crate::types::{Schema, Tuple};
use std::collections::{HashMap, VecDeque};

/// Per-stream ingestion statistics (for cost estimation).
#[derive(Clone, Debug, Default)]
pub struct StreamStats {
    /// Tuples pushed into the stream.
    pub count: u64,
    /// Smallest event timestamp seen.
    pub min_ts: u64,
    /// Largest event timestamp seen.
    pub max_ts: u64,
}

/// The DSMS engine: a query network plus run state.
#[derive(Debug)]
pub struct DsmsEngine {
    network: QueryNetwork,
    /// Pending inputs per node (port, tuple), FIFO.
    queues: HashMap<NodeId, VecDeque<(usize, Tuple)>>,
    /// Collected outputs per query sink.
    outputs: HashMap<CqId, Vec<Tuple>>,
    /// Maximum event time pushed so far (the watermark).
    watermark: u64,
    /// When true, arriving tuples are held at the connection points.
    holding: bool,
    /// Tuples held during a transition, in arrival order.
    held: VecDeque<(String, Tuple)>,
    /// Per-stream ingestion stats.
    stream_stats: HashMap<String, StreamStats>,
    /// Total tuples processed by operators (work measure).
    processed: u64,
}

impl Default for DsmsEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl DsmsEngine {
    /// An engine over an empty network.
    pub fn new() -> Self {
        Self {
            network: QueryNetwork::new(),
            queues: HashMap::new(),
            outputs: HashMap::new(),
            watermark: 0,
            holding: false,
            held: VecDeque::new(),
            stream_stats: HashMap::new(),
            processed: 0,
        }
    }

    /// The underlying network (read-only).
    pub fn network(&self) -> &QueryNetwork {
        &self.network
    }

    /// Registers an input stream.
    pub fn register_stream(&mut self, name: impl Into<String>, schema: Schema) {
        self.network.register_stream(name, schema);
    }

    /// Adds a continuous query. If the engine is mid-stream (not in an
    /// explicit transition), a mini transition runs automatically: hold,
    /// drain, modify, release — so in-flight tuples of existing queries are
    /// unaffected.
    pub fn add_query(&mut self, plan: LogicalPlan) -> Result<CqId, PlanError> {
        let auto = !self.holding;
        if auto {
            self.begin_transition();
        }
        let result = self.network.add_query(plan);
        if let Ok(cq) = result {
            self.outputs.entry(cq).or_default();
        }
        if auto {
            self.end_transition();
        }
        result
    }

    /// Removes a query (auto-transition as in [`DsmsEngine::add_query`]),
    /// discarding its undelivered outputs.
    pub fn remove_query(&mut self, cq: CqId) {
        let auto = !self.holding;
        if auto {
            self.begin_transition();
        }
        self.network.remove_query(cq);
        self.outputs.remove(&cq);
        if auto {
            self.end_transition();
        }
    }

    /// **Transition phase, step 1** (§II): upstream connection points start
    /// holding arriving tuples, and the subnetwork queues are drained so
    /// every in-flight tuple reaches its sinks.
    pub fn begin_transition(&mut self) {
        assert!(!self.holding, "transition already in progress");
        self.run_until_quiescent();
        self.holding = true;
    }

    /// **Transition phase, step 2**: after the query planner modified the
    /// network, the held tuples are input *before* newly arriving ones.
    pub fn end_transition(&mut self) {
        assert!(self.holding, "no transition in progress");
        self.holding = false;
        while let Some((stream, tuple)) = self.held.pop_front() {
            self.route_from_stream(&stream, tuple);
        }
        self.run_until_quiescent();
    }

    /// True while a transition is holding tuples.
    pub fn in_transition(&self) -> bool {
        self.holding
    }

    /// Number of tuples currently held at connection points.
    pub fn held_tuples(&self) -> usize {
        self.held.len()
    }

    /// Pushes one tuple into a stream. During a transition it is held at
    /// the stream's connection point; otherwise it is routed and processed
    /// on the next [`DsmsEngine::run_until_quiescent`].
    pub fn push(&mut self, stream: &str, tuple: Tuple) {
        debug_assert!(
            self.network
                .stream_schema(stream)
                .is_some_and(|s| tuple.conforms_to(s)),
            "tuple does not conform to stream '{stream}'"
        );
        let stats = self.stream_stats.entry(stream.to_string()).or_default();
        if stats.count == 0 {
            stats.min_ts = tuple.ts;
        }
        stats.count += 1;
        stats.max_ts = stats.max_ts.max(tuple.ts);
        if self.holding {
            self.held.push_back((stream.to_string(), tuple));
        } else {
            self.route_from_stream(stream, tuple);
        }
    }

    /// Pushes a batch and processes to quiescence.
    pub fn push_batch<I: IntoIterator<Item = (String, Tuple)>>(&mut self, tuples: I) {
        for (stream, tuple) in tuples {
            self.push(&stream, tuple);
        }
        if !self.holding {
            self.run_until_quiescent();
        }
    }

    fn route_from_stream(&mut self, stream: &str, tuple: Tuple) {
        self.watermark = self.watermark.max(tuple.ts);
        // Clone the subscriber list (tiny) to appease the borrow checker.
        let subs: Vec<Target> = self.network.stream_subscribers(stream).to_vec();
        for target in subs {
            self.route(target, tuple.clone());
        }
    }

    fn route(&mut self, target: Target, tuple: Tuple) {
        match target {
            Target::Node(id, port) => {
                self.queues.entry(id).or_default().push_back((port, tuple));
            }
            Target::Sink(cq) => {
                self.outputs.entry(cq).or_default().push(tuple);
            }
        }
    }

    /// Processes every queued tuple and propagates the watermark until the
    /// network is quiescent.
    pub fn run_until_quiescent(&mut self) {
        let mut out_buf: Vec<Tuple> = Vec::new();
        loop {
            let mut any = false;
            for id in self.network.node_ids() {
                // Drain the node's input queue.
                while let Some((port, tuple)) =
                    self.queues.get_mut(&id).and_then(VecDeque::pop_front)
                {
                    any = true;
                    self.processed += 1;
                    out_buf.clear();
                    {
                        let node = self.network.node_mut(id).expect("live node");
                        node.in_count += 1;
                        node.op.process(port, &tuple, &mut out_buf);
                        node.out_count += out_buf.len() as u64;
                    }
                    self.dispatch(id, &mut out_buf);
                }
                // Propagate the watermark once per value per node.
                let needs_watermark = self
                    .network
                    .node(id)
                    .is_some_and(|n| n.last_watermark < self.watermark);
                if needs_watermark {
                    out_buf.clear();
                    {
                        let node = self.network.node_mut(id).expect("live node");
                        node.op.advance_watermark(self.watermark, &mut out_buf);
                        node.last_watermark = self.watermark;
                        node.out_count += out_buf.len() as u64;
                    }
                    if !out_buf.is_empty() {
                        any = true;
                    }
                    self.dispatch(id, &mut out_buf);
                }
            }
            if !any {
                break;
            }
        }
    }

    fn dispatch(&mut self, from: NodeId, out_buf: &mut Vec<Tuple>) {
        if out_buf.is_empty() {
            return;
        }
        let targets: Vec<Target> = self
            .network
            .node(from)
            .expect("live node")
            .downstream
            .clone();
        for tuple in out_buf.drain(..) {
            for &target in &targets {
                self.route(target, tuple.clone());
            }
        }
    }

    /// Force-closes all windowed state (the end of the *final* day) and
    /// drains the resulting outputs.
    pub fn finish(&mut self) {
        self.run_until_quiescent();
        let mut out_buf: Vec<Tuple> = Vec::new();
        for id in self.network.node_ids() {
            out_buf.clear();
            {
                let node = self.network.node_mut(id).expect("live node");
                node.op.finish(&mut out_buf);
                node.out_count += out_buf.len() as u64;
            }
            self.dispatch(id, &mut out_buf);
        }
        self.run_until_quiescent();
    }

    /// Takes (and clears) the collected outputs of a query.
    pub fn take_outputs(&mut self, cq: CqId) -> Vec<Tuple> {
        self.outputs.get_mut(&cq).map(std::mem::take).unwrap_or_default()
    }

    /// Peeks at a query's collected outputs.
    pub fn outputs(&self, cq: CqId) -> &[Tuple] {
        self.outputs.get(&cq).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The current watermark (max event time pushed).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Total operator invocations so far (a machine-independent work
    /// measure).
    pub fn tuples_processed(&self) -> u64 {
        self.processed
    }

    /// Ingestion statistics per stream.
    pub fn stream_stats(&self) -> &HashMap<String, StreamStats> {
        &self.stream_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::AggFunc;
    use crate::types::{DataType, Field, Value};

    fn quote_schema() -> Schema {
        Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("price", DataType::Float),
        ])
    }

    fn quote(ts: u64, sym: &str, price: f64) -> Tuple {
        Tuple::new(ts, vec![Value::str(sym), Value::Float(price)])
    }

    fn engine_with_quotes() -> DsmsEngine {
        let mut e = DsmsEngine::new();
        e.register_stream("quotes", quote_schema());
        e
    }

    fn high_filter() -> LogicalPlan {
        LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))))
    }

    #[test]
    fn filter_end_to_end() {
        let mut e = engine_with_quotes();
        let cq = e.add_query(high_filter()).unwrap();
        e.push("quotes", quote(1, "IBM", 120.0));
        e.push("quotes", quote(2, "IBM", 80.0));
        e.push("quotes", quote(3, "AAPL", 130.0));
        e.run_until_quiescent();
        let out = e.take_outputs(cq);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].ts, 1);
        assert_eq!(out[1].ts, 3);
        assert!(e.take_outputs(cq).is_empty(), "take drains");
    }

    #[test]
    fn shared_filter_feeds_both_sinks() {
        let mut e = engine_with_quotes();
        let q1 = e.add_query(high_filter()).unwrap();
        let q2 = e.add_query(high_filter()).unwrap();
        e.push("quotes", quote(1, "IBM", 120.0));
        e.run_until_quiescent();
        assert_eq!(e.outputs(q1).len(), 1);
        assert_eq!(e.outputs(q2).len(), 1);
        // The shared node processed the tuple once.
        let node = e.network().query(q1).unwrap().nodes[0];
        assert_eq!(e.network().node(node).unwrap().in_count, 1);
    }

    #[test]
    fn aggregate_emits_on_watermark() {
        let mut e = engine_with_quotes();
        let cq = e
            .add_query(LogicalPlan::source("quotes").aggregate(None, AggFunc::Count, 0, 100))
            .unwrap();
        e.push_batch([
            ("quotes".to_string(), quote(10, "A", 1.0)),
            ("quotes".to_string(), quote(20, "A", 1.0)),
        ]);
        assert!(e.outputs(cq).is_empty(), "window still open");
        e.push_batch([("quotes".to_string(), quote(150, "A", 1.0))]);
        let out = e.take_outputs(cq);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values[1], Value::Int(2));
    }

    #[test]
    fn join_across_streams() {
        let mut e = engine_with_quotes();
        e.register_stream(
            "news",
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("headline", DataType::Str),
            ]),
        );
        let plan = high_filter().join(LogicalPlan::source("news"), 0, 0, 50);
        let cq = e.add_query(plan).unwrap();
        e.push("quotes", quote(100, "IBM", 150.0));
        e.push(
            "news",
            Tuple::new(120, vec![Value::str("IBM"), Value::str("beats earnings")]),
        );
        e.run_until_quiescent();
        let out = e.take_outputs(cq);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values.len(), 4);
    }

    #[test]
    fn transition_holds_and_releases_in_order() {
        let mut e = engine_with_quotes();
        let cq = e.add_query(high_filter()).unwrap();
        e.push("quotes", quote(1, "IBM", 120.0));
        e.begin_transition();
        e.push("quotes", quote(2, "IBM", 130.0));
        e.push("quotes", quote(3, "IBM", 140.0));
        assert_eq!(e.held_tuples(), 2);
        assert_eq!(e.outputs(cq).len(), 1, "pre-transition tuple delivered");
        e.end_transition();
        let out = e.take_outputs(cq);
        assert_eq!(out.len(), 3);
        assert_eq!(out.iter().map(|t| t.ts).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn mid_stream_query_addition_does_not_disturb_existing() {
        let mut reference = engine_with_quotes();
        let ref_cq = reference.add_query(high_filter()).unwrap();

        let mut e = engine_with_quotes();
        let cq = e.add_query(high_filter()).unwrap();

        let tuples: Vec<Tuple> = (0..20).map(|i| quote(i, "IBM", 90.0 + i as f64)).collect();
        for (i, t) in tuples.iter().enumerate() {
            reference.push("quotes", t.clone());
            e.push("quotes", t.clone());
            if i == 10 {
                // Add an unrelated query mid-stream.
                e.add_query(
                    LogicalPlan::source("quotes")
                        .filter(Expr::col(0).eq(Expr::lit(Value::str("AAPL")))),
                )
                .unwrap();
            }
        }
        reference.run_until_quiescent();
        e.run_until_quiescent();
        assert_eq!(
            reference.take_outputs(ref_cq),
            e.take_outputs(cq),
            "continuing query output must be unaffected by the transition"
        );
    }

    #[test]
    fn finish_flushes_open_windows() {
        let mut e = engine_with_quotes();
        let cq = e
            .add_query(LogicalPlan::source("quotes").aggregate(None, AggFunc::Count, 0, 1000))
            .unwrap();
        e.push_batch([("quotes".to_string(), quote(10, "A", 1.0))]);
        assert!(e.outputs(cq).is_empty());
        e.finish();
        assert_eq!(e.outputs(cq).len(), 1);
    }

    #[test]
    fn stats_track_streams_and_work() {
        let mut e = engine_with_quotes();
        e.add_query(high_filter()).unwrap();
        e.push_batch((0..5).map(|i| ("quotes".to_string(), quote(i, "A", 120.0))));
        let stats = &e.stream_stats()["quotes"];
        assert_eq!(stats.count, 5);
        assert_eq!(stats.min_ts, 0);
        assert_eq!(stats.max_ts, 4);
        assert_eq!(e.tuples_processed(), 5);
    }

    #[test]
    fn removed_query_stops_producing() {
        let mut e = engine_with_quotes();
        let q1 = e.add_query(high_filter()).unwrap();
        let q2 = e.add_query(high_filter()).unwrap();
        e.push_batch([("quotes".to_string(), quote(1, "A", 120.0))]);
        e.remove_query(q1);
        e.push_batch([("quotes".to_string(), quote(2, "A", 130.0))]);
        assert_eq!(e.outputs(q2).len(), 2);
        assert!(e.outputs(q1).is_empty());
    }
}
