//! The execution engine: deterministic batched push processing over the
//! shared query network, with Aurora-style connection points and the
//! end-of-subscription-day **transition phase** (§II of the paper).
//!
//! Determinism is a design requirement, not an optimization: the
//! transition-correctness guarantee ("CQs that continue to execute for the
//! next day produce correct results") is proved here *by test*, which needs
//! replay-exact runs. The engine is single-threaded, processes nodes in
//! ascending id order (a topological order — see `network.rs`), and uses
//! event-time watermarks for all windowing.
//!
//! ## Batched execution
//!
//! The unit of work everywhere is a [`TupleBatch`], never a lone tuple:
//!
//! * **Ingestion** groups consecutive same-stream tuples into batches of at
//!   most [`DsmsEngine::max_batch_size`] rows (grouping only *consecutive*
//!   runs keeps the global arrival order intact, so batched results equal
//!   scalar results row for row for single-input pipelines, and as
//!   multisets for multi-port operators — the tested scalar-vs-batched
//!   property; see the crate docs for why the weaker multi-port guarantee
//!   is inherent).
//! * **Node queues** hold `(port, batch)` pairs; one `process_batch` call
//!   amortizes queue traffic, downstream fan-out, watermark checks, and the
//!   per-node timing probe over the whole batch.
//! * **Fan-out is `Arc`-shared and copy-on-write**: a produced batch is
//!   wrapped in one `Arc` and every downstream target receives a pointer
//!   clone. Sinks *keep* the shared batch (rows materialize only when
//!   outputs are read), and a node consumer that cannot take the last
//!   reference clones the batch **by pointer** — [`TupleBatch`]'s
//!   timestamp vector and column list are themselves `Arc`-shared, so `k`
//!   node consumers and any number of sinks cost zero column-data copies.
//!   Data is copied only if a holder *mutates* a still-shared batch
//!   (counted by
//!   [`crate::types::work::WorkSnapshot::batch_deep_clones`]), which the
//!   engine's operators never do: readers read shared columns, writers
//!   build fresh batches.
//! * **Connection points** hold whole batches during a transition and
//!   replay them, in order, ahead of newly arriving data.
//!
//! [`DsmsEngine::push`] survives as the one-tuple convenience wrapper;
//! [`DsmsEngine::push_batch`] / [`DsmsEngine::push_rows`] are the primary
//! ingestion paths.

use crate::diag::{Code, Diagnostic, Report, Span};
use crate::fault::{FaultPlan, WorkerDeath};
use crate::network::{CqId, KeyedPlan, NodeId, QueryInfo, QueryNetwork, StreamPrefix, Target};
use crate::ops::{KeyedKernel, ShardKernel};
use crate::plan::StreamCatalog;
use crate::plan::{LogicalPlan, PlanError};
use crate::types::{work, MergeTags, Schema, Tuple, TupleBatch};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Checks that `column` is a hashable (non-float) column of `schema` —
/// the shard-key contract, enforced at whichever of
/// [`DsmsEngine::set_shard_key`] / [`DsmsEngine::register_stream`] runs
/// second. Static analysis reports violations as diagnostic NL014
/// ([`crate::diag::Code::BadShardKey`]).
fn validate_shard_key(schema: &Schema, stream: &str, column: usize) -> Result<(), PlanError> {
    crate::diag::check_shard_key(schema, stream, column)
        .first_error()
        .map_or(Ok(()), Err)
}

/// A structured ingestion failure — what the fallible ingestion paths
/// ([`DsmsEngine::try_push`] / [`DsmsEngine::try_push_rows`] /
/// [`DsmsEngine::try_push_batch`]) return instead of panicking. The
/// panicking wrappers delegate here and panic with the [`Display`]
/// rendering, so the hardening message cannot drift between paths.
///
/// [`Display`]: std::fmt::Display
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// The stream was never registered with the engine.
    UnknownStream {
        /// The unregistered stream name.
        stream: String,
    },
    /// A tuple does not conform to the stream's registered schema.
    NonConforming {
        /// The stream whose schema was violated.
        stream: String,
        /// Index of the offending row among the rows of the failed call.
        row: usize,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::UnknownStream { stream } => {
                write!(
                    f,
                    "unknown stream '{stream}': call register_stream before pushing"
                )
            }
            IngestError::NonConforming { stream, row } => {
                write!(f, "row {row} does not conform to stream '{stream}'")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// The deterministic overload guardrail (see
/// [`DsmsEngine::set_overload_policy`]): bounds how many rows one flush
/// may carry into the network. When pending ingestion exceeds the budget,
/// whole batches are shed lowest-priority stream first (see
/// [`DsmsEngine::set_stream_priority`]) until the flush fits.
#[derive(Clone, Debug)]
pub struct OverloadPolicy {
    /// Maximum ingested rows one flush may carry into the network.
    pub max_rows_per_flush: u64,
}

/// One quarantine incident: a kernel panic attributed to its physical
/// node and resolved against the owning continuous queries (see the
/// crate docs' *Robustness & failure semantics* section). Collected via
/// [`DsmsEngine::take_quarantine_events`].
#[derive(Debug)]
pub struct QuarantineEvent {
    /// The physical node whose kernel panicked.
    pub node: NodeId,
    /// The node's operator kind (one of [`crate::ops::OPERATOR_KINDS`]).
    pub kind: &'static str,
    /// The panic's message.
    pub message: String,
    /// Every query quarantined by this incident (all owners of the
    /// panicked node), ascending.
    pub queries: Vec<CqId>,
    /// Structured diagnostics: one `NL060` at the node span plus one
    /// `NL061` per quarantined query.
    pub report: Report,
}

/// A node's pending inputs: `(port, batch, deferred selection)`.
type QueueEntries = VecDeque<(usize, Arc<TupleBatch>, Option<Arc<Vec<u32>>>)>;

/// Per-stream ingestion statistics (for cost estimation).
#[derive(Clone, Debug, Default)]
pub struct StreamStats {
    /// Tuples pushed into the stream.
    pub count: u64,
    /// Smallest event timestamp seen.
    pub min_ts: u64,
    /// Largest event timestamp seen.
    pub max_ts: u64,
    /// Rows routed to each worker shard (empty until the stream feeds a
    /// sharded run; index = shard id).
    pub shard_rows: Vec<u64>,
    /// Rows shed from this stream by the overload guardrail (whole
    /// batches, counted before partitioning — shard-count-invariant; see
    /// [`DsmsEngine::set_overload_policy`]).
    pub rows_shed: u64,
}

/// Per-shard execution statistics of the parallel executor (all zero while
/// the engine runs single-threaded).
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// Rows this shard's workers fed into prefix operators.
    pub rows: u64,
    /// Sub-batches this shard processed.
    pub batches: u64,
    /// Wall-clock time this shard spent inside prefix operator calls (sums
    /// across shards into the same per-node `busy` totals the measured
    /// cost model reads).
    pub busy: Duration,
    /// The shard's watermark: the largest event timestamp it has
    /// processed. Per-shard watermarks merge into the engine watermark by
    /// maximum, so no shard can ever run ahead of the merged value.
    pub max_ts: u64,
}

impl StreamStats {
    /// Records one ingested tuple's event time (shared by every ingestion
    /// path, so the invariants cannot diverge between them).
    fn note(&mut self, ts: u64) {
        if self.count == 0 {
            self.min_ts = ts;
        }
        self.count += 1;
        self.max_ts = self.max_ts.max(ts);
    }
}

/// The DSMS engine: a query network plus run state.
#[derive(Debug)]
pub struct DsmsEngine {
    network: QueryNetwork,
    /// Pending input batches per node `(port, batch, selection)`, FIFO.
    /// Batches are `Arc`-shared with every other consumer of the same
    /// producing call. The optional selection is a deferred filter result
    /// (batch-row indices): pure filters forward `(batch, selection)`
    /// instead of gathering survivors, filters downstream refine it, and
    /// stateful consumers absorb straight through it (selection pushdown,
    /// counted by [`work::WorkSnapshot::selection_pushdown_rows`]); any
    /// other consumer gathers once on entry.
    queues: HashMap<NodeId, QueueEntries>,
    /// Ingested batches not yet routed into node queues (routed at the
    /// start of the next [`DsmsEngine::run_until_quiescent`]).
    ingest: VecDeque<(String, TupleBatch)>,
    /// Collected output batches per query sink, `Arc`-shared across sinks
    /// (rows materialize when outputs are read).
    outputs: HashMap<CqId, Vec<Arc<TupleBatch>>>,
    /// Maximum event time routed so far (the watermark).
    watermark: u64,
    /// When true, arriving batches are held at the connection points.
    holding: bool,
    /// Batches held during a transition, in arrival order.
    held: VecDeque<(String, TupleBatch)>,
    /// Per-stream ingestion stats.
    stream_stats: HashMap<String, StreamStats>,
    /// Total tuples processed by operators (work measure).
    processed: u64,
    /// Total batches processed by operators.
    batches: u64,
    /// Ingestion batch-size cap.
    max_batch_size: usize,
    /// When true (the default), operator calls are wall-clock timed so the
    /// measured cost model can normalize per-batch work to per-tuple load.
    timing: bool,
    /// Per-stream shard-key column for hash partitioning (streams without
    /// one fall back to round-robin batch distribution).
    shard_keys: HashMap<String, usize>,
    /// Per-stream round-robin cursor for keyless shard distribution.
    shard_rr: HashMap<String, usize>,
    /// Per-shard execution statistics (length = shard count).
    shard_stats: Vec<ShardStats>,
    /// Cached stateless-prefix topologies, invalidated whenever the
    /// network changes shape.
    prefix_cache: HashMap<String, Arc<StreamPrefix>>,
    /// Cached keyed plan (all hash-partitioned streams at once),
    /// invalidated whenever the network or the shard keys change.
    keyed_cache: Option<Arc<KeyedPlan>>,
    /// Merged shard outputs awaiting dispatch: `(producer node id,
    /// targets, batch)` in ascending `(node, entry)` order. The control
    /// loop dispatches a producer's pending batches exactly when its node
    /// loop reaches that producer, reproducing the single-threaded
    /// dispatch interleaving with out-of-plan nodes.
    merged_pending: VecDeque<(u32, Vec<Target>, TupleBatch)>,
    /// The persistent worker pool (threads spawn lazily on the first
    /// parallel flush and park between flushes).
    pool: WorkerPool,
    /// Morsel granularity: how many work units (partitioned sub-batches)
    /// one morsel carries.
    morsel_batches: usize,
    /// Whether idle workers steal morsels from busy workers' deque tails.
    stealing: bool,
    /// Whether the adaptive morsel controller drives the effective grain
    /// (`morsel_batches` is then its ceiling). Off by default.
    adaptive_morsels: bool,
    /// The adaptive controller's cost statistics (per keyless stream +
    /// one class for the keyed plan), fed by per-morsel
    /// [`work::WorkSnapshot::cost_units`] deltas.
    adaptive: AdaptiveState,
    /// The fault-injection plan driving soak tests and benches (`None` —
    /// inert — outside them).
    fault: Option<Arc<FaultPlan>>,
    /// Kernel panics caught but not yet resolved into quarantines:
    /// `(node id, panic message)`, in catch order.
    pending_panics: Vec<(u32, String)>,
    /// Resolved quarantine incidents awaiting
    /// [`DsmsEngine::take_quarantine_events`].
    quarantine_log: Vec<QuarantineEvent>,
    /// Reentrancy guard: quarantining excises queries through the
    /// transition machinery, which recurses into
    /// [`DsmsEngine::run_until_quiescent`].
    quarantining: bool,
    /// The overload guardrail (`None` = never shed).
    overload: Option<OverloadPolicy>,
    /// Per-stream shedding priority: lower sheds first; absent = 0. The
    /// center refreshes this after every auction with each stream's
    /// highest admitted bid.
    stream_priority: HashMap<String, u64>,
    /// Runtime robustness diagnostics accumulated across flushes
    /// (`NL060`–`NL062`), exposed via [`DsmsEngine::runtime_report`].
    runtime_report: Report,
}

impl Default for DsmsEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl DsmsEngine {
    /// An engine over an empty network.
    pub fn new() -> Self {
        Self {
            network: QueryNetwork::new(),
            queues: HashMap::new(),
            ingest: VecDeque::new(),
            outputs: HashMap::new(),
            watermark: 0,
            holding: false,
            held: VecDeque::new(),
            stream_stats: HashMap::new(),
            processed: 0,
            batches: 0,
            max_batch_size: TupleBatch::DEFAULT_MAX_BATCH,
            timing: true,
            shard_keys: HashMap::new(),
            shard_rr: HashMap::new(),
            shard_stats: vec![ShardStats::default()],
            prefix_cache: HashMap::new(),
            keyed_cache: None,
            merged_pending: VecDeque::new(),
            pool: WorkerPool::default(),
            morsel_batches: 1,
            stealing: true,
            adaptive_morsels: false,
            adaptive: AdaptiveState::default(),
            fault: None,
            pending_panics: Vec::new(),
            quarantine_log: Vec::new(),
            quarantining: false,
            overload: None,
            stream_priority: HashMap::new(),
            runtime_report: Report::new(),
        }
    }

    /// Sets the ingestion batch-size cap (builder form).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn with_max_batch_size(mut self, n: usize) -> Self {
        self.set_max_batch_size(n);
        self
    }

    /// Sets the ingestion batch-size cap. `1` degrades to per-tuple
    /// execution (useful for benchmarking the batching win itself).
    pub fn set_max_batch_size(&mut self, n: usize) {
        assert!(n > 0, "batch size must be positive");
        self.max_batch_size = n;
    }

    /// The current ingestion batch-size cap.
    pub fn max_batch_size(&self) -> usize {
        self.max_batch_size
    }

    /// Enables or disables stateless-operator fusion for subsequently added
    /// queries (builder form; see
    /// [`crate::network::QueryNetwork::set_fusion_enabled`]).
    pub fn with_fusion(mut self, enabled: bool) -> Self {
        self.set_fusion(enabled);
        self
    }

    /// Enables or disables stateless-operator fusion for subsequently added
    /// queries. On by default; turning it off recovers one physical node
    /// per logical operator (useful for benchmarking the fusion win
    /// itself).
    pub fn set_fusion(&mut self, enabled: bool) {
        self.network.set_fusion_enabled(enabled);
    }

    /// Whether stateless-operator fusion is enabled.
    pub fn fusion_enabled(&self) -> bool {
        self.network.fusion_enabled()
    }

    /// Sets the worker-shard count (builder form; see
    /// [`DsmsEngine::set_shards`]).
    pub fn with_shards(mut self, n: usize) -> Self {
        self.set_shards(n);
        self
    }

    /// Sets the worker-shard count — the knob next to the batch-size and
    /// fusion knobs. `1` (the default) compiles down to the single-threaded
    /// path; `n > 1` runs each stream's stateless prefix (filters,
    /// projections, fused chains) on `n` worker threads and merges shard
    /// outputs deterministically before stateful operators and sinks, so
    /// outputs are bit-identical to the single-threaded engine regardless
    /// of shard count.
    ///
    /// Changing the count resets the per-shard statistics
    /// ([`DsmsEngine::shard_stats`], [`StreamStats::shard_rows`]) and the
    /// round-robin cursors — shard ids mean nothing across different
    /// shard counts.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn set_shards(&mut self, n: usize) {
        if n == self.network.shards() {
            return;
        }
        self.network.set_shards(n);
        self.shard_stats = vec![ShardStats::default(); n];
        for stats in self.stream_stats.values_mut() {
            stats.shard_rows.clear();
        }
        self.shard_rr.clear();
    }

    /// The worker-shard count.
    pub fn shards(&self) -> usize {
        self.network.shards()
    }

    /// Configures hash partitioning for a stream: rows are distributed to
    /// shards by a deterministic hash of `column` (builder form).
    ///
    /// # Panics
    /// Panics when the stream is registered and the key is out of range or
    /// a float (the fallible form is [`DsmsEngine::set_shard_key`]).
    pub fn with_shard_key(mut self, stream: &str, column: usize) -> Self {
        self.set_shard_key(stream, column)
            .expect("invalid shard key");
        self
    }

    /// Configures hash partitioning for a stream: rows are distributed to
    /// shards by a deterministic (FNV-1a) hash of `column`, so equal keys
    /// always land on the same shard. Streams without a shard key
    /// distribute whole ingestion batches round-robin instead. Either way
    /// the deterministic merge keeps outputs identical to the
    /// single-threaded run.
    ///
    /// May be called before the stream is registered (so the builder forms
    /// chain in any order); validation then happens at
    /// [`DsmsEngine::register_stream`].
    ///
    /// # Errors
    /// Returns [`PlanError::ShardKeyOutOfRange`] /
    /// [`PlanError::UnhashableShardKey`] — and leaves the configuration
    /// unchanged — when the stream is already registered and `column` is
    /// out of range or a float (floats are not hashable, exactly as for
    /// join and group keys). Rejecting here makes the release-mode shard
    /// fallback in `ops::shard_of_cell` unreachable by construction.
    pub fn set_shard_key(&mut self, stream: &str, column: usize) -> Result<(), PlanError> {
        if let Some(schema) = self.network.stream_schema(stream) {
            validate_shard_key(schema, stream, column)?;
        }
        self.shard_keys.insert(stream.to_string(), column);
        self.keyed_cache = None;
        Ok(())
    }

    /// The configured shard keys of every stream (stream → column).
    pub fn shard_keys(&self) -> &HashMap<String, usize> {
        &self.shard_keys
    }

    /// The configured shard-key column of a stream, if any.
    pub fn shard_key(&self, stream: &str) -> Option<usize> {
        self.shard_keys.get(stream).copied()
    }

    /// Per-shard execution statistics (index = shard id; all zero until a
    /// sharded run happens).
    ///
    /// With work stealing enabled the index is the **executing worker**,
    /// not the partition-time home shard, so a zipf-skewed key
    /// distribution still shows near-balanced rows here (the home-shard
    /// skew stays visible in [`StreamStats::shard_rows`]).
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.shard_stats
    }

    /// Sets the morsel granularity (builder form; see
    /// [`DsmsEngine::set_morsel_batches`]).
    pub fn with_morsel_batches(mut self, n: usize) -> Self {
        self.set_morsel_batches(n);
        self
    }

    /// Sets the morsel granularity: how many work units (hash-partitioned
    /// sub-batches or round-robin source batches) one morsel carries. `1`
    /// (the default) maximizes stealable parallelism; larger morsels
    /// amortize deque traffic at the cost of coarser rebalancing. Outputs
    /// are bit-identical at every setting.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn set_morsel_batches(&mut self, n: usize) {
        assert!(n > 0, "morsel size must be positive");
        self.morsel_batches = n;
    }

    /// The current morsel granularity.
    pub fn morsel_batches(&self) -> usize {
        self.morsel_batches
    }

    /// Enables or disables work stealing (builder form; see
    /// [`DsmsEngine::set_stealing`]).
    pub fn with_stealing(mut self, enabled: bool) -> Self {
        self.set_stealing(enabled);
        self
    }

    /// Enables or disables work stealing between the pool workers. On by
    /// default: an idle worker pops morsels from the tails of busy
    /// workers' deques, so skewed key distributions rebalance across
    /// cores. Disabling pins every morsel to its home shard's worker
    /// (fork/join behavior). Outputs are bit-identical either way.
    pub fn set_stealing(&mut self, enabled: bool) {
        self.stealing = enabled;
    }

    /// Whether work stealing is enabled.
    pub fn stealing(&self) -> bool {
        self.stealing
    }

    /// Enables adaptive morsel sizing (builder form; see
    /// [`DsmsEngine::set_adaptive_morsels`]).
    pub fn with_adaptive_morsels(mut self, enabled: bool) -> Self {
        self.set_adaptive_morsels(enabled);
        self
    }

    /// Enables or disables the adaptive morsel controller. Off by
    /// default: every flush then cuts morsels at exactly
    /// [`DsmsEngine::morsel_batches`] units, bit-for-bit today's static
    /// behavior. When on, that knob becomes the **ceiling** of a
    /// controller that tracks per-morsel execution cost (deterministic
    /// [`work::WorkSnapshot::cost_units`], not wall clock) in a
    /// per-stream EWMA + spread estimate: a high spread across a flush's
    /// morsels (skew) shrinks the effective grain toward 1 so stealing
    /// rebalances at fine granularity, a uniform cost profile grows it
    /// back toward the ceiling to amortize deque traffic. Grain changes
    /// are counted ([`work::WorkSnapshot::adaptive_resizes`]); the grain
    /// for a flush is computed only from *prior* flushes' statistics, so
    /// the morsel cutting — and therefore the whole resize trace — is a
    /// deterministic function of the input. Outputs are bit-identical
    /// either way.
    pub fn set_adaptive_morsels(&mut self, enabled: bool) {
        self.adaptive_morsels = enabled;
    }

    /// Whether adaptive morsel sizing is enabled.
    pub fn adaptive_morsels(&self) -> bool {
        self.adaptive_morsels
    }

    /// Enables or disables per-batch operator timing. On by default (the
    /// measured cost model needs it); disable for maximum-throughput
    /// serving when only analytic costs are used.
    pub fn set_timing(&mut self, enabled: bool) {
        self.timing = enabled;
    }

    /// The underlying network (read-only).
    pub fn network(&self) -> &QueryNetwork {
        &self.network
    }

    /// Registers an input stream, validating any shard key configured
    /// ahead of registration (see [`DsmsEngine::set_shard_key`]) against
    /// the schema — the fallible twin of
    /// [`DsmsEngine::register_stream`], matching `set_shard_key`'s own
    /// error path when the calls arrive in the other order.
    pub fn try_register_stream(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
    ) -> Result<(), PlanError> {
        let name = name.into();
        if let Some(&column) = self.shard_keys.get(&name) {
            validate_shard_key(&schema, &name, column)?;
        }
        self.network.register_stream(name, schema);
        self.prefix_cache.clear();
        self.keyed_cache = None;
        Ok(())
    }

    /// Registers an input stream.
    ///
    /// # Panics
    /// Panics when a shard key configured ahead of registration (see
    /// [`DsmsEngine::set_shard_key`]) does not fit the schema — use
    /// [`DsmsEngine::try_register_stream`] to handle that structurally.
    pub fn register_stream(&mut self, name: impl Into<String>, schema: Schema) {
        self.try_register_stream(name, schema)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Adds a continuous query. If the engine is mid-stream (not in an
    /// explicit transition), a mini transition runs automatically: hold,
    /// drain, modify, release — so in-flight tuples of existing queries are
    /// unaffected.
    pub fn add_query(&mut self, plan: LogicalPlan) -> Result<CqId, PlanError> {
        let auto = !self.holding;
        if auto {
            self.begin_transition();
        }
        let result = self.network.add_query(plan);
        self.prefix_cache.clear();
        self.keyed_cache = None;
        if let Ok(cq) = result {
            self.outputs.entry(cq).or_default();
        }
        if auto {
            self.end_transition();
        }
        result
    }

    /// Removes a query (auto-transition as in [`DsmsEngine::add_query`]),
    /// discarding its undelivered outputs. Returns the removed query's
    /// info, or `None` if no such query is registered (idempotent).
    pub fn remove_query(&mut self, cq: CqId) -> Option<QueryInfo> {
        let auto = !self.holding;
        if auto {
            self.begin_transition();
        }
        let info = self.network.remove_query(cq);
        self.prefix_cache.clear();
        self.keyed_cache = None;
        self.outputs.remove(&cq);
        if auto {
            self.end_transition();
        }
        info
    }

    /// **Transition phase, step 1** (§II): upstream connection points start
    /// holding arriving batches, and the subnetwork queues are drained so
    /// every in-flight tuple reaches its sinks.
    pub fn begin_transition(&mut self) {
        assert!(!self.holding, "transition already in progress");
        self.run_until_quiescent();
        self.holding = true;
    }

    /// **Transition phase, step 2**: after the query planner modified the
    /// network, the held batches are input *before* newly arriving ones.
    pub fn end_transition(&mut self) {
        assert!(self.holding, "no transition in progress");
        self.holding = false;
        debug_assert!(self.ingest.is_empty(), "ingest drained before holding");
        std::mem::swap(&mut self.ingest, &mut self.held);
        self.run_until_quiescent();
    }

    /// True while a transition is holding tuples.
    pub fn in_transition(&self) -> bool {
        self.holding
    }

    /// Number of tuples currently held at connection points.
    pub fn held_tuples(&self) -> usize {
        self.held.iter().map(|(_, b)| b.len()).sum()
    }

    /// Pushes one tuple into a stream — the fallible twin of
    /// [`DsmsEngine::push`]. Returns a structured [`IngestError`] for an
    /// unknown stream or a non-conforming tuple; on error nothing is
    /// buffered and no statistics move.
    pub fn try_push(&mut self, stream: &str, tuple: Tuple) -> Result<(), IngestError> {
        let Some(schema) = self.network.stream_schema(stream) else {
            return Err(IngestError::UnknownStream {
                stream: stream.to_string(),
            });
        };
        if !tuple.conforms_to(schema) {
            return Err(IngestError::NonConforming {
                stream: stream.to_string(),
                row: 0,
            });
        }
        self.stream_stats
            .entry(stream.to_string())
            .or_default()
            .note(tuple.ts);

        let max_batch_size = self.max_batch_size;
        let buffer = if self.holding {
            &mut self.held
        } else {
            &mut self.ingest
        };
        // Group into the current batch only while the stream matches and
        // the cap allows: consecutive runs preserve global arrival order.
        // The schema handle is needed only when a new batch starts, so the
        // coalescing fast path allocates nothing.
        match buffer.back_mut() {
            Some((s, batch)) if s == stream && batch.len() < max_batch_size => {
                batch.push(tuple);
            }
            _ => {
                let schema = self
                    .network
                    .stream_schema_arc(stream)
                    .expect("schema checked above")
                    .clone();
                let mut batch = TupleBatch::with_capacity(schema, 1);
                batch.push(tuple);
                buffer.push_back((stream.to_string(), batch));
            }
        }
        Ok(())
    }

    /// Pushes one tuple into a stream — a thin wrapper that appends to the
    /// current one-stream ingestion batch. During a transition the tuple is
    /// held at the stream's connection point; otherwise it is routed and
    /// processed on the next [`DsmsEngine::run_until_quiescent`].
    ///
    /// # Panics
    /// Panics when `stream` was never registered (batches carry their
    /// stream's schema, so an unknown stream cannot be buffered; this is
    /// deliberate hardening over the pre-batching engine, which silently
    /// dropped such tuples) or the tuple does not conform to its schema —
    /// use [`DsmsEngine::try_push`] to handle both structurally.
    pub fn push(&mut self, stream: &str, tuple: Tuple) {
        self.try_push(stream, tuple)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Pushes `(stream, tuple)` pairs — the fallible twin of
    /// [`DsmsEngine::push_batch`]. Stops at the first bad tuple (reported
    /// with its index among the pairs); tuples buffered before the error
    /// stay buffered but are not processed — a retry with the remainder,
    /// or any later successful push, carries them along.
    pub fn try_push_batch<I: IntoIterator<Item = (String, Tuple)>>(
        &mut self,
        tuples: I,
    ) -> Result<(), IngestError> {
        for (i, (stream, tuple)) in tuples.into_iter().enumerate() {
            self.try_push(&stream, tuple).map_err(|e| match e {
                IngestError::NonConforming { stream, .. } => {
                    IngestError::NonConforming { stream, row: i }
                }
                other => other,
            })?;
        }
        if !self.holding {
            self.run_until_quiescent();
        }
        Ok(())
    }

    /// Pushes `(stream, tuple)` pairs — grouping consecutive same-stream
    /// tuples into batches — and processes to quiescence. This is the
    /// primary ingestion path.
    ///
    /// # Panics
    /// Panics on an unknown stream or non-conforming tuple — use
    /// [`DsmsEngine::try_push_batch`] to handle both structurally.
    pub fn push_batch<I: IntoIterator<Item = (String, Tuple)>>(&mut self, tuples: I) {
        self.try_push_batch(tuples)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Pushes a whole column of rows for one stream — the fallible twin
    /// of [`DsmsEngine::push_rows`]. Validates every row against the
    /// stream's schema before buffering anything, so on error no row of
    /// the call is ingested and no statistics move.
    pub fn try_push_rows(&mut self, stream: &str, rows: Vec<Tuple>) -> Result<(), IngestError> {
        if rows.is_empty() {
            return Ok(());
        }
        let Some(schema) = self.network.stream_schema_arc(stream) else {
            return Err(IngestError::UnknownStream {
                stream: stream.to_string(),
            });
        };
        let schema = schema.clone();
        if let Some(row) = rows.iter().position(|t| !t.conforms_to(&schema)) {
            return Err(IngestError::NonConforming {
                stream: stream.to_string(),
                row,
            });
        }
        let stats = self.stream_stats.entry(stream.to_string()).or_default();
        for t in &rows {
            stats.note(t.ts);
        }
        let mut batch = TupleBatch::from_rows(schema, rows);
        let buffer = if self.holding {
            &mut self.held
        } else {
            &mut self.ingest
        };
        while batch.len() > self.max_batch_size {
            let rest = batch.split_off(self.max_batch_size);
            buffer.push_back((stream.to_string(), std::mem::replace(&mut batch, rest)));
        }
        buffer.push_back((stream.to_string(), batch));
        if !self.holding {
            self.run_until_quiescent();
        }
        Ok(())
    }

    /// Pushes a whole column of rows for one stream — the zero-overhead
    /// batched path (no per-tuple stream-name matching) — and processes to
    /// quiescence.
    ///
    /// # Panics
    /// Panics on an unknown stream or non-conforming row — use
    /// [`DsmsEngine::try_push_rows`] to handle both structurally.
    pub fn push_rows(&mut self, stream: &str, rows: Vec<Tuple>) {
        self.try_push_rows(stream, rows)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Advances the watermark to cover `ts`. Every routing path — single
    /// threaded or sharded — funnels through here, so the watermark can
    /// only move forward; the non-vacuous halves of that invariant are the
    /// `debug_assert`s in [`DsmsEngine::run_until_quiescent`] (no node is
    /// ever ahead of the engine watermark) and the per-shard
    /// `max_ts ≤ watermark` check after the parallel merge.
    fn advance_watermark_to(&mut self, ts: u64) {
        self.watermark = self.watermark.max(ts);
    }

    /// The deterministic load-shedding pass (see [`OverloadPolicy`]): when
    /// the pending ingestion exceeds the flush budget, sheds **whole
    /// batches, lowest-priority stream first** (ties broken by stream
    /// name; within a stream, newest arrivals first, so the oldest
    /// admitted data still flows), until the flush fits. Runs at the head
    /// of **both** flush paths, before any partitioning, on
    /// arrival-ordered whole batches — so the shed set, and with it
    /// [`work::WorkSnapshot::rows_shed`], is identical for every shard
    /// count. Shed batches never advance the watermark.
    fn apply_shedding(&mut self) {
        let Some(policy) = &self.overload else {
            return;
        };
        let budget = policy.max_rows_per_flush;
        let mut total: u64 = self.ingest.iter().map(|(_, b)| b.len() as u64).sum();
        if total <= budget {
            return;
        }
        work::count_overload_flush();
        while total > budget {
            let victim = self
                .ingest
                .iter()
                .map(|(s, _)| s)
                .min_by_key(|s| (self.stream_priority.get(*s).copied().unwrap_or(0), *s))
                .cloned();
            let Some(victim) = victim else {
                break;
            };
            let idx = self
                .ingest
                .iter()
                .rposition(|(s, _)| *s == victim)
                .expect("victim stream has a pending batch");
            let (stream, batch) = self.ingest.remove(idx).expect("index in range");
            let rows = batch.len() as u64;
            total -= rows;
            work::count_rows_shed(rows);
            self.stream_stats.entry(stream).or_default().rows_shed += rows;
        }
    }

    /// Routes ingested batches into node queues (and source-only sinks),
    /// advancing the watermark.
    fn flush_ingest(&mut self) {
        self.apply_shedding();
        while let Some((stream, batch)) = self.ingest.pop_front() {
            if let Some(ts) = batch.max_ts() {
                self.advance_watermark_to(ts);
            }
            // Clone the subscriber list (tiny) to appease the borrow checker.
            let subs: Vec<Target> = self.network.stream_subscribers(&stream).to_vec();
            self.route_shared(&subs, batch);
        }
    }

    /// Routes one batch to a target list with `Arc`-shared fan-out (every
    /// target gets a pointer clone of the same batch).
    fn route_shared(&mut self, targets: &[Target], batch: TupleBatch) {
        let Some((&last, rest)) = targets.split_last() else {
            return;
        };
        // One Arc for the whole fan-out: every target shares the batch.
        let shared = Arc::new(batch);
        for &target in rest {
            self.route(target, shared.clone());
        }
        self.route(last, shared);
    }

    /// The cached stateless-prefix topology of a stream.
    fn stream_prefix(&mut self, stream: &str) -> Arc<StreamPrefix> {
        if let Some(p) = self.prefix_cache.get(stream) {
            return p.clone();
        }
        let p = Arc::new(self.network.stateless_prefix(stream));
        self.prefix_cache.insert(stream.to_string(), p.clone());
        p
    }

    /// The cached keyed plan over every hash-partitioned stream.
    fn keyed_plan(&mut self) -> Arc<KeyedPlan> {
        if let Some(p) = &self.keyed_cache {
            return p.clone();
        }
        let p = Arc::new(self.network.keyed_plan(&self.shard_keys));
        self.keyed_cache = Some(p.clone());
        p
    }

    /// The shard-parallel twin of [`DsmsEngine::flush_ingest`]:
    ///
    /// 1. **Partition.** Streams with a shard key hash-partition row by
    ///    row (same key, same shard; rows carry their pre-partition index
    ///    as a sequence tag) into the multi-stream **keyed plan** —
    ///    stateless prefixes *plus* every compatibly keyed join and
    ///    aggregate (see [`QueryNetwork::keyed_plan`]). Keyless streams
    ///    distribute whole batches round-robin into their stateless
    ///    prefixes. Subscribers outside both plans (shard-incompatible
    ///    operators, sinks) receive the raw batch at flush time, exactly
    ///    like the single-threaded path.
    /// 2. **Morsel-driven execution on the pool.** The flush's units are
    ///    cut into [`Morsel`]s on per-worker deques and one job per worker
    ///    runs on the persistent [`WorkerPool`] (threads spawn once, then
    ///    park between flushes): each worker drains its own deque head
    ///    first, then steals from the other deques' tails
    ///    ([`MorselScheduler`]), so skewed key distributions rebalance.
    ///    Round-robin morsels walk their stateless prefix per unit; keyed
    ///    morsels run a **mini node loop** — per-node FIFO queues drained
    ///    in ascending node order, stateful operators absorbing into
    ///    their home shard's state partition (ungrouped exact aggregates:
    ///    the executing worker's partial), selection vectors pushed down
    ///    into joins/aggregates instead of densifying. Windows close
    ///    against the flush's merged watermark inside the chain morsel
    ///    (order-sensitive plans) or in a dedicated advance phase behind
    ///    an all-absorbed barrier (commutative plans).
    /// 3. **Deterministic merge.** Exit outputs are merged per
    ///    `(producing node, entry path)` — interleaved by sequence tag
    ///    (join fan-out repeats its probe row's tag, preserving shard
    ///    order) or by window-close [`crate::types::EmitKey`]s, trivially
    ///    for round-robin — and queued on [`DsmsEngine::merged_pending`]
    ///    in ascending order; the control loop dispatches each producer's
    ///    batches exactly when its node-loop pass reaches that producer,
    ///    so out-of-plan consumers observe the single-threaded arrival
    ///    order. Everything downstream of the merge is byte-identical to
    ///    the single-threaded engine.
    fn flush_ingest_sharded(&mut self) {
        type Parts = Vec<(TupleBatch, Option<MergeTags>)>;
        let shards = self.shards();
        // Shedding runs on the arrival-ordered whole batches, before any
        // partitioning — the shed set cannot depend on the shard count.
        self.apply_shedding();
        let ingested: Vec<(String, TupleBatch)> = self.ingest.drain(..).collect();
        if ingested.is_empty() {
            return;
        }
        let keyed = self.keyed_plan();

        // -- 1. Partition ------------------------------------------------
        let mut plan_of_stream: HashMap<String, usize> = HashMap::new();
        let mut rr_plans: Vec<Arc<StreamPrefix>> = Vec::new();
        let mut rr_units: Vec<Vec<ShardUnit>> = (0..shards).map(|_| Vec::new()).collect();
        let mut keyed_units: Vec<Vec<KeyedUnit>> = (0..shards).map(|_| Vec::new()).collect();
        for (batch_idx, (stream, batch)) in ingested.into_iter().enumerate() {
            if let Some(ts) = batch.max_ts() {
                self.advance_watermark_to(ts);
            }
            if let Some(root_idx) = keyed.root_of(&stream) {
                // Hash partition into the keyed plan.
                let root = &keyed.roots[root_idx];
                if root.targets.is_empty() {
                    self.route_shared(&root.direct, batch);
                    continue;
                }
                let batch = if root.direct.is_empty() {
                    batch
                } else {
                    // Non-plan subscribers share the batch (COW columns);
                    // the shard path keeps its own handle.
                    let copy = batch.clone();
                    self.route_shared(&root.direct, batch);
                    copy
                };
                let mut idxs: Vec<Vec<u32>> = vec![Vec::new(); shards];
                // `KeyReader` memoizes the FNV hash per dictionary code, so
                // a dictionary-encoded key column hashes bytes once per
                // distinct string, not once per row.
                let mut reader = crate::ops::KeyReader::new(batch.column(root.key));
                for i in 0..batch.len() {
                    idxs[reader.shard(i, shards)].push(i as u32);
                }
                for (s, rows) in idxs.into_iter().enumerate() {
                    if rows.is_empty() {
                        continue;
                    }
                    self.note_shard_rows(&stream, s, rows.len() as u64, shards);
                    keyed_units[s].push(KeyedUnit {
                        batch_idx,
                        root: root_idx,
                        batch: batch.take(&rows),
                        seqs: rows,
                    });
                }
                continue;
            }
            // Keyless stream: round-robin whole batches through the
            // stateless prefix.
            let plan_idx = match plan_of_stream.get(&stream) {
                Some(&i) => i,
                None => {
                    let prefix = self.stream_prefix(&stream);
                    rr_plans.push(prefix);
                    plan_of_stream.insert(stream.clone(), rr_plans.len() - 1);
                    rr_plans.len() - 1
                }
            };
            let prefix = rr_plans[plan_idx].clone();
            if prefix.nodes.is_empty() {
                // No stateless prefix: route whole, like the
                // single-threaded flush (`direct` is the full subscriber
                // list here).
                self.route_shared(&prefix.direct, batch);
                continue;
            }
            let batch = if prefix.direct.is_empty() {
                batch
            } else {
                // Non-prefix subscribers share the batch (COW columns).
                let copy = batch.clone();
                self.route_shared(&prefix.direct, batch);
                copy
            };
            let cursor = self.shard_rr.entry(stream.clone()).or_insert(0);
            let s = *cursor % shards;
            *cursor = (*cursor + 1) % shards;
            self.note_shard_rows(&stream, s, batch.len() as u64, shards);
            rr_units[s].push(ShardUnit {
                batch_idx,
                plan: plan_idx,
                batch,
            });
        }
        // Per-node watermark-advance flags for the keyed plan: a stateful
        // member closes windows on every shard whenever the merged
        // watermark moved past what the node has seen (mirrors the control
        // loop's `last_watermark < watermark` check). Partial-aggregation
        // members never advance in-shard: their per-worker partials are
        // combined by the control loop's own watermark pass (see
        // `KeyedNode::partial`).
        let watermark = self.watermark;
        let advance: Vec<bool> = keyed
            .nodes
            .iter()
            .map(|kn| {
                kn.stateful
                    && !kn.partial
                    && self
                        .network
                        .node(kn.id)
                        .is_some_and(|n| n.last_watermark < watermark)
            })
            .collect();
        let run_advance = advance.iter().any(|&a| a);
        let have_units =
            rr_units.iter().any(|u| !u.is_empty()) || keyed_units.iter().any(|u| !u.is_empty());
        if !have_units && !run_advance {
            return;
        }

        // -- 2. Parallel execution on the persistent pool ----------------
        let timing = self.timing;
        let columnar = crate::ops::columnar_kernels_enabled();
        let simd = crate::ops::simd_kernels_enabled();
        let mut exits: HashMap<u32, Vec<Target>> = HashMap::new();
        for plan in &rr_plans {
            for node in &plan.nodes {
                exits.insert(node.id.0, node.exits.clone());
            }
        }
        for node in &keyed.nodes {
            exits.insert(node.id.0, node.exits.clone());
        }
        let fault = self.fault.as_deref();
        let network = &self.network;
        let rr_resolved: Vec<ResolvedPrefix<'_>> = rr_plans
            .iter()
            .map(|p| ResolvedPrefix {
                roots: p.roots.clone(),
                nodes: p
                    .nodes
                    .iter()
                    .map(|pn| {
                        let node = network.node(pn.id).expect("live prefix node");
                        ResolvedNode {
                            id: pn.id.0,
                            kind: node.kind,
                            op: node.op.shard_kernel().expect("prefix nodes are shardable"),
                            internal: pn.internal.clone(),
                            record: !pn.exits.is_empty(),
                        }
                    })
                    .collect(),
            })
            .collect();
        let keyed_resolved: Vec<ResolvedKeyedNode<'_>> = keyed
            .nodes
            .iter()
            .zip(&advance)
            .map(|(kn, &adv)| {
                let node = network.node(kn.id).expect("live keyed node");
                let op = &node.op;
                ResolvedKeyedNode {
                    id: kn.id.0,
                    kind: node.kind,
                    kernel: if kn.stateful {
                        ResolvedKeyedKernel::Stateful(
                            op.keyed_kernel().expect("stateful plan members are keyed"),
                        )
                    } else {
                        ResolvedKeyedKernel::Stateless(
                            op.shard_kernel().expect("stateless plan members shard"),
                        )
                    },
                    internal: kn.internal.clone(),
                    record: !kn.exits.is_empty(),
                    advance: adv,
                    partial: kn.partial,
                    grouped: kn.partial && op.keyed_partial_grouped(),
                }
            })
            .collect();
        let keyed_roots: Vec<Vec<(usize, usize)>> =
            keyed.roots.iter().map(|r| r.targets.clone()).collect();

        // -- 2a. Cut morsels ---------------------------------------------
        // Round-robin units are always independent (stateless, whole
        // batches, path-keyed merge). Keyed units are independent exactly
        // when every stateful plan member's absorption commutes
        // ([`crate::ops::Operator::keyed_commutative`]): joins and inexact
        // (float) aggregates are order-sensitive, so each home shard's
        // keyed units then run as one sequential **chain** morsel —
        // stealable whole, so a hot shard can still migrate to an idle
        // worker.
        let ordered = keyed.nodes.iter().any(|kn| {
            kn.stateful
                && network
                    .node(kn.id)
                    .is_some_and(|n| !n.op.keyed_commutative())
        });
        // Effective morsel grain: the static knob, or — adaptive mode —
        // the controller's pick from *prior* flushes' per-morsel cost
        // statistics (never this flush's, so the cutting is a
        // deterministic function of the input). The first adaptive flush
        // has no statistics and cuts at the ceiling, i.e. exactly the
        // static behavior.
        let adaptive = self.adaptive_morsels;
        let cap = self.morsel_batches;
        let morsel_units = if adaptive {
            let have_keyed = keyed_units.iter().any(|u| !u.is_empty());
            self.adaptive
                .grain(cap, plan_of_stream.keys().map(String::as_str), have_keyed)
        } else {
            cap
        };
        let mut deques: Vec<VecDeque<Morsel>> = (0..shards).map(|_| VecDeque::new()).collect();
        let mut dispatched = 0usize;
        for (s, units) in rr_units.into_iter().enumerate() {
            for chunk in chunked(units, morsel_units) {
                deques[s].push_back(Morsel::Rr(chunk));
                dispatched += 1;
            }
        }
        for (s, units) in keyed_units.into_iter().enumerate() {
            if ordered {
                if !units.is_empty() || run_advance {
                    // Chain fallbacks are the cost of order sensitivity:
                    // the counter lets benches assert commutative grouped
                    // plans stopped paying it.
                    work::count_chain_morsel();
                    deques[s].push_back(Morsel::Chain { home: s, units });
                    dispatched += 1;
                }
            } else {
                for chunk in chunked(units, morsel_units) {
                    deques[s].push_back(Morsel::Keyed {
                        home: s,
                        units: chunk,
                    });
                    dispatched += 1;
                }
            }
        }
        let sched = MorselScheduler {
            deques: deques.into_iter().map(Mutex::new).collect(),
            pending: AtomicUsize::new(dispatched),
            aborted: AtomicBool::new(false),
            deserted: AtomicBool::new(false),
            stealing: self.stealing,
        };
        // In commutative mode the watermark pass runs as a second phase:
        // after every morsel of the flush is absorbed (the `pending == 0`
        // barrier), worker `w` closes the windows of state partition `w` —
        // per-partition, so the pass itself needs no synchronization and
        // emission order stays deterministic.
        let advance_phase = run_advance && !ordered;

        // -- 2b. Morsel-driven execution on the persistent pool ----------
        let jobs: Vec<ShardJob<'_>> = (0..shards)
            .map(|worker| {
                let rr_resolved = &rr_resolved;
                let keyed_resolved = &keyed_resolved;
                let keyed_roots = &keyed_roots;
                let sched = &sched;
                let job: ShardJob<'_> = Box::new(move || {
                    // Injected worker death fires at job start, before any
                    // morsel runs — a dying worker never leaves a morsel
                    // half-executed, so its whole deque can be replayed
                    // inline by the control thread. The desertion flag is
                    // raised *before* the panic so no survivor can hang on
                    // the advance barrier waiting for the dead worker's
                    // share of `pending`.
                    if let Some(fault) = fault {
                        if fault.claims_worker_death(worker) {
                            sched.deserted.store(true, Ordering::Release);
                            std::panic::panic_any(WorkerDeath);
                        }
                    }
                    // Pooled workers persist across flushes: counters and
                    // the kernel switches are re-seeded per job, and the
                    // end-of-job snapshot is the job's delta. Re-seeding
                    // (not spawn-time inheritance) is what makes a seat
                    // respawned after a worker death pick the control
                    // thread's current settings back up on its next job.
                    work::reset();
                    crate::ops::set_columnar_kernels(columnar);
                    crate::ops::set_simd_kernels(simd);
                    let mut report = ShardReport::default();
                    while let Some((morsel, stolen)) = sched.grab(worker) {
                        work::count_morsel_executed();
                        if stolen {
                            work::count_morsel_stolen();
                        }
                        // Adaptive mode: attribute this morsel's cost to a
                        // controller class — the first unit's stream for
                        // round-robin chunks (a chunk can mix streams;
                        // first-unit attribution keeps it deterministic),
                        // one shared class for the keyed plan. The cost is
                        // the morsel's `cost_units` delta: deterministic
                        // row/eval counts, so the sample multiset does not
                        // depend on which worker ran what.
                        let class = adaptive.then(|| match &morsel {
                            Morsel::Rr(units) => units[0].plan as u32,
                            Morsel::Keyed { .. } | Morsel::Chain { .. } => u32::MAX,
                        });
                        let before = class.map(|_| work::snapshot().cost_units());
                        // Kernel panics are caught per invocation *inside*
                        // the worker bodies (recover-and-continue); this
                        // outer net only catches genuine executor bugs,
                        // which still abort the flush.
                        let done = std::panic::catch_unwind(AssertUnwindSafe(|| match morsel {
                            Morsel::Rr(units) => {
                                shard_worker(rr_resolved, units, timing, fault, &mut report);
                            }
                            Morsel::Keyed { home, units } => keyed_worker(
                                home,
                                worker,
                                keyed_resolved,
                                keyed_roots,
                                units,
                                watermark,
                                timing,
                                false,
                                fault,
                                &mut report,
                            ),
                            Morsel::Chain { home, units } => keyed_worker(
                                home,
                                worker,
                                keyed_resolved,
                                keyed_roots,
                                units,
                                watermark,
                                timing,
                                true,
                                fault,
                                &mut report,
                            ),
                        }));
                        if let (Some(class), Some(before)) = (class, before) {
                            let cost = work::snapshot().cost_units().saturating_sub(before);
                            report.morsel_costs.push((class, cost));
                        }
                        sched.pending.fetch_sub(1, Ordering::AcqRel);
                        if let Err(payload) = done {
                            // Unblock the other workers' barriers before
                            // surfacing the panic through the pool.
                            sched.aborted.store(true, Ordering::Release);
                            std::panic::resume_unwind(payload);
                        }
                    }
                    if advance_phase {
                        // All-absorbed barrier: windows may close only
                        // once every morsel's rows reached partitioned
                        // state. The deques are already empty (`grab`
                        // returned `None`), so this only waits out morsels
                        // still executing elsewhere. A deserted flush
                        // releases the barrier early: the dead worker's
                        // `pending` share may never drain, and whether
                        // absorption is complete is only known once the
                        // control thread replays the leftovers — so the
                        // advance is skipped (recorded via
                        // `report.advanced`) unless absorption had already
                        // finished.
                        while sched.pending.load(Ordering::Acquire) != 0
                            && !sched.aborted.load(Ordering::Acquire)
                            && !sched.deserted.load(Ordering::Acquire)
                        {
                            std::thread::yield_now();
                        }
                        if sched.pending.load(Ordering::Acquire) == 0
                            && !sched.aborted.load(Ordering::Acquire)
                        {
                            keyed_worker(
                                worker,
                                worker,
                                keyed_resolved,
                                keyed_roots,
                                Vec::new(),
                                watermark,
                                timing,
                                true,
                                fault,
                                &mut report,
                            );
                            report.advanced = true;
                        }
                    } else {
                        // No second-phase duty to make up for.
                        report.advanced = true;
                    }
                    report.work = work::snapshot();
                    report
                });
                job
            })
            .collect();
        let results = self.pool.run(jobs);

        // Surface worker deaths: a dying worker posts `Done(Err)` with the
        // [`WorkerDeath`] marker before its thread exits, and the pool has
        // already respawned the seat (counted by
        // [`work::WorkSnapshot::pool_spawns`] — kernel-panic quarantine, by
        // contrast, keeps workers alive and that counter flat). Its report
        // defaults to empty; the leftovers are replayed below. Any other
        // payload is a genuine executor bug and unwinds as before.
        let mut deaths: Vec<usize> = Vec::new();
        let mut reports: Vec<(usize, ShardReport)> = Vec::with_capacity(results.len());
        for (w, result) in results.into_iter().enumerate() {
            match result {
                Ok(report) => reports.push((w, report)),
                Err(payload) if payload.is::<WorkerDeath>() => {
                    deaths.push(w);
                    reports.push((w, ShardReport::default()));
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        // Recover a deserted flush on the control thread, while the
        // flush's resolved plans are still in scope: (a) replay every
        // morsel left on the deques — death fires at job start, so
        // leftover morsels (including chains, whose watermark pass rides
        // inside) are whole; (b) run the advance-phase duty of every
        // partition whose worker skipped it (per-partition, so each
        // partition's windows close exactly once — either on its worker or
        // here). Recovery outputs join the same deterministic merge as the
        // pool reports, so the flush's output order is unchanged.
        if !deaths.is_empty() {
            let mut recovery = ShardReport::default();
            for deque in &sched.deques {
                loop {
                    let Some(morsel) = lock_deque(deque).pop_front() else {
                        break;
                    };
                    work::count_morsel_executed();
                    match morsel {
                        Morsel::Rr(units) => {
                            shard_worker(&rr_resolved, units, timing, fault, &mut recovery);
                        }
                        Morsel::Keyed { home, units } => keyed_worker(
                            home,
                            home,
                            &keyed_resolved,
                            &keyed_roots,
                            units,
                            watermark,
                            timing,
                            false,
                            fault,
                            &mut recovery,
                        ),
                        Morsel::Chain { home, units } => keyed_worker(
                            home,
                            home,
                            &keyed_resolved,
                            &keyed_roots,
                            units,
                            watermark,
                            timing,
                            true,
                            fault,
                            &mut recovery,
                        ),
                    }
                }
            }
            if advance_phase {
                for (w, report) in &reports {
                    if !report.advanced {
                        keyed_worker(
                            *w,
                            *w,
                            &keyed_resolved,
                            &keyed_roots,
                            Vec::new(),
                            watermark,
                            timing,
                            true,
                            fault,
                            &mut recovery,
                        );
                    }
                }
            }
            for &w in &deaths {
                self.runtime_report.push(Diagnostic::new(
                    Code::WorkerDeath,
                    Span::Network,
                    format!(
                        "pool worker {w} died mid-flush; its morsels were replayed inline and \
                         the seat respawned"
                    ),
                ));
            }
            reports.push((deaths[0], recovery));
        }

        // The keyed plan's watermark handling happened inside the shards:
        // mark every member so the control loop does not re-advance (and
        // re-emit from) partitioned state. Partial-aggregation members are
        // the exception — their per-worker partials close on the control
        // loop's own watermark pass, which stays pending.
        for kn in &keyed.nodes {
            if kn.partial {
                continue;
            }
            if let Some(node) = self.network.node_mut(kn.id) {
                node.last_watermark = watermark;
            }
        }

        // -- 3. Deterministic merge --------------------------------------
        let mut merged: BTreeMap<(u32, Vec<u32>), Parts> = BTreeMap::new();
        let mut morsel_costs: Vec<(u32, u64)> = Vec::new();
        for (s, report) in reports {
            work::absorb(&report.work);
            morsel_costs.extend(report.morsel_costs);
            self.processed += report.rows;
            self.batches += report.batches;
            debug_assert!(
                report.max_ts <= self.watermark,
                "per-shard watermark {} cannot exceed the merged watermark {}",
                report.max_ts,
                self.watermark
            );
            let stats = &mut self.shard_stats[s];
            stats.rows += report.rows;
            stats.batches += report.batches;
            stats.busy += report.busy;
            stats.max_ts = stats.max_ts.max(report.max_ts);
            // Caught kernel panics resolve into quarantines once the
            // control loop reaches quiescence (see `resolve_panics`).
            self.pending_panics.extend(report.panics);
            for (id, delta) in report.node_stats {
                let node = self.network.node_mut(NodeId(id)).expect("live plan node");
                node.in_count += delta.in_rows;
                node.in_batches += delta.in_batches;
                node.out_count += delta.out_rows;
                node.busy += delta.busy;
            }
            for (node, entry, batch, tags) in report.outputs {
                merged.entry((node, entry)).or_default().push((batch, tags));
            }
        }
        if !morsel_costs.is_empty() {
            // Fold this flush's cost samples into the controller's EWMAs
            // for the *next* flush. Which worker reported a sample is
            // racy; the per-class sample multiset is not, and `observe`
            // sorts before folding, so the EWMA trajectory — and with it
            // the resize trace — is deterministic.
            let mut class_streams = vec![String::new(); rr_plans.len()];
            for (stream, &idx) in &plan_of_stream {
                class_streams[idx] = stream.clone();
            }
            self.adaptive.observe(&class_streams, morsel_costs);
        }
        // BTreeMap order = ascending (node id, entry path): exactly the
        // order the single-threaded node loop dispatches these outputs.
        // Dispatch is deferred to the control loop (see `merged_pending`)
        // so it interleaves with out-of-plan node processing the way the
        // single-threaded pass would.
        debug_assert!(
            self.merged_pending.is_empty(),
            "prior merge fully dispatched"
        );
        for ((node_id, _), mut parts) in merged {
            let batch = if parts.len() == 1 {
                parts.pop().expect("one part").0
            } else {
                TupleBatch::interleave_tagged(
                    parts
                        .into_iter()
                        .map(|(b, t)| (b, t.expect("multi-part merges carry tags")))
                        .collect(),
                )
                .expect("merged parts are non-empty")
            };
            let targets = exits.get(&node_id).expect("exit map covers producers");
            self.merged_pending
                .push_back((node_id, targets.clone(), batch));
        }
    }

    /// Records rows routed to one shard in the stream's statistics.
    fn note_shard_rows(&mut self, stream: &str, shard: usize, rows: u64, shards: usize) {
        let stats = self.stream_stats.entry(stream.to_string()).or_default();
        if stats.shard_rows.len() < shards {
            stats.shard_rows.resize(shards, 0);
        }
        stats.shard_rows[shard] += rows;
    }

    fn route(&mut self, target: Target, batch: Arc<TupleBatch>) {
        match target {
            Target::Node(id, port) => {
                self.queues
                    .entry(id)
                    .or_default()
                    .push_back((port, batch, None));
            }
            Target::Sink(cq) => {
                // Zero-copy sink delivery: the sink keeps the shared batch;
                // rows materialize only when the outputs are read.
                self.outputs.entry(cq).or_default().push(batch);
            }
        }
    }

    /// Routes a deferred selection `(batch, sel)` produced by a pure
    /// filter: node consumers share the undensified pair (they refine or
    /// absorb through it), sinks share one gathered batch. All-row
    /// selections forward dense — nothing downstream could save work on
    /// them.
    fn dispatch_selected(&mut self, from: NodeId, batch: Arc<TupleBatch>, sel: Vec<u32>) {
        let targets: Vec<Target> = self
            .network
            .node(from)
            .expect("live node")
            .downstream
            .clone();
        if targets.is_empty() {
            return;
        }
        if sel.len() == batch.len() {
            for &target in &targets {
                self.route(target, batch.clone());
            }
            return;
        }
        let sel = Arc::new(sel);
        // Sinks materialize once and share the gathered batch.
        let mut dense: Option<Arc<TupleBatch>> = None;
        for &target in &targets {
            match target {
                Target::Node(id, port) => {
                    self.queues.entry(id).or_default().push_back((
                        port,
                        batch.clone(),
                        Some(sel.clone()),
                    ));
                }
                Target::Sink(cq) => {
                    let d = dense
                        .get_or_insert_with(|| Arc::new(batch.take(&sel)))
                        .clone();
                    self.outputs.entry(cq).or_default().push(d);
                }
            }
        }
    }

    /// Processes every queued batch and propagates the watermark until the
    /// network is quiescent. With a shard count above 1 the stateless
    /// prefixes run on worker threads first (see
    /// [`DsmsEngine::set_shards`]); the merge and everything stateful runs
    /// on this thread exactly like the single-threaded engine.
    pub fn run_until_quiescent(&mut self) {
        if self.shards() > 1 {
            self.flush_ingest_sharded();
        } else {
            self.flush_ingest();
        }
        let mut out_bufs: Vec<TupleBatch> = Vec::new();
        loop {
            let mut any = false;
            for id in self.network.node_ids() {
                // Drain the node's input queue, batch by batch.
                while let Some((port, shared, sel)) =
                    self.queues.get_mut(&id).and_then(VecDeque::pop_front)
                {
                    any = true;
                    let in_rows = sel.as_ref().map_or(shared.len(), |s| s.len()) as u64;
                    self.processed += in_rows;
                    self.batches += 1;
                    out_bufs.clear();
                    // A pure filter's survivors stay a deferred selection
                    // (forwarded undensified by `dispatch_selected`);
                    // everything else produces dense output batches.
                    let mut refined: Option<(Arc<TupleBatch>, Vec<u32>)> = None;
                    let mut caught: Option<String> = None;
                    {
                        let fault = self.fault.clone();
                        let node = self.network.node_mut(id).expect("live node");
                        node.in_count += in_rows;
                        node.in_batches += 1;
                        let kind = node.kind;
                        let start = self.timing.then(Instant::now);
                        // One panic net per kernel invocation, mirroring
                        // the pooled workers: a panicking kernel loses
                        // only this invocation's outputs and resolves into
                        // a quarantine at quiescence — per query, never
                        // per process.
                        let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            inject(fault.as_deref(), kind, shared.ts());
                            let refine = node.op.shard_kernel().and_then(|k| {
                                k.refine_selection(&shared, sel.as_ref().map(|s| s.as_slice()))
                            });
                            match refine {
                                Some(out_sel) => {
                                    node.out_count += out_sel.len() as u64;
                                    if !out_sel.is_empty() {
                                        refined = Some((shared, out_sel));
                                    }
                                }
                                None if sel.is_some() => {
                                    // Absorb through the deferred selection
                                    // (stateful consumers push it down; the
                                    // default gathers once on entry).
                                    let sel = sel.expect("checked some");
                                    node.op.process_selected(
                                        port,
                                        &shared,
                                        sel.as_slice(),
                                        &mut out_bufs,
                                    );
                                }
                                None => {
                                    // Take ownership when this is the last
                                    // reference (the common single-consumer
                                    // hop). When another consumer — a node
                                    // queue or a sink buffer — still holds the
                                    // batch, the clone is a COW pointer clone:
                                    // column data stays shared and is only
                                    // copied if someone mutates it (counted in
                                    // `TupleBatch::columns_mut`).
                                    let batch = Arc::try_unwrap(shared)
                                        .unwrap_or_else(|still_shared| (*still_shared).clone());
                                    node.op.process_batch(port, batch, &mut out_bufs);
                                }
                            }
                        }));
                        if let Some(start) = start {
                            node.busy += start.elapsed();
                        }
                        node.out_count += out_bufs.iter().map(|b| b.len() as u64).sum::<u64>();
                        if let Err(payload) = attempt {
                            caught = Some(panic_message(payload));
                        }
                    }
                    if let Some(message) = caught {
                        out_bufs.clear();
                        refined = None;
                        self.pending_panics.push((id.0, message));
                    }
                    if let Some((batch, out_sel)) = refined {
                        self.dispatch_selected(id, batch, out_sel);
                    } else {
                        self.dispatch(id, &mut out_bufs);
                    }
                }
                // Dispatch merged shard outputs *produced by* this node at
                // exactly the point the single-threaded pass would have —
                // after the node's (empty, it ran in-shard) queue, before
                // later nodes — so out-of-plan consumers see the same
                // arrival interleaving either way.
                while self
                    .merged_pending
                    .front()
                    .is_some_and(|(n, _, _)| *n == id.0)
                {
                    let (_, targets, batch) =
                        self.merged_pending.pop_front().expect("checked front");
                    any = true;
                    self.route_shared(&targets, batch);
                }
                // Propagate the watermark once per value per node.
                let needs_watermark = self.network.node(id).is_some_and(|n| {
                    // The watermark-advancement invariant the parallel
                    // merge relies on: a node can never have been told a
                    // watermark the engine has since moved below.
                    debug_assert!(
                        n.last_watermark <= self.watermark,
                        "node {id} watermark {} is ahead of the engine watermark {}",
                        n.last_watermark,
                        self.watermark
                    );
                    n.last_watermark < self.watermark
                });
                if needs_watermark {
                    out_bufs.clear();
                    let mut caught: Option<String> = None;
                    {
                        let fault = self.fault.clone();
                        let watermark = self.watermark;
                        let node = self.network.node_mut(id).expect("live node");
                        let kind = node.kind;
                        // Timed too: window-close work (eviction, emission)
                        // happens here, and the measured cost model must
                        // not undercount stateful operators.
                        let start = self.timing.then(Instant::now);
                        let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            inject(fault.as_deref(), kind, &[]);
                            node.op.advance_watermark(watermark, &mut out_bufs);
                        }));
                        if let Some(start) = start {
                            node.busy += start.elapsed();
                        }
                        // Marked even when the pass panicked: the node is
                        // about to be quarantined, and re-running a
                        // panicking advance on every pass would never
                        // reach quiescence.
                        node.last_watermark = watermark;
                        node.out_count += out_bufs.iter().map(|b| b.len() as u64).sum::<u64>();
                        if let Err(payload) = attempt {
                            caught = Some(panic_message(payload));
                        }
                    }
                    if let Some(message) = caught {
                        out_bufs.clear();
                        self.pending_panics.push((id.0, message));
                    }
                    if !out_bufs.is_empty() {
                        any = true;
                    }
                    self.dispatch(id, &mut out_bufs);
                }
            }
            if !any {
                break;
            }
        }
        self.resolve_panics();
    }

    /// Resolves every caught kernel panic into a **quarantine**: the
    /// panic's node is attributed to its owning CQ set
    /// ([`QueryNetwork::queries_owning`] — on a shared node that is every
    /// co-owner, since each owner's plan contains the faulted node), and
    /// exactly those queries are excised through the same `remove_query`
    /// and transition machinery the daily auction uses. Runs at the end of
    /// [`DsmsEngine::run_until_quiescent`]; the `quarantining` guard
    /// breaks the recursion (removal itself runs a transition, which
    /// recurses into `run_until_quiescent`), and the drain loop picks up
    /// panics that surface *during* a removal's drain.
    fn resolve_panics(&mut self) {
        if self.quarantining || self.pending_panics.is_empty() {
            return;
        }
        self.quarantining = true;
        while !self.pending_panics.is_empty() {
            let drained: Vec<(u32, String)> = std::mem::take(&mut self.pending_panics);
            for (node_id, message) in drained {
                let node = NodeId(node_id);
                // Already gone: an earlier incident this round quarantined
                // every owner and the node was garbage-collected.
                let Some(n) = self.network.node(node) else {
                    continue;
                };
                let kind = n.kind;
                let queries = self.network.queries_owning(node);
                let mut report = Report::new();
                report.push(Diagnostic::new(
                    Code::OperatorPanic,
                    Span::Node(node_id),
                    format!("operator kernel ({kind}) panicked: {message}"),
                ));
                for &cq in &queries {
                    report.push(Diagnostic::new(
                        Code::QuarantinedQuery,
                        Span::Query(cq.0),
                        format!(
                            "query {} quarantined: its plan contains panicked node {node_id}",
                            cq.0
                        ),
                    ));
                }
                for &cq in &queries {
                    work::count_quarantine();
                    self.remove_query(cq);
                }
                self.runtime_report.merge(report.clone());
                self.quarantine_log.push(QuarantineEvent {
                    node,
                    kind,
                    message,
                    queries,
                    report,
                });
            }
        }
        self.quarantining = false;
    }

    fn dispatch(&mut self, from: NodeId, out_bufs: &mut Vec<TupleBatch>) {
        if out_bufs.is_empty() {
            return;
        }
        let targets: Vec<Target> = self
            .network
            .node(from)
            .expect("live node")
            .downstream
            .clone();
        let Some((&last, rest)) = targets.split_last() else {
            out_bufs.clear();
            return;
        };
        for batch in out_bufs.drain(..) {
            if batch.is_empty() {
                continue;
            }
            // One Arc per produced batch; every target gets a pointer
            // clone. Sinks never copy; a node consumer that ends up
            // holding the final reference takes ownership without a copy
            // (the last-target-takes-ownership fast path), and any other
            // node consumer's clone is itself a COW pointer clone of the
            // batch's shared columns — zero data copies either way.
            let shared = Arc::new(batch);
            for &target in rest {
                self.route(target, shared.clone());
            }
            self.route(last, shared);
        }
    }

    /// Force-closes all windowed state (the end of the *final* day) and
    /// drains the resulting outputs.
    ///
    /// Runs force-close passes to a fixed point: a stateful operator
    /// downstream of another stateful operator only receives its upstream's
    /// force-closed rows *after* that upstream's `finish` ran, and those
    /// rows land in windows the (already final) watermark will never close
    /// — so passes repeat until no operator emits anything new. Operator
    /// `finish` is idempotent (it drains state), which bounds the loop by
    /// the depth of the operator DAG.
    pub fn finish(&mut self) {
        self.run_until_quiescent();
        let mut out_bufs: Vec<TupleBatch> = Vec::new();
        loop {
            let mut any = false;
            for id in self.network.node_ids() {
                out_bufs.clear();
                let mut caught: Option<String> = None;
                {
                    let fault = self.fault.clone();
                    let node = self.network.node_mut(id).expect("live node");
                    let kind = node.kind;
                    let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        inject(fault.as_deref(), kind, &[]);
                        node.op.finish(&mut out_bufs);
                    }));
                    node.out_count += out_bufs.iter().map(|b| b.len() as u64).sum::<u64>();
                    if let Err(payload) = attempt {
                        caught = Some(panic_message(payload));
                    }
                }
                if let Some(message) = caught {
                    out_bufs.clear();
                    self.pending_panics.push((id.0, message));
                }
                if !out_bufs.is_empty() {
                    any = true;
                }
                self.dispatch(id, &mut out_bufs);
            }
            self.run_until_quiescent();
            if !any {
                break;
            }
        }
    }

    /// Takes (and clears) the collected outputs of a query, materializing
    /// rows from the sink's shared batches (batches no other sink still
    /// references are consumed in place).
    pub fn take_outputs(&mut self, cq: CqId) -> Vec<Tuple> {
        let batches = self
            .outputs
            .get_mut(&cq)
            .map(std::mem::take)
            .unwrap_or_default();
        let mut rows = Vec::with_capacity(batches.iter().map(|b| b.len()).sum());
        for batch in batches {
            match Arc::try_unwrap(batch) {
                Ok(owned) => rows.extend(owned.into_rows()),
                Err(shared) => rows.extend(shared.iter_rows()),
            }
        }
        rows
    }

    /// Peeks at a query's collected outputs, materializing rows.
    ///
    /// This is an **expensive read**: every buffered row is materialized
    /// from the sink's columnar batches on every call (and counted by
    /// [`crate::types::work`]). For emptiness or length checks use the
    /// O(batches) [`DsmsEngine::output_len`] instead.
    pub fn outputs(&self, cq: CqId) -> Vec<Tuple> {
        self.outputs
            .get(&cq)
            .map(|batches| batches.iter().flat_map(|b| b.iter_rows()).collect())
            .unwrap_or_default()
    }

    /// Number of output rows currently buffered for a query (cheap: no row
    /// materialization).
    pub fn output_len(&self, cq: CqId) -> usize {
        self.outputs
            .get(&cq)
            .map_or(0, |batches| batches.iter().map(|b| b.len()).sum())
    }

    /// The current watermark (max event time *routed*). Tuples buffered by
    /// [`DsmsEngine::push`] but not yet processed by
    /// [`DsmsEngine::run_until_quiescent`] do not advance it.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Total tuples processed by operators so far (a machine-independent
    /// work measure).
    pub fn tuples_processed(&self) -> u64 {
        self.processed
    }

    /// Total operator `process_batch` invocations so far.
    /// `tuples_processed / batches_processed` is the realized mean batch
    /// size across the network.
    pub fn batches_processed(&self) -> u64 {
        self.batches
    }

    /// Ingestion statistics per stream.
    pub fn stream_stats(&self) -> &HashMap<String, StreamStats> {
        &self.stream_stats
    }

    /// Installs (or clears) the deterministic fault-injection plan
    /// (builder form; see [`crate::fault::FaultPlan`]). A test/bench
    /// knob: `None` — the default — is completely inert.
    pub fn with_fault_plan(mut self, plan: Option<Arc<FaultPlan>>) -> Self {
        self.set_fault_plan(plan);
        self
    }

    /// Installs (or clears) the deterministic fault-injection plan. The
    /// plan is engine-local (not process-global), so parallel tests can
    /// each drive their own.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.fault = plan;
    }

    /// Installs (or clears) the overload guardrail (builder form; see
    /// [`OverloadPolicy`]).
    pub fn with_overload_policy(mut self, policy: Option<OverloadPolicy>) -> Self {
        self.set_overload_policy(policy);
        self
    }

    /// Installs (or clears) the overload guardrail. With a policy in
    /// place, a flush whose pending ingestion exceeds the budget sheds
    /// whole batches lowest-priority stream first (see
    /// [`DsmsEngine::set_stream_priority`]) — deterministically, before
    /// partitioning, so the shed set is identical for every shard count.
    pub fn set_overload_policy(&mut self, policy: Option<OverloadPolicy>) {
        self.overload = policy;
    }

    /// Sets a stream's shedding priority: under overload, lower-priority
    /// streams shed first (ties broken by stream name; unset = 0). The
    /// center refreshes these after each auction with the highest
    /// admitted bid reading each stream, realizing lowest-bid-first
    /// shedding.
    pub fn set_stream_priority(&mut self, stream: impl Into<String>, priority: u64) {
        self.stream_priority.insert(stream.into(), priority);
    }

    /// Takes (and clears) the quarantine incidents resolved so far.
    pub fn take_quarantine_events(&mut self) -> Vec<QuarantineEvent> {
        std::mem::take(&mut self.quarantine_log)
    }

    /// The quarantine incidents resolved so far (without clearing).
    pub fn quarantine_events(&self) -> &[QuarantineEvent] {
        &self.quarantine_log
    }

    /// Runtime robustness diagnostics accumulated across flushes: one
    /// `NL060`/`NL061` pair per quarantine incident and one `NL062` per
    /// worker death.
    pub fn runtime_report(&self) -> &Report {
        &self.runtime_report
    }

    /// A fresh report of the overload guardrail's activity: one `NL063`
    /// warning per stream that has shed rows, in stream-name order.
    pub fn overload_report(&self) -> Report {
        let mut report = Report::new();
        let mut streams: Vec<(&String, &StreamStats)> = self
            .stream_stats
            .iter()
            .filter(|(_, stats)| stats.rows_shed > 0)
            .collect();
        streams.sort_by_key(|(name, _)| name.as_str());
        for (name, stats) in streams {
            report.push(Diagnostic::new(
                Code::OverloadShed,
                Span::Stream(name.clone()),
                format!(
                    "{} rows shed from stream '{name}' under overload",
                    stats.rows_shed
                ),
            ));
        }
        report
    }
}

/// One unit of round-robin shard work: a whole source batch of a keyless
/// stream headed into that stream's stateless prefix.
struct ShardUnit {
    /// Index of the source batch within the flush (the merge order key).
    batch_idx: usize,
    /// Index into the flush's prefix table.
    plan: usize,
    batch: TupleBatch,
}

/// One unit of keyed shard work: the hash-partitioned slice of one source
/// batch headed into the keyed plan.
struct KeyedUnit {
    /// Index of the source batch within the flush (the merge order key).
    batch_idx: usize,
    /// Index into [`KeyedPlan::roots`].
    root: usize,
    batch: TupleBatch,
    /// Pre-partition row indices, aligned with the slice's rows.
    seqs: Vec<u32>,
}

/// One batch-sized work item of the morsel scheduler. Every morsel is
/// tagged with the sequence metadata its units already carry (source batch
/// indices, row tags), so the deterministic merge is independent of which
/// worker executes it and in what order.
enum Morsel {
    /// Round-robin units headed into their stateless prefixes.
    Rr(Vec<ShardUnit>),
    /// Independent keyed units of one `home` shard — stealable at unit
    /// granularity because every stateful plan member combines
    /// commutatively.
    Keyed { home: usize, units: Vec<KeyedUnit> },
    /// One `home` shard's entire keyed workload plus its watermark pass,
    /// run sequentially (order-sensitive plans: joins, float aggregates).
    Chain { home: usize, units: Vec<KeyedUnit> },
}

/// The adaptive morsel controller's persistent statistics: one cost EWMA
/// per round-robin stream plus one for the keyed plan (whose morsels all
/// walk the same plan). Samples are per-morsel
/// [`work::WorkSnapshot::cost_units`] deltas — deterministic row/eval
/// counts, never wall clock — so the whole controller is a deterministic
/// function of the input stream, reproducible across runs and shard
/// schedules.
#[derive(Debug, Default)]
struct AdaptiveState {
    /// Per-keyless-stream statistics (keyed by stream name — round-robin
    /// plan indices are flush-scoped).
    streams: HashMap<String, ClassEwma>,
    /// The keyed plan's statistics.
    keyed: ClassEwma,
    /// The previous flush's effective grain (resize detection).
    last_grain: Option<usize>,
}

/// One controller class's running estimate: mean per-morsel cost and the
/// spread (max − min) across each flush's morsels, both as Q8
/// fixed-point EWMAs (α = 1/4). Integer arithmetic throughout — floats
/// would reintroduce platform-dependent rounding into the resize trace.
#[derive(Debug, Default)]
struct ClassEwma {
    cost: u64,
    spread: u64,
    seeded: bool,
}

impl ClassEwma {
    fn update(&mut self, mean: u64, spread: u64) {
        let m = mean.saturating_mul(256);
        let s = spread.saturating_mul(256);
        if self.seeded {
            self.cost = (self.cost.saturating_mul(3).saturating_add(m)) / 4;
            self.spread = (self.spread.saturating_mul(3).saturating_add(s)) / 4;
        } else {
            self.cost = m;
            self.spread = s;
            self.seeded = true;
        }
    }

    /// The class's preferred grain: skew — spread as a fraction of the
    /// mean, saturated at 1 (= 256 in Q8) — interpolates linearly from
    /// the ceiling (uniform costs, amortize deque traffic) down to 1
    /// (heavy skew, maximize stealable parallelism). Unseeded classes
    /// vote for the ceiling, today's static behavior.
    fn grain(&self, cap: usize) -> usize {
        if !self.seeded {
            return cap;
        }
        let skew = self
            .spread
            .saturating_mul(256)
            .checked_div(self.cost.max(1))
            .unwrap_or(0)
            .min(256) as usize;
        1 + (cap - 1) * (256 - skew) / 256
    }
}

impl AdaptiveState {
    /// The effective grain for a flush whose round-robin streams are
    /// `rr_streams` (plus the keyed plan when `have_keyed`): the minimum
    /// of every contributing class's preference — one skewed stream is
    /// enough to need fine-grained rebalancing. Counts a resize whenever
    /// the pick differs from the previous flush's.
    fn grain<'a>(
        &mut self,
        cap: usize,
        rr_streams: impl Iterator<Item = &'a str>,
        have_keyed: bool,
    ) -> usize {
        let mut g = cap;
        for stream in rr_streams {
            if let Some(e) = self.streams.get(stream) {
                g = g.min(e.grain(cap));
            }
        }
        if have_keyed {
            g = g.min(self.keyed.grain(cap));
        }
        if self.last_grain.is_some_and(|prev| prev != g) {
            work::count_adaptive_resize();
        }
        self.last_grain = Some(g);
        g
    }

    /// Folds one flush's cost samples into the class EWMAs. Samples are
    /// sorted first: worker-to-morsel assignment is racy, but the
    /// per-class multiset is deterministic, so sorting makes the fold —
    /// and every later grain pick — independent of the schedule.
    fn observe(&mut self, class_streams: &[String], mut samples: Vec<(u32, u64)>) {
        samples.sort_unstable();
        let mut i = 0;
        while i < samples.len() {
            let class = samples[i].0;
            let mut j = i;
            while j < samples.len() && samples[j].0 == class {
                j += 1;
            }
            let run = &samples[i..j];
            let n = run.len() as u64;
            let sum: u64 = run.iter().fold(0u64, |a, &(_, c)| a.saturating_add(c));
            let mean = sum / n;
            // Sorted by (class, cost): the run's ends are min and max.
            let spread = run[run.len() - 1].1 - run[0].1;
            let stat = if class == u32::MAX {
                &mut self.keyed
            } else {
                self.streams
                    .entry(class_streams[class as usize].clone())
                    .or_default()
            };
            stat.update(mean, spread);
            i = j;
        }
    }
}

/// The flush-scoped morsel scheduler: one deque per worker, seeded with
/// the worker's home-shard morsels. The owner pops from the head; when a
/// worker's own deque runs dry (and stealing is enabled) it pops from the
/// tails of the other workers' deques, so a zipf-hot shard's backlog
/// spreads over every idle core. Workers never push, so an empty scan
/// means the flush's distribution phase is over for good.
struct MorselScheduler {
    deques: Vec<Mutex<VecDeque<Morsel>>>,
    /// Morsels dequeued but not yet *finished* — decremented after a
    /// morsel's rows are absorbed, so `0` is the all-absorbed barrier the
    /// advance phase waits on.
    pending: AtomicUsize,
    /// Set when a morsel panicked: the other workers drop their barriers
    /// and the pool re-raises the payload on the control thread.
    aborted: AtomicBool,
    /// Set by a worker dying at job start (before its morsels ran):
    /// survivors release their advance barriers — the dead worker's
    /// `pending` share may never drain — and the control thread replays
    /// the leftover morsels inline after the pool joins.
    deserted: AtomicBool,
    stealing: bool,
}

impl MorselScheduler {
    /// The next morsel for `me`: own head first, then other workers'
    /// tails. `true` marks a steal; empty victims count
    /// [`work::WorkSnapshot::steal_misses`].
    fn grab(&self, me: usize) -> Option<(Morsel, bool)> {
        if self.aborted.load(Ordering::Acquire) {
            return None;
        }
        if let Some(m) = lock_deque(&self.deques[me]).pop_front() {
            return Some((m, false));
        }
        if !self.stealing {
            return None;
        }
        let n = self.deques.len();
        for victim in Self::victims(me, n) {
            match lock_deque(&self.deques[victim]).pop_back() {
                Some(m) => return Some((m, true)),
                None => work::count_steal_miss(),
            }
        }
        None
    }

    /// Steal-victim visit order for worker `me` of `n`: ascending offset.
    #[cfg(not(feature = "core_pinning"))]
    fn victims(me: usize, n: usize) -> impl Iterator<Item = usize> {
        (1..n).map(move |off| (me + off) % n)
    }

    /// Steal-victim visit order for worker `me` of `n`, by seat distance:
    /// `+1, -1, +2, -2, …`. With pinned workers (seat = core), adjacent
    /// seats share cache, so the nearest backlog is the cheapest steal.
    /// Outputs are order-independent (the deterministic merge), so the
    /// visit order is free to differ from the default build's.
    #[cfg(feature = "core_pinning")]
    fn victims(me: usize, n: usize) -> impl Iterator<Item = usize> {
        (1..n).map(move |k| {
            let d = k.div_ceil(2);
            if k % 2 == 1 {
                (me + d) % n
            } else {
                (me + n - d) % n
            }
        })
    }
}

/// Pins the calling pool worker to core `seat mod available cores` via
/// `sched_setaffinity(2)` — declared directly (std already links libc on
/// Linux; no new dependency). Best effort: a container or cgroup that
/// denies the call leaves the default mask, which is always correct.
#[cfg(all(feature = "core_pinning", target_os = "linux"))]
fn pin_worker(seat: usize) {
    /// `cpu_set_t`: a 1024-bit mask (glibc's fixed default size).
    #[repr(C)]
    struct CpuSet([u64; 16]);
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let core = seat % cores;
    let mut set = CpuSet([0; 16]);
    set.0[core / 64] |= 1u64 << (core % 64);
    // SAFETY: pid 0 = the calling thread; the mask outlives the call.
    unsafe {
        sched_setaffinity(0, std::mem::size_of::<CpuSet>(), &set);
    }
}

#[cfg(not(all(feature = "core_pinning", target_os = "linux")))]
fn pin_worker(_seat: usize) {}

/// Rides over mutex poisoning: every lock in the engine guards data whose
/// invariants hold between operations (a deque of whole morsels, a slot
/// state machine), and a panic inside a critical section is surfaced
/// separately — through a per-kernel catch, the scheduler's `aborted`
/// flag, or the pool's `Done(Err)` path — so the poison flag carries no
/// extra information here. One helper instead of scattered
/// `unwrap_or_else(PoisonError::into_inner)` copies.
fn ride_poison<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The fault harness's kernel hook (inert without a plan). Lives *inside*
/// each kernel's panic net, so an injected panic is indistinguishable
/// from a genuine kernel bug to the recovery machinery it exercises.
fn inject(fault: Option<&FaultPlan>, kind: &'static str, ts: &[u64]) {
    if let Some(fault) = fault {
        fault.before_kernel(kind, ts);
    }
}

/// Extracts a readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "operator kernel panicked".to_string()
    }
}

/// Runs one operator-kernel invocation under its own panic net. On panic
/// the invocation's outputs are lost, the incident is recorded as
/// `(node, message)` for quarantine resolution, and execution continues —
/// the recover-and-continue half of the robustness contract (see the
/// crate docs). Kernels only touch per-invocation inputs and their own
/// node's state, so a caught invocation cannot corrupt any *other*
/// node's state.
fn run_kernel<T>(node: u32, panics: &mut Vec<(u32, String)>, f: impl FnOnce() -> T) -> Option<T> {
    match std::panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Some(v),
        Err(payload) => {
            panics.push((node, panic_message(payload)));
            None
        }
    }
}

/// Locks a morsel deque, riding over poisoning (the panic that poisoned it
/// is surfaced through the pool's `Done(Err)` path).
fn lock_deque(m: &Mutex<VecDeque<Morsel>>) -> std::sync::MutexGuard<'_, VecDeque<Morsel>> {
    ride_poison(m.lock())
}

/// Splits `units` into order-preserving chunks of at most `size` (the
/// morsel granularity knob). The common whole-fits case allocates nothing
/// new.
fn chunked<T>(units: Vec<T>, size: usize) -> Vec<Vec<T>> {
    if units.is_empty() {
        return Vec::new();
    }
    if units.len() <= size {
        return vec![units];
    }
    let mut out = Vec::with_capacity(units.len().div_ceil(size));
    let mut it = units.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(size).collect();
        if chunk.is_empty() {
            break;
        }
        out.push(chunk);
    }
    out
}

/// A stream's prefix with operator references resolved for the workers.
struct ResolvedPrefix<'a> {
    roots: Vec<usize>,
    nodes: Vec<ResolvedNode<'a>>,
}

struct ResolvedNode<'a> {
    id: u32,
    /// The node's operator kind (for fault attribution and the harness's
    /// per-kind triggers).
    kind: &'static str,
    op: &'a dyn ShardKernel,
    /// Downstream consumers inside the prefix (indices into the plan).
    internal: Vec<usize>,
    /// Whether the node has exits (its outputs must be reported back for
    /// the merge).
    record: bool,
}

/// Per-node statistic deltas accumulated by one worker.
#[derive(Default)]
struct NodeDelta {
    in_rows: u64,
    in_batches: u64,
    out_rows: u64,
    busy: Duration,
}

/// Everything one worker reports back when its shard joins.
#[derive(Default)]
struct ShardReport {
    /// Merge-point outputs: `(producing node, entry path, batch, tags)`.
    /// The entry path orders a node's outputs exactly as the
    /// single-threaded node loop dispatches them (see [`entry_child`]);
    /// tags order rows *within* one logical output across shards.
    outputs: Vec<(u32, Vec<u32>, TupleBatch, Option<MergeTags>)>,
    node_stats: HashMap<u32, NodeDelta>,
    rows: u64,
    batches: u64,
    /// The shard's watermark (largest event timestamp processed).
    max_ts: u64,
    busy: Duration,
    /// The worker thread's work counters, folded into the control thread
    /// when the shard joins.
    work: work::WorkSnapshot,
    /// Kernel panics caught during this shard's morsels: `(node id, panic
    /// message)`. Resolved into quarantines by the control thread.
    panics: Vec<(u32, String)>,
    /// Adaptive-mode cost samples: `(controller class, cost_units delta)`
    /// per executed morsel (empty with the controller off, so the static
    /// path's reports are byte-identical to before). The class is a
    /// round-robin plan index or `u32::MAX` for the keyed plan.
    morsel_costs: Vec<(u32, u64)>,
    /// Whether this worker's advance-phase duty ran (always `true` when
    /// the flush has no second phase). A deserted flush leaves it `false`
    /// on workers that skipped their advance; the control thread makes
    /// those partitions up inline.
    advanced: bool,
}

/// A stateless-or-keyed kernel reference resolved for the workers.
enum ResolvedKeyedKernel<'a> {
    Stateless(&'a dyn ShardKernel),
    Stateful(&'a dyn KeyedKernel),
}

/// One keyed-plan node resolved for the workers.
struct ResolvedKeyedNode<'a> {
    id: u32,
    /// The node's operator kind (for fault attribution and the harness's
    /// per-kind triggers).
    kind: &'static str,
    kernel: ResolvedKeyedKernel<'a>,
    /// Downstream consumers inside the plan: (plan index, port).
    internal: Vec<(usize, usize)>,
    /// Whether the node has exits (its outputs must be reported back for
    /// the merge).
    record: bool,
    /// Whether this flush advances the node's watermark on every shard
    /// (always `false` for partial members — the control loop combines
    /// and emits their partials).
    advance: bool,
    /// Whether the node is a partial-aggregation member: absorbs into the
    /// **executing worker's** partition instead of the home shard's (see
    /// [`crate::network::KeyedNode::partial`]).
    partial: bool,
    /// Whether the node is a *grouped* partial member (per-worker hash
    /// partials over a shard-incompatible group key); counts
    /// [`work::WorkSnapshot::grouped_partial_rows`]. Implies `partial` —
    /// key-compatible grouped aggregates are full members, not partials.
    grouped: bool,
}

/// The body of the round-robin half of one shard job: runs whole source
/// batches of keyless streams through their stateless prefixes in source
/// order. Outputs merge trivially (a source batch lives whole on one
/// shard), so no survivor tracing is needed.
fn shard_worker(
    plans: &[ResolvedPrefix<'_>],
    units: Vec<ShardUnit>,
    timing: bool,
    fault: Option<&FaultPlan>,
    report: &mut ShardReport,
) {
    for unit in units {
        let plan = &plans[unit.plan];
        if let Some(ts) = unit.batch.max_ts() {
            report.max_ts = report.max_ts.max(ts);
        }
        let mut slots: Vec<Option<TupleBatch>> = (0..plan.nodes.len()).map(|_| None).collect();
        // Seed the roots (COW column sharing makes extra roots cheap).
        let Some((&last_root, other_roots)) = plan.roots.split_last() else {
            continue;
        };
        for &r in other_roots {
            slots[r] = Some(unit.batch.clone());
        }
        slots[last_root] = Some(unit.batch);
        // Ascending position is a topological order (node ids ascend along
        // edges), so one pass drains the whole prefix.
        for pos in 0..plan.nodes.len() {
            let Some(batch) = slots[pos].take() else {
                continue;
            };
            let node = &plan.nodes[pos];
            let in_rows = batch.len() as u64;
            report.rows += in_rows;
            report.batches += 1;
            work::count_shard_batches(1);
            let start = timing.then(Instant::now);
            let produced = run_kernel(node.id, &mut report.panics, || {
                inject(fault, node.kind, batch.ts());
                node.op.process_traced(batch, false)
            });
            let elapsed = start.map(|s| s.elapsed()).unwrap_or_default();
            report.busy += elapsed;
            let delta = report.node_stats.entry(node.id).or_default();
            delta.in_rows += in_rows;
            delta.in_batches += 1;
            delta.busy += elapsed;
            // A caught panic drops this invocation's outputs and moves on:
            // downstream nodes simply see nothing from it, and the node's
            // owners are quarantined at quiescence.
            let Some((out, _)) = produced else {
                continue;
            };
            delta.out_rows += out.len() as u64;
            if out.is_empty() {
                continue;
            }
            if node.record {
                for &c in &node.internal {
                    slots[c] = Some(out.clone());
                }
                report
                    .outputs
                    .push((node.id, vec![unit.batch_idx as u32], out, None));
            } else {
                let Some((&last_c, rest_c)) = node.internal.split_last() else {
                    continue;
                };
                for &c in rest_c {
                    slots[c] = Some(out.clone());
                }
                slots[last_c] = Some(out);
            }
        }
    }
}

/// One pending input of a keyed-plan node inside a shard's mini node loop.
struct KeyedEntry {
    /// The entry path (see [`entry_child`]); orders a node's queue the way
    /// the single-threaded node loop fills it.
    key: Vec<u32>,
    port: usize,
    batch: TupleBatch,
    /// Deferred selection (batch-row indices): the rows of `batch` this
    /// entry logically consists of. `None` = all. Filters refine it
    /// without gathering; stateful consumers absorb straight through it
    /// (selection pushdown); anything else densifies on entry.
    sel: Option<Vec<u32>>,
    /// Merge tags aligned with `batch`'s rows.
    tags: MergeTags,
}

/// The child entry path for outputs of node `id` processing an entry with
/// path `parent`: `[id + 1] ++ parent` (`[id + 1, u32::MAX]` for watermark
/// emissions, which the single-threaded loop dispatches after the node's
/// whole queue). Paths compare lexicographically; root entries are
/// `[0, source batch]`, so a queue ordered by path is exactly the order
/// the single-threaded loop fills it: stream batches first, then each
/// producer's outputs in the producer's own processing order.
fn entry_child(id: u32, parent: &[u32]) -> Vec<u32> {
    let mut key = Vec::with_capacity(parent.len() + 1);
    key.push(id + 1);
    key.extend_from_slice(parent);
    key
}

/// The keyed body of one morsel: a **mini node loop** over the keyed
/// plan, mirroring the single-threaded engine's pass — per-node FIFO
/// queues drained in ascending node order and (when `advance` is set)
/// each stateful node closing `state_shard`'s windows against the flush's
/// merged watermark right after its queue drains. Because every pair of
/// rows a stateful member must combine shares the unit's home shard (hash
/// partitioning on the tracked key), the walk observes exactly the
/// single-threaded state restricted to that shard's keys, and the
/// reported outputs carry entry paths + row tags that let the control
/// thread reassemble bit-identical batches.
///
/// Partial-aggregation members are the exception to key homing: they
/// absorb into `partial_shard` — the **executing worker's** partition —
/// which is exact because only commutative aggregates qualify; the
/// control loop's watermark pass later combines the per-worker partials
/// in partition order.
///
/// `advance` is set for chain morsels (order-sensitive plans run their
/// shard's units and watermark pass as one sequential walk) and for the
/// commutative scheduler's dedicated advance phase (empty `units`,
/// `state_shard == partial_shard ==` the worker's own partition, entered
/// only after every morsel of the flush is absorbed).
#[allow(clippy::too_many_arguments)]
fn keyed_worker(
    state_shard: usize,
    partial_shard: usize,
    nodes: &[ResolvedKeyedNode<'_>],
    roots: &[Vec<(usize, usize)>],
    units: Vec<KeyedUnit>,
    watermark: u64,
    timing: bool,
    advance: bool,
    fault: Option<&FaultPlan>,
    report: &mut ShardReport,
) {
    let mut queues: Vec<VecDeque<KeyedEntry>> = (0..nodes.len()).map(|_| VecDeque::new()).collect();
    // Seed root targets in source-batch order (= ingestion order), exactly
    // like the single-threaded flush routes raw stream batches.
    for unit in units {
        if let Some(ts) = unit.batch.max_ts() {
            report.max_ts = report.max_ts.max(ts);
        }
        let targets = &roots[unit.root];
        let Some(((last_n, last_p), rest)) = targets.split_last() else {
            continue;
        };
        let key = vec![0u32, unit.batch_idx as u32];
        for &(n, p) in rest {
            queues[n].push_back(KeyedEntry {
                key: key.clone(),
                port: p,
                batch: unit.batch.clone(),
                sel: None,
                tags: MergeTags::Rows(unit.seqs.clone()),
            });
        }
        queues[*last_n].push_back(KeyedEntry {
            key,
            port: *last_p,
            batch: unit.batch,
            sel: None,
            tags: MergeTags::Rows(unit.seqs),
        });
    }
    // Ascending plan position is a topological order, so one pass drains
    // everything — including watermark emissions, which only flow to
    // higher-numbered nodes.
    for pos in 0..nodes.len() {
        let node = &nodes[pos];
        while let Some(entry) = queues[pos].pop_front() {
            let in_rows = entry.sel.as_ref().map_or(entry.batch.len(), Vec::len) as u64;
            report.rows += in_rows;
            report.batches += 1;
            work::count_shard_batches(1);
            let start = timing.then(Instant::now);
            // Produce: either a refined deferred selection (filters), or a
            // materialized output batch with composed tags. The whole
            // production — one logical kernel invocation — runs under its
            // own panic net: a caught panic drops only this entry's
            // outputs, and the node's owners are quarantined at
            // quiescence.
            let produced: Option<KeyedEntry> = run_kernel(node.id, &mut report.panics, || {
                inject(fault, node.kind, entry.batch.ts());
                match &node.kernel {
                    ResolvedKeyedKernel::Stateless(k) => {
                        match k.refine_selection(&entry.batch, entry.sel.as_deref()) {
                            Some(sel) => (!sel.is_empty()).then(|| KeyedEntry {
                                key: entry.key.clone(),
                                port: 0,
                                batch: entry.batch,
                                sel: Some(sel),
                                tags: entry.tags,
                            }),
                            None => {
                                let (batch, tags) = materialize(entry.batch, entry.sel, entry.tags);
                                let (out, trace) = k.process_traced(batch, true);
                                (!out.is_empty()).then(|| {
                                    let tags = match trace {
                                        None => tags,
                                        Some(t) => tags.take(&t),
                                    };
                                    KeyedEntry {
                                        key: entry.key.clone(),
                                        port: 0,
                                        batch: out,
                                        sel: None,
                                        tags,
                                    }
                                })
                            }
                        }
                    }
                    ResolvedKeyedKernel::Stateful(k) => {
                        work::count_keyed_shard_rows(in_rows);
                        if entry.sel.is_some() {
                            // Absorbed through the deferred selection: these
                            // rows were never gathered into a dense batch.
                            work::count_pushdown_rows(in_rows);
                        }
                        if node.grouped {
                            // Grouped rows absorbed past the merge barrier
                            // into per-worker hash partials.
                            work::count_grouped_partial_rows(in_rows);
                        }
                        let shard = if node.partial {
                            partial_shard
                        } else {
                            state_shard
                        };
                        let (out, trace) =
                            k.process_keyed(shard, entry.port, &entry.batch, entry.sel.as_deref());
                        (!out.is_empty()).then(|| KeyedEntry {
                            key: entry.key.clone(),
                            port: 0,
                            batch: out,
                            sel: None,
                            tags: entry.tags.take(&trace),
                        })
                    }
                }
            })
            .flatten();
            let elapsed = start.map(|s| s.elapsed()).unwrap_or_default();
            report.busy += elapsed;
            let delta = report.node_stats.entry(node.id).or_default();
            delta.in_rows += in_rows;
            delta.in_batches += 1;
            delta.busy += elapsed;
            if let Some(out) = produced {
                delta.out_rows += out.sel.as_ref().map_or(out.batch.len(), Vec::len) as u64;
                dispatch_keyed(node, out, &mut queues, report);
            }
        }
        // Watermark pass: close this shard's windows right after the
        // node's queue — the position the single-threaded loop advances
        // the node at. Suppressed while `advance` is off (commutative
        // morsels — their flush runs a dedicated advance phase instead).
        if advance && node.advance {
            if let ResolvedKeyedKernel::Stateful(k) = &node.kernel {
                let start = timing.then(Instant::now);
                let emitted = run_kernel(node.id, &mut report.panics, || {
                    inject(fault, node.kind, &[]);
                    k.advance_keyed(state_shard, watermark)
                })
                .flatten();
                let elapsed = start.map(|s| s.elapsed()).unwrap_or_default();
                report.busy += elapsed;
                let delta = report.node_stats.entry(node.id).or_default();
                delta.busy += elapsed;
                if let Some((batch, keys)) = emitted {
                    delta.out_rows += batch.len() as u64;
                    dispatch_keyed(
                        node,
                        KeyedEntry {
                            key: vec![u32::MAX],
                            port: 0,
                            batch,
                            sel: None,
                            tags: MergeTags::Emits(keys),
                        },
                        &mut queues,
                        report,
                    );
                }
            }
        }
    }
}

/// Densifies a deferred selection: gathers the selected rows (and their
/// tags) into a dense batch. All-row selections pass through untouched.
fn materialize(
    batch: TupleBatch,
    sel: Option<Vec<u32>>,
    tags: MergeTags,
) -> (TupleBatch, MergeTags) {
    match sel {
        None => (batch, tags),
        Some(sel) if sel.len() == batch.len() => (batch, tags),
        Some(sel) => {
            let tags = tags.take(&sel);
            (batch.take(&sel), tags)
        }
    }
}

/// Routes one produced output of keyed-plan node `node` (still possibly
/// selection-deferred) to its in-plan consumers, and records it — densified
/// — for the merge when the node has exits.
fn dispatch_keyed(
    node: &ResolvedKeyedNode<'_>,
    out: KeyedEntry,
    queues: &mut [VecDeque<KeyedEntry>],
    report: &mut ShardReport,
) {
    let child_key = entry_child(node.id, &out.key);
    if node.record {
        for &(c, p) in &node.internal {
            queues[c].push_back(KeyedEntry {
                key: child_key.clone(),
                port: p,
                batch: out.batch.clone(),
                sel: out.sel.clone(),
                tags: out.tags.clone(),
            });
        }
        let (batch, tags) = materialize(out.batch, out.sel, out.tags);
        report.outputs.push((node.id, out.key, batch, Some(tags)));
    } else {
        let Some((&(last_c, last_p), rest)) = node.internal.split_last() else {
            return;
        };
        for &(c, p) in rest {
            queues[c].push_back(KeyedEntry {
                key: child_key.clone(),
                port: p,
                batch: out.batch.clone(),
                sel: out.sel.clone(),
                tags: out.tags.clone(),
            });
        }
        queues[last_c].push_back(KeyedEntry {
            key: child_key,
            port: last_p,
            batch: out.batch,
            sel: out.sel,
            tags: out.tags,
        });
    }
}

/// One shard's job for a single flush, borrowing the flush's resolved
/// plans for its lifetime. The pool blocks until every job of a flush has
/// reported back before those borrows end.
type ShardJob<'a> = Box<dyn FnOnce() -> ShardReport + Send + 'a>;

/// A parked worker's mailbox.
enum SlotState {
    /// Nothing to do; the worker is parked on the condvar.
    Idle,
    /// A job to run ('static here; the pool guarantees the real borrows
    /// outlive the run by blocking until `Done`).
    Job(Box<dyn FnOnce() -> ShardReport + Send + 'static>),
    /// The job's result (or its panic payload), awaiting collection.
    /// Boxed: a `ShardReport` is large relative to the other variants.
    Done(Box<std::thread::Result<ShardReport>>),
    /// Tear-down request (pool drop).
    Exit,
}

struct WorkerSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

struct PoolWorker {
    slot: Arc<WorkerSlot>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// The persistent worker pool of the parallel executor: one long-lived
/// thread per shard, spawned lazily on the first parallel flush and
/// **parked between flushes** (condvar wait — zero CPU). A flush hands
/// each worker one job through its mailbox and blocks until every job
/// reports back, so jobs may safely borrow the flush's plan resolution.
/// Spawns and wakeups are counted
/// ([`work::WorkSnapshot::pool_spawns`] / [`work::WorkSnapshot::pool_wakeups`]):
/// after warmup a flush costs wakeups only — the `shard_count` bench pins
/// zero spawns across its measured pushes.
#[derive(Default)]
pub(crate) struct WorkerPool {
    workers: Vec<PoolWorker>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Locks a slot, riding over poisoning (a poisoned slot only means a
/// worker panicked mid-update; the payload is surfaced via `Done(Err)`).
fn lock_slot(slot: &WorkerSlot) -> std::sync::MutexGuard<'_, SlotState> {
    ride_poison(slot.state.lock())
}

fn pool_worker_main(seat: usize, slot: Arc<WorkerSlot>) {
    pin_worker(seat);
    let mut state = lock_slot(&slot);
    loop {
        match std::mem::replace(&mut *state, SlotState::Idle) {
            SlotState::Job(job) => {
                drop(state);
                let result = std::panic::catch_unwind(AssertUnwindSafe(job));
                let died = result
                    .as_ref()
                    .err()
                    .is_some_and(|payload| payload.is::<WorkerDeath>());
                state = lock_slot(&slot);
                *state = SlotState::Done(Box::new(result));
                slot.cv.notify_all();
                if died {
                    // An injected worker death: the result is posted (so
                    // the flush's collection loop is unaffected) and the
                    // thread exits; `run` respawns the seat afterwards.
                    return;
                }
            }
            SlotState::Exit => return,
            other => {
                *state = other;
                state = ride_poison(slot.cv.wait(state));
            }
        }
    }
}

impl WorkerPool {
    /// Ensures at least `n` workers exist (spawning is the counted warmup
    /// cost; parked surplus workers from a larger previous shard count are
    /// kept — they cost no CPU).
    fn ensure(&mut self, n: usize) {
        while self.workers.len() < n {
            work::count_pool_spawn();
            let slot = Arc::new(WorkerSlot {
                state: Mutex::new(SlotState::Idle),
                cv: Condvar::new(),
            });
            let seat = self.workers.len();
            let thread_slot = slot.clone();
            let handle = std::thread::Builder::new()
                .name(format!("cqac-shard-{seat}"))
                .spawn(move || pool_worker_main(seat, thread_slot))
                .expect("spawn pool worker");
            self.workers.push(PoolWorker {
                slot,
                handle: Some(handle),
            });
        }
    }

    /// Runs one job per shard on the pooled workers and blocks until every
    /// job reported back, then returns the per-shard results in shard
    /// order. Panics are *returned*, not re-raised: an injected
    /// [`WorkerDeath`] is recovered from by the caller (the dead seat is
    /// respawned here so the next parallel flush finds a full pool), and
    /// any other payload is re-raised by the caller — in both cases only
    /// after every job has reported back, so no borrow escapes.
    fn run(&mut self, jobs: Vec<ShardJob<'_>>) -> Vec<std::thread::Result<ShardReport>> {
        let n = jobs.len();
        self.ensure(n);
        for (i, job) in jobs.into_iter().enumerate() {
            // SAFETY: the loop below blocks until every dispatched job is
            // `Done` before this function returns, so the `'env` borrows
            // captured by the job strictly outlive its execution.
            let job: Box<dyn FnOnce() -> ShardReport + Send + 'static> =
                unsafe { std::mem::transmute(job) };
            let slot = &self.workers[i].slot;
            let mut state = lock_slot(slot);
            *state = SlotState::Job(job);
            work::count_pool_wakeup();
            slot.cv.notify_all();
        }
        let mut results: Vec<std::thread::Result<ShardReport>> = Vec::with_capacity(n);
        for w in &self.workers[..n] {
            let mut state = lock_slot(&w.slot);
            loop {
                match std::mem::replace(&mut *state, SlotState::Idle) {
                    SlotState::Done(result) => {
                        results.push(*result);
                        break;
                    }
                    other => {
                        *state = other;
                        state = ride_poison(w.slot.cv.wait(state));
                    }
                }
            }
        }
        // Every job has finished; the flush's borrows are released. Any
        // seat whose thread died to an injected WorkerDeath gets a fresh
        // thread now (a counted spawn), so the pool is whole again before
        // the next flush.
        for (i, result) in results.iter().enumerate() {
            if result
                .as_ref()
                .err()
                .is_some_and(|payload| payload.is::<WorkerDeath>())
            {
                self.respawn(i);
            }
        }
        results
    }

    /// Replaces worker `i`'s exited thread with a fresh one on the same
    /// slot (the mailbox is already back to `Idle` after collection).
    fn respawn(&mut self, i: usize) {
        let w = &mut self.workers[i];
        if let Some(handle) = w.handle.take() {
            // The thread posted `Done` before exiting, so this join is
            // immediate; it also clears the exited thread's resources.
            let _ = handle.join();
        }
        work::count_pool_spawn();
        let thread_slot = w.slot.clone();
        let handle = std::thread::Builder::new()
            .name(format!("cqac-shard-{i}"))
            .spawn(move || pool_worker_main(i, thread_slot))
            .expect("spawn pool worker");
        w.handle = Some(handle);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for w in &self.workers {
            let mut state = lock_slot(&w.slot);
            *state = SlotState::Exit;
            w.slot.cv.notify_all();
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                // A worker that panicked outside a job already unwound;
                // ignore the join error during teardown.
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::AggFunc;
    use crate::types::{DataType, Field, Value};

    fn quote_schema() -> Schema {
        Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("price", DataType::Float),
        ])
    }

    fn quote(ts: u64, sym: &str, price: f64) -> Tuple {
        Tuple::new(ts, vec![Value::str(sym), Value::Float(price)])
    }

    fn engine_with_quotes() -> DsmsEngine {
        let mut e = DsmsEngine::new();
        e.register_stream("quotes", quote_schema());
        e
    }

    fn high_filter() -> LogicalPlan {
        LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))))
    }

    #[test]
    fn filter_end_to_end() {
        let mut e = engine_with_quotes();
        let cq = e.add_query(high_filter()).unwrap();
        e.push("quotes", quote(1, "IBM", 120.0));
        e.push("quotes", quote(2, "IBM", 80.0));
        e.push("quotes", quote(3, "AAPL", 130.0));
        e.run_until_quiescent();
        let out = e.take_outputs(cq);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].ts, 1);
        assert_eq!(out[1].ts, 3);
        assert!(e.take_outputs(cq).is_empty(), "take drains");
    }

    #[test]
    fn consecutive_pushes_coalesce_into_one_batch() {
        let mut e = engine_with_quotes();
        e.add_query(high_filter()).unwrap();
        for i in 0..5 {
            e.push("quotes", quote(i, "IBM", 120.0));
        }
        e.run_until_quiescent();
        assert_eq!(e.tuples_processed(), 5);
        assert_eq!(e.batches_processed(), 1, "one run of one stream, one batch");
    }

    #[test]
    fn batch_size_cap_splits_ingestion_runs() {
        let mut e = engine_with_quotes().with_max_batch_size(2);
        e.add_query(high_filter()).unwrap();
        e.push_rows("quotes", (0..5).map(|i| quote(i, "IBM", 120.0)).collect());
        assert_eq!(e.tuples_processed(), 5);
        assert_eq!(e.batches_processed(), 3, "5 rows capped at 2 → 2+2+1");
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let tuples: Vec<Tuple> = (0..200)
            .map(|i| {
                quote(
                    i,
                    if i % 3 == 0 { "IBM" } else { "AAPL" },
                    80.0 + (i % 50) as f64,
                )
            })
            .collect();
        let mut outputs = Vec::new();
        for cap in [1usize, 7, 64, 1024] {
            let mut e = engine_with_quotes().with_max_batch_size(cap);
            let cq = e.add_query(high_filter()).unwrap();
            e.push_rows("quotes", tuples.clone());
            outputs.push(e.take_outputs(cq));
        }
        assert!(outputs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn shared_filter_feeds_both_sinks() {
        let mut e = engine_with_quotes();
        let q1 = e.add_query(high_filter()).unwrap();
        let q2 = e.add_query(high_filter()).unwrap();
        e.push("quotes", quote(1, "IBM", 120.0));
        e.run_until_quiescent();
        assert_eq!(e.output_len(q1), 1);
        assert_eq!(e.output_len(q2), 1);
        // The shared node processed the tuple once.
        let node = e.network().query(q1).unwrap().nodes[0];
        assert_eq!(e.network().node(node).unwrap().in_count, 1);
    }

    #[test]
    fn aggregate_emits_on_watermark() {
        let mut e = engine_with_quotes();
        let cq = e
            .add_query(LogicalPlan::source("quotes").aggregate(None, AggFunc::Count, 0, 100))
            .unwrap();
        e.push_batch([
            ("quotes".to_string(), quote(10, "A", 1.0)),
            ("quotes".to_string(), quote(20, "A", 1.0)),
        ]);
        assert_eq!(e.output_len(cq), 0, "window still open");
        e.push_batch([("quotes".to_string(), quote(150, "A", 1.0))]);
        let out = e.take_outputs(cq);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values[1], Value::Int(2));
    }

    #[test]
    fn join_across_streams() {
        let mut e = engine_with_quotes();
        e.register_stream(
            "news",
            Schema::new(vec![
                Field::new("symbol", DataType::Str),
                Field::new("headline", DataType::Str),
            ]),
        );
        let plan = high_filter().join(LogicalPlan::source("news"), 0, 0, 50);
        let cq = e.add_query(plan).unwrap();
        e.push("quotes", quote(100, "IBM", 150.0));
        e.push(
            "news",
            Tuple::new(120, vec![Value::str("IBM"), Value::str("beats earnings")]),
        );
        e.run_until_quiescent();
        let out = e.take_outputs(cq);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values.len(), 4);
    }

    #[test]
    fn transition_holds_and_releases_in_order() {
        let mut e = engine_with_quotes();
        let cq = e.add_query(high_filter()).unwrap();
        e.push("quotes", quote(1, "IBM", 120.0));
        e.begin_transition();
        e.push("quotes", quote(2, "IBM", 130.0));
        e.push("quotes", quote(3, "IBM", 140.0));
        assert_eq!(e.held_tuples(), 2);
        assert_eq!(e.output_len(cq), 1, "pre-transition tuple delivered");
        e.end_transition();
        let out = e.take_outputs(cq);
        assert_eq!(out.len(), 3);
        assert_eq!(out.iter().map(|t| t.ts).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn mid_stream_query_addition_does_not_disturb_existing() {
        let mut reference = engine_with_quotes();
        let ref_cq = reference.add_query(high_filter()).unwrap();

        let mut e = engine_with_quotes();
        let cq = e.add_query(high_filter()).unwrap();

        let tuples: Vec<Tuple> = (0..20).map(|i| quote(i, "IBM", 90.0 + i as f64)).collect();
        for (i, t) in tuples.iter().enumerate() {
            reference.push("quotes", t.clone());
            e.push("quotes", t.clone());
            if i == 10 {
                // Add an unrelated query mid-stream.
                e.add_query(
                    LogicalPlan::source("quotes")
                        .filter(Expr::col(0).eq(Expr::lit(Value::str("AAPL")))),
                )
                .unwrap();
            }
        }
        reference.run_until_quiescent();
        e.run_until_quiescent();
        assert_eq!(
            reference.take_outputs(ref_cq),
            e.take_outputs(cq),
            "continuing query output must be unaffected by the transition"
        );
    }

    #[test]
    fn finish_flushes_open_windows() {
        let mut e = engine_with_quotes();
        let cq = e
            .add_query(LogicalPlan::source("quotes").aggregate(None, AggFunc::Count, 0, 1000))
            .unwrap();
        e.push_batch([("quotes".to_string(), quote(10, "A", 1.0))]);
        assert_eq!(e.output_len(cq), 0);
        e.finish();
        assert_eq!(e.output_len(cq), 1);
    }

    #[test]
    fn buffered_tuples_are_not_delivered_to_queries_added_later() {
        // push() defers routing to the next run, but add_query's automatic
        // mini-transition flushes the buffer against the *old* network
        // before modifying it — a later query must never retroactively
        // receive earlier tuples.
        let mut e = engine_with_quotes();
        let q1 = e.add_query(high_filter()).unwrap();
        e.push("quotes", quote(1, "IBM", 120.0));
        e.push("quotes", quote(2, "IBM", 130.0));
        let q2 = e.add_query(high_filter()).unwrap();
        e.push("quotes", quote(3, "IBM", 140.0));
        e.run_until_quiescent();
        assert_eq!(e.output_len(q1), 3);
        assert_eq!(
            e.outputs(q2).iter().map(|t| t.ts).collect::<Vec<_>>(),
            vec![3],
            "q2 sees only tuples pushed after its registration"
        );
    }

    #[test]
    #[should_panic(expected = "unknown stream 'qotes'")]
    fn push_to_unknown_stream_panics_with_registration_hint() {
        let mut e = engine_with_quotes();
        e.push("qotes", quote(1, "IBM", 120.0));
    }

    #[test]
    fn finish_reaches_stacked_stateful_operators() {
        // An aggregate over an aggregate: the outer one only receives rows
        // when the inner one force-closes, so finish() must iterate to a
        // fixed point instead of running one pass.
        let mut e = engine_with_quotes();
        let cq = e
            .add_query(
                LogicalPlan::source("quotes")
                    .aggregate(None, AggFunc::Count, 0, 100)
                    .aggregate(None, AggFunc::Max, 1, 1000),
            )
            .unwrap();
        e.push_rows("quotes", (0..5).map(|i| quote(i * 10, "A", 1.0)).collect());
        e.finish();
        let out = e.take_outputs(cq);
        assert_eq!(out.len(), 1, "the day's nested result must not be lost");
        assert_eq!(out[0].values[1], Value::Int(5), "max of inner count");
    }

    #[test]
    fn stats_track_streams_and_work() {
        let mut e = engine_with_quotes();
        e.add_query(high_filter()).unwrap();
        e.push_batch((0..5).map(|i| ("quotes".to_string(), quote(i, "A", 120.0))));
        let stats = &e.stream_stats()["quotes"];
        assert_eq!(stats.count, 5);
        assert_eq!(stats.min_ts, 0);
        assert_eq!(stats.max_ts, 4);
        assert_eq!(e.tuples_processed(), 5);
    }

    #[test]
    fn push_rows_matches_push_batch_stats() {
        let mut a = engine_with_quotes();
        a.add_query(high_filter()).unwrap();
        let mut b = engine_with_quotes();
        b.add_query(high_filter()).unwrap();
        let rows: Vec<Tuple> = (0..10).map(|i| quote(i + 3, "A", 120.0)).collect();
        a.push_batch(rows.iter().cloned().map(|t| ("quotes".to_string(), t)));
        b.push_rows("quotes", rows);
        assert_eq!(
            a.stream_stats()["quotes"].count,
            b.stream_stats()["quotes"].count
        );
        assert_eq!(
            a.stream_stats()["quotes"].min_ts,
            b.stream_stats()["quotes"].min_ts
        );
        assert_eq!(
            a.stream_stats()["quotes"].max_ts,
            b.stream_stats()["quotes"].max_ts
        );
        assert_eq!(a.tuples_processed(), b.tuples_processed());
    }

    #[test]
    fn timing_is_recorded_per_node() {
        let mut e = engine_with_quotes();
        let cq = e.add_query(high_filter()).unwrap();
        e.push_rows("quotes", (0..100).map(|i| quote(i, "A", 120.0)).collect());
        let node = e.network().query(cq).unwrap().nodes[0];
        let node = e.network().node(node).unwrap();
        assert_eq!(node.in_count, 100);
        assert!(node.in_batches >= 1);
        assert!(
            node.busy > std::time::Duration::ZERO,
            "busy time accumulates"
        );
    }

    #[test]
    fn fusion_knob_controls_network_shape_not_results() {
        let chain = high_filter()
            .filter(Expr::col(0).eq(Expr::lit(Value::str("IBM"))))
            .project(vec![("price".to_string(), Expr::col(1))]);
        let rows: Vec<Tuple> = (0..50)
            .map(|i| {
                quote(
                    i,
                    if i % 2 == 0 { "IBM" } else { "AAPL" },
                    90.0 + (i % 30) as f64,
                )
            })
            .collect();

        let mut fused = engine_with_quotes();
        assert!(fused.fusion_enabled(), "fusion defaults to on");
        let fq = fused.add_query(chain.clone()).unwrap();
        fused.push_rows("quotes", rows.clone());

        let mut unfused = engine_with_quotes().with_fusion(false);
        let uq = unfused.add_query(chain).unwrap();
        unfused.push_rows("quotes", rows);

        assert_eq!(fused.network().num_nodes(), 1);
        assert_eq!(unfused.network().num_nodes(), 3);
        assert_eq!(fused.take_outputs(fq), unfused.take_outputs(uq));
        assert!(
            fused.batches_processed() < unfused.batches_processed(),
            "fusion removes per-operator queue hops"
        );
    }

    #[test]
    fn sink_fanout_shares_batches_without_row_clones() {
        // 32 sinks off one shared filter: delivery must be Arc-shared —
        // zero per-sink row copies, zero per-row evaluation, zero deep
        // batch clones — and still correct per sink.
        let mut e = engine_with_quotes();
        let cqs: Vec<_> = (0..32)
            .map(|_| e.add_query(high_filter()).unwrap())
            .collect();
        crate::types::work::reset();
        e.push_rows(
            "quotes",
            (0..1000).map(|i| quote(i, "IBM", 120.0)).collect(),
        );
        let snap = crate::types::work::snapshot();
        assert_eq!(snap.rows_materialized, 0, "delivery is zero-copy");
        assert_eq!(snap.row_evals, 0, "the filter ran as a columnar kernel");
        assert_eq!(snap.batch_deep_clones, 0, "sinks share, never copy");
        for &cq in &cqs {
            assert_eq!(e.output_len(cq), 1000);
        }
        // Reading one sink's outputs materializes rows once, without
        // disturbing the other sinks' shared batches.
        assert_eq!(e.take_outputs(cqs[0]).len(), 1000);
        assert_eq!(e.output_len(cqs[1]), 1000);
        assert_eq!(e.take_outputs(cqs[1]).len(), 1000);
    }

    #[test]
    fn multi_node_fanout_shares_columns_copy_on_write() {
        // Two *distinct* filters subscribe to the stream: before COW
        // column sharing the second queue consumer paid a deep copy; now
        // both read the shared columns and nobody copies row data.
        let mut e = engine_with_quotes();
        e.add_query(high_filter()).unwrap();
        e.add_query(
            LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(50.0)))),
        )
        .unwrap();
        crate::types::work::reset();
        e.push_rows("quotes", (0..10).map(|i| quote(i, "IBM", 120.0)).collect());
        let snap = crate::types::work::snapshot();
        assert_eq!(
            snap.batch_deep_clones, 0,
            "N node consumers share columns copy-on-write"
        );
    }

    #[test]
    fn mixed_sink_and_node_fanout_never_copies_column_data() {
        // The shared filter feeds a sink (q1) *and* a downstream filter
        // node (q2): the sink's Arc outlives the queue drain, but the node
        // consumer's clone only bumps the column Arcs — zero data copies.
        let mut e = engine_with_quotes();
        let q1 = e.add_query(high_filter()).unwrap();
        let q2 = e
            .add_query(high_filter().filter(Expr::col(0).eq(Expr::lit(Value::str("IBM")))))
            .unwrap();
        crate::types::work::reset();
        e.push_rows("quotes", (0..10).map(|i| quote(i, "IBM", 120.0)).collect());
        let snap = crate::types::work::snapshot();
        assert_eq!(
            snap.batch_deep_clones, 0,
            "readers of a shared batch never copy column data"
        );
        assert_eq!(e.output_len(q1), 10);
        assert_eq!(e.output_len(q2), 10);
    }

    fn market_rows(n: u64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                quote(
                    i,
                    if i % 3 == 0 { "IBM" } else { "AAPL" },
                    80.0 + (i % 50) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn shard_knobs_default_to_single_threaded() {
        let e = engine_with_quotes();
        assert_eq!(e.shards(), 1);
        assert_eq!(e.shard_key("quotes"), None);
        assert_eq!(e.shard_stats().len(), 1);
        assert_eq!(e.shard_stats()[0].rows, 0, "no sharded run happened");
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_rejected() {
        let _ = DsmsEngine::new().with_shards(0);
    }

    #[test]
    fn changing_shard_count_resets_per_shard_statistics() {
        // Shard ids mean nothing across different counts, so accumulated
        // per-shard statistics must not survive a resize.
        let mut e = engine_with_quotes().with_max_batch_size(8).with_shards(8);
        e.set_shard_key("quotes", 0).unwrap();
        e.add_query(high_filter()).unwrap();
        e.push_rows("quotes", market_rows(64));
        assert!(e.shard_stats().iter().map(|s| s.rows).sum::<u64>() > 0);
        e.set_shards(2);
        assert_eq!(e.shard_stats().len(), 2);
        assert!(e.shard_stats().iter().all(|s| s.rows == 0));
        assert!(e.stream_stats()["quotes"].shard_rows.is_empty());
        // Re-setting the same count is a no-op that keeps statistics.
        e.push_rows("quotes", market_rows(64));
        let rows: u64 = e.shard_stats().iter().map(|s| s.rows).sum();
        assert!(rows > 0);
        e.set_shards(2);
        assert_eq!(e.shard_stats().iter().map(|s| s.rows).sum::<u64>(), rows);
        assert_eq!(e.stream_stats()["quotes"].shard_rows.len(), 2);
    }

    #[test]
    fn float_shard_key_rejected() {
        let mut e = engine_with_quotes();
        let err = e.set_shard_key("quotes", 1).unwrap_err(); // price: Float
        assert_eq!(
            err,
            PlanError::UnhashableShardKey {
                stream: "quotes".into(),
                column: 1
            }
        );
        // The rejected key was not configured.
        assert_eq!(e.shard_key("quotes"), None);
        let err = e.set_shard_key("quotes", 9).unwrap_err();
        assert_eq!(
            err,
            PlanError::ShardKeyOutOfRange {
                stream: "quotes".into(),
                column: 9
            }
        );
    }

    #[test]
    fn shard_key_may_precede_stream_registration() {
        // Builder forms chain in any order; validation runs at register.
        let mut e = DsmsEngine::new().with_shards(2).with_shard_key("quotes", 0);
        e.register_stream("quotes", quote_schema());
        assert_eq!(e.shard_key("quotes"), Some(0));
    }

    #[test]
    #[should_panic(expected = "not a hashable shard key")]
    fn deferred_float_shard_key_rejected_at_registration() {
        let mut e = DsmsEngine::new().with_shard_key("quotes", 1);
        e.register_stream("quotes", quote_schema());
    }

    #[test]
    fn sharded_outputs_equal_single_threaded() {
        let rows = market_rows(200);
        let mut reference = engine_with_quotes().with_max_batch_size(16);
        let rq = reference.add_query(high_filter()).unwrap();
        reference.push_rows("quotes", rows.clone());
        let expected = reference.take_outputs(rq);
        for shards in [2usize, 4, 8] {
            // Round-robin batch distribution (the default)…
            let mut e = engine_with_quotes()
                .with_max_batch_size(16)
                .with_shards(shards);
            let cq = e.add_query(high_filter()).unwrap();
            e.push_rows("quotes", rows.clone());
            assert_eq!(e.take_outputs(cq), expected, "round-robin, shards={shards}");
            assert_eq!(
                e.tuples_processed(),
                reference.tuples_processed(),
                "sharding must not duplicate per-row work"
            );
            // …and hash partitioning on the symbol column.
            let mut h = engine_with_quotes()
                .with_max_batch_size(16)
                .with_shards(shards)
                .with_shard_key("quotes", 0);
            let cq = h.add_query(high_filter()).unwrap();
            h.push_rows("quotes", rows.clone());
            assert_eq!(h.take_outputs(cq), expected, "hash key, shards={shards}");
            assert_eq!(h.tuples_processed(), reference.tuples_processed());
        }
    }

    #[test]
    fn sharded_run_surfaces_per_shard_counters() {
        let mut e = engine_with_quotes()
            .with_max_batch_size(8)
            .with_shards(4)
            .with_shard_key("quotes", 0);
        let pass_all =
            LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(0.0))));
        let cq = e.add_query(pass_all).unwrap();
        work::reset();
        e.push_rows("quotes", market_rows(160));
        assert_eq!(e.output_len(cq), 160);
        let stats = &e.stream_stats()["quotes"];
        assert_eq!(stats.shard_rows.len(), 4);
        assert_eq!(stats.shard_rows.iter().sum::<u64>(), 160);
        assert!(
            stats.shard_rows.iter().filter(|&&r| r > 0).count() > 1,
            "two symbols must hash to more than one shard"
        );
        let shard_stats = e.shard_stats();
        assert_eq!(shard_stats.iter().map(|s| s.rows).sum::<u64>(), 160);
        assert_eq!(
            shard_stats.iter().map(|s| s.max_ts).max().unwrap(),
            e.watermark(),
            "per-shard watermarks merge into the engine watermark"
        );
        let snap = work::snapshot();
        assert!(snap.shard_batches > 0, "prefix work ran on shard workers");
        assert!(
            snap.shard_merge_rows > 0,
            "hash partitioning exercises the interleave merge"
        );
        assert_eq!(snap.row_evals, 0, "workers ran the columnar kernels");
    }

    /// Selection pushdown is not a sharded-only affair: the
    /// single-threaded control loop carries `(batch, selection)` pairs
    /// through its per-node queues, so a pure filter's survivors reach a
    /// downstream stateful consumer as a selection vector over the shared
    /// batch — counted by `selection_pushdown_rows` — instead of being
    /// densified into a fresh batch at every hop.
    #[test]
    fn single_threaded_queues_push_selections_into_stateful_ops() {
        let mut e = engine_with_quotes().with_max_batch_size(16);
        let cq = e
            .add_query(high_filter().aggregate(Some(0), AggFunc::Count, 0, 20))
            .unwrap();
        work::reset();
        e.push_rows("quotes", market_rows(160));
        let snap = work::snapshot();
        assert_eq!(snap.shard_batches, 0, "shards = 1 never touches the pool");
        assert!(
            snap.selection_pushdown_rows > 0,
            "the filter's partial selection must reach the aggregate undensified: {snap:?}"
        );
        e.finish();
        assert!(e.output_len(cq) > 0, "windows closed with grouped counts");
    }

    #[test]
    fn round_robin_sharding_merges_without_interleave() {
        let mut e = engine_with_quotes().with_max_batch_size(8).with_shards(4);
        let pass_all =
            LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(0.0))));
        let cq = e.add_query(pass_all).unwrap();
        work::reset();
        e.push_rows("quotes", market_rows(160));
        assert_eq!(e.output_len(cq), 160);
        let snap = work::snapshot();
        assert!(snap.shard_batches > 0);
        assert_eq!(
            snap.shard_merge_rows, 0,
            "whole batches merge by source order, no row interleave"
        );
    }

    #[test]
    fn sharded_stateful_suffix_and_sinks_agree_with_single_threaded() {
        // Filter prefix feeding an aggregate (merge barrier) plus a join of
        // two sharded streams.
        let plan = high_filter().aggregate(Some(0), AggFunc::Count, 0, 50);
        let mut reference = engine_with_quotes().with_max_batch_size(16);
        let rq = reference.add_query(plan.clone()).unwrap();
        reference.push_rows("quotes", market_rows(200));
        reference.finish();
        let expected = reference.take_outputs(rq);

        let mut e = engine_with_quotes()
            .with_max_batch_size(16)
            .with_shards(4)
            .with_shard_key("quotes", 0);
        let cq = e.add_query(plan).unwrap();
        e.push_rows("quotes", market_rows(200));
        e.finish();
        assert_eq!(e.take_outputs(cq), expected);
    }

    #[test]
    fn removed_query_stops_producing() {
        let mut e = engine_with_quotes();
        let q1 = e.add_query(high_filter()).unwrap();
        let q2 = e.add_query(high_filter()).unwrap();
        e.push_batch([("quotes".to_string(), quote(1, "A", 120.0))]);
        e.remove_query(q1);
        e.push_batch([("quotes".to_string(), quote(2, "A", 130.0))]);
        assert_eq!(e.output_len(q2), 2);
        assert_eq!(e.output_len(q1), 0);
    }
}
