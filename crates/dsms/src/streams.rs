//! Synthetic input streams: the stock-quote and news-story feeds of the
//! paper's motivating example (§II), generated deterministically from a
//! seed.
//!
//! These stand in for the proprietary market feeds a real DSMS center would
//! ingest (documented substitution in DESIGN.md): what matters to the
//! admission-control experiments is the *rate* and *selectivity* profile,
//! both of which are controlled here.

use crate::types::{DataType, Field, Schema, Tuple, TupleBatch, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Schema of the `quotes` stream: `(symbol: Str, price: Float, volume: Int)`.
pub fn quote_schema() -> Schema {
    Schema::new(vec![
        Field::new("symbol", DataType::Str),
        Field::new("price", DataType::Float),
        Field::new("volume", DataType::Int),
    ])
}

/// Schema of the `news` stream: `(symbol: Str, category: Str, relevance: Int)`.
pub fn news_schema() -> Schema {
    Schema::new(vec![
        Field::new("symbol", DataType::Str),
        Field::new("category", DataType::Str),
        Field::new("relevance", DataType::Int),
    ])
}

/// News categories emitted by [`NewsStream`].
pub const NEWS_CATEGORIES: [&str; 4] = ["earnings", "merger", "regulation", "market"];

/// A deterministic random-walk stock quote generator.
#[derive(Debug)]
pub struct StockStream {
    symbols: Vec<Arc<str>>,
    prices: Vec<f64>,
    rng: StdRng,
    ts: u64,
    interval_ms: u64,
}

impl StockStream {
    /// A generator over `symbols` with one tuple per `interval_ms`.
    pub fn new(symbols: &[&str], interval_ms: u64, seed: u64) -> Self {
        assert!(!symbols.is_empty(), "need at least one symbol");
        assert!(interval_ms > 0, "interval must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let prices = symbols
            .iter()
            .map(|_| rng.random_range(20.0..200.0))
            .collect();
        Self {
            symbols: symbols.iter().map(|s| Arc::from(*s)).collect(),
            prices,
            rng,
            ts: 0,
            interval_ms,
        }
    }

    /// The tracked symbols.
    pub fn symbols(&self) -> &[Arc<str>] {
        &self.symbols
    }

    /// Generates the next `count` quote tuples (timestamps advance by the
    /// configured interval).
    pub fn next_batch(&mut self, count: usize) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let idx = self.rng.random_range(0..self.symbols.len());
            // Mean-reverting random walk keeps prices in a plausible band.
            let drift = self.rng.random_range(-2.0..2.0);
            let reversion = (100.0 - self.prices[idx]) * 0.01;
            self.prices[idx] = (self.prices[idx] + drift + reversion).max(1.0);
            let volume = self.rng.random_range(1i64..10_000);
            out.push(Tuple::new(
                self.ts,
                vec![
                    Value::Str(self.symbols[idx].clone()),
                    Value::Float(self.prices[idx]),
                    Value::Int(volume),
                ],
            ));
            self.ts += self.interval_ms;
        }
        out
    }

    /// Generates the next `count` quotes directly as a [`TupleBatch`]
    /// (ready for [`crate::engine::DsmsEngine::push_rows`]-style ingestion).
    /// The symbol column comes back dictionary-encoded
    /// ([`crate::types::Column::Dict`]): `from_rows` interns string columns
    /// at the ingestion boundary, so downstream equality predicates and
    /// key hashing run on u32 codes instead of string bytes.
    pub fn next_tuple_batch(&mut self, count: usize) -> TupleBatch {
        TupleBatch::from_rows(Arc::new(quote_schema()), self.next_batch(count))
    }

    /// Generates a **burst**: `count` quotes that all carry the *current*
    /// timestamp — the time axis does not advance until the burst is over.
    /// Models a flash crowd (an event spike where many quotes land in the
    /// same instant); feed bursts to an engine with an
    /// [`crate::engine::OverloadPolicy`] to exercise load shedding.
    pub fn burst_batch(&mut self, count: usize) -> Vec<Tuple> {
        let interval = std::mem::replace(&mut self.interval_ms, 0);
        let out = self.next_batch(count);
        self.interval_ms = interval;
        // One interval passes after the burst so the next batch is newer.
        self.ts += self.interval_ms;
        out
    }
}

/// A deterministic news-story generator over the same symbol universe.
#[derive(Debug)]
pub struct NewsStream {
    symbols: Vec<Arc<str>>,
    rng: StdRng,
    ts: u64,
    interval_ms: u64,
}

impl NewsStream {
    /// A generator over `symbols` with one story per `interval_ms`.
    pub fn new(symbols: &[&str], interval_ms: u64, seed: u64) -> Self {
        assert!(!symbols.is_empty(), "need at least one symbol");
        assert!(interval_ms > 0, "interval must be positive");
        Self {
            symbols: symbols.iter().map(|s| Arc::from(*s)).collect(),
            rng: StdRng::seed_from_u64(seed),
            ts: 0,
            interval_ms,
        }
    }

    /// Generates the next `count` news tuples.
    pub fn next_batch(&mut self, count: usize) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let idx = self.rng.random_range(0..self.symbols.len());
            let cat = NEWS_CATEGORIES[self.rng.random_range(0..NEWS_CATEGORIES.len())];
            let relevance = self.rng.random_range(0i64..100);
            out.push(Tuple::new(
                self.ts,
                vec![
                    Value::Str(self.symbols[idx].clone()),
                    Value::str(cat),
                    Value::Int(relevance),
                ],
            ));
            self.ts += self.interval_ms;
        }
        out
    }

    /// Generates the next `count` stories directly as a [`TupleBatch`].
    pub fn next_tuple_batch(&mut self, count: usize) -> TupleBatch {
        TupleBatch::from_rows(Arc::new(news_schema()), self.next_batch(count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotes_conform_to_schema() {
        let mut g = StockStream::new(&["IBM", "AAPL"], 5, 1);
        let schema = quote_schema();
        for t in g.next_batch(100) {
            assert!(t.conforms_to(&schema));
        }
    }

    #[test]
    fn quotes_are_deterministic_per_seed() {
        let a: Vec<Tuple> = StockStream::new(&["IBM"], 1, 7).next_batch(50);
        let b: Vec<Tuple> = StockStream::new(&["IBM"], 1, 7).next_batch(50);
        assert_eq!(a, b);
        let c: Vec<Tuple> = StockStream::new(&["IBM"], 1, 8).next_batch(50);
        assert_ne!(a, c);
    }

    #[test]
    fn timestamps_advance_by_interval() {
        let mut g = StockStream::new(&["IBM"], 10, 0);
        let batch = g.next_batch(3);
        assert_eq!(
            batch.iter().map(|t| t.ts).collect::<Vec<_>>(),
            vec![0, 10, 20]
        );
        let next = g.next_batch(1);
        assert_eq!(next[0].ts, 30);
    }

    #[test]
    fn news_conform_and_cover_categories() {
        let mut g = NewsStream::new(&["IBM", "AAPL"], 20, 3);
        let schema = news_schema();
        let batch = g.next_batch(200);
        let mut seen = std::collections::HashSet::new();
        for t in &batch {
            assert!(t.conforms_to(&schema));
            seen.insert(t.values[1].as_str().unwrap().to_string());
        }
        assert_eq!(seen.len(), NEWS_CATEGORIES.len());
    }

    #[test]
    fn prices_stay_positive() {
        let mut g = StockStream::new(&["X"], 1, 42);
        for t in g.next_batch(5000) {
            assert!(t.values[1].as_f64().unwrap() >= 1.0);
        }
    }

    /// Ingestion-boundary encoding: both generators' `next_tuple_batch`
    /// hand out dictionary-encoded string columns whose decoded rows match
    /// the tuple feed bit for bit.
    #[test]
    fn tuple_batches_dictionary_encode_string_columns() {
        let symbols = ["IBM", "AAPL", "MSFT"];
        let quotes = StockStream::new(&symbols, 1, 11).next_tuple_batch(64);
        match quotes.column(0) {
            crate::types::Column::Dict { dict, .. } => {
                assert!(dict.len() <= symbols.len(), "one entry per distinct symbol");
            }
            other => panic!("symbol column must be dict-encoded, got {other:?}"),
        }
        let mut reference = StockStream::new(&symbols, 1, 11);
        assert_eq!(quotes.clone().into_rows(), reference.next_batch(64));

        let news = NewsStream::new(&symbols, 1, 11).next_tuple_batch(64);
        for col in [0, 1] {
            assert!(
                matches!(news.column(col), crate::types::Column::Dict { .. }),
                "news column {col} must be dict-encoded"
            );
        }
    }
}
