//! A small expression language for predicates and projections.
//!
//! Filters, projections, and join/aggregate keys are all data — not Rust
//! closures — so that two structurally identical operators submitted by
//! different users hash to the same **signature** and get shared in the
//! query network (the premise of the paper's operator sharing: "many of the
//! CQs are similar, but not identical").

use crate::types::{DataType, Schema, Tuple, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// An expression over one tuple.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// The value of column `i`.
    Col(usize),
    /// A literal.
    Lit(Value),
    /// Comparison of two sub-expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic on two numeric sub-expressions (result: Float unless both
    /// Int).
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
}

/// Errors from evaluation or type checking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExprError {
    /// Column index out of range for the schema.
    UnknownColumn(usize),
    /// Operand types don't match the operator.
    TypeMismatch(String),
    /// Division by zero.
    DivisionByZero,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnknownColumn(i) => write!(f, "unknown column {i}"),
            ExprError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            ExprError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for ExprError {}

impl Expr {
    /// Column reference helper.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self <op> rhs` comparison helper.
    pub fn cmp(self, op: CmpOp, rhs: Expr) -> Expr {
        Expr::Cmp(op, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Gt, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Ge, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Lt, rhs)
    }

    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Eq, rhs)
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// Infers the expression's result type against `schema`, validating
    /// column references and operand types.
    pub fn infer_type(&self, schema: &Schema) -> Result<DataType, ExprError> {
        match self {
            Expr::Col(i) => {
                if *i < schema.len() {
                    Ok(schema.data_type(*i))
                } else {
                    Err(ExprError::UnknownColumn(*i))
                }
            }
            Expr::Lit(v) => Ok(v.data_type()),
            Expr::Cmp(_, l, r) => {
                let lt = l.infer_type(schema)?;
                let rt = r.infer_type(schema)?;
                let comparable = lt == rt
                    || (matches!(lt, DataType::Int | DataType::Float)
                        && matches!(rt, DataType::Int | DataType::Float));
                if comparable {
                    Ok(DataType::Bool)
                } else {
                    Err(ExprError::TypeMismatch(format!(
                        "cannot compare {lt:?} with {rt:?}"
                    )))
                }
            }
            Expr::Arith(_, l, r) => {
                let lt = l.infer_type(schema)?;
                let rt = r.infer_type(schema)?;
                match (lt, rt) {
                    (DataType::Int, DataType::Int) => Ok(DataType::Int),
                    (DataType::Int | DataType::Float, DataType::Int | DataType::Float) => {
                        Ok(DataType::Float)
                    }
                    _ => Err(ExprError::TypeMismatch(format!(
                        "cannot do arithmetic on {lt:?} and {rt:?}"
                    ))),
                }
            }
            Expr::And(l, r) | Expr::Or(l, r) => {
                for side in [l, r] {
                    if side.infer_type(schema)? != DataType::Bool {
                        return Err(ExprError::TypeMismatch(
                            "logical operand must be boolean".into(),
                        ));
                    }
                }
                Ok(DataType::Bool)
            }
            Expr::Not(e) => {
                if e.infer_type(schema)? == DataType::Bool {
                    Ok(DataType::Bool)
                } else {
                    Err(ExprError::TypeMismatch(
                        "NOT operand must be boolean".into(),
                    ))
                }
            }
        }
    }

    /// Evaluates the expression on one tuple.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value, ExprError> {
        match self {
            Expr::Col(i) => tuple
                .values
                .get(*i)
                .cloned()
                .ok_or(ExprError::UnknownColumn(*i)),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cmp(op, l, r) => {
                let lv = l.eval(tuple)?;
                let rv = r.eval(tuple)?;
                compare(*op, &lv, &rv).map(Value::Bool)
            }
            Expr::Arith(op, l, r) => {
                let lv = l.eval(tuple)?;
                let rv = r.eval(tuple)?;
                arith(*op, &lv, &rv)
            }
            Expr::And(l, r) => {
                let lv = as_bool(&l.eval(tuple)?)?;
                if !lv {
                    return Ok(Value::Bool(false)); // short circuit
                }
                Ok(Value::Bool(as_bool(&r.eval(tuple)?)?))
            }
            Expr::Or(l, r) => {
                let lv = as_bool(&l.eval(tuple)?)?;
                if lv {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(as_bool(&r.eval(tuple)?)?))
            }
            Expr::Not(e) => Ok(Value::Bool(!as_bool(&e.eval(tuple)?)?)),
        }
    }

    /// Evaluates a predicate, treating evaluation errors as `false` —
    /// streaming engines drop malformed tuples rather than halt the network.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        matches!(self.eval(tuple), Ok(Value::Bool(true)))
    }

    /// True for expressions whose evaluation is a plain lookup or constant
    /// (`Col`, `Lit`) — the expressions cheap (and side-effect/error-free on
    /// schema-conforming tuples) enough that the operator-fusion pass may
    /// duplicate or reorder them freely during substitution.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Expr::Col(_) | Expr::Lit(_))
    }

    /// Rewrites every column reference `Col(i)` to `cols[i]` — the
    /// substitution step of projection composition in the fusion pass:
    /// evaluating the result against a projection's *input* equals
    /// evaluating `self` against that projection's *output* when `cols` are
    /// the projection's defining expressions. Out-of-range references (which
    /// plan validation rejects before any operator is built) are left
    /// untouched.
    pub fn substitute_cols(&self, cols: &[Expr]) -> Expr {
        match self {
            Expr::Col(i) => cols.get(*i).cloned().unwrap_or(Expr::Col(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, l, r) => Expr::Cmp(
                *op,
                Box::new(l.substitute_cols(cols)),
                Box::new(r.substitute_cols(cols)),
            ),
            Expr::Arith(op, l, r) => Expr::Arith(
                *op,
                Box::new(l.substitute_cols(cols)),
                Box::new(r.substitute_cols(cols)),
            ),
            Expr::And(l, r) => Expr::And(
                Box::new(l.substitute_cols(cols)),
                Box::new(r.substitute_cols(cols)),
            ),
            Expr::Or(l, r) => Expr::Or(
                Box::new(l.substitute_cols(cols)),
                Box::new(r.substitute_cols(cols)),
            ),
            Expr::Not(e) => Expr::Not(Box::new(e.substitute_cols(cols))),
        }
    }
}

fn as_bool(v: &Value) -> Result<bool, ExprError> {
    v.as_bool()
        .ok_or_else(|| ExprError::TypeMismatch("expected boolean".into()))
}

fn compare(op: CmpOp, l: &Value, r: &Value) -> Result<bool, ExprError> {
    use std::cmp::Ordering;
    let ord: Ordering = match (l, r) {
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
        (Value::Int(a), Value::Int(b)) => a.cmp(b),
        _ => {
            let (a, b) = (
                l.as_f64()
                    .ok_or_else(|| ExprError::TypeMismatch("non-numeric compare".into()))?,
                r.as_f64()
                    .ok_or_else(|| ExprError::TypeMismatch("non-numeric compare".into()))?,
            );
            a.partial_cmp(&b)
                .ok_or_else(|| ExprError::TypeMismatch("NaN in comparison".into()))?
        }
    };
    Ok(match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    })
}

fn arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value, ExprError> {
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            ArithOp::Add => Value::Int(a.wrapping_add(*b)),
            ArithOp::Sub => Value::Int(a.wrapping_sub(*b)),
            ArithOp::Mul => Value::Int(a.wrapping_mul(*b)),
            ArithOp::Div => {
                if *b == 0 {
                    return Err(ExprError::DivisionByZero);
                }
                Value::Int(a / b)
            }
        });
    }
    let a = l
        .as_f64()
        .ok_or_else(|| ExprError::TypeMismatch("non-numeric arithmetic".into()))?;
    let b = r
        .as_f64()
        .ok_or_else(|| ExprError::TypeMismatch("non-numeric arithmetic".into()))?;
    Ok(match op {
        ArithOp::Add => Value::Float(a + b),
        ArithOp::Sub => Value::Float(a - b),
        ArithOp::Mul => Value::Float(a * b),
        ArithOp::Div => {
            if b == 0.0 {
                return Err(ExprError::DivisionByZero);
            }
            Value::Float(a / b)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Field;

    fn quote_schema() -> Schema {
        Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("price", DataType::Float),
            Field::new("volume", DataType::Int),
        ])
    }

    fn quote(sym: &str, price: f64, volume: i64) -> Tuple {
        Tuple::new(
            0,
            vec![Value::str(sym), Value::Float(price), Value::Int(volume)],
        )
    }

    #[test]
    fn high_value_transaction_predicate() {
        // The paper's intro example: select high value transactions.
        let pred = Expr::col(1)
            .gt(Expr::lit(Value::Float(100.0)))
            .and(Expr::col(2).ge(Expr::lit(Value::Int(1000))));
        assert!(pred.matches(&quote("IBM", 120.0, 5000)));
        assert!(!pred.matches(&quote("IBM", 90.0, 5000)));
        assert!(!pred.matches(&quote("IBM", 120.0, 10)));
        assert_eq!(pred.infer_type(&quote_schema()), Ok(DataType::Bool));
    }

    #[test]
    fn mixed_numeric_compare() {
        let pred = Expr::col(2).gt(Expr::lit(Value::Float(10.5)));
        assert!(pred.matches(&quote("A", 0.0, 11)));
        assert!(!pred.matches(&quote("A", 0.0, 10)));
    }

    #[test]
    fn string_equality() {
        let pred = Expr::col(0).eq(Expr::lit(Value::str("IBM")));
        assert!(pred.matches(&quote("IBM", 1.0, 1)));
        assert!(!pred.matches(&quote("AAPL", 1.0, 1)));
    }

    #[test]
    fn arithmetic_and_types() {
        let notional = Expr::Arith(ArithOp::Mul, Box::new(Expr::col(1)), Box::new(Expr::col(2)));
        assert_eq!(notional.infer_type(&quote_schema()), Ok(DataType::Float));
        let v = notional.eval(&quote("A", 2.0, 10)).unwrap();
        assert_eq!(v, Value::Float(20.0));
        let int_sum = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::col(2)),
            Box::new(Expr::lit(Value::Int(1))),
        );
        assert_eq!(int_sum.infer_type(&quote_schema()), Ok(DataType::Int));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let e = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::lit(Value::Int(1))),
            Box::new(Expr::lit(Value::Int(0))),
        );
        assert_eq!(e.eval(&quote("A", 0.0, 0)), Err(ExprError::DivisionByZero));
    }

    #[test]
    fn type_errors_are_caught_statically() {
        let bad = Expr::col(0).gt(Expr::lit(Value::Int(3)));
        assert!(bad.infer_type(&quote_schema()).is_err());
        let bad_col = Expr::col(9);
        assert_eq!(
            bad_col.infer_type(&quote_schema()),
            Err(ExprError::UnknownColumn(9))
        );
    }

    #[test]
    fn matches_swallows_runtime_errors() {
        let bad = Expr::col(9).gt(Expr::lit(Value::Int(3)));
        assert!(!bad.matches(&quote("A", 0.0, 0)));
    }

    #[test]
    fn leaf_detection() {
        assert!(Expr::col(0).is_leaf());
        assert!(Expr::lit(Value::Int(1)).is_leaf());
        assert!(!Expr::col(0).eq(Expr::lit(Value::Int(1))).is_leaf());
    }

    #[test]
    fn substitution_equals_projection_composition() {
        // Projection output: (col1, "IBM"); predicate over that output.
        let projection = [Expr::col(1), Expr::lit(Value::str("IBM"))];
        let pred = Expr::col(0)
            .gt(Expr::lit(Value::Float(10.0)))
            .and(Expr::col(1).eq(Expr::lit(Value::str("IBM"))));
        let substituted = pred.substitute_cols(&projection);
        let input = quote("AAPL", 12.0, 7);
        let projected = Tuple::new(
            input.ts,
            projection.iter().map(|e| e.eval(&input).unwrap()).collect(),
        );
        assert_eq!(pred.matches(&projected), substituted.matches(&input));
        assert!(substituted.matches(&input));
        // Out-of-range references survive untouched (defensive; plan
        // validation rejects them before substitution can see them).
        assert_eq!(Expr::col(9).substitute_cols(&projection), Expr::col(9));
    }

    #[test]
    fn short_circuit_logic() {
        // Right side would error, but the left side decides.
        let e = Expr::lit(Value::Bool(false)).and(Expr::col(9).eq(Expr::lit(Value::Int(1))));
        assert_eq!(e.eval(&quote("A", 0.0, 0)), Ok(Value::Bool(false)));
        let e = Expr::lit(Value::Bool(true)).or(Expr::col(9).eq(Expr::lit(Value::Int(1))));
        assert_eq!(e.eval(&quote("A", 0.0, 0)), Ok(Value::Bool(true)));
    }
}
