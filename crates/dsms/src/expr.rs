//! A small expression language for predicates and projections.
//!
//! Filters, projections, and join/aggregate keys are all data — not Rust
//! closures — so that two structurally identical operators submitted by
//! different users hash to the same **signature** and get shared in the
//! query network (the premise of the paper's operator sharing: "many of the
//! CQs are similar, but not identical").
//!
//! Expressions evaluate two ways:
//!
//! * **Columnar** ([`Expr::eval_columnar`], [`Expr::filter_indices`]) — the
//!   hot path: kernels dispatch on operand column types once per *batch*
//!   and run tight typed loops, carrying a per-row validity mask so that
//!   row-level evaluation errors (division by zero, NaN comparisons) keep
//!   the row layout's drop-the-row semantics bit for bit.
//! * **Per-row** ([`Expr::eval`], [`Expr::matches`]) — the reference
//!   fallback: a recursive walk over one [`Tuple`], retained for
//!   row-oriented consumers and as the oracle the columnar-vs-row
//!   equivalence property tests against.

use crate::types::{work, Column, DataType, Schema, Tuple, TupleBatch, Value};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;

/// Binary comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// An expression over one tuple.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// The value of column `i`.
    Col(usize),
    /// A literal.
    Lit(Value),
    /// Comparison of two sub-expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic on two numeric sub-expressions (result: Float unless both
    /// Int).
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
}

/// Errors from evaluation or type checking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExprError {
    /// Column index out of range for the schema.
    UnknownColumn(usize),
    /// Operand types don't match the operator.
    TypeMismatch(String),
    /// Division by zero.
    DivisionByZero,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnknownColumn(i) => write!(f, "unknown column {i}"),
            ExprError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            ExprError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for ExprError {}

impl Expr {
    /// Column reference helper.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self <op> rhs` comparison helper.
    pub fn cmp(self, op: CmpOp, rhs: Expr) -> Expr {
        Expr::Cmp(op, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Gt, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Ge, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Lt, rhs)
    }

    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Eq, rhs)
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// Infers the expression's result type against `schema`, validating
    /// column references and operand types.
    pub fn infer_type(&self, schema: &Schema) -> Result<DataType, ExprError> {
        match self {
            Expr::Col(i) => {
                if *i < schema.len() {
                    Ok(schema.data_type(*i))
                } else {
                    Err(ExprError::UnknownColumn(*i))
                }
            }
            Expr::Lit(v) => Ok(v.data_type()),
            Expr::Cmp(_, l, r) => {
                let lt = l.infer_type(schema)?;
                let rt = r.infer_type(schema)?;
                let comparable = lt == rt
                    || (matches!(lt, DataType::Int | DataType::Float)
                        && matches!(rt, DataType::Int | DataType::Float));
                if comparable {
                    Ok(DataType::Bool)
                } else {
                    Err(ExprError::TypeMismatch(format!(
                        "cannot compare {lt:?} with {rt:?}"
                    )))
                }
            }
            Expr::Arith(_, l, r) => {
                let lt = l.infer_type(schema)?;
                let rt = r.infer_type(schema)?;
                match (lt, rt) {
                    (DataType::Int, DataType::Int) => Ok(DataType::Int),
                    (DataType::Int | DataType::Float, DataType::Int | DataType::Float) => {
                        Ok(DataType::Float)
                    }
                    _ => Err(ExprError::TypeMismatch(format!(
                        "cannot do arithmetic on {lt:?} and {rt:?}"
                    ))),
                }
            }
            Expr::And(l, r) | Expr::Or(l, r) => {
                for side in [l, r] {
                    if side.infer_type(schema)? != DataType::Bool {
                        return Err(ExprError::TypeMismatch(
                            "logical operand must be boolean".into(),
                        ));
                    }
                }
                Ok(DataType::Bool)
            }
            Expr::Not(e) => {
                if e.infer_type(schema)? == DataType::Bool {
                    Ok(DataType::Bool)
                } else {
                    Err(ExprError::TypeMismatch(
                        "NOT operand must be boolean".into(),
                    ))
                }
            }
        }
    }

    /// Multi-diagnostic counterpart of [`Expr::infer_type`]: walks the
    /// whole expression, pushing **every** type error into `errors`
    /// instead of stopping at the first, and returns the result type when
    /// it is still known (best-effort recovery — a comparison with a bad
    /// operand is still known to be boolean, so downstream checks keep
    /// running).
    pub fn check_types(&self, schema: &Schema, errors: &mut Vec<ExprError>) -> Option<DataType> {
        match self {
            Expr::Col(i) => {
                if *i < schema.len() {
                    Some(schema.data_type(*i))
                } else {
                    errors.push(ExprError::UnknownColumn(*i));
                    None
                }
            }
            Expr::Lit(v) => Some(v.data_type()),
            Expr::Cmp(_, l, r) => {
                let lt = l.check_types(schema, errors);
                let rt = r.check_types(schema, errors);
                if let (Some(lt), Some(rt)) = (lt, rt) {
                    let comparable = lt == rt
                        || (matches!(lt, DataType::Int | DataType::Float)
                            && matches!(rt, DataType::Int | DataType::Float));
                    if !comparable {
                        errors.push(ExprError::TypeMismatch(format!(
                            "cannot compare {lt:?} with {rt:?}"
                        )));
                    }
                }
                Some(DataType::Bool)
            }
            Expr::Arith(_, l, r) => {
                let lt = l.check_types(schema, errors);
                let rt = r.check_types(schema, errors);
                match (lt?, rt?) {
                    (DataType::Int, DataType::Int) => Some(DataType::Int),
                    (DataType::Int | DataType::Float, DataType::Int | DataType::Float) => {
                        Some(DataType::Float)
                    }
                    (lt, rt) => {
                        errors.push(ExprError::TypeMismatch(format!(
                            "cannot do arithmetic on {lt:?} and {rt:?}"
                        )));
                        None
                    }
                }
            }
            Expr::And(l, r) | Expr::Or(l, r) => {
                for side in [l, r] {
                    if let Some(t) = side.check_types(schema, errors) {
                        if t != DataType::Bool {
                            errors.push(ExprError::TypeMismatch(
                                "logical operand must be boolean".into(),
                            ));
                        }
                    }
                }
                Some(DataType::Bool)
            }
            Expr::Not(e) => {
                if let Some(t) = e.check_types(schema, errors) {
                    if t != DataType::Bool {
                        errors.push(ExprError::TypeMismatch(
                            "NOT operand must be boolean".into(),
                        ));
                    }
                }
                Some(DataType::Bool)
            }
        }
    }

    /// Evaluates the expression on one tuple (the per-row fallback path;
    /// see the module docs).
    pub fn eval(&self, tuple: &Tuple) -> Result<Value, ExprError> {
        work::count_row_eval();
        match self {
            Expr::Col(i) => tuple
                .values
                .get(*i)
                .cloned()
                .ok_or(ExprError::UnknownColumn(*i)),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cmp(op, l, r) => {
                let lv = l.eval(tuple)?;
                let rv = r.eval(tuple)?;
                compare(*op, &lv, &rv).map(Value::Bool)
            }
            Expr::Arith(op, l, r) => {
                let lv = l.eval(tuple)?;
                let rv = r.eval(tuple)?;
                arith(*op, &lv, &rv)
            }
            Expr::And(l, r) => {
                let lv = as_bool(&l.eval(tuple)?)?;
                if !lv {
                    return Ok(Value::Bool(false)); // short circuit
                }
                Ok(Value::Bool(as_bool(&r.eval(tuple)?)?))
            }
            Expr::Or(l, r) => {
                let lv = as_bool(&l.eval(tuple)?)?;
                if lv {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(as_bool(&r.eval(tuple)?)?))
            }
            Expr::Not(e) => Ok(Value::Bool(!as_bool(&e.eval(tuple)?)?)),
        }
    }

    /// Evaluates a predicate, treating evaluation errors as `false` —
    /// streaming engines drop malformed tuples rather than halt the network.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        matches!(self.eval(tuple), Ok(Value::Bool(true)))
    }

    /// True for expressions whose evaluation is a plain lookup or constant
    /// (`Col`, `Lit`) — the expressions cheap (and side-effect/error-free on
    /// schema-conforming tuples) enough that the operator-fusion pass may
    /// duplicate or reorder them freely during substitution.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Expr::Col(_) | Expr::Lit(_))
    }

    /// The referenced column when the expression is a bare column
    /// reference — what keyed-shard planning uses to track a partition
    /// key's position through projections (any computed expression loses
    /// the key).
    pub fn as_col(&self) -> Option<usize> {
        match self {
            Expr::Col(i) => Some(*i),
            _ => None,
        }
    }

    /// Rewrites every column reference `Col(i)` to `cols[i]` — the
    /// substitution step of projection composition in the fusion pass:
    /// evaluating the result against a projection's *input* equals
    /// evaluating `self` against that projection's *output* when `cols` are
    /// the projection's defining expressions. Out-of-range references (which
    /// plan validation rejects before any operator is built) are left
    /// untouched.
    pub fn substitute_cols(&self, cols: &[Expr]) -> Expr {
        match self {
            Expr::Col(i) => cols.get(*i).cloned().unwrap_or(Expr::Col(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, l, r) => Expr::Cmp(
                *op,
                Box::new(l.substitute_cols(cols)),
                Box::new(r.substitute_cols(cols)),
            ),
            Expr::Arith(op, l, r) => Expr::Arith(
                *op,
                Box::new(l.substitute_cols(cols)),
                Box::new(r.substitute_cols(cols)),
            ),
            Expr::And(l, r) => Expr::And(
                Box::new(l.substitute_cols(cols)),
                Box::new(r.substitute_cols(cols)),
            ),
            Expr::Or(l, r) => Expr::Or(
                Box::new(l.substitute_cols(cols)),
                Box::new(r.substitute_cols(cols)),
            ),
            Expr::Not(e) => Expr::Not(Box::new(e.substitute_cols(cols))),
        }
    }
}

fn as_bool(v: &Value) -> Result<bool, ExprError> {
    v.as_bool()
        .ok_or_else(|| ExprError::TypeMismatch("expected boolean".into()))
}

fn compare(op: CmpOp, l: &Value, r: &Value) -> Result<bool, ExprError> {
    use std::cmp::Ordering;
    let ord: Ordering = match (l, r) {
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
        (Value::Int(a), Value::Int(b)) => a.cmp(b),
        _ => {
            let (a, b) = (
                l.as_f64()
                    .ok_or_else(|| ExprError::TypeMismatch("non-numeric compare".into()))?,
                r.as_f64()
                    .ok_or_else(|| ExprError::TypeMismatch("non-numeric compare".into()))?,
            );
            a.partial_cmp(&b)
                .ok_or_else(|| ExprError::TypeMismatch("NaN in comparison".into()))?
        }
    };
    Ok(match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    })
}

fn arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value, ExprError> {
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            ArithOp::Add => Value::Int(a.wrapping_add(*b)),
            ArithOp::Sub => Value::Int(a.wrapping_sub(*b)),
            ArithOp::Mul => Value::Int(a.wrapping_mul(*b)),
            ArithOp::Div => {
                if *b == 0 {
                    return Err(ExprError::DivisionByZero);
                }
                // Wrapping like the other ops: i64::MIN / -1 must not
                // panic the engine (it yields i64::MIN).
                Value::Int(a.wrapping_div(*b))
            }
        });
    }
    let a = l
        .as_f64()
        .ok_or_else(|| ExprError::TypeMismatch("non-numeric arithmetic".into()))?;
    let b = r
        .as_f64()
        .ok_or_else(|| ExprError::TypeMismatch("non-numeric arithmetic".into()))?;
    Ok(match op {
        ArithOp::Add => Value::Float(a + b),
        ArithOp::Sub => Value::Float(a - b),
        ArithOp::Mul => Value::Float(a * b),
        ArithOp::Div => {
            if b == 0.0 {
                return Err(ExprError::DivisionByZero);
            }
            Value::Float(a / b)
        }
    })
}

// ---------------------------------------------------------------------------
// Columnar evaluation
// ---------------------------------------------------------------------------

/// Per-row validity of a columnar evaluation result.
///
/// The row-oriented evaluator signals a row-level failure (division by
/// zero, NaN comparison, bad operand type) with an `Err` that the operator
/// turns into "drop this row" ([`Expr::matches`] → `false`, projections
/// skip the row). The columnar evaluator carries the same information as a
/// mask so one kernel pass can serve the whole batch.
#[derive(Clone, Debug, PartialEq)]
pub enum Validity {
    /// Every row evaluated successfully.
    AllValid,
    /// Every row failed (e.g. a statically ill-typed operand).
    NoneValid,
    /// Per-row mask: `mask[i]` is true when row `i` evaluated successfully.
    Mask(Vec<bool>),
}

impl Validity {
    /// True when row `i` is valid.
    pub fn is_valid(&self, i: usize) -> bool {
        match self {
            Validity::AllValid => true,
            Validity::NoneValid => false,
            Validity::Mask(m) => m[i],
        }
    }

    /// Conjunction of two validities over the same row set.
    pub fn and(self, other: Validity) -> Validity {
        match (self, other) {
            (Validity::AllValid, v) | (v, Validity::AllValid) => v,
            (Validity::NoneValid, _) | (_, Validity::NoneValid) => Validity::NoneValid,
            (Validity::Mask(mut a), Validity::Mask(b)) => {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x = *x && *y;
                }
                Validity::Mask(a)
            }
        }
    }
}

/// The values of a columnar evaluation: one cell per selected row, a lazy
/// selection view over a batch column, or a scalar broadcast over all of
/// them (literals, constant sub-trees).
#[derive(Clone, Debug)]
pub enum ColumnarValues<'a> {
    /// One value per selected row (length = selection length).
    Column(Cow<'a, Column>),
    /// A selection view of a batch column: logical row `k` is row
    /// `sel[k]` of the column. Kernels read through the selection in
    /// place, so a filter chain refines selections without gathering; the
    /// view densifies only when a consumer needs a dense result
    /// ([`ColumnarValues::into_column`]).
    ColumnSel(&'a Column, &'a [u32]),
    /// One value standing for every selected row.
    Scalar(Value),
}

impl ColumnarValues<'_> {
    /// Densifies into an owned column of `n` rows (broadcasting scalars,
    /// gathering selection views).
    pub fn into_column(self, n: usize) -> Column {
        match self {
            ColumnarValues::Column(c) => {
                debug_assert_eq!(c.len(), n, "dense column length mismatch");
                c.into_owned()
            }
            ColumnarValues::ColumnSel(c, sel) => {
                debug_assert_eq!(sel.len(), n, "selection length mismatch");
                c.take(sel)
            }
            ColumnarValues::Scalar(v) => Column::from_value(&v, n),
        }
    }
}

/// Result of evaluating an expression over (a selection of) a batch.
#[derive(Clone, Debug)]
pub struct ColumnarEval<'a> {
    /// The per-row (or broadcast) values. Meaningful only where
    /// [`ColumnarEval::validity`] marks the row valid; invalid rows hold
    /// arbitrary placeholders.
    pub values: ColumnarValues<'a>,
    /// Which rows evaluated successfully.
    pub validity: Validity,
}

impl ColumnarEval<'static> {
    /// The "every row failed" result (placeholder values).
    fn all_invalid() -> ColumnarEval<'static> {
        ColumnarEval {
            values: ColumnarValues::Scalar(Value::Bool(false)),
            validity: Validity::NoneValid,
        }
    }
}

/// Width of the unrolled kernel loops: 8 × i64/f64 spans two AVX2 (or one
/// AVX-512) register, and the fixed trip count lets the optimizer turn the
/// chunk body into straight-line vector code.
const LANES: usize = 8;

/// Elementwise `f` over two equal-length slices, processing full
/// `LANES`-wide chunks with a fixed trip count (the SIMD shape) and the
/// sub-lane tail row by row. With the SIMD kill switch off
/// ([`crate::ops::set_simd_kernels`]) the whole slice runs the scalar
/// reference loop — bit-identical output, `work::simd_lanes` untouched.
fn lanes_zip<T: Copy, O>(x: &[T], y: &[T], f: impl Fn(T, T) -> O) -> Vec<O> {
    debug_assert_eq!(x.len(), y.len());
    if !crate::ops::simd_kernels_enabled() {
        return x.iter().zip(y).map(|(&a, &b)| f(a, b)).collect();
    }
    work::count_simd_lanes((x.len() / LANES) as u64);
    let mut out = Vec::with_capacity(x.len());
    let mut xs = x.chunks_exact(LANES);
    let mut ys = y.chunks_exact(LANES);
    for (xc, yc) in (&mut xs).zip(&mut ys) {
        for (&a, &b) in xc.iter().zip(yc) {
            out.push(f(a, b));
        }
    }
    for (&a, &b) in xs.remainder().iter().zip(ys.remainder()) {
        out.push(f(a, b));
    }
    out
}

/// Unary twin of [`lanes_zip`].
fn lanes_map<T: Copy, O>(x: &[T], f: impl Fn(T) -> O) -> Vec<O> {
    if !crate::ops::simd_kernels_enabled() {
        return x.iter().map(|&a| f(a)).collect();
    }
    work::count_simd_lanes((x.len() / LANES) as u64);
    let mut out = Vec::with_capacity(x.len());
    let mut xs = x.chunks_exact(LANES);
    for xc in &mut xs {
        for &a in xc {
            out.push(f(a));
        }
    }
    for &a in xs.remainder() {
        out.push(f(a));
    }
    out
}

/// A dense typed operand: a borrowed slice, a selection view over one, or
/// a broadcast constant. The shape is resolved when the operand is built,
/// so the per-row `get` is a three-way branch over monomorphic data — no
/// [`Value`] enum in the loop — and [`binary_map`] routes the contiguous
/// shapes through the lane loops.
#[derive(Clone, Copy)]
enum Operand<'a, T: Copy> {
    Slice(&'a [T]),
    /// Selection view: element `k` is `slice[sel[k]]`.
    Gather(&'a [T], &'a [u32]),
    Const(T),
}

impl<T: Copy> Operand<'_, T> {
    #[inline]
    fn get(&self, i: usize) -> T {
        match self {
            Operand::Slice(s) => s[i],
            Operand::Gather(s, sel) => s[sel[i] as usize],
            Operand::Const(c) => *c,
        }
    }
}

/// Applies a binary kernel over two typed operands: contiguous shapes run
/// the unrolled lane loops, gathered (selection-view) shapes run the
/// scalar reference loop — a filter over a selection refines it without
/// densifying first.
fn binary_map<T: Copy, O>(
    a: Operand<'_, T>,
    b: Operand<'_, T>,
    n: usize,
    f: impl Fn(T, T) -> O + Copy,
) -> Vec<O> {
    match (a, b) {
        (Operand::Slice(x), Operand::Slice(y)) => lanes_zip(&x[..n], &y[..n], f),
        (Operand::Slice(x), Operand::Const(c)) => lanes_map(&x[..n], move |v| f(v, c)),
        (Operand::Const(c), Operand::Slice(y)) => lanes_map(&y[..n], move |v| f(c, v)),
        (a, b) => (0..n).map(|i| f(a.get(i), b.get(i))).collect(),
    }
}

/// A numeric operand: typed slices (optionally through a selection) or a
/// broadcast constant — the mixed Int/Float comparison and arithmetic
/// paths widen through [`FloatSide`] once per batch, never per row.
#[derive(Clone, Copy)]
enum NumOperand<'a> {
    Ints(&'a [i64], Option<&'a [u32]>),
    Floats(&'a [f64], Option<&'a [u32]>),
    Const(f64),
}

/// A dense `f64` view of a numeric operand, plus whether it can hold NaN
/// (integer-sourced values never do, so the NaN invalidation scan is
/// skipped for them). Integer slices widen once through the lane loops (a
/// vectorizable cast); gathered views densify through their selection.
enum FloatSide<'a> {
    Borrowed(&'a [f64]),
    Owned(Vec<f64>),
    Const(f64),
}

impl<'a> FloatSide<'a> {
    fn of(v: NumOperand<'a>, n: usize) -> (FloatSide<'a>, bool) {
        match v {
            NumOperand::Floats(s, None) => (FloatSide::Borrowed(&s[..n]), true),
            NumOperand::Floats(s, Some(sel)) => (
                FloatSide::Owned(sel.iter().map(|&i| s[i as usize]).collect()),
                true,
            ),
            NumOperand::Ints(s, None) => {
                (FloatSide::Owned(lanes_map(&s[..n], |v| v as f64)), false)
            }
            NumOperand::Ints(s, Some(sel)) => (
                FloatSide::Owned(sel.iter().map(|&i| s[i as usize] as f64).collect()),
                false,
            ),
            NumOperand::Const(c) => (FloatSide::Const(c), c.is_nan()),
        }
    }

    fn as_operand(&self) -> Operand<'_, f64> {
        match self {
            FloatSide::Borrowed(s) => Operand::Slice(s),
            FloatSide::Owned(v) => Operand::Slice(v),
            FloatSide::Const(c) => Operand::Const(*c),
        }
    }

    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            FloatSide::Borrowed(s) => s[i],
            FloatSide::Owned(v) => v[i],
            FloatSide::Const(c) => *c,
        }
    }
}

/// The logical row index behind an optional selection.
#[inline]
fn row_at(sel: Option<&[u32]>, k: usize) -> usize {
    sel.map_or(k, |s| s[k] as usize)
}

/// A string operand shape for the compare kernel: plain `Arc<str>` cells
/// and dictionary views keep their selection; constants broadcast.
#[derive(Clone, Copy)]
enum StrSide<'a> {
    /// Plain cells, optionally through a selection.
    Plain(&'a [std::sync::Arc<str>], Option<&'a [u32]>),
    /// Dictionary codes + dictionary, optionally through a selection.
    Dict {
        codes: &'a [u32],
        dict: &'a [std::sync::Arc<str>],
        sel: Option<&'a [u32]>,
        /// Codes of the lexicographically smallest/largest entries
        /// (`None` for an empty dictionary) — min/max pruning metadata.
        extremes: Option<(u32, u32)>,
    },
    /// A broadcast constant.
    Const(&'a str),
}

impl<'a> StrSide<'a> {
    fn of(v: &'a ColumnarValues<'_>) -> Option<StrSide<'a>> {
        let (col, sel) = match v {
            ColumnarValues::Column(c) => (c.as_ref(), None),
            ColumnarValues::ColumnSel(c, s) => (*c, Some(*s)),
            ColumnarValues::Scalar(Value::Str(s)) => return Some(StrSide::Const(s)),
            ColumnarValues::Scalar(_) => return None,
        };
        match col {
            Column::Str(s) => Some(StrSide::Plain(s, sel)),
            Column::Dict { codes, dict, .. } => Some(StrSide::Dict {
                codes,
                dict,
                sel,
                extremes: col.dict_extreme_codes(),
            }),
            _ => None,
        }
    }

    /// The cell at logical row `k`, decoded.
    #[inline]
    fn get(&self, k: usize) -> &str {
        match self {
            StrSide::Plain(s, sel) => &s[row_at(*sel, k)],
            StrSide::Dict {
                codes, dict, sel, ..
            } => &dict[codes[row_at(*sel, k)] as usize],
            StrSide::Const(c) => c,
        }
    }
}

fn int_operand<'a>(v: &'a ColumnarValues<'_>) -> Option<Operand<'a, i64>> {
    match v {
        ColumnarValues::Column(c) => c.as_ints().map(Operand::Slice),
        ColumnarValues::ColumnSel(c, s) => c.as_ints().map(|xs| Operand::Gather(xs, s)),
        ColumnarValues::Scalar(Value::Int(i)) => Some(Operand::Const(*i)),
        ColumnarValues::Scalar(_) => None,
    }
}

fn bool_operand<'a>(v: &'a ColumnarValues<'_>) -> Option<Operand<'a, bool>> {
    match v {
        ColumnarValues::Column(c) => c.as_bools().map(Operand::Slice),
        ColumnarValues::ColumnSel(c, s) => c.as_bools().map(|xs| Operand::Gather(xs, s)),
        ColumnarValues::Scalar(Value::Bool(b)) => Some(Operand::Const(*b)),
        ColumnarValues::Scalar(_) => None,
    }
}

fn num_operand<'a>(v: &'a ColumnarValues<'_>) -> Option<NumOperand<'a>> {
    let (col, sel) = match v {
        ColumnarValues::Column(c) => (c.as_ref(), None),
        ColumnarValues::ColumnSel(c, s) => (*c, Some(*s)),
        ColumnarValues::Scalar(s) => return s.as_f64().map(NumOperand::Const),
    };
    match col {
        Column::Int(s) => Some(NumOperand::Ints(s, sel)),
        Column::Float(s) => Some(NumOperand::Floats(s, sel)),
        _ => None,
    }
}

/// The ordering-to-bool test of a comparison operator (hoisted out of the
/// kernel loops).
#[inline]
fn cmp_test(op: CmpOp) -> fn(Ordering) -> bool {
    match op {
        CmpOp::Eq => |o| o == Ordering::Equal,
        CmpOp::Ne => |o| o != Ordering::Equal,
        CmpOp::Lt => |o| o == Ordering::Less,
        CmpOp::Le => |o| o != Ordering::Greater,
        CmpOp::Gt => |o| o == Ordering::Greater,
        CmpOp::Ge => |o| o != Ordering::Less,
    }
}

/// The direct `(T, T) -> bool` predicate of a comparison operator,
/// monomorphized per operator so the lane loops compare without routing
/// through [`Ordering`]. Agrees with `cmp_test(op)` ∘ `partial_cmp`
/// wherever the operands actually compare; NaN rows (which don't) are
/// invalidated separately by the numeric kernel, so their placeholder
/// value never matters.
fn cmp_pred<T: PartialOrd>(op: CmpOp) -> fn(T, T) -> bool {
    match op {
        CmpOp::Eq => |a, b| a == b,
        CmpOp::Ne => |a, b| a != b,
        CmpOp::Lt => |a, b| a < b,
        CmpOp::Le => |a, b| a <= b,
        CmpOp::Gt => |a, b| a > b,
        CmpOp::Ge => |a, b| a >= b,
    }
}

/// The wrapping kernel of an integer `Add`/`Sub`/`Mul` (`Div` needs the
/// per-row zero check and runs the scalar invalidating loop).
fn int_arith_fn(op: ArithOp) -> fn(i64, i64) -> i64 {
    match op {
        ArithOp::Add => i64::wrapping_add,
        ArithOp::Sub => i64::wrapping_sub,
        ArithOp::Mul => i64::wrapping_mul,
        ArithOp::Div => unreachable!("integer division runs the scalar invalidating loop"),
    }
}

/// The kernel of a float `Add`/`Sub`/`Mul` (`Div` needs the per-row zero
/// check and runs the scalar invalidating loop).
fn float_arith_fn(op: ArithOp) -> fn(f64, f64) -> f64 {
    match op {
        ArithOp::Add => |a, b| a + b,
        ArithOp::Sub => |a, b| a - b,
        ArithOp::Mul => |a, b| a * b,
        ArithOp::Div => unreachable!("float division runs the scalar invalidating loop"),
    }
}

/// Per-row dictionary-code lookup into a per-entry verdict table (the
/// dictionary fast path's inner loop: one u32 load + one table load per
/// row, no string bytes).
fn dict_lookup(codes: &[u32], sel: Option<&[u32]>, pass: &[bool], n: usize) -> Vec<bool> {
    work::count_dict_code_cmps(n as u64);
    match sel {
        None => lanes_map(&codes[..n], |c| pass[c as usize]),
        Some(s) => s
            .iter()
            .map(|&i| pass[codes[i as usize] as usize])
            .collect(),
    }
}

/// Min/max pruning for a dictionary-vs-constant compare: decides the
/// whole batch's verdict from the dictionary's lexicographic extremes
/// alone, when they prove it.
///
/// `ord_of(d)` is the ordering fed to `test` for entry `d` (operand order
/// matters for the flipped const-vs-dict arm). Because `d.cmp(c)` is
/// monotone in `d` (and `c.cmp(d)` antitone), every entry's ordering lies
/// in the inclusive interval spanned by the two extreme entries'
/// orderings; when `test` is constant over that interval the whole batch
/// shares one verdict — no per-entry table, no per-row scan. Returns
/// `None` when the extremes don't decide (or the dictionary is empty).
fn dict_extremes_prune(
    extremes: Option<(u32, u32)>,
    dict: &[std::sync::Arc<str>],
    test: fn(Ordering) -> bool,
    ord_of: impl Fn(&str) -> Ordering,
) -> Option<bool> {
    let (lo, hi) = extremes?;
    let olo = ord_of(dict[lo as usize].as_ref());
    let ohi = ord_of(dict[hi as usize].as_ref());
    let span = if olo <= ohi { olo..=ohi } else { ohi..=olo };
    let mut verdicts = [Ordering::Less, Ordering::Equal, Ordering::Greater]
        .into_iter()
        .filter(|o| span.contains(o))
        .map(test);
    let first = verdicts.next()?;
    verdicts.all(|v| v == first).then_some(first)
}

/// Columnar string compare. Dictionary fast paths compare u32 codes per
/// row ([`work::WorkSnapshot::dict_code_cmps`]), touching string bytes
/// only at dictionary granularity; every other shape decodes and
/// byte-compares per row ([`work::WorkSnapshot::str_cmps`]).
fn str_cmp_columnar(op: CmpOp, a: &StrSide<'_>, b: &StrSide<'_>, n: usize) -> Vec<bool> {
    let test = cmp_test(op);
    match (a, b) {
        // Dict vs constant: min/max pruning first — a range predicate the
        // extremes already decide settles the batch with two byte
        // compares ([`work::WorkSnapshot::dict_batches_pruned`] counts
        // the all-false case). Otherwise one byte-compare verdict per
        // dictionary entry, then a per-row code lookup — this covers the
        // ordering operators too, not just equality.
        (
            StrSide::Dict {
                codes,
                dict,
                sel,
                extremes,
            },
            StrSide::Const(c),
        ) => {
            if let Some(all) = dict_extremes_prune(*extremes, dict, test, |d| d.cmp(*c)) {
                if !all {
                    work::count_dict_batch_pruned();
                }
                return vec![all; n];
            }
            let pass: Vec<bool> = dict.iter().map(|d| test(d.as_ref().cmp(*c))).collect();
            dict_lookup(codes, *sel, &pass, n)
        }
        (
            StrSide::Const(c),
            StrSide::Dict {
                codes,
                dict,
                sel,
                extremes,
            },
        ) => {
            if let Some(all) = dict_extremes_prune(*extremes, dict, test, |d| (*c).cmp(d)) {
                if !all {
                    work::count_dict_batch_pruned();
                }
                return vec![all; n];
            }
            let pass: Vec<bool> = dict.iter().map(|d| test((*c).cmp(d.as_ref()))).collect();
            dict_lookup(codes, *sel, &pass, n)
        }
        // Dict vs dict equality: remap the right dictionary into the left's
        // code space once (byte compares at dictionary granularity), then
        // compare codes per row. `u32::MAX` marks an entry absent from the
        // left dictionary — no code ever equals it.
        (
            StrSide::Dict {
                codes: ca,
                dict: da,
                sel: sa,
                ..
            },
            StrSide::Dict {
                codes: cb,
                dict: db,
                sel: sb,
                ..
            },
        ) if matches!(op, CmpOp::Eq | CmpOp::Ne) => {
            let eq = matches!(op, CmpOp::Eq);
            let remap: Vec<u32> = db
                .iter()
                .map(|d| {
                    da.iter()
                        .position(|e| e == d)
                        .map_or(u32::MAX, |p| p as u32)
                })
                .collect();
            work::count_dict_code_cmps(n as u64);
            match (sa, sb) {
                (None, None) => {
                    lanes_zip(&ca[..n], &cb[..n], |x, y| (x == remap[y as usize]) == eq)
                }
                (sa, sb) => (0..n)
                    .map(|k| {
                        let x = ca[row_at(*sa, k)];
                        let y = remap[cb[row_at(*sb, k)] as usize];
                        (x == y) == eq
                    })
                    .collect(),
            }
        }
        // Everything else — plain columns, dict ordering against another
        // column — decodes and byte-compares per row.
        _ => {
            work::count_str_cmps(n as u64);
            (0..n).map(|k| test(a.get(k).cmp(b.get(k)))).collect()
        }
    }
}

/// Marks row `i` invalid, materializing the lazily-all-valid mask.
fn invalidate(validity: &mut Validity, n: usize, i: usize) {
    if let Validity::Mask(m) = validity {
        m[i] = false;
        return;
    }
    debug_assert!(matches!(validity, Validity::AllValid));
    let mut m = vec![true; n];
    m[i] = false;
    *validity = Validity::Mask(m);
}

impl Expr {
    /// Evaluates the expression over `sel`'s rows of `batch` (`None` = all
    /// rows) with typed per-batch kernels — the columnar twin of
    /// [`Expr::eval`] applied to each selected row, with row-level errors
    /// reported through the result's [`Validity`] instead of `Err`.
    pub fn eval_columnar<'a>(
        &self,
        batch: &'a TupleBatch,
        sel: Option<&'a [u32]>,
    ) -> ColumnarEval<'a> {
        work::count_kernel_op();
        let n = sel.map_or(batch.len(), <[u32]>::len);
        match self {
            Expr::Col(i) => {
                if *i >= batch.schema().len() {
                    return ColumnarEval::all_invalid();
                }
                // A selected column stays a lazy view — kernels read
                // through the selection; nothing is gathered here.
                let values = match sel {
                    None => ColumnarValues::Column(Cow::Borrowed(batch.column(*i))),
                    Some(s) => ColumnarValues::ColumnSel(batch.column(*i), s),
                };
                ColumnarEval {
                    values,
                    validity: Validity::AllValid,
                }
            }
            Expr::Lit(v) => ColumnarEval {
                values: ColumnarValues::Scalar(v.clone()),
                validity: Validity::AllValid,
            },
            Expr::Cmp(op, l, r) => {
                let l = l.eval_columnar(batch, sel);
                let r = r.eval_columnar(batch, sel);
                cmp_columnar(*op, l, r, n)
            }
            Expr::Arith(op, l, r) => {
                let l = l.eval_columnar(batch, sel);
                let r = r.eval_columnar(batch, sel);
                arith_columnar(*op, l, r, n)
            }
            Expr::And(l, r) => logical_columnar(true, l, r, batch, sel, n),
            Expr::Or(l, r) => logical_columnar(false, l, r, batch, sel, n),
            Expr::Not(e) => {
                let inner = e.eval_columnar(batch, sel);
                if matches!(inner.validity, Validity::NoneValid) {
                    return ColumnarEval::all_invalid();
                }
                match bool_operand(&inner.values) {
                    None => ColumnarEval::all_invalid(),
                    Some(Operand::Const(b)) => ColumnarEval {
                        values: ColumnarValues::Scalar(Value::Bool(!b)),
                        validity: inner.validity,
                    },
                    Some(Operand::Slice(bs)) => ColumnarEval {
                        values: ColumnarValues::Column(Cow::Owned(Column::Bool(lanes_map(
                            &bs[..n],
                            |b| !b,
                        )))),
                        validity: inner.validity,
                    },
                    Some(op @ Operand::Gather(..)) => ColumnarEval {
                        values: ColumnarValues::Column(Cow::Owned(Column::Bool(
                            (0..n).map(|k| !op.get(k)).collect(),
                        ))),
                        validity: inner.validity,
                    },
                }
            }
        }
    }

    /// The selection kernel: indices (into `batch`) of the rows among
    /// `sel` (`None` = all rows) where the predicate evaluates to a valid
    /// `true` — exactly the rows [`Expr::matches`] keeps, computed in one
    /// columnar pass.
    pub fn filter_indices(&self, batch: &TupleBatch, sel: Option<&[u32]>) -> Vec<u32> {
        let n = sel.map_or(batch.len(), <[u32]>::len);
        let index = |k: usize| sel.map_or(k as u32, |s| s[k]);
        let ev = self.eval_columnar(batch, sel);
        if matches!(ev.validity, Validity::NoneValid) {
            return Vec::new();
        }
        match &ev.values {
            ColumnarValues::Scalar(Value::Bool(true)) => match &ev.validity {
                Validity::AllValid => (0..n).map(index).collect(),
                Validity::Mask(m) => (0..n).filter(|&k| m[k]).map(index).collect(),
                Validity::NoneValid => unreachable!("handled above"),
            },
            ColumnarValues::Scalar(_) => Vec::new(),
            ColumnarValues::Column(c) => match c.as_bools() {
                None => Vec::new(),
                Some(bs) => (0..n)
                    .filter(|&k| bs[k] && ev.validity.is_valid(k))
                    .map(index)
                    .collect(),
            },
            // A raw boolean column behind the selection (`Expr::Col` as
            // the whole predicate): read through the selection in place.
            ColumnarValues::ColumnSel(c, s) => match c.as_bools() {
                None => Vec::new(),
                Some(bs) => (0..n)
                    .filter(|&k| bs[s[k] as usize] && ev.validity.is_valid(k))
                    .map(index)
                    .collect(),
            },
        }
    }
}

/// Columnar comparison kernel.
fn cmp_columnar(
    op: CmpOp,
    l: ColumnarEval<'_>,
    r: ColumnarEval<'_>,
    n: usize,
) -> ColumnarEval<'static> {
    if matches!(l.validity, Validity::NoneValid) || matches!(r.validity, Validity::NoneValid) {
        return ColumnarEval::all_invalid();
    }
    // Constant-fold the scalar/scalar case through the per-row comparator.
    if let (ColumnarValues::Scalar(a), ColumnarValues::Scalar(b)) = (&l.values, &r.values) {
        return match compare(op, a, b) {
            Ok(v) => ColumnarEval {
                values: ColumnarValues::Scalar(Value::Bool(v)),
                validity: l.validity.and(r.validity),
            },
            Err(_) => ColumnarEval::all_invalid(),
        };
    }
    let mut validity = l.validity.and(r.validity);
    // Exact typed paths first (Int/Int must not round-trip through f64 —
    // `i64` values past 2^53 are not representable there and would
    // silently compare equal to their neighbours).
    let bools: Vec<bool> =
        if let (Some(a), Some(b)) = (int_operand(&l.values), int_operand(&r.values)) {
            binary_map(a, b, n, cmp_pred::<i64>(op))
        } else if let (Some(a), Some(b)) = (StrSide::of(&l.values), StrSide::of(&r.values)) {
            str_cmp_columnar(op, &a, &b, n)
        } else if let (Some(a), Some(b)) = (bool_operand(&l.values), bool_operand(&r.values)) {
            binary_map(a, b, n, cmp_pred::<bool>(op))
        } else if let (Some(a), Some(b)) = (num_operand(&l.values), num_operand(&r.values)) {
            // Genuinely mixed Int/Float: widen to f64 once per batch, lane
            // compare, then invalidate rows where a NaN made the pair
            // incomparable (their lane result is a placeholder).
            let (x, x_nan) = FloatSide::of(a, n);
            let (y, y_nan) = FloatSide::of(b, n);
            let bools = binary_map(x.as_operand(), y.as_operand(), n, cmp_pred::<f64>(op));
            if x_nan || y_nan {
                for i in 0..n {
                    if x.get(i).partial_cmp(&y.get(i)).is_none() {
                        invalidate(&mut validity, n, i);
                    }
                }
            }
            bools
        } else {
            return ColumnarEval::all_invalid();
        };
    ColumnarEval {
        values: ColumnarValues::Column(Cow::Owned(Column::Bool(bools))),
        validity,
    }
}

/// Columnar arithmetic kernel.
fn arith_columnar(
    op: ArithOp,
    l: ColumnarEval<'_>,
    r: ColumnarEval<'_>,
    n: usize,
) -> ColumnarEval<'static> {
    if matches!(l.validity, Validity::NoneValid) || matches!(r.validity, Validity::NoneValid) {
        return ColumnarEval::all_invalid();
    }
    if let (ColumnarValues::Scalar(a), ColumnarValues::Scalar(b)) = (&l.values, &r.values) {
        return match arith(op, a, b) {
            Ok(v) => ColumnarEval {
                values: ColumnarValues::Scalar(v),
                validity: l.validity.and(r.validity),
            },
            Err(_) => ColumnarEval::all_invalid(),
        };
    }
    let mut validity = l.validity.and(r.validity);
    if let (Some(a), Some(b)) = (int_operand(&l.values), int_operand(&r.values)) {
        // Exact integer arithmetic (wrapping, like the per-row path).
        let ints: Vec<i64> = if matches!(op, ArithOp::Div) {
            // Division needs the per-row zero check: a zero divisor
            // invalidates the row (wrapping otherwise — i64::MIN / -1
            // yields i64::MIN instead of panicking).
            (0..n)
                .map(|i| {
                    let (x, y) = (a.get(i), b.get(i));
                    if y == 0 {
                        invalidate(&mut validity, n, i);
                        0
                    } else {
                        x.wrapping_div(y)
                    }
                })
                .collect()
        } else {
            binary_map(a, b, n, int_arith_fn(op))
        };
        return ColumnarEval {
            values: ColumnarValues::Column(Cow::Owned(Column::Int(ints))),
            validity,
        };
    }
    let (Some(a), Some(b)) = (num_operand(&l.values), num_operand(&r.values)) else {
        return ColumnarEval::all_invalid();
    };
    let (x, _) = FloatSide::of(a, n);
    let (y, _) = FloatSide::of(b, n);
    let floats: Vec<f64> = if matches!(op, ArithOp::Div) {
        (0..n)
            .map(|i| {
                let d = y.get(i);
                if d == 0.0 {
                    invalidate(&mut validity, n, i);
                    0.0
                } else {
                    x.get(i) / d
                }
            })
            .collect()
    } else {
        binary_map(x.as_operand(), y.as_operand(), n, float_arith_fn(op))
    };
    ColumnarEval {
        values: ColumnarValues::Column(Cow::Owned(Column::Float(floats))),
        validity,
    }
}

/// Columnar `AND`/`OR` kernel, reproducing the per-row short-circuit
/// semantics exactly: the right side's failure (or value) only matters on
/// rows where the left side did not already decide the outcome.
fn logical_columnar<'a>(
    is_and: bool,
    l: &Expr,
    r: &Expr,
    batch: &'a TupleBatch,
    sel: Option<&'a [u32]>,
    n: usize,
) -> ColumnarEval<'a> {
    let lhs = l.eval_columnar(batch, sel);
    if matches!(lhs.validity, Validity::NoneValid) {
        return ColumnarEval::all_invalid();
    }
    let Some(lvals) = bool_operand(&lhs.values) else {
        return ColumnarEval::all_invalid();
    };
    // `AND` is decided by a false left side, `OR` by a true one.
    let decides = !is_and;
    if let (Operand::Const(b), Validity::AllValid) = (&lvals, &lhs.validity) {
        if *b == decides {
            // Every row short-circuits; the right side is never evaluated.
            return ColumnarEval {
                values: ColumnarValues::Scalar(Value::Bool(decides)),
                validity: Validity::AllValid,
            };
        }
        // The left side never decides: the result is the right side,
        // coerced to boolean.
        let rhs = r.eval_columnar(batch, sel);
        if matches!(rhs.validity, Validity::NoneValid) || bool_operand(&rhs.values).is_none() {
            return ColumnarEval::all_invalid();
        }
        return ColumnarEval {
            values: rhs.values,
            validity: rhs.validity,
        };
    }
    // Mixed rows: evaluate the right side once and combine per row. A
    // right side that fails (wholly or per row) only invalidates rows the
    // left side did not decide.
    let rhs = r.eval_columnar(batch, sel);
    let rvals = bool_operand(&rhs.values);
    let mut out = vec![false; n];
    let mut valid = vec![false; n];
    for i in 0..n {
        if !lhs.validity.is_valid(i) {
            continue; // left failed → row fails
        }
        let lv = lvals.get(i);
        if lv == decides {
            out[i] = decides;
            valid[i] = true;
            continue; // short-circuit: right side irrelevant
        }
        match (&rvals, &rhs.validity) {
            (Some(rv), validity) if validity.is_valid(i) => {
                out[i] = rv.get(i);
                valid[i] = true;
            }
            _ => {} // right failed on a row the left did not decide
        }
    }
    let validity = if valid.iter().all(|v| *v) {
        Validity::AllValid
    } else if valid.iter().any(|v| *v) {
        Validity::Mask(valid)
    } else {
        Validity::NoneValid
    };
    ColumnarEval {
        values: ColumnarValues::Column(Cow::Owned(Column::Bool(out))),
        validity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Field;

    fn quote_schema() -> Schema {
        Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("price", DataType::Float),
            Field::new("volume", DataType::Int),
        ])
    }

    fn quote(sym: &str, price: f64, volume: i64) -> Tuple {
        Tuple::new(
            0,
            vec![Value::str(sym), Value::Float(price), Value::Int(volume)],
        )
    }

    #[test]
    fn high_value_transaction_predicate() {
        // The paper's intro example: select high value transactions.
        let pred = Expr::col(1)
            .gt(Expr::lit(Value::Float(100.0)))
            .and(Expr::col(2).ge(Expr::lit(Value::Int(1000))));
        assert!(pred.matches(&quote("IBM", 120.0, 5000)));
        assert!(!pred.matches(&quote("IBM", 90.0, 5000)));
        assert!(!pred.matches(&quote("IBM", 120.0, 10)));
        assert_eq!(pred.infer_type(&quote_schema()), Ok(DataType::Bool));
    }

    #[test]
    fn mixed_numeric_compare() {
        let pred = Expr::col(2).gt(Expr::lit(Value::Float(10.5)));
        assert!(pred.matches(&quote("A", 0.0, 11)));
        assert!(!pred.matches(&quote("A", 0.0, 10)));
    }

    #[test]
    fn string_equality() {
        let pred = Expr::col(0).eq(Expr::lit(Value::str("IBM")));
        assert!(pred.matches(&quote("IBM", 1.0, 1)));
        assert!(!pred.matches(&quote("AAPL", 1.0, 1)));
    }

    #[test]
    fn arithmetic_and_types() {
        let notional = Expr::Arith(ArithOp::Mul, Box::new(Expr::col(1)), Box::new(Expr::col(2)));
        assert_eq!(notional.infer_type(&quote_schema()), Ok(DataType::Float));
        let v = notional.eval(&quote("A", 2.0, 10)).unwrap();
        assert_eq!(v, Value::Float(20.0));
        let int_sum = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::col(2)),
            Box::new(Expr::lit(Value::Int(1))),
        );
        assert_eq!(int_sum.infer_type(&quote_schema()), Ok(DataType::Int));
    }

    #[test]
    fn int_min_div_neg_one_wraps_instead_of_panicking() {
        // i64::MIN / -1 overflows i64; both evaluation paths must wrap
        // (like Add/Sub/Mul) rather than abort the engine.
        let e = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::col(2)),
            Box::new(Expr::lit(Value::Int(-1))),
        );
        let row = quote("A", 0.0, i64::MIN);
        assert_eq!(e.eval(&row), Ok(Value::Int(i64::MIN)));
        let batch =
            crate::types::TupleBatch::from_rows(std::sync::Arc::new(quote_schema()), vec![row]);
        let ev = e.eval_columnar(&batch, None);
        assert!(matches!(ev.validity, Validity::AllValid));
        let col = ev.values.into_column(1);
        assert_eq!(col.as_ints(), Some(&[i64::MIN][..]));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let e = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::lit(Value::Int(1))),
            Box::new(Expr::lit(Value::Int(0))),
        );
        assert_eq!(e.eval(&quote("A", 0.0, 0)), Err(ExprError::DivisionByZero));
    }

    #[test]
    fn type_errors_are_caught_statically() {
        let bad = Expr::col(0).gt(Expr::lit(Value::Int(3)));
        assert!(bad.infer_type(&quote_schema()).is_err());
        let bad_col = Expr::col(9);
        assert_eq!(
            bad_col.infer_type(&quote_schema()),
            Err(ExprError::UnknownColumn(9))
        );
    }

    #[test]
    fn matches_swallows_runtime_errors() {
        let bad = Expr::col(9).gt(Expr::lit(Value::Int(3)));
        assert!(!bad.matches(&quote("A", 0.0, 0)));
    }

    #[test]
    fn leaf_detection() {
        assert!(Expr::col(0).is_leaf());
        assert!(Expr::lit(Value::Int(1)).is_leaf());
        assert!(!Expr::col(0).eq(Expr::lit(Value::Int(1))).is_leaf());
    }

    #[test]
    fn substitution_equals_projection_composition() {
        // Projection output: (col1, "IBM"); predicate over that output.
        let projection = [Expr::col(1), Expr::lit(Value::str("IBM"))];
        let pred = Expr::col(0)
            .gt(Expr::lit(Value::Float(10.0)))
            .and(Expr::col(1).eq(Expr::lit(Value::str("IBM"))));
        let substituted = pred.substitute_cols(&projection);
        let input = quote("AAPL", 12.0, 7);
        let projected = Tuple::new(
            input.ts,
            projection.iter().map(|e| e.eval(&input).unwrap()).collect(),
        );
        assert_eq!(pred.matches(&projected), substituted.matches(&input));
        assert!(substituted.matches(&input));
        // Out-of-range references survive untouched (defensive; plan
        // validation rejects them before substitution can see them).
        assert_eq!(Expr::col(9).substitute_cols(&projection), Expr::col(9));
    }

    #[test]
    fn short_circuit_logic() {
        // Right side would error, but the left side decides.
        let e = Expr::lit(Value::Bool(false)).and(Expr::col(9).eq(Expr::lit(Value::Int(1))));
        assert_eq!(e.eval(&quote("A", 0.0, 0)), Ok(Value::Bool(false)));
        let e = Expr::lit(Value::Bool(true)).or(Expr::col(9).eq(Expr::lit(Value::Int(1))));
        assert_eq!(e.eval(&quote("A", 0.0, 0)), Ok(Value::Bool(true)));
    }

    fn sym_batch(syms: &[&str], vols: &[i64]) -> TupleBatch {
        let schema = Schema::new(vec![
            Field::new("symbol", DataType::Str),
            Field::new("volume", DataType::Int),
        ]);
        let rows = syms
            .iter()
            .zip(vols)
            .map(|(s, &v)| Tuple::new(0, vec![Value::str(*s), Value::Int(v)]))
            .collect();
        TupleBatch::from_rows(std::sync::Arc::new(schema), rows)
    }

    /// The row-path survivors of `pred` — the oracle every columnar filter
    /// result must equal.
    fn row_survivors(pred: &Expr, batch: &TupleBatch) -> Vec<u32> {
        (0..batch.len())
            .filter(|&i| pred.matches(&batch.row(i)))
            .map(|i| i as u32)
            .collect()
    }

    #[test]
    fn int_compare_is_exact_past_2_pow_53() {
        // 2^53 and 2^53 + 1 round to the same f64 — a compare path that
        // widens Int×Int through `as_f64` calls them equal. Both the row
        // path and the columnar kernels must compare i64 exactly.
        let big = 1i64 << 53;
        assert_eq!(
            compare(CmpOp::Eq, &Value::Int(big), &Value::Int(big + 1)),
            Ok(false)
        );
        assert_eq!(
            compare(CmpOp::Gt, &Value::Int(big + 1), &Value::Int(big)),
            Ok(true)
        );
        let batch = sym_batch(&["A", "B", "C"], &[big, big + 1, big - 1]);
        // col > 2^53: only the 2^53 + 1 row (under f64 widening, none).
        let gt = Expr::col(1).gt(Expr::lit(Value::Int(big)));
        assert_eq!(gt.filter_indices(&batch, None), vec![1]);
        assert_eq!(row_survivors(&gt, &batch), vec![1]);
        // col = 2^53 + 1: exactly one row (under f64 widening, two).
        let eq = Expr::col(1).eq(Expr::lit(Value::Int(big + 1)));
        assert_eq!(eq.filter_indices(&batch, None), vec![1]);
        assert_eq!(row_survivors(&eq, &batch), vec![1]);
        // The same exactness must hold through a selection view and with
        // the SIMD lane loops disabled.
        let sel: Vec<u32> = vec![0, 1, 2];
        assert_eq!(gt.filter_indices(&batch, Some(&sel)), vec![1]);
        crate::ops::with_simd_kernels(false, || {
            assert_eq!(gt.filter_indices(&batch, None), vec![1]);
            assert_eq!(eq.filter_indices(&batch, None), vec![1]);
        });
    }

    #[test]
    fn mixed_int_float_still_widens() {
        // Genuinely mixed operands keep the f64 widening semantics.
        let batch = sym_batch(&["A", "B"], &[10, 11]);
        let pred = Expr::col(1).gt(Expr::lit(Value::Float(10.5)));
        assert_eq!(pred.filter_indices(&batch, None), vec![1]);
        assert_eq!(row_survivors(&pred, &batch), vec![1]);
    }

    #[test]
    fn dict_equality_compares_codes_not_bytes() {
        // `from_rows` dictionary-encodes the symbol column; an equality
        // predicate against a constant must run on u32 codes — zero
        // per-row string compares.
        let batch = sym_batch(&["IBM", "AAPL", "IBM", "MSFT", "IBM"], &[1, 2, 3, 4, 5]);
        assert!(
            batch.column(0).as_dict().is_some(),
            "ingestion dict-encodes"
        );
        let pred = Expr::col(0).eq(Expr::lit(Value::str("IBM")));
        let expect = row_survivors(&pred, &batch);
        work::reset();
        let got = pred.filter_indices(&batch, None);
        let snap = work::snapshot();
        assert_eq!(got, expect);
        assert_eq!(got, vec![0, 2, 4]);
        assert_eq!(snap.dict_code_cmps, 5, "one code lookup per row");
        assert_eq!(snap.str_cmps, 0, "no per-row string bytes touched");
        // Ordering operators ride the same per-dictionary-entry verdict
        // table.
        let ord = Expr::col(0).cmp(CmpOp::Lt, Expr::lit(Value::str("IBM")));
        let expect = row_survivors(&ord, &batch);
        work::reset();
        let got = ord.filter_indices(&batch, None);
        let snap = work::snapshot();
        assert_eq!(got, expect);
        assert_eq!(snap.str_cmps, 0);
        assert_eq!(snap.dict_code_cmps, 5);
    }

    #[test]
    fn dict_vs_dict_and_plain_agree() {
        let schema = std::sync::Arc::new(Schema::new(vec![
            Field::new("a", DataType::Str),
            Field::new("b", DataType::Str),
        ]));
        let rows: Vec<Tuple> = [("x", "x"), ("y", "z"), ("z", "z"), ("w", "x")]
            .iter()
            .map(|(a, b)| Tuple::new(0, vec![Value::str(*a), Value::str(*b)]))
            .collect();
        let dict_batch = TupleBatch::from_rows(schema.clone(), rows.clone());
        assert!(dict_batch.column(0).as_dict().is_some());
        let pred = Expr::col(0).eq(Expr::col(1));
        let expect = row_survivors(&pred, &dict_batch);
        work::reset();
        let got = pred.filter_indices(&dict_batch, None);
        let snap = work::snapshot();
        assert_eq!(got, expect);
        assert_eq!(got, vec![0, 2]);
        assert_eq!(snap.dict_code_cmps, 4, "dict×dict equality compares codes");
        assert_eq!(snap.str_cmps, 0);
        // The same predicate over plain `Str` columns produces the same
        // rows through the byte-compare fallback.
        let strs = |idx: usize| {
            Column::Str(
                rows.iter()
                    .map(|r| match &r.values[idx] {
                        Value::Str(s) => s.clone(),
                        _ => unreachable!("string schema"),
                    })
                    .collect(),
            )
        };
        let plain_batch =
            TupleBatch::from_columns(schema, vec![0; rows.len()], vec![strs(0), strs(1)]);
        work::reset();
        let got = pred.filter_indices(&plain_batch, None);
        let snap = work::snapshot();
        assert_eq!(got, expect);
        assert_eq!(snap.dict_code_cmps, 0);
        assert_eq!(snap.str_cmps, 4, "plain columns byte-compare per row");
    }

    #[test]
    fn nan_rows_drop_identically_on_all_paths() {
        let schema = std::sync::Arc::new(quote_schema());
        let rows = vec![
            quote("A", 1.0, 10),
            quote("B", f64::NAN, 11),
            quote("C", 3.0, 12),
            quote("D", f64::NAN, 13),
        ];
        let batch = TupleBatch::from_rows(schema, rows);
        // Mixed Int/Float compare with NaN rows: the row path errors (and
        // drops the row); the columnar kernels must invalidate exactly
        // those rows — with lanes on, off, and through a selection.
        let pred = Expr::col(1).cmp(CmpOp::Le, Expr::col(2));
        let expect = row_survivors(&pred, &batch);
        assert_eq!(expect, vec![0, 2]);
        assert_eq!(pred.filter_indices(&batch, None), expect);
        let sel: Vec<u32> = vec![0, 1, 2, 3];
        assert_eq!(pred.filter_indices(&batch, Some(&sel)), expect);
        crate::ops::with_simd_kernels(false, || {
            assert_eq!(pred.filter_indices(&batch, None), expect);
        });
        // A NaN constant invalidates every row.
        let none = Expr::col(1).ge(Expr::lit(Value::Float(f64::NAN)));
        assert_eq!(none.filter_indices(&batch, None), Vec::<u32>::new());
        assert_eq!(row_survivors(&none, &batch), Vec::<u32>::new());
    }

    #[test]
    fn simd_kill_switch_is_bit_identical_and_uncounted() {
        let vols: Vec<i64> = (0..100).collect();
        let syms: Vec<&str> = (0..100)
            .map(|i| if i % 2 == 0 { "E" } else { "O" })
            .collect();
        let batch = sym_batch(&syms, &vols);
        let pred = Expr::col(1)
            .ge(Expr::lit(Value::Int(25)))
            .and(Expr::col(1).lt(Expr::lit(Value::Int(75))));
        work::reset();
        let on = pred.filter_indices(&batch, None);
        let lanes_on = work::snapshot().simd_lanes;
        let off = crate::ops::with_simd_kernels(false, || {
            work::reset();
            let off = pred.filter_indices(&batch, None);
            assert_eq!(work::snapshot().simd_lanes, 0, "switch off counts no lanes");
            off
        });
        assert_eq!(on, off, "lane loops are bit-identical to scalar");
        assert!(lanes_on > 0, "contiguous compares run the lane loops");
    }

    #[test]
    fn selected_column_stays_a_lazy_view() {
        let batch = sym_batch(&["A", "B", "C", "D"], &[1, 2, 3, 4]);
        let sel: Vec<u32> = vec![3, 1];
        let ev = Expr::col(1).eval_columnar(&batch, Some(&sel));
        assert!(
            matches!(ev.values, ColumnarValues::ColumnSel(..)),
            "a selected column reference must not gather eagerly"
        );
        let col = ev.values.into_column(2);
        assert_eq!(col.as_ints(), Some(&[4, 2][..]));
        // Kernels read through the view: refining the selection agrees
        // with the row oracle.
        let pred = Expr::col(1).gt(Expr::lit(Value::Int(1)));
        assert_eq!(pred.filter_indices(&batch, Some(&sel)), vec![3, 1]);
    }
}
