//! # cqac-core — auction-based admission control for continuous queries
//!
//! This crate implements the primary contribution of *"Admission Control
//! Mechanisms for Continuous Queries in the Cloud"* (Al Moakar, Chrysanthis,
//! Chung, Guirguis, Labrinidis, Neophytou, Pruhs — ICDE 2010): a family of
//! auction mechanisms that decide, once per subscription period, which
//! continuous queries (CQs) a for-profit DSMS center admits and how much each
//! admitted user pays.
//!
//! ## Model
//!
//! * A CQ is a set of operators. Each operator has a *load* — the fraction of
//!   server capacity it consumes per time unit ([`model::OperatorDef`]).
//! * Operators may be **shared** between CQs (Aurora-style shared
//!   processing), so the marginal load of admitting a query depends on what
//!   was already admitted ([`model::AdmittedSet`]).
//! * Each user submits a bid for her query; the mechanism selects winners
//!   whose *distinct-union* operator load fits within system capacity and
//!   charges each winner a payment ([`Outcome`]).
//!
//! ## Mechanisms
//!
//! | Mechanism | Sort key | Fill | Payments | Properties |
//! |-----------|----------|------|----------|------------|
//! | [`mechanisms::Car`] | bid / *remaining* load (recomputed) | stop at first reject | admission-time remaining load × first-loser density | **not** strategyproof |
//! | [`mechanisms::Caf`] | bid / static fair-share load | stop at first reject | fair-share load × first-loser density | strategyproof |
//! | [`mechanisms::CafPlus`] | bid / static fair-share load | skip overloaded | movement-window critical values | strategyproof |
//! | [`mechanisms::Cat`] | bid / total load | stop at first reject | total load × first-loser density | strategyproof **and sybil-immune** |
//! | [`mechanisms::CatPlus`] | bid / total load | skip overloaded | movement-window critical values | strategyproof |
//! | [`mechanisms::Gv`] | bid | stop at first reject | first loser's bid (constant) | strategyproof |
//! | [`mechanisms::TwoPrice`] | valuation | prefix + duplicate repair | random-sampling cross prices | strategyproof, profit ≥ OPT_C − 2h |
//! | [`mechanisms::RandomAdmission`] | random | stop at first reject | none | baseline |
//! | [`mechanisms::OptConstantPricing`] | — | — | optimal constant price | profit benchmark |
//!
//! ## Quick start
//!
//! ```
//! use cqac_core::prelude::*;
//!
//! // The paper's Example 1: three queries, operator A shared by q1 and q2.
//! let mut b = InstanceBuilder::new(Load::from_units(10.0));
//! let a = b.operator(Load::from_units(4.0));
//! let op_b = b.operator(Load::from_units(1.0));
//! let c = b.operator(Load::from_units(2.0));
//! let d = b.operator(Load::from_units(7.0));
//! let e = b.operator(Load::from_units(3.0));
//! b.query(Money::from_dollars(55.0), &[a, op_b]);
//! b.query(Money::from_dollars(72.0), &[a, c]);
//! b.query(Money::from_dollars(100.0), &[d, e]);
//! let inst = b.build().unwrap();
//!
//! let outcome = Cat::default().run_seeded(&inst, 0);
//! assert_eq!(outcome.profit(), Money::from_dollars(110.0)); // $50 + $60
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod mechanisms;
pub mod metrics;
pub mod model;
pub mod outcome;
pub mod units;

pub use mechanisms::{Mechanism, MechanismKind};
pub use metrics::Metrics;
pub use model::{
    AdmittedSet, AuctionInstance, InstanceBuilder, OperatorId, QueryDef, QueryId, UserId,
};
pub use outcome::Outcome;
pub use units::{Load, Money};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::mechanisms::{
        Caf, CafPlus, Car, Cat, CatPlus, Gv, Mechanism, MechanismKind, OptConstantPricing,
        RandomAdmission, TwoPrice,
    };
    pub use crate::metrics::Metrics;
    pub use crate::model::{
        AdmittedSet, AuctionInstance, InstanceBuilder, OperatorDef, OperatorId, QueryDef, QueryId,
        UserId,
    };
    pub use crate::outcome::Outcome;
    pub use crate::units::{Load, Money};
}
