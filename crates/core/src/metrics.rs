//! The performance metrics of §VI-A, bundled for the experiment harness.

use crate::model::AuctionInstance;
use crate::outcome::Outcome;
use crate::units::Money;
use serde::{Deserialize, Serialize};

/// One mechanism's measured behaviour on one instance — the five metrics the
/// paper reports (runtime is measured by the caller, since only it knows what
/// to time).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Metrics {
    /// Mechanism name.
    pub mechanism: String,
    /// Sum of payments of admitted queries (dollars).
    pub profit: f64,
    /// Percentage of queries admitted.
    pub admission_rate: f64,
    /// Sum of winner valuations minus payments (dollars).
    pub total_payoff: f64,
    /// Used capacity / system capacity, in `[0, 1]`.
    pub utilization: f64,
    /// Number of winners.
    pub winners: usize,
    /// Number of submitted queries.
    pub queries: usize,
}

impl Metrics {
    /// Computes metrics under truthful bidding (valuations = bids).
    pub fn truthful(inst: &AuctionInstance, outcome: &Outcome) -> Self {
        let valuations: Vec<Money> = inst.queries().iter().map(|q| q.bid).collect();
        Self::with_valuations(inst, outcome, &valuations)
    }

    /// Computes metrics against explicit true valuations (which differ from
    /// bids in the strategic-lying experiments of §VI-B).
    pub fn with_valuations(
        inst: &AuctionInstance,
        outcome: &Outcome,
        valuations: &[Money],
    ) -> Self {
        Self {
            mechanism: outcome.mechanism.clone(),
            profit: outcome.profit().as_f64(),
            admission_rate: outcome.admission_rate(),
            total_payoff: outcome.total_payoff(valuations).as_f64(),
            utilization: outcome.utilization(inst),
            winners: outcome.winners.len(),
            queries: outcome.num_queries,
        }
    }
}

/// Mean of a metric across repeated runs (the paper averages 50 workload
/// sets per point).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MetricsAccumulator {
    n: usize,
    profit: f64,
    admission_rate: f64,
    total_payoff: f64,
    utilization: f64,
}

impl MetricsAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one run's metrics.
    pub fn add(&mut self, m: &Metrics) {
        self.n += 1;
        self.profit += m.profit;
        self.admission_rate += m.admission_rate;
        self.total_payoff += m.total_payoff;
        self.utilization += m.utilization;
    }

    /// Number of accumulated runs.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if nothing was accumulated.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Mean profit.
    pub fn mean_profit(&self) -> f64 {
        self.mean(self.profit)
    }

    /// Mean admission rate (percent).
    pub fn mean_admission_rate(&self) -> f64 {
        self.mean(self.admission_rate)
    }

    /// Mean total user payoff.
    pub fn mean_total_payoff(&self) -> f64 {
        self.mean(self.total_payoff)
    }

    /// Mean utilization in `[0, 1]`.
    pub fn mean_utilization(&self) -> f64 {
        self.mean(self.utilization)
    }

    fn mean(&self, sum: f64) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            sum / self.n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{InstanceBuilder, QueryId};
    use crate::units::Load;

    #[test]
    fn accumulator_means() {
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let a = b.operator(Load::from_units(2.0));
        b.query(Money::from_dollars(10.0), &[a]);
        let inst = b.build().unwrap();
        let out = Outcome::new("m", &inst, vec![QueryId(0)], vec![Money::from_dollars(4.0)]);
        let m = Metrics::truthful(&inst, &out);
        assert_eq!(m.profit, 4.0);
        assert_eq!(m.total_payoff, 6.0);

        let mut acc = MetricsAccumulator::new();
        acc.add(&m);
        acc.add(&m);
        assert_eq!(acc.len(), 2);
        assert_eq!(acc.mean_profit(), 4.0);
        assert_eq!(acc.mean_admission_rate(), 100.0);
    }

    #[test]
    fn lying_valuations_change_payoff_only() {
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let a = b.operator(Load::from_units(2.0));
        b.query(Money::from_dollars(5.0), &[a]); // bid 5, true value 10
        let inst = b.build().unwrap();
        let out = Outcome::new("m", &inst, vec![QueryId(0)], vec![Money::from_dollars(4.0)]);
        let m = Metrics::with_valuations(&inst, &out, &[Money::from_dollars(10.0)]);
        assert_eq!(m.total_payoff, 6.0);
        assert_eq!(m.profit, 4.0);
    }
}
