//! CAR — CQ Admission based on Remaining load (§IV-A).
//!
//! The paper's deliberately naïve starting point: it prioritises queries by
//! bid per unit of **remaining** load (Definition 2), which accurately
//! captures each query's true marginal cost but makes payments depend on the
//! user's own bid — breaking strategyproofness. A user who shares operators
//! with other winners gains by *underbidding*: chosen later, her remaining
//! load (and hence payment) shrinks. Figure 5 measures the profit damage.
//!
//! Two implementations share the same semantics (property-tested equal):
//!
//! * [`CarImpl::Naive`] re-scans every remaining query per round, exactly
//!   as §IV-A is written — `O(n² · |ops|)`.
//! * [`CarImpl::Indexed`] (default) exploits that a query's remaining load
//!   only changes when an admission *first* covers one of its operators:
//!   each admission re-prioritises only the queries sharing its
//!   newly-covered operators, tracked through a versioned max-heap —
//!   near-linear on the paper's workloads, making the Figure 5 experiment
//!   (CAR on 2000 queries × 60 degrees × 50 sets) tractable.

use super::Mechanism;
use crate::model::{AdmittedSet, AuctionInstance, QueryId};
use crate::outcome::Outcome;
use crate::units::{price_from_density, Density, Load, Money};
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which CAR engine to run (identical results).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CarImpl {
    /// Literal per-round rescan (quadratic).
    Naive,
    /// Versioned-heap incremental re-prioritisation.
    #[default]
    Indexed,
}

/// The CAR mechanism (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct Car {
    /// Engine selection; semantics are identical.
    pub implementation: CarImpl,
}

impl Car {
    /// The literal quadratic implementation (test oracle).
    pub fn naive() -> Self {
        Self {
            implementation: CarImpl::Naive,
        }
    }
}

/// Selection result shared by both engines.
struct CarSelection {
    admitted: Vec<QueryId>,
    /// Remaining load of each winner at the moment it was admitted.
    admission_cr: Vec<Load>,
    /// The first query that no longer fits, with its remaining load then.
    lost: Option<(QueryId, Load)>,
}

fn select_naive(inst: &AuctionInstance) -> CarSelection {
    let mut admitted_set = AdmittedSet::new(inst);
    let mut remaining: Vec<QueryId> = inst.query_ids().collect();
    let mut admitted = Vec::new();
    let mut admission_cr = vec![Load::ZERO; inst.num_queries()];
    let mut lost = None;

    while !remaining.is_empty() {
        let (pos, cr) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &q)| (pos, admitted_set.marginal_load(q)))
            .max_by(|(pa, ca), (pb, cb)| {
                let qa = remaining[*pa];
                let qb = remaining[*pb];
                Density::new(inst.bid(qa), *ca)
                    .cmp(&Density::new(inst.bid(qb), *cb))
                    .then_with(|| qb.cmp(&qa)) // smaller id wins ties
            })
            .expect("non-empty remaining list");
        let q = remaining.swap_remove(pos);
        if cr <= admitted_set.remaining() {
            admitted_set.admit(q);
            admission_cr[q.index()] = cr;
            admitted.push(q);
        } else {
            lost = Some((q, cr));
            break;
        }
    }
    CarSelection {
        admitted,
        admission_cr,
        lost,
    }
}

fn select_indexed(inst: &AuctionInstance) -> CarSelection {
    let n = inst.num_queries();
    let mut admitted_set = AdmittedSet::new(inst);
    let mut admitted = Vec::new();
    let mut admission_cr = vec![Load::ZERO; n];
    let mut lost = None;

    // Heap entries carry the version at push time; stale entries are
    // discarded on pop. A query's remaining load never grows, so its
    // freshest entry dominates its stale ones and pops first.
    let mut version = vec![0u32; n];
    let mut done = vec![false; n];
    let mut heap: BinaryHeap<(Density, Reverse<u32>, u32)> = BinaryHeap::with_capacity(n);
    for q in inst.query_ids() {
        heap.push((
            Density::new(inst.bid(q), inst.total_load(q)),
            Reverse(q.0),
            0,
        ));
    }

    while let Some((_, Reverse(qraw), v)) = heap.pop() {
        let q = QueryId(qraw);
        if done[q.index()] || v != version[q.index()] {
            continue;
        }
        let cr = admitted_set.marginal_load(q);
        if cr <= admitted_set.remaining() {
            done[q.index()] = true;
            // Which operators become newly covered by this admission?
            let newly_covered: Vec<_> = inst
                .query(q)
                .operators
                .iter()
                .copied()
                .filter(|&op| {
                    inst.queries_sharing(op)
                        .iter()
                        .all(|&other| !admitted_set.contains(other))
                })
                .collect();
            admitted_set.admit(q);
            admission_cr[q.index()] = cr;
            admitted.push(q);
            // Re-prioritise queries whose remaining load just shrank.
            for op in newly_covered {
                for &other in inst.queries_sharing(op) {
                    if done[other.index()] {
                        continue;
                    }
                    version[other.index()] += 1;
                    let new_cr = admitted_set.marginal_load(other);
                    heap.push((
                        Density::new(inst.bid(other), new_cr),
                        Reverse(other.0),
                        version[other.index()],
                    ));
                }
            }
        } else {
            lost = Some((q, cr));
            break;
        }
    }
    CarSelection {
        admitted,
        admission_cr,
        lost,
    }
}

impl Mechanism for Car {
    fn name(&self) -> &'static str {
        "CAR"
    }

    fn run(&self, inst: &AuctionInstance, _rng: &mut dyn Rng) -> Outcome {
        let selection = match self.implementation {
            CarImpl::Naive => select_naive(inst),
            CarImpl::Indexed => select_indexed(inst),
        };
        let mut payments = vec![Money::ZERO; inst.num_queries()];
        if let Some((lost_q, lost_cr)) = selection.lost {
            for &q in &selection.admitted {
                payments[q.index()] = price_from_density(
                    selection.admission_cr[q.index()],
                    inst.bid(lost_q),
                    lost_cr,
                );
            }
        }
        let mut winners = selection.admitted;
        winners.sort_unstable();
        Outcome::new(self.name(), inst, winners, payments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceBuilder;
    use crate::units::{Load, Money};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn example1() -> AuctionInstance {
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let a = b.operator(Load::from_units(4.0));
        let ob = b.operator(Load::from_units(1.0));
        let c = b.operator(Load::from_units(2.0));
        let d = b.operator(Load::from_units(7.0));
        let e = b.operator(Load::from_units(3.0));
        b.query(Money::from_dollars(55.0), &[a, ob]);
        b.query(Money::from_dollars(72.0), &[a, c]);
        b.query(Money::from_dollars(100.0), &[d, e]);
        b.build().unwrap()
    }

    #[test]
    fn car_reproduces_paper_example1() {
        // §IV-A: q2 chosen first (priority 12), then q1's remaining load
        // drops to 1 (priority 55); q3 (10 units) no longer fits and becomes
        // qlost with price $10 per unit: payments $10 (q1) and $60 (q2).
        for car in [Car::default(), Car::naive()] {
            let inst = example1();
            let out = car.run_seeded(&inst, 0);
            assert_eq!(out.winners, vec![QueryId(0), QueryId(1)]);
            assert_eq!(out.payment(QueryId(0)), Money::from_dollars(10.0));
            assert_eq!(out.payment(QueryId(1)), Money::from_dollars(60.0));
            assert_eq!(out.profit(), Money::from_dollars(70.0));
            out.validate(&inst).unwrap();
        }
    }

    #[test]
    fn car_is_not_bid_strategyproof() {
        // The §IV-A manipulation: a winner who shares operators can gain by
        // underbidding, because being chosen later shrinks her remaining
        // load and hence her payment. In Example 1, q2 truthfully pays $60;
        // bidding $21 still wins but pays only for operator C.
        let inst = example1();
        let truthful = Car::default().run_seeded(&inst, 0);
        let v2 = inst.bid(QueryId(1));
        let truthful_payoff = truthful.payoff(QueryId(1), v2);

        let lie = inst.with_bid(QueryId(1), Money::from_dollars(21.0));
        let strategic = Car::default().run_seeded(&lie, 0);
        assert!(strategic.is_winner(QueryId(1)));
        let strategic_payoff = strategic.payoff(QueryId(1), v2);
        assert!(
            strategic_payoff > truthful_payoff,
            "underbidding must strictly improve the payoff ({strategic_payoff} vs {truthful_payoff})"
        );
    }

    #[test]
    fn car_zero_marginal_queries_always_fit() {
        // A query whose operators are all admitted has remaining load 0 and
        // infinite priority: it must be admitted even when capacity is full.
        let mut b = InstanceBuilder::new(Load::from_units(4.0));
        let a = b.operator(Load::from_units(4.0));
        b.query(Money::from_dollars(100.0), &[a]);
        b.query(Money::from_dollars(0.000_001), &[a]);
        let inst = b.build().unwrap();
        for car in [Car::default(), Car::naive()] {
            let out = car.run_seeded(&inst, 0);
            assert_eq!(out.winners.len(), 2);
        }
    }

    /// Random small instances with heavy sharing: the two engines must be
    /// byte-identical.
    #[test]
    fn indexed_matches_naive_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..200 {
            let n_ops = rng.random_range(2..12);
            let n_queries = rng.random_range(2..15);
            let mut b = InstanceBuilder::new(Load::from_units(rng.random_range(5.0..30.0)));
            let ops: Vec<_> = (0..n_ops)
                .map(|_| b.operator(Load::from_units(rng.random_range(1.0..8.0))))
                .collect();
            for _ in 0..n_queries {
                let k = rng.random_range(1..=3.min(n_ops));
                let mut set = Vec::new();
                for _ in 0..k {
                    set.push(ops[rng.random_range(0..n_ops)]);
                }
                b.query(Money::from_dollars(rng.random_range(1.0..100.0)), &set);
            }
            let inst = b.build().unwrap();
            let naive = Car::naive().run_seeded(&inst, 0);
            let indexed = Car::default().run_seeded(&inst, 0);
            assert_eq!(naive.winners, indexed.winners, "trial {trial}");
            assert_eq!(naive.payments, indexed.payments, "trial {trial}");
        }
    }
}
