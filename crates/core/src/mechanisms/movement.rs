//! Movement-window payments for the aggressive mechanisms CAF+ and CAT+
//! (Definitions 5–6).
//!
//! A winning user `i`'s *movement window* is how far down the priority list
//! her bid could sink before she would stop being admitted by the skip-fill
//! allocation. `last(i)` is the first query `j` after `i` such that, were
//! `i`'s bid changed to directly follow `j`'s position, the skip-fill would
//! no longer admit `i`. The payment is then
//! `p_i = C_i · b_last(i) / C_last(i)` under the mechanism's load model, or
//! zero when the window spans the whole remainder of the list.
//!
//! Two implementations are provided:
//!
//! * [`MovementWindowMode::Naive`] re-runs the greedy fill from scratch for
//!   every candidate position — the cost profile that makes CAF+/CAT+ three
//!   to four orders of magnitude slower than CAF/CAT in the paper's Table IV.
//! * [`MovementWindowMode::Snapshot`] performs a **single** skip-fill of the
//!   list without `i` and tests `i` against the incrementally updated state
//!   after each position. Because a query's admission under skip-fill
//!   depends only on the fill state at the moment it is considered, the two
//!   modes are semantically identical (property-tested in
//!   `tests/property_mechanisms.rs`).

use super::greedy::{fill_into, greedy_fill, FillPolicy, FillResult, LoadModel};
use crate::model::{AdmittedSet, AuctionInstance, QueryId};
use crate::units::{price_from_density, Money};

/// Strategy for computing `last(i)` (see module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MovementWindowMode {
    /// Re-simulate the fill for every candidate position (paper-faithful
    /// cost profile, quadratic per winner).
    Naive,
    /// One no-`i` fill with incremental snapshots (linear per winner).
    #[default]
    Snapshot,
}

/// Computes the movement-window payment for every winner of `fill`
/// (indexed by query id; losers pay zero).
///
/// `order` must be the full priority order the fill ran on, and `fill` must
/// have been produced with [`FillPolicy::SkipOverloaded`].
pub fn movement_window_payments(
    inst: &AuctionInstance,
    model: LoadModel,
    fill: &FillResult,
    mode: MovementWindowMode,
) -> Vec<Money> {
    let mut payments = vec![Money::ZERO; inst.num_queries()];
    for &rank in &fill.admitted_ranks {
        let q = fill.order[rank];
        let last = match mode {
            MovementWindowMode::Naive => last_naive(inst, &fill.order, rank),
            MovementWindowMode::Snapshot => last_snapshot(inst, &fill.order, rank),
        };
        if let Some(j) = last {
            payments[q.index()] =
                price_from_density(model.load(inst, q), inst.bid(j), model.load(inst, j));
        }
    }
    payments
}

/// The priority list with the query at `rank` removed.
fn order_without(order: &[QueryId], rank: usize) -> Vec<QueryId> {
    let mut others = Vec::with_capacity(order.len() - 1);
    others.extend_from_slice(&order[..rank]);
    others.extend_from_slice(&order[rank + 1..]);
    others
}

/// `last(i)` by re-filling the whole prefix for each candidate position.
fn last_naive(inst: &AuctionInstance, order: &[QueryId], rank: usize) -> Option<QueryId> {
    let i = order[rank];
    let others = order_without(order, rank);
    // Candidate positions: directly after each user that follows `i` in the
    // original priority list, i.e. `others[rank..]`.
    for j in rank..others.len() {
        let fill = greedy_fill(inst, &others[..=j], FillPolicy::SkipOverloaded);
        let mut state = AdmittedSet::new(inst);
        state.admit_all(fill.winners());
        if !state.fits(i) {
            return Some(others[j]);
        }
    }
    None
}

/// `last(i)` from one incremental no-`i` fill.
fn last_snapshot(inst: &AuctionInstance, order: &[QueryId], rank: usize) -> Option<QueryId> {
    let i = order[rank];
    let others = order_without(order, rank);
    let mut state = AdmittedSet::new(inst);
    for (j, &other) in others.iter().enumerate() {
        if state.fits(other) {
            state.admit(other);
        }
        if j >= rank && !state.fits(i) {
            return Some(other);
        }
    }
    None
}

/// Runs a complete density auction: order by `model` density, fill under
/// `policy`, and charge either first-loser prices (stop-fill) or
/// movement-window prices (skip-fill). Shared by CAF/CAF+/CAT/CAT+.
pub(crate) fn run_density_auction(
    name: &str,
    inst: &AuctionInstance,
    model: LoadModel,
    policy: FillPolicy,
    mode: MovementWindowMode,
) -> crate::outcome::Outcome {
    let order = super::greedy::priority_order(inst, model);
    let mut admitted = AdmittedSet::new(inst);
    let fill = fill_into(&mut admitted, &order, policy);
    let payments = match policy {
        FillPolicy::StopAtFirstReject => {
            let mut payments = vec![Money::ZERO; inst.num_queries()];
            if let Some(lost) = fill.first_loser() {
                let lost_load = model.load(inst, lost);
                for &r in &fill.admitted_ranks {
                    let q = fill.order[r];
                    payments[q.index()] =
                        price_from_density(model.load(inst, q), inst.bid(lost), lost_load);
                }
            }
            payments
        }
        FillPolicy::SkipOverloaded => movement_window_payments(inst, model, &fill, mode),
    };
    crate::outcome::Outcome::new(name, inst, fill.winners(), payments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceBuilder;
    use crate::units::{Load, Money};

    /// Capacity 6, three independent queries with loads 5, 4, 1 and bids
    /// 50, 20, 1 (total-load densities 10, 5, 1).
    fn skip_instance() -> AuctionInstance {
        let mut b = InstanceBuilder::new(Load::from_units(6.0));
        let x = b.operator(Load::from_units(5.0));
        let y = b.operator(Load::from_units(4.0));
        let z = b.operator(Load::from_units(1.0));
        b.query(Money::from_dollars(50.0), &[x]);
        b.query(Money::from_dollars(20.0), &[y]);
        b.query(Money::from_dollars(1.0), &[z]);
        b.build().unwrap()
    }

    #[test]
    fn both_modes_agree_on_skip_instance() {
        let inst = skip_instance();
        let order = super::super::greedy::priority_order(&inst, LoadModel::Total);
        let fill = greedy_fill(&inst, &order, FillPolicy::SkipOverloaded);
        let naive =
            movement_window_payments(&inst, LoadModel::Total, &fill, MovementWindowMode::Naive);
        let snap =
            movement_window_payments(&inst, LoadModel::Total, &fill, MovementWindowMode::Snapshot);
        assert_eq!(naive, snap);
    }

    #[test]
    fn window_payment_is_critical_density() {
        // Winners are q0 (load 5) and q2 (load 1); q1 (load 4) is skipped.
        // Moving q0 after q1: fill admits q1 (4 ≤ 6), then q0 needs 5 > 2 →
        // q0 loses ⇒ last(q0) = q1 ⇒ p0 = 5 × 20/4 = $25.
        // Moving q2 after nothing further exists after... q2 is last; its
        // window has no member ⇒ scan from its own rank: no failure ⇒ $0.
        let inst = skip_instance();
        let order = super::super::greedy::priority_order(&inst, LoadModel::Total);
        let fill = greedy_fill(&inst, &order, FillPolicy::SkipOverloaded);
        let pay =
            movement_window_payments(&inst, LoadModel::Total, &fill, MovementWindowMode::Snapshot);
        assert_eq!(pay[0], Money::from_dollars(25.0));
        assert_eq!(pay[2], Money::ZERO);
        assert_eq!(pay[1], Money::ZERO); // loser
    }

    #[test]
    fn full_fit_charges_nothing() {
        let mut b = InstanceBuilder::new(Load::from_units(100.0));
        let x = b.operator(Load::from_units(5.0));
        let y = b.operator(Load::from_units(4.0));
        b.query(Money::from_dollars(50.0), &[x]);
        b.query(Money::from_dollars(20.0), &[y]);
        let inst = b.build().unwrap();
        let order = super::super::greedy::priority_order(&inst, LoadModel::Total);
        let fill = greedy_fill(&inst, &order, FillPolicy::SkipOverloaded);
        let pay =
            movement_window_payments(&inst, LoadModel::Total, &fill, MovementWindowMode::Snapshot);
        assert!(pay.iter().all(|p| p.is_zero()));
    }
}
