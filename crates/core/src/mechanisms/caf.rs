//! CAF and CAF+ — CQ Admission based on static Fair-share load (§IV-B).

use super::greedy::{FillPolicy, LoadModel};
use super::movement::{run_density_auction, MovementWindowMode};
use super::Mechanism;
use crate::model::AuctionInstance;
use crate::outcome::Outcome;
use rand::Rng;

/// **CAF** (Algorithm 1): sort by `Pr_i = b_i / C^SF_i`, admit the maximal
/// prefix that fits (actual marginal loads), stop at the first reject, and
/// charge each winner `C^SF_i · b_lost / C^SF_lost` where `lost` is the first
/// losing query.
///
/// Bid-strategyproof and strategyproof (Theorem 4), but *universally
/// vulnerable* to sybil attacks (Theorem 15): fake low-bid queries sharing a
/// user's operators shrink her fair-share load, boosting her priority and
/// shrinking her payment.
#[derive(Clone, Copy, Debug, Default)]
pub struct Caf;

impl Mechanism for Caf {
    fn name(&self) -> &'static str {
        "CAF"
    }

    fn run(&self, inst: &AuctionInstance, _rng: &mut dyn Rng) -> Outcome {
        run_density_auction(
            self.name(),
            inst,
            LoadModel::FairShare,
            FillPolicy::StopAtFirstReject,
            MovementWindowMode::default(),
        )
    }
}

/// **CAF+** (Algorithm 2): like [`Caf`] but skips queries that do not fit and
/// keeps filling; winners pay their movement-window critical value
/// (Definitions 5–6).
///
/// Strategyproof (Theorem 7); universally sybil-vulnerable (Theorem 15);
/// the movement-window computation dominates its runtime (Table IV).
#[derive(Clone, Copy, Debug, Default)]
pub struct CafPlus {
    /// How `last(i)` is computed; semantics are identical, costs are not.
    pub window_mode: MovementWindowMode,
}

impl CafPlus {
    /// CAF+ with an explicit movement-window implementation.
    pub fn with_mode(window_mode: MovementWindowMode) -> Self {
        Self { window_mode }
    }
}

impl Mechanism for CafPlus {
    fn name(&self) -> &'static str {
        "CAF+"
    }

    fn run(&self, inst: &AuctionInstance, _rng: &mut dyn Rng) -> Outcome {
        run_density_auction(
            self.name(),
            inst,
            LoadModel::FairShare,
            FillPolicy::SkipOverloaded,
            self.window_mode,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{InstanceBuilder, QueryId};
    use crate::units::{Load, Money};

    fn example1() -> AuctionInstance {
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let a = b.operator(Load::from_units(4.0));
        let ob = b.operator(Load::from_units(1.0));
        let c = b.operator(Load::from_units(2.0));
        let d = b.operator(Load::from_units(7.0));
        let e = b.operator(Load::from_units(3.0));
        b.query(Money::from_dollars(55.0), &[a, ob]);
        b.query(Money::from_dollars(72.0), &[a, c]);
        b.query(Money::from_dollars(100.0), &[d, e]);
        b.build().unwrap()
    }

    #[test]
    fn caf_reproduces_paper_example1() {
        // "Thus the payments for q1 and q2 are $10 per unit load, which
        // amount to respective payments of $30 and $40."
        let out = Caf.run_seeded(&example1(), 0);
        assert_eq!(out.winners, vec![QueryId(0), QueryId(1)]);
        assert_eq!(out.payment(QueryId(0)), Money::from_dollars(30.0));
        assert_eq!(out.payment(QueryId(1)), Money::from_dollars(40.0));
        assert_eq!(out.payment(QueryId(2)), Money::ZERO);
        assert_eq!(out.profit(), Money::from_dollars(70.0));
        out.validate(&example1()).unwrap();
    }

    #[test]
    fn caf_plus_admits_at_least_what_caf_admits() {
        let inst = example1();
        let caf = Caf.run_seeded(&inst, 0);
        let cafp = CafPlus::default().run_seeded(&inst, 0);
        for w in &caf.winners {
            assert!(cafp.is_winner(*w));
        }
        cafp.validate(&inst).unwrap();
    }

    #[test]
    fn caf_charges_zero_when_everyone_fits() {
        let mut b = InstanceBuilder::new(Load::from_units(100.0));
        let a = b.operator(Load::from_units(4.0));
        b.query(Money::from_dollars(55.0), &[a]);
        b.query(Money::from_dollars(72.0), &[a]);
        let inst = b.build().unwrap();
        let out = Caf.run_seeded(&inst, 0);
        assert_eq!(out.winners.len(), 2);
        assert_eq!(out.profit(), Money::ZERO);
    }
}
