//! The randomized **Two-price** mechanism (§IV-D, Algorithm 3).
//!
//! Phase 1 (greedy): sort by valuation, take the maximal fitting prefix `H`.
//! Phase 2 (repair): if the boundary valuation is duplicated, rebuild the
//! tail of `H` from the duplicate set `D` so that membership of `H` cannot
//! depend on tie-breaking — this is the step that is exponential in `|D|`.
//! Phase 3 (random sampling, after Goldberg et al.): split `H` uniformly
//! into `A` and `B`, compute each half's optimal single price, and charge
//! each half the *other* half's price.
//!
//! Bid-strategyproof (Theorem 10) and load-oblivious, hence fully
//! strategyproof; expected profit ≥ `OPT_C − 2h` (Theorem 11), or
//! ≥ `OPT_C − d·h` for the polynomial variant without the repair step
//! (Theorem 12). Not sybil-immune (Theorem 20).

use super::gv::bid_order;
use super::Mechanism;
use crate::model::{AdmittedSet, AuctionInstance, QueryId};
use crate::outcome::Outcome;
use crate::units::Money;
use rand::seq::SliceRandom;
use rand::Rng;

/// How Step 4 partitions `H` into the two sample halves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PartitionMode {
    /// Shuffle `H` and split it in half — the paper's "partition evenly,
    /// uniformly at random".
    #[default]
    EvenShuffle,
    /// Assign each query by an independent fair coin derived from
    /// `(seed, query id)` — the variant discussed at the end of §V ("each
    /// query is placed in set A or B based on independent coin flips").
    /// Because a query's side does not depend on any bid, this mode is
    /// *deviation-stable*: re-running with one bid changed keeps everyone
    /// else's coin, which is what a per-coin-flip strategyproofness audit
    /// needs.
    PerQueryCoin,
}

/// Tuning knobs for [`TwoPrice`].
#[derive(Clone, Copy, Debug)]
pub struct TwoPriceConfig {
    /// Run the exact exponential duplicate repair only when `|D|` is at most
    /// this; beyond it, fall back to a greedy largest-cardinality packing
    /// (ascending marginal load). The paper's Step 3 is exponential in the
    /// number of duplicates; Theorem 12 covers omitting it entirely.
    pub exhaustive_limit: usize,
    /// Skip the repair step altogether — the polynomial-time variant of
    /// Theorem 12.
    pub skip_repair: bool,
    /// How `H` is split into the two halves.
    pub partition: PartitionMode,
}

impl Default for TwoPriceConfig {
    fn default() -> Self {
        Self {
            exhaustive_limit: 12,
            skip_repair: false,
            partition: PartitionMode::EvenShuffle,
        }
    }
}

/// The Two-price mechanism (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoPrice {
    /// Configuration (duplicate-repair behaviour).
    pub config: TwoPriceConfig,
}

impl TwoPrice {
    /// The polynomial variant that omits the duplicate-repair step
    /// (Theorem 12).
    pub fn polynomial() -> Self {
        Self {
            config: TwoPriceConfig {
                skip_repair: true,
                ..TwoPriceConfig::default()
            },
        }
    }

    /// The independent-coin-flip partition variant (end of §V), which is
    /// deviation-stable for per-realization strategyproofness audits.
    pub fn per_query_coin() -> Self {
        Self {
            config: TwoPriceConfig {
                partition: PartitionMode::PerQueryCoin,
                ..TwoPriceConfig::default()
            },
        }
    }
}

/// A deterministic fair coin for `(seed, query)` (SplitMix64 finalizer).
fn query_coin(seed: u64, q: QueryId) -> bool {
    let mut z = seed ^ (u64::from(q.0).wrapping_add(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    z & 1 == 0
}

/// The optimal single-price sale for one half: maximize `rank × v_rank` over
/// the descending valuations. Returns the maximizing price (highest price on
/// ties) or `None` for an empty set.
fn optimal_half_price(inst: &AuctionInstance, half_sorted_desc: &[QueryId]) -> Option<Money> {
    let mut best: Option<(Money, Money)> = None; // (profit, price)
    for (idx, &q) in half_sorted_desc.iter().enumerate() {
        let price = inst.bid(q);
        let profit = price.mul_count(idx as u64 + 1);
        match best {
            Some((bp, _)) if bp >= profit => {}
            _ => best = Some((profit, price)),
        }
    }
    best.map(|(_, price)| price)
}

/// The largest-cardinality subset of `dupes` that fits alongside the already
/// admitted queries in `state`. Exact (size-descending subset enumeration)
/// for `|dupes| ≤ limit`; greedy by ascending marginal load otherwise.
fn largest_fitting_subset(
    state: &mut AdmittedSet<'_>,
    dupes: &[QueryId],
    limit: usize,
) -> Vec<QueryId> {
    let d = dupes.len();
    if d == 0 {
        return Vec::new();
    }
    if d <= limit.min(24) {
        // Enumerate subsets grouped by descending popcount; first fit wins.
        let mut masks: Vec<u32> = (1..(1u32 << d)).collect();
        masks.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
        for mask in masks {
            let members: Vec<QueryId> = (0..d)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| dupes[i])
                .collect();
            let mut ok = true;
            let mut admitted_here = Vec::new();
            for &q in &members {
                if state.fits(q) {
                    state.admit(q);
                    admitted_here.push(q);
                } else {
                    ok = false;
                    break;
                }
            }
            for &q in admitted_here.iter().rev() {
                state.withdraw(q);
            }
            if ok {
                return members;
            }
        }
        Vec::new()
    } else {
        // Greedy: repeatedly admit the duplicate with the smallest marginal
        // load that still fits.
        let mut rest: Vec<QueryId> = dupes.to_vec();
        let mut chosen = Vec::new();
        loop {
            let pick = rest
                .iter()
                .enumerate()
                .map(|(i, &q)| (i, state.marginal_load(q)))
                .min_by(|(ia, la), (ib, lb)| la.cmp(lb).then_with(|| ia.cmp(ib)));
            match pick {
                Some((i, load)) if load <= state.remaining() => {
                    let q = rest.swap_remove(i);
                    state.admit(q);
                    chosen.push(q);
                }
                _ => break,
            }
        }
        for &q in chosen.iter().rev() {
            state.withdraw(q);
        }
        chosen
    }
}

impl Mechanism for TwoPrice {
    fn name(&self) -> &'static str {
        "Two-price"
    }

    fn run(&self, inst: &AuctionInstance, rng: &mut dyn Rng) -> Outcome {
        let order = bid_order(inst);

        // Step 2: maximal fitting prefix H; L is everything after it.
        let mut state = AdmittedSet::new(inst);
        let mut h: Vec<QueryId> = Vec::new();
        let mut first_loser: Option<QueryId> = None;
        for &q in &order {
            if first_loser.is_none() && state.fits(q) {
                state.admit(q);
                h.push(q);
            } else if first_loser.is_none() {
                first_loser = Some(q);
            }
        }

        // Step 3: duplicate repair at the H/L boundary.
        if !self.config.skip_repair {
            if let (Some(lost), Some(&h_last)) = (first_loser, h.last()) {
                let v_l = inst.bid(lost);
                if inst.bid(h_last) == v_l {
                    let dupes: Vec<QueryId> = order
                        .iter()
                        .copied()
                        .filter(|&q| inst.bid(q) == v_l)
                        .collect();
                    // H' = H − D (note: every member of D∩H sits at H's tail).
                    for &q in h.iter().rev() {
                        if inst.bid(q) == v_l {
                            state.withdraw(q);
                        }
                    }
                    h.retain(|&q| inst.bid(q) != v_l);
                    let chosen =
                        largest_fitting_subset(&mut state, &dupes, self.config.exhaustive_limit);
                    for &q in &chosen {
                        state.admit(q);
                        h.push(q);
                    }
                }
            }
        }

        // Step 4: split H uniformly at random into two halves.
        let (mut half_a, mut half_b): (Vec<QueryId>, Vec<QueryId>) = match self.config.partition {
            PartitionMode::EvenShuffle => {
                let mut shuffled = h.clone();
                shuffled.shuffle(rng);
                let mid = shuffled.len() / 2;
                (shuffled[..mid].to_vec(), shuffled[mid..].to_vec())
            }
            PartitionMode::PerQueryCoin => {
                let coin_seed = rng.next_u64();
                h.iter().partition(|&&q| query_coin(coin_seed, q))
            }
        };
        let desc = |inst: &AuctionInstance, ids: &mut Vec<QueryId>| {
            ids.sort_by(|&x, &y| inst.bid(y).cmp(&inst.bid(x)).then_with(|| x.cmp(&y)));
        };
        desc(inst, &mut half_a);
        desc(inst, &mut half_b);

        // Step 5: optimal single price of each half.
        let p_a = optimal_half_price(inst, &half_a);
        let p_b = optimal_half_price(inst, &half_b);

        // Step 6: cross-apply. Winners from B bid strictly above A's price
        // and pay it, and vice versa. An empty half offers no price, so the
        // other half sells nothing.
        let mut winners: Vec<QueryId> = Vec::new();
        let mut payments = vec![Money::ZERO; inst.num_queries()];
        if let Some(p) = p_a {
            for &q in &half_b {
                if inst.bid(q) > p {
                    winners.push(q);
                    payments[q.index()] = p;
                }
            }
        }
        if let Some(p) = p_b {
            for &q in &half_a {
                if inst.bid(q) > p {
                    winners.push(q);
                    payments[q.index()] = p;
                }
            }
        }
        winners.sort_unstable();
        Outcome::new(self.name(), inst, winners, payments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceBuilder;
    use crate::units::Load;

    fn uniform_instance(n: usize, capacity: f64) -> AuctionInstance {
        let mut b = InstanceBuilder::new(Load::from_units(capacity));
        for i in 0..n {
            let op = b.operator(Load::from_units(1.0));
            b.query(Money::from_dollars(10.0 + i as f64), &[op]);
        }
        b.build().unwrap()
    }

    #[test]
    fn winners_pay_below_bid_and_fit() {
        let inst = uniform_instance(40, 25.0);
        for seed in 0..20 {
            let out = TwoPrice::default().run_seeded(&inst, seed);
            out.validate(&inst).unwrap();
        }
    }

    #[test]
    fn empty_half_sells_nothing() {
        // A single query: one half is empty, so nobody can win.
        let inst = uniform_instance(1, 100.0);
        let out = TwoPrice::default().run_seeded(&inst, 3);
        assert!(out.winners.is_empty());
        assert_eq!(out.profit(), Money::ZERO);
    }

    #[test]
    fn profit_respects_the_theorem11_bound_on_distinct_valuations() {
        // Theorem 11 (E[profit] ≥ OPT_C − 2h) assumes distinct valuations.
        // 100 queries with valuations $1..$100, room for the top 50.
        let mut b = InstanceBuilder::new(Load::from_units(50.0));
        for i in 0..100 {
            let op = b.operator(Load::from_units(1.0));
            b.query(Money::from_dollars(1.0 + i as f64), &[op]);
        }
        let inst = b.build().unwrap();
        let optc = super::super::optc::optimal_constant_price(&inst);
        let h = inst.max_bid();
        let bound = optc.profit.as_f64() - 2.0 * h.as_f64();
        let mut total = 0.0;
        let runs = 200;
        for seed in 0..runs {
            let out = TwoPrice::default().run_seeded(&inst, seed);
            out.validate(&inst).unwrap();
            total += out.profit().as_f64();
        }
        let mean = total / runs as f64;
        // Sample mean of 200 runs; allow 5% sampling slack below the
        // expectation bound.
        assert!(
            mean >= bound * 0.95,
            "mean profit {mean} far below OPT_C − 2h = {bound}"
        );
    }

    #[test]
    fn identical_valuations_sell_nothing() {
        // With all valuations equal, both halves quote that common value and
        // "strictly above" admits nobody — the paper's distinct-valuations
        // assumption is load-bearing.
        let mut b = InstanceBuilder::new(Load::from_units(50.0));
        for _ in 0..100 {
            let op = b.operator(Load::from_units(1.0));
            b.query(Money::from_dollars(10.0), &[op]);
        }
        let inst = b.build().unwrap();
        let out = TwoPrice::default().run_seeded(&inst, 11);
        assert_eq!(out.profit(), Money::ZERO);
    }

    #[test]
    fn duplicate_repair_is_tie_break_independent() {
        // Capacity 3, valuations [10, 5, 5, 5]: H would be {10, 5, 5} with
        // the boundary valuation duplicated. After repair, H = {10} ∪ D*
        // where D* is a largest fitting subset of all three 5s — still two
        // of them, but chosen canonically rather than by sort order.
        let mut b = InstanceBuilder::new(Load::from_units(3.0));
        for bid in [10.0, 5.0, 5.0, 5.0] {
            let op = b.operator(Load::from_units(1.0));
            b.query(Money::from_dollars(bid), &[op]);
        }
        let inst = b.build().unwrap();
        let out = TwoPrice::default().run_seeded(&inst, 0);
        out.validate(&inst).unwrap();
    }

    #[test]
    fn polynomial_variant_runs() {
        let inst = uniform_instance(30, 10.0);
        let out = TwoPrice::polynomial().run_seeded(&inst, 7);
        out.validate(&inst).unwrap();
    }

    #[test]
    fn largest_fitting_subset_exact_beats_nothing() {
        // Two duplicates of load 2 and one of load 1 against remaining
        // capacity 3: exact search must find {2,1} (cardinality 2).
        let mut b = InstanceBuilder::new(Load::from_units(3.0));
        let x = b.operator(Load::from_units(2.0));
        let y = b.operator(Load::from_units(2.0));
        let z = b.operator(Load::from_units(1.0));
        b.query(Money::from_dollars(5.0), &[x]);
        b.query(Money::from_dollars(5.0), &[y]);
        b.query(Money::from_dollars(5.0), &[z]);
        let inst = b.build().unwrap();
        let mut state = AdmittedSet::new(&inst);
        let chosen = largest_fitting_subset(&mut state, &[QueryId(0), QueryId(1), QueryId(2)], 12);
        assert_eq!(chosen.len(), 2);
        assert!(state.is_empty(), "search must leave the state untouched");
    }
}
