//! The paper's auction mechanisms (§IV) plus the baselines of §VI.
//!
//! All mechanisms implement [`Mechanism`]; deterministic ones ignore the RNG.
//! [`all_mechanisms`] returns the evaluation line-up of §VI.

mod caf;
mod car;
mod cat;
mod greedy;
mod gv;
mod movement;
mod optc;
mod random;
mod two_price;

pub use caf::{Caf, CafPlus};
pub use car::Car;
pub use cat::{Cat, CatPlus};
pub use greedy::{greedy_fill, priority_order, FillPolicy, FillResult, LoadModel};
pub use gv::Gv;
pub use movement::{movement_window_payments, MovementWindowMode};
pub use optc::{optimal_constant_price, OptConstantPricing, OptcResult};
pub use random::RandomAdmission;
pub use two_price::{TwoPrice, TwoPriceConfig};

use crate::model::AuctionInstance;
use crate::outcome::Outcome;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An admission-control auction mechanism: selects winners and payments.
pub trait Mechanism {
    /// Stable human-readable name (matches the paper's labels).
    fn name(&self) -> &'static str;

    /// Runs the auction. Deterministic mechanisms ignore `rng`; randomized
    /// ones ([`TwoPrice`], [`RandomAdmission`]) draw from it.
    fn run(&self, inst: &AuctionInstance, rng: &mut dyn Rng) -> Outcome;

    /// Runs with a seeded RNG (convenience for tests and experiments).
    fn run_seeded(&self, inst: &AuctionInstance, seed: u64) -> Outcome {
        let mut rng = StdRng::seed_from_u64(seed);
        self.run(inst, &mut rng)
    }
}

/// Enumerates the mechanisms for configuration files and reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MechanismKind {
    /// CQ Admission based on Remaining load (§IV-A) — not strategyproof.
    Car,
    /// CQ Admission based on Fair share (§IV-B, Algorithm 1).
    Caf,
    /// Aggressive fair-share variant (§IV-B, Algorithm 2).
    CafPlus,
    /// CQ Admission based on Total load (§IV-C) — sybil-strategyproof.
    Cat,
    /// Aggressive total-load variant (§IV-C).
    CatPlus,
    /// Greedy by Valuation (§IV-D).
    Gv,
    /// Randomized Two-price mechanism (§IV-D, Algorithm 3).
    TwoPrice,
    /// Random admission baseline (§VI, Table IV).
    Random,
}

impl MechanismKind {
    /// Instantiates the mechanism with default configuration.
    pub fn build(self) -> Box<dyn Mechanism> {
        match self {
            MechanismKind::Car => Box::new(Car::default()),
            MechanismKind::Caf => Box::new(Caf),
            MechanismKind::CafPlus => Box::new(CafPlus::default()),
            MechanismKind::Cat => Box::new(Cat),
            MechanismKind::CatPlus => Box::new(CatPlus::default()),
            MechanismKind::Gv => Box::new(Gv),
            MechanismKind::TwoPrice => Box::new(TwoPrice::default()),
            MechanismKind::Random => Box::new(RandomAdmission),
        }
    }

    /// The paper's label for the mechanism.
    pub fn label(self) -> &'static str {
        match self {
            MechanismKind::Car => "CAR",
            MechanismKind::Caf => "CAF",
            MechanismKind::CafPlus => "CAF+",
            MechanismKind::Cat => "CAT",
            MechanismKind::CatPlus => "CAT+",
            MechanismKind::Gv => "GV",
            MechanismKind::TwoPrice => "Two-price",
            MechanismKind::Random => "Random",
        }
    }

    /// Whether the paper proves the mechanism (bid-)strategyproof (Table I).
    pub fn is_strategyproof(self) -> bool {
        !matches!(self, MechanismKind::Car | MechanismKind::Random)
    }

    /// Whether the paper proves the mechanism sybil-immune (Table I): only
    /// CAT.
    pub fn is_sybil_immune(self) -> bool {
        matches!(self, MechanismKind::Cat)
    }

    /// Whether the mechanism has a provable profit guarantee (Table I): only
    /// Two-price.
    pub fn has_profit_guarantee(self) -> bool {
        matches!(self, MechanismKind::TwoPrice)
    }

    /// The density-based greedy mechanisms plotted in Figure 4.
    pub fn density_mechanisms() -> [MechanismKind; 4] {
        [
            MechanismKind::Caf,
            MechanismKind::CafPlus,
            MechanismKind::Cat,
            MechanismKind::CatPlus,
        ]
    }

    /// The full §VI evaluation line-up (Table IV order).
    pub fn evaluation_lineup() -> [MechanismKind; 7] {
        [
            MechanismKind::Random,
            MechanismKind::Gv,
            MechanismKind::TwoPrice,
            MechanismKind::Caf,
            MechanismKind::CafPlus,
            MechanismKind::Cat,
            MechanismKind::CatPlus,
        ]
    }
}

impl std::fmt::Display for MechanismKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Instantiates every mechanism of the §VI evaluation with defaults.
pub fn all_mechanisms() -> Vec<Box<dyn Mechanism>> {
    MechanismKind::evaluation_lineup()
        .into_iter()
        .map(MechanismKind::build)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_and_properties_match_table1() {
        assert_eq!(MechanismKind::Caf.label(), "CAF");
        assert!(MechanismKind::Caf.is_strategyproof());
        assert!(!MechanismKind::Caf.is_sybil_immune());
        assert!(MechanismKind::Cat.is_sybil_immune());
        assert!(!MechanismKind::CatPlus.is_sybil_immune());
        assert!(!MechanismKind::Car.is_strategyproof());
        assert!(MechanismKind::TwoPrice.has_profit_guarantee());
        assert!(!MechanismKind::Cat.has_profit_guarantee());
    }

    #[test]
    fn build_round_trips_names() {
        for kind in MechanismKind::evaluation_lineup() {
            let m = kind.build();
            assert_eq!(m.name(), kind.label());
        }
    }
}
