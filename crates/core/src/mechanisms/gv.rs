//! GV — Greedy by Valuation (§IV-D).
//!
//! Sort by bid (ignoring loads entirely), admit the maximal fitting prefix,
//! and charge every winner the bid of the first losing query — a constant
//! price. Strategyproof, but like the density mechanisms it admits no
//! reasonable provable profit guarantee; it exists as the deterministic core
//! that the randomized Two-price mechanism builds on.

use super::Mechanism;
use crate::model::{AuctionInstance, QueryId};
use crate::outcome::Outcome;
use crate::units::Money;
use rand::Rng;

/// The GV mechanism (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct Gv;

/// Sorts query ids by decreasing bid, breaking ties by ascending id.
pub(crate) fn bid_order(inst: &AuctionInstance) -> Vec<QueryId> {
    let mut order: Vec<QueryId> = inst.query_ids().collect();
    order.sort_by(|&a, &b| inst.bid(b).cmp(&inst.bid(a)).then_with(|| a.cmp(&b)));
    order
}

impl Mechanism for Gv {
    fn name(&self) -> &'static str {
        "GV"
    }

    fn run(&self, inst: &AuctionInstance, _rng: &mut dyn Rng) -> Outcome {
        let order = bid_order(inst);
        let fill =
            super::greedy::greedy_fill(inst, &order, super::greedy::FillPolicy::StopAtFirstReject);
        let mut payments = vec![Money::ZERO; inst.num_queries()];
        if let Some(lost) = fill.first_loser() {
            let price = inst.bid(lost);
            for &r in &fill.admitted_ranks {
                payments[fill.order[r].index()] = price;
            }
        }
        Outcome::new(self.name(), inst, fill.winners(), payments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceBuilder;
    use crate::units::Load;

    #[test]
    fn gv_charges_first_loser_bid() {
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let x = b.operator(Load::from_units(6.0));
        let y = b.operator(Load::from_units(4.0));
        let z = b.operator(Load::from_units(5.0));
        b.query(Money::from_dollars(100.0), &[x]);
        b.query(Money::from_dollars(80.0), &[y]);
        b.query(Money::from_dollars(60.0), &[z]); // does not fit
        let inst = b.build().unwrap();
        let out = Gv.run_seeded(&inst, 0);
        assert_eq!(out.winners, vec![QueryId(0), QueryId(1)]);
        assert_eq!(out.payment(QueryId(0)), Money::from_dollars(60.0));
        assert_eq!(out.payment(QueryId(1)), Money::from_dollars(60.0));
        out.validate(&inst).unwrap();
    }

    #[test]
    fn gv_everyone_fits_pays_zero() {
        let mut b = InstanceBuilder::new(Load::from_units(100.0));
        let x = b.operator(Load::from_units(6.0));
        b.query(Money::from_dollars(100.0), &[x]);
        b.query(Money::from_dollars(80.0), &[x]);
        let inst = b.build().unwrap();
        let out = Gv.run_seeded(&inst, 0);
        assert_eq!(out.winners.len(), 2);
        assert_eq!(out.profit(), Money::ZERO);
    }

    #[test]
    fn gv_ignores_loads_when_sorting() {
        // A huge-load, high-bid query is taken first even though its
        // density is terrible.
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let x = b.operator(Load::from_units(10.0));
        let y = b.operator(Load::from_units(1.0));
        b.query(Money::from_dollars(100.0), &[x]);
        b.query(Money::from_dollars(99.0), &[y]);
        let inst = b.build().unwrap();
        let out = Gv.run_seeded(&inst, 0);
        assert_eq!(out.winners, vec![QueryId(0)]);
    }
}
