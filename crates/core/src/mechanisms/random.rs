//! The random-admission baseline of §VI (Table IV): pick queries uniformly
//! at random and stop at the first that does not fit. It charges nothing —
//! the paper uses it purely as a runtime floor for the greedy mechanisms.

use super::greedy::{greedy_fill, FillPolicy};
use super::Mechanism;
use crate::model::{AuctionInstance, QueryId};
use crate::outcome::Outcome;
use crate::units::Money;
use rand::seq::SliceRandom;
use rand::Rng;

/// The random-admission baseline (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomAdmission;

impl Mechanism for RandomAdmission {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn run(&self, inst: &AuctionInstance, rng: &mut dyn Rng) -> Outcome {
        let mut order: Vec<QueryId> = inst.query_ids().collect();
        order.shuffle(rng);
        let fill = greedy_fill(inst, &order, FillPolicy::StopAtFirstReject);
        let payments = vec![Money::ZERO; inst.num_queries()];
        Outcome::new(self.name(), inst, fill.winners(), payments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceBuilder;
    use crate::units::Load;

    #[test]
    fn random_is_feasible_and_free() {
        let mut b = InstanceBuilder::new(Load::from_units(5.0));
        for i in 0..20 {
            let op = b.operator(Load::from_units(1.0 + (i % 3) as f64));
            b.query(Money::from_dollars(10.0), &[op]);
        }
        let inst = b.build().unwrap();
        for seed in 0..10 {
            let out = RandomAdmission.run_seeded(&inst, seed);
            out.validate(&inst).unwrap();
            assert_eq!(out.profit(), Money::ZERO);
            assert!(!out.winners.is_empty());
        }
    }

    #[test]
    fn different_seeds_reach_different_winner_sets() {
        let mut b = InstanceBuilder::new(Load::from_units(3.0));
        for _ in 0..30 {
            let op = b.operator(Load::from_units(1.0));
            b.query(Money::from_dollars(1.0), &[op]);
        }
        let inst = b.build().unwrap();
        let a = RandomAdmission.run_seeded(&inst, 1);
        let b2 = RandomAdmission.run_seeded(&inst, 2);
        assert_ne!(a.winners, b2.winners);
    }
}
