//! CAT and CAT+ — CQ Admission based on Total load (§IV-C).

use super::greedy::{FillPolicy, LoadModel};
use super::movement::{run_density_auction, MovementWindowMode};
use super::Mechanism;
use crate::model::AuctionInstance;
use crate::outcome::Outcome;
use rand::Rng;

/// **CAT**: exactly [`super::Caf`] with the static fair-share load replaced
/// by the total load `C^T_i = Σ_{o_j ∈ q_i} c_j`.
///
/// Bid-strategyproof (Theorem 8) and — uniquely among the paper's
/// mechanisms — **sybil-strategyproof** (Theorem 19): because a user's total
/// load ignores how many others share her operators, fake queries can
/// neither promote her in the priority list nor cut her payment by more
/// than they cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct Cat;

impl Mechanism for Cat {
    fn name(&self) -> &'static str {
        "CAT"
    }

    fn run(&self, inst: &AuctionInstance, _rng: &mut dyn Rng) -> Outcome {
        run_density_auction(
            self.name(),
            inst,
            LoadModel::Total,
            FillPolicy::StopAtFirstReject,
            MovementWindowMode::default(),
        )
    }
}

/// **CAT+**: [`super::CafPlus`] on total load — skip-fill allocation with
/// movement-window payments.
///
/// Bid-strategyproof (Theorem 9) but *vulnerable* to sybil attack
/// (Theorem 17): the Table II construction lets an attacker insert a cheap
/// fake query that crowds a rival out of the prefix, flipping herself from
/// loser to winner for less than the fake's payment.
#[derive(Clone, Copy, Debug, Default)]
pub struct CatPlus {
    /// How `last(i)` is computed; semantics are identical, costs are not.
    pub window_mode: MovementWindowMode,
}

impl CatPlus {
    /// CAT+ with an explicit movement-window implementation.
    pub fn with_mode(window_mode: MovementWindowMode) -> Self {
        Self { window_mode }
    }
}

impl Mechanism for CatPlus {
    fn name(&self) -> &'static str {
        "CAT+"
    }

    fn run(&self, inst: &AuctionInstance, _rng: &mut dyn Rng) -> Outcome {
        run_density_auction(
            self.name(),
            inst,
            LoadModel::Total,
            FillPolicy::SkipOverloaded,
            self.window_mode,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{InstanceBuilder, QueryId};
    use crate::units::{Load, Money};

    fn example1() -> AuctionInstance {
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let a = b.operator(Load::from_units(4.0));
        let ob = b.operator(Load::from_units(1.0));
        let c = b.operator(Load::from_units(2.0));
        let d = b.operator(Load::from_units(7.0));
        let e = b.operator(Load::from_units(3.0));
        b.query(Money::from_dollars(55.0), &[a, ob]);
        b.query(Money::from_dollars(72.0), &[a, c]);
        b.query(Money::from_dollars(100.0), &[d, e]);
        b.build().unwrap()
    }

    #[test]
    fn cat_reproduces_paper_example1() {
        // "The payments for q1 and q2 are $10 per unit load, which amount to
        // respective payments of $50 and $60."
        let inst = example1();
        let out = Cat.run_seeded(&inst, 0);
        assert_eq!(out.winners, vec![QueryId(0), QueryId(1)]);
        assert_eq!(out.payment(QueryId(0)), Money::from_dollars(50.0));
        assert_eq!(out.payment(QueryId(1)), Money::from_dollars(60.0));
        assert_eq!(out.profit(), Money::from_dollars(110.0));
        out.validate(&inst).unwrap();
    }

    #[test]
    fn cat_plus_matches_cat_when_no_skip_helps() {
        let inst = example1();
        let cat = Cat.run_seeded(&inst, 0);
        let catp = CatPlus::default().run_seeded(&inst, 0);
        assert_eq!(cat.winners, catp.winners);
    }

    #[test]
    fn cat_plus_naive_and_snapshot_agree() {
        let inst = example1();
        let a = CatPlus::with_mode(MovementWindowMode::Naive).run_seeded(&inst, 0);
        let b = CatPlus::with_mode(MovementWindowMode::Snapshot).run_seeded(&inst, 0);
        assert_eq!(a.winners, b.winners);
        assert_eq!(a.payments, b.payments);
    }
}
