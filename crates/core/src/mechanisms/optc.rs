//! OPT_C — the optimal *constant pricing* profit benchmark (§IV-D).
//!
//! A constant pricing mechanism charges one price `p`: users bidding
//! strictly above `p` win and pay `p`, users bidding strictly below lose,
//! and ties may be resolved arbitrarily. A constant price is *valid* when
//! the winners fit within server capacity. `OPT_C` is the maximum profit of
//! any valid constant price — the benchmark Two-price provably approximates
//! (Theorem 11).
//!
//! With shared operators, deciding how many tied bidders fit is itself a
//! small set-packing problem; we resolve ties greedily by increasing
//! marginal load, which maximizes the tied count heuristically (documented
//! substitution in DESIGN.md — the paper does not specify its OPT_C
//! implementation).

use super::Mechanism;
use crate::model::{AdmittedSet, AuctionInstance, QueryId};
use crate::outcome::Outcome;
use crate::units::Money;
use rand::Rng;

/// The outcome of the constant-price search.
#[derive(Clone, Debug)]
pub struct OptcResult {
    /// The best valid constant price.
    pub price: Money,
    /// Profit at that price (`price × |winners|`).
    pub profit: Money,
    /// The winners at that price.
    pub winners: Vec<QueryId>,
}

/// The OPT_C benchmark, usable both as an analysis ([`optimal_constant_price`])
/// and as a [`Mechanism`] that charges the optimal constant price (not
/// strategyproof — it peeks at all bids to set the price).
#[derive(Clone, Copy, Debug, Default)]
pub struct OptConstantPricing;

/// Searches all candidate constant prices (the distinct bid values) and
/// returns the most profitable valid one.
///
/// For a price `p`: every query bidding `> p` *must* win — if those do not
/// fit, `p` is invalid; queries bidding exactly `p` are then added greedily
/// (ascending marginal load) while they fit.
pub fn optimal_constant_price(inst: &AuctionInstance) -> OptcResult {
    let mut prices: Vec<Money> = inst.queries().iter().map(|q| q.bid).collect();
    prices.sort_unstable_by(|a, b| b.cmp(a));
    prices.dedup();

    // Queries sorted by descending bid let us reuse a prefix walk per price.
    let order = super::gv::bid_order(inst);

    let mut best = OptcResult {
        price: Money::ZERO,
        profit: Money::ZERO,
        winners: Vec::new(),
    };

    for price in prices {
        if price.is_zero() {
            continue; // profit would be zero anyway
        }
        let mut admitted = AdmittedSet::new(inst);
        let mut winners: Vec<QueryId> = Vec::new();
        let mut valid = true;
        // Mandatory winners: bids strictly above the price.
        for &q in &order {
            if inst.bid(q) <= price {
                break;
            }
            if admitted.fits(q) {
                admitted.admit(q);
                winners.push(q);
            } else {
                valid = false;
                break;
            }
        }
        if !valid {
            continue;
        }
        // Tied bidders, cheapest marginal load first, while they fit.
        let mut tied: Vec<QueryId> = order
            .iter()
            .copied()
            .filter(|&q| inst.bid(q) == price)
            .collect();
        loop {
            let pick = tied
                .iter()
                .enumerate()
                .map(|(i, &q)| (i, admitted.marginal_load(q)))
                .min_by(|(ia, la), (ib, lb)| la.cmp(lb).then_with(|| ia.cmp(ib)));
            match pick {
                Some((i, load)) if load <= admitted.remaining() => {
                    let q = tied.swap_remove(i);
                    admitted.admit(q);
                    winners.push(q);
                }
                _ => break,
            }
        }
        let profit = price.mul_count(winners.len() as u64);
        if profit > best.profit {
            winners.sort_unstable();
            best = OptcResult {
                price,
                profit,
                winners,
            };
        }
    }
    best
}

impl Mechanism for OptConstantPricing {
    fn name(&self) -> &'static str {
        "OPTC"
    }

    fn run(&self, inst: &AuctionInstance, _rng: &mut dyn Rng) -> Outcome {
        let result = optimal_constant_price(inst);
        let mut payments = vec![Money::ZERO; inst.num_queries()];
        for &q in &result.winners {
            payments[q.index()] = result.price;
        }
        Outcome::new(self.name(), inst, result.winners, payments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceBuilder;
    use crate::units::Load;

    #[test]
    fn picks_the_most_profitable_price() {
        // Bids 10, 10, 3 with room for all: price 10 sells 2 (profit 20;
        // both tie at p=10 and fit), price 3 sells... at p=3 the two
        // 10-bidders win plus the tied 3-bidder → 9. Best is 20.
        let mut b = InstanceBuilder::new(Load::from_units(100.0));
        for bid in [10.0, 10.0, 3.0] {
            let op = b.operator(Load::from_units(1.0));
            b.query(Money::from_dollars(bid), &[op]);
        }
        let inst = b.build().unwrap();
        let r = optimal_constant_price(&inst);
        assert_eq!(r.price, Money::from_dollars(10.0));
        assert_eq!(r.profit, Money::from_dollars(20.0));
        assert_eq!(r.winners.len(), 2);
    }

    #[test]
    fn invalid_price_is_skipped_when_mandatory_overflow() {
        // Two heavy high bidders cannot both fit, so any price below $50
        // is invalid; price $50 (one winner, the $90 bidder) is optimal...
        // comparing with price $90: zero strict winners, one tied (fits) →
        // profit $90.
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let x = b.operator(Load::from_units(8.0));
        let y = b.operator(Load::from_units(8.0));
        b.query(Money::from_dollars(90.0), &[x]);
        b.query(Money::from_dollars(50.0), &[y]);
        let inst = b.build().unwrap();
        let r = optimal_constant_price(&inst);
        assert_eq!(r.price, Money::from_dollars(90.0));
        assert_eq!(r.profit, Money::from_dollars(90.0));
    }

    #[test]
    fn shared_operators_raise_the_sellable_count() {
        // Five queries share one operator of load 8 (capacity 10): all five
        // fit together, so price $5 sells five for $25.
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let shared = b.operator(Load::from_units(8.0));
        for _ in 0..5 {
            b.query(Money::from_dollars(5.0), &[shared]);
        }
        let inst = b.build().unwrap();
        let r = optimal_constant_price(&inst);
        assert_eq!(r.price, Money::from_dollars(5.0));
        assert_eq!(r.winners.len(), 5);
        assert_eq!(r.profit, Money::from_dollars(25.0));
    }

    #[test]
    fn mechanism_outcome_is_valid() {
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        for bid in [10.0, 8.0, 6.0, 4.0] {
            let op = b.operator(Load::from_units(3.0));
            b.query(Money::from_dollars(bid), &[op]);
        }
        let inst = b.build().unwrap();
        let out = OptConstantPricing.run_seeded(&inst, 0);
        out.validate(&inst).unwrap();
        assert_eq!(out.profit(), optimal_constant_price(&inst).profit);
    }
}
