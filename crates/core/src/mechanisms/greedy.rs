//! The shared greedy engine behind CAF, CAF+, CAT, and CAT+ (§IV preamble):
//!
//! 1. sort queries in decreasing profit density (bid per unit of *model*
//!    load), then
//! 2. admit queries until the server is full,
//!
//! where the four mechanisms differ only in the **load model** used for the
//! density (fair share vs total) and the **fill policy** (stop at the first
//! query that does not fit vs skip it and keep going).
//!
//! Capacity checks always use the *actual* marginal (remaining) load — the
//! distinct-union accounting of [`AdmittedSet`] — never the model load
//! (Algorithm 1, step 3 note).

use crate::model::{AdmittedSet, AuctionInstance, QueryId};
use crate::units::{Density, Load};

/// Which per-query load enters the density priority `Pr_i = b_i / C_i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadModel {
    /// Static fair-share load `C^SF_i = Σ c_j / l_j` (Definition 3) — CAF,
    /// CAF+.
    FairShare,
    /// Total load `C^T_i = Σ c_j` (§IV-C) — CAT, CAT+.
    Total,
}

impl LoadModel {
    /// The model load of `q` under this model.
    #[inline]
    pub fn load(self, inst: &AuctionInstance, q: QueryId) -> Load {
        match self {
            LoadModel::FairShare => inst.fair_share_load(q),
            LoadModel::Total => inst.total_load(q),
        }
    }
}

/// How the greedy fill treats a query that does not fit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillPolicy {
    /// Stop at the first query that does not fit (CAF, CAT, GV, Two-price's
    /// prefix `H`, Random).
    StopAtFirstReject,
    /// Skip it and continue down the list (CAF+, CAT+).
    SkipOverloaded,
}

/// Result of a greedy fill over a fixed priority order.
#[derive(Clone, Debug)]
pub struct FillResult {
    /// The priority order that was filled (query ids, best first).
    pub order: Vec<QueryId>,
    /// Positions in `order` that were admitted.
    pub admitted_ranks: Vec<usize>,
    /// Rank (in `order`) of the first query that failed the capacity check,
    /// if any — the paper's `qlost` for first-loser pricing.
    pub first_reject: Option<usize>,
    /// Distinct-union load of the admitted queries.
    pub used: Load,
}

impl FillResult {
    /// Admitted query ids, ascending.
    pub fn winners(&self) -> Vec<QueryId> {
        let mut w: Vec<QueryId> = self.admitted_ranks.iter().map(|&r| self.order[r]).collect();
        w.sort_unstable();
        w
    }

    /// The first rejected query (`qlost`), if any.
    pub fn first_loser(&self) -> Option<QueryId> {
        self.first_reject.map(|r| self.order[r])
    }
}

/// Sorts all queries by decreasing density `b_i / C_i` under `model`.
///
/// Ties break by query id (ascending) so the order — and therefore every
/// mechanism built on it — is deterministic. The paper breaks ties
/// arbitrarily; a fixed tie-break is one valid choice and makes the
/// theorem-shaped tests reproducible.
pub fn priority_order(inst: &AuctionInstance, model: LoadModel) -> Vec<QueryId> {
    let mut order: Vec<QueryId> = inst.query_ids().collect();
    sort_by_density(inst, model, &mut order);
    order
}

/// Sorts an arbitrary id slice by decreasing density under `model`.
pub(crate) fn sort_by_density(inst: &AuctionInstance, model: LoadModel, ids: &mut [QueryId]) {
    ids.sort_by(|&a, &b| {
        let da = Density::new(inst.bid(a), model.load(inst, a));
        let db = Density::new(inst.bid(b), model.load(inst, b));
        db.cmp(&da).then_with(|| a.cmp(&b))
    });
}

/// Greedily fills server capacity following `order` under `policy`,
/// checking the *marginal* load of each candidate against remaining
/// capacity.
pub fn greedy_fill(inst: &AuctionInstance, order: &[QueryId], policy: FillPolicy) -> FillResult {
    let mut admitted = AdmittedSet::new(inst);
    fill_into(&mut admitted, order, policy)
}

/// Same as [`greedy_fill`], but reuses (and mutates) a caller-provided
/// admitted set — useful when the caller wants the final set state.
pub fn fill_into(
    admitted: &mut AdmittedSet<'_>,
    order: &[QueryId],
    policy: FillPolicy,
) -> FillResult {
    let mut admitted_ranks = Vec::with_capacity(order.len());
    let mut first_reject = None;
    for (rank, &q) in order.iter().enumerate() {
        if admitted.fits(q) {
            admitted.admit(q);
            admitted_ranks.push(rank);
        } else {
            if first_reject.is_none() {
                first_reject = Some(rank);
            }
            match policy {
                FillPolicy::StopAtFirstReject => break,
                FillPolicy::SkipOverloaded => {}
            }
        }
    }
    FillResult {
        order: order.to_vec(),
        admitted_ranks,
        first_reject,
        used: admitted.used(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceBuilder;
    use crate::units::Money;

    fn example1() -> AuctionInstance {
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let a = b.operator(Load::from_units(4.0));
        let ob = b.operator(Load::from_units(1.0));
        let c = b.operator(Load::from_units(2.0));
        let d = b.operator(Load::from_units(7.0));
        let e = b.operator(Load::from_units(3.0));
        b.query(Money::from_dollars(55.0), &[a, ob]);
        b.query(Money::from_dollars(72.0), &[a, c]);
        b.query(Money::from_dollars(100.0), &[d, e]);
        b.build().unwrap()
    }

    #[test]
    fn fair_share_order_matches_paper() {
        // Priorities 18.33, 18, 10 → q1, q2, q3.
        let inst = example1();
        let order = priority_order(&inst, LoadModel::FairShare);
        assert_eq!(order, vec![QueryId(0), QueryId(1), QueryId(2)]);
    }

    #[test]
    fn total_load_order_matches_paper() {
        // Priorities 11, 12, 10 → q2, q1, q3.
        let inst = example1();
        let order = priority_order(&inst, LoadModel::Total);
        assert_eq!(order, vec![QueryId(1), QueryId(0), QueryId(2)]);
    }

    #[test]
    fn fill_stops_at_first_reject() {
        let inst = example1();
        let order = priority_order(&inst, LoadModel::Total);
        let fill = greedy_fill(&inst, &order, FillPolicy::StopAtFirstReject);
        assert_eq!(fill.winners(), vec![QueryId(0), QueryId(1)]);
        assert_eq!(fill.first_loser(), Some(QueryId(2)));
        assert_eq!(fill.used, Load::from_units(7.0));
    }

    #[test]
    fn skip_policy_keeps_scanning() {
        // Capacity 6: big query (load 5) first by density, middle query
        // doesn't fit, small one does.
        let mut b = InstanceBuilder::new(Load::from_units(6.0));
        let x = b.operator(Load::from_units(5.0));
        let y = b.operator(Load::from_units(4.0));
        let z = b.operator(Load::from_units(1.0));
        b.query(Money::from_dollars(50.0), &[x]); // density 10
        b.query(Money::from_dollars(20.0), &[y]); // density 5, won't fit
        b.query(Money::from_dollars(1.0), &[z]); // density 1, fits
        let inst = b.build().unwrap();
        let order = priority_order(&inst, LoadModel::Total);

        let stop = greedy_fill(&inst, &order, FillPolicy::StopAtFirstReject);
        assert_eq!(stop.winners(), vec![QueryId(0)]);

        let skip = greedy_fill(&inst, &order, FillPolicy::SkipOverloaded);
        assert_eq!(skip.winners(), vec![QueryId(0), QueryId(2)]);
        assert_eq!(skip.first_loser(), Some(QueryId(1)));
    }

    #[test]
    fn ties_break_by_query_id() {
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let x = b.operator(Load::from_units(1.0));
        let y = b.operator(Load::from_units(1.0));
        b.query(Money::from_dollars(5.0), &[x]);
        b.query(Money::from_dollars(5.0), &[y]);
        let inst = b.build().unwrap();
        let order = priority_order(&inst, LoadModel::Total);
        assert_eq!(order, vec![QueryId(0), QueryId(1)]);
    }

    #[test]
    fn marginal_load_lets_shared_query_fit() {
        // q2 alone would not fit, but sharing with admitted q1 it does.
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let big = b.operator(Load::from_units(8.0));
        let small = b.operator(Load::from_units(1.5));
        b.query(Money::from_dollars(100.0), &[big]); // density 12.5
        b.query(Money::from_dollars(50.0), &[big, small]); // density ~5.3, CR = 1.5
        let inst = b.build().unwrap();
        let order = priority_order(&inst, LoadModel::Total);
        let fill = greedy_fill(&inst, &order, FillPolicy::StopAtFirstReject);
        assert_eq!(fill.winners(), vec![QueryId(0), QueryId(1)]);
        assert_eq!(fill.used, Load::from_units(9.5));
    }
}
