//! Refcounted shared-load accounting.
//!
//! With operator sharing, the load consumed by a set of admitted queries is
//! the sum of loads of the **distinct** operators in their union (§II). Every
//! mechanism therefore needs an efficient way to ask "what additional load
//! would admitting `q` cost right now?" — the *remaining load* `CR_i` of
//! Definition 2 — and to admit/withdraw queries incrementally.

use super::{AuctionInstance, QueryId};
use crate::units::Load;

/// A mutable set of admitted queries over one [`AuctionInstance`], tracking
/// per-operator reference counts and the total distinct-union load.
///
/// All operations are `O(|ops(q)|)`; withdrawal is exact rollback.
#[derive(Clone, Debug)]
pub struct AdmittedSet<'a> {
    inst: &'a AuctionInstance,
    /// Reference count per operator: number of *admitted* queries using it.
    refcount: Vec<u32>,
    /// Membership flags per query.
    admitted: Vec<bool>,
    /// Total load of distinct admitted operators.
    used: Load,
    /// Number of admitted queries.
    count: usize,
}

impl<'a> AdmittedSet<'a> {
    /// An empty admitted set over `inst`.
    pub fn new(inst: &'a AuctionInstance) -> Self {
        Self {
            inst,
            refcount: vec![0; inst.num_operators()],
            admitted: vec![false; inst.num_queries()],
            used: Load::ZERO,
            count: 0,
        }
    }

    /// The underlying instance.
    #[inline]
    pub fn instance(&self) -> &'a AuctionInstance {
        self.inst
    }

    /// Total distinct-union load of the admitted queries.
    #[inline]
    pub fn used(&self) -> Load {
        self.used
    }

    /// Remaining capacity (`capacity − used`).
    #[inline]
    pub fn remaining(&self) -> Load {
        self.inst.capacity().saturating_sub(self.used)
    }

    /// Number of admitted queries.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no query is admitted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether `q` is currently admitted.
    #[inline]
    pub fn contains(&self, q: QueryId) -> bool {
        self.admitted[q.index()]
    }

    /// The *remaining load* `CR_q` (Definition 2): the total load of `q`'s
    /// operators excluding those already provided by admitted queries.
    pub fn marginal_load(&self, q: QueryId) -> Load {
        debug_assert!(!self.contains(q), "marginal load of an admitted query");
        let mut load = Load::ZERO;
        for &op in &self.inst.query(q).operators {
            if self.refcount[op.index()] == 0 {
                load += self.inst.operator_load(op);
            }
        }
        load
    }

    /// Whether admitting `q` keeps the total load within capacity.
    #[inline]
    pub fn fits(&self, q: QueryId) -> bool {
        self.marginal_load(q) <= self.remaining()
    }

    /// Admits `q`, returning the marginal load it actually added.
    ///
    /// # Panics
    /// Panics (debug) if `q` was already admitted.
    pub fn admit(&mut self, q: QueryId) -> Load {
        debug_assert!(!self.contains(q), "double admission of {q}");
        let mut added = Load::ZERO;
        for &op in &self.inst.query(q).operators {
            let rc = &mut self.refcount[op.index()];
            if *rc == 0 {
                added += self.inst.operator_load(op);
            }
            *rc += 1;
        }
        self.admitted[q.index()] = true;
        self.used += added;
        self.count += 1;
        added
    }

    /// Withdraws `q`, returning the load that was released.
    ///
    /// # Panics
    /// Panics (debug) if `q` was not admitted.
    pub fn withdraw(&mut self, q: QueryId) -> Load {
        debug_assert!(self.contains(q), "withdrawing non-admitted {q}");
        let mut released = Load::ZERO;
        for &op in &self.inst.query(q).operators {
            let rc = &mut self.refcount[op.index()];
            *rc -= 1;
            if *rc == 0 {
                released += self.inst.operator_load(op);
            }
        }
        self.admitted[q.index()] = false;
        self.used -= released;
        self.count -= 1;
        released
    }

    /// Admits every query in `qs` (in order); convenience for feasibility
    /// checks of whole sets (the union load is order-independent).
    pub fn admit_all<I: IntoIterator<Item = QueryId>>(&mut self, qs: I) {
        for q in qs {
            self.admit(q);
        }
    }

    /// Resets to the empty set without reallocating.
    pub fn clear(&mut self) {
        self.refcount.fill(0);
        self.admitted.fill(false);
        self.used = Load::ZERO;
        self.count = 0;
    }

    /// Ids of the admitted queries, ascending.
    pub fn winners(&self) -> Vec<QueryId> {
        self.admitted
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(QueryId(i as u32)))
            .collect()
    }
}

/// Computes the distinct-union load of an arbitrary query set without
/// mutating an [`AdmittedSet`] — used by OPT_C and Two-price feasibility
/// checks over candidate sets.
pub(crate) fn union_load(inst: &AuctionInstance, qs: &[QueryId]) -> Load {
    let mut seen = vec![false; inst.num_operators()];
    let mut load = Load::ZERO;
    for &q in qs {
        for &op in &inst.query(q).operators {
            if !seen[op.index()] {
                seen[op.index()] = true;
                load += inst.operator_load(op);
            }
        }
    }
    load
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceBuilder;
    use crate::units::Money;

    fn example1() -> AuctionInstance {
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let a = b.operator(Load::from_units(4.0));
        let ob = b.operator(Load::from_units(1.0));
        let c = b.operator(Load::from_units(2.0));
        let d = b.operator(Load::from_units(7.0));
        let e = b.operator(Load::from_units(3.0));
        b.query(Money::from_dollars(55.0), &[a, ob]);
        b.query(Money::from_dollars(72.0), &[a, c]);
        b.query(Money::from_dollars(100.0), &[d, e]);
        b.build().unwrap()
    }

    #[test]
    fn marginal_load_reflects_sharing() {
        let inst = example1();
        let mut set = AdmittedSet::new(&inst);
        // Initially CR equals total load.
        assert_eq!(set.marginal_load(QueryId(0)), Load::from_units(5.0));
        assert_eq!(set.marginal_load(QueryId(1)), Load::from_units(6.0));
        // After admitting q2 (ops A,C), q1's remaining load is just B = 1.
        set.admit(QueryId(1));
        assert_eq!(set.marginal_load(QueryId(0)), Load::from_units(1.0));
        assert_eq!(set.used(), Load::from_units(6.0));
        set.admit(QueryId(0));
        assert_eq!(set.used(), Load::from_units(7.0));
        assert_eq!(set.remaining(), Load::from_units(3.0));
        // q3 needs 10 more units: does not fit.
        assert!(!set.fits(QueryId(2)));
    }

    #[test]
    fn withdraw_is_exact_rollback() {
        let inst = example1();
        let mut set = AdmittedSet::new(&inst);
        set.admit(QueryId(1));
        set.admit(QueryId(0));
        let before = set.used();
        set.withdraw(QueryId(1));
        // Operator A is still referenced by q1, so only C (2.0) is released.
        assert_eq!(before - set.used(), Load::from_units(2.0));
        set.withdraw(QueryId(0));
        assert_eq!(set.used(), Load::ZERO);
        assert!(set.is_empty());
    }

    #[test]
    fn union_load_is_order_independent() {
        let inst = example1();
        let l1 = union_load(&inst, &[QueryId(0), QueryId(1)]);
        let l2 = union_load(&inst, &[QueryId(1), QueryId(0)]);
        assert_eq!(l1, l2);
        assert_eq!(l1, Load::from_units(7.0));
    }

    #[test]
    fn winners_sorted() {
        let inst = example1();
        let mut set = AdmittedSet::new(&inst);
        set.admit(QueryId(2));
        set.admit(QueryId(0));
        assert_eq!(set.winners(), vec![QueryId(0), QueryId(2)]);
    }

    #[test]
    fn clear_resets() {
        let inst = example1();
        let mut set = AdmittedSet::new(&inst);
        set.admit_all([QueryId(0), QueryId(1)]);
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.used(), Load::ZERO);
        assert_eq!(set.marginal_load(QueryId(0)), Load::from_units(5.0));
    }
}
