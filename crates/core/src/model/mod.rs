//! The auction input model: operators, queries, instances, and the
//! shared-load accounting used by every mechanism.
//!
//! The paper (§II) abstracts a continuous query to *the set of operators it
//! contains*, ignoring dataflow order (Figure 2): the auction only needs each
//! operator's load, which queries contain it, and the user bids. The
//! dataflow-level substrate lives in the `cqac-dsms` crate, which lowers a
//! real query network into an [`AuctionInstance`] through its cost model.

mod admitted;
mod builder;
mod instance;

pub(crate) use admitted::union_load as union_load_of;
pub use admitted::AdmittedSet;
pub use builder::{BuildError, InstanceBuilder};
pub use instance::{AuctionInstance, OperatorDef, QueryDef};

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a `usize` index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies an operator within one [`AuctionInstance`]; ids are dense
    /// indices assigned by the [`InstanceBuilder`].
    OperatorId,
    "o"
);

id_type!(
    /// Identifies a query within one [`AuctionInstance`]; ids are dense
    /// indices in submission order.
    QueryId,
    "q"
);

id_type!(
    /// Identifies the user who submitted a query. Several queries may belong
    /// to one user (which is exactly what a sybil attacker exploits, §V).
    UserId,
    "u"
);
